//! Warp-control-unit power model (paper §III-C1, Fig. 2).
//!
//! Composed from circuit-tier structures: the warp status table (a
//! multi-ported SRAM), the I-cache, the McPAT-style instruction decoder,
//! the warp-ID-tagged instruction buffer and scoreboard (CAM tables),
//! the per-warp reconvergence stacks (an SRAM holding
//! {exec PC, reconv PC, active mask} tokens) and the two
//! rotating-priority schedulers (inverters + wide priority encoder +
//! phase counter, after Kun et al. \[16\]).

use gpusimpow_circuit::{
    Cache, CacheSpec, InstructionDecoder, PriorityEncoder, SramArray, SramSpec, TaggedTable,
};
use gpusimpow_sim::{ActivityVector, EventKind as Ev, GpuConfig};
use gpusimpow_tech::node::{DeviceType, TechNode};
use gpusimpow_tech::units::{Area, Energy, Power};

use crate::empirical;
use crate::registry::{EnergyMap, EnergyTerm};

/// Evaluated WCU (per core).
#[derive(Debug, Clone)]
pub struct WcuPower {
    fetch_energy: Energy,
    decode_energy: Energy,
    ibuffer_write_energy: Energy,
    ibuffer_read_energy: Energy,
    fetch_scheduler_energy: Energy,
    issue_scheduler_energy: Energy,
    scoreboard_read_energy: Energy,
    wst_energy: Energy,
    map: EnergyMap,
    leakage: Power,
    area: Area,
}

impl WcuPower {
    /// Builds the WCU model for one core of `cfg` at `tech`.
    ///
    /// # Errors
    ///
    /// Propagates circuit-model construction errors.
    pub fn new(cfg: &GpuConfig, tech: &TechNode) -> Result<Self, &'static str> {
        let warps = cfg.max_warps_per_core();
        let warp_bits = (warps.max(2) as f64).log2().ceil() as usize;

        // Warp status table: one entry per in-flight warp holding master
        // PC, priority, valid/ready/barrier bits (Fig. 2): ~48 bits.
        let wst = SramArray::new(
            tech,
            SramSpec {
                entries: warps,
                bits_per_entry: 48,
                read_ports: 2,
                write_ports: 1,
                rw_ports: 0,
                banks: 1,
                device: DeviceType::HighPerformance,
            },
        )?;

        let icache = Cache::new(
            tech,
            CacheSpec {
                capacity_bytes: cfg.icache_bytes,
                line_bytes: 64,
                ways: 4,
                address_bits: 32,
                banks: 1,
            },
        )?;

        let decoder = InstructionDecoder::new(tech, 8, 64)?;

        // Instruction buffer: associativity > 1, tagged by warp ID,
        // holding 64-bit decoded instructions (paper: "cache-like
        // structure tagged by the warp ID").
        let ibuffer = TaggedTable::new(tech, warps * 2, warp_bits, 64)?;

        // Scoreboard: warp-ID-tagged table of two destination registers
        // (Fig. 2: DstReg1/DstReg2).
        let scoreboard = TaggedTable::new(tech, warps, warp_bits, 16)?;

        // Per-warp reconvergence stacks: 16 tokens x (exec PC 32 +
        // reconv PC 32 + active mask 32) per warp.
        let stacks = SramArray::new(
            tech,
            SramSpec {
                entries: warps * 16,
                bits_per_entry: 96,
                read_ports: 1,
                write_ports: 1,
                rw_ports: 0,
                banks: 2,
                device: DeviceType::HighPerformance,
            },
        )?;

        // Two schedulers (fetch + issue), each an inverter rank + wide
        // priority encoder + phase counter (Kun et al. [16]). Under
        // two-level scheduling the issue encoder only spans the active
        // set.
        let fetch_sched = PriorityEncoder::new(tech, warps)?;
        let issue_sched = PriorityEncoder::new(tech, cfg.issue_scheduler_width())?;

        let leakage = wst.costs().leakage
            + icache.costs().leakage
            + decoder.costs().leakage
            + ibuffer.costs().leakage
            + scoreboard.costs().leakage
            + stacks.costs().leakage
            + fetch_sched.costs().leakage
            + issue_sched.costs().leakage;
        let area = wst.costs().area
            + icache.costs().area
            + decoder.costs().area
            + ibuffer.costs().area
            + scoreboard.costs().area
            + stacks.costs().area
            + fetch_sched.costs().area
            + issue_sched.costs().area;

        let s = empirical::WCU_ENERGY_SCALE;
        let fetch_energy = icache.hit_energy() * s;
        let decode_energy = decoder.decode_energy() * s;
        let ibuffer_write_energy = ibuffer.insert_energy() * s;
        let ibuffer_read_energy = ibuffer.lookup_energy() * s;
        let scoreboard_read_energy = scoreboard.lookup_energy() * s;
        let scoreboard_write_energy = scoreboard.insert_energy() * s;
        let stack_op_energy = stacks.costs().read_energy * s;
        let fetch_scheduler_energy = fetch_sched.select_energy() * s;
        let issue_scheduler_energy = issue_sched.select_energy() * s;
        let wst_energy = wst.costs().read_energy * s;
        // Term order is the former hand-written expression order; labels
        // group the terms into the §V-B memory drill-down rows.
        let map = EnergyMap::new(vec![
            EnergyTerm::new("i-cache", fetch_energy, vec![Ev::IcacheAccesses]),
            EnergyTerm::new("decoder", decode_energy, vec![Ev::Decodes]),
            EnergyTerm::new(
                "instruction buffer",
                ibuffer_write_energy,
                vec![Ev::IbufferWrites],
            ),
            EnergyTerm::new(
                "instruction buffer",
                ibuffer_read_energy,
                vec![Ev::IbufferReads],
            ),
            EnergyTerm::new(
                "scoreboard",
                scoreboard_read_energy,
                vec![Ev::ScoreboardReads],
            ),
            EnergyTerm::new(
                "scoreboard",
                scoreboard_write_energy,
                vec![Ev::ScoreboardWrites],
            ),
            EnergyTerm::new(
                "reconvergence stacks",
                stack_op_energy,
                vec![Ev::SimtStackReads, Ev::SimtStackPushes, Ev::SimtStackPops],
            ),
            EnergyTerm::new(
                "warp schedulers",
                fetch_scheduler_energy,
                vec![Ev::FetchSchedulerSelects],
            ),
            EnergyTerm::new(
                "warp schedulers",
                issue_scheduler_energy,
                vec![Ev::IssueSchedulerSelects],
            ),
            EnergyTerm::new(
                "warp status table",
                wst_energy,
                vec![Ev::WstReads, Ev::WstWrites],
            ),
        ]);
        Ok(WcuPower {
            fetch_energy,
            decode_energy,
            ibuffer_write_energy,
            ibuffer_read_energy,
            fetch_scheduler_energy,
            issue_scheduler_energy,
            scoreboard_read_energy,
            wst_energy,
            map,
            leakage: leakage * empirical::WCU_LEAKAGE_SCALE,
            area,
        })
    }

    /// The WCU's event-priced energy map (registry coverage and scoped
    /// attribution iterate this instead of naming fields).
    pub fn energy_map(&self) -> &EnergyMap {
        &self.map
    }

    /// Chip-wide dynamic energy of the WCU for one kernel, from the
    /// aggregated registry counters.
    pub fn dynamic_energy(&self, activity: &ActivityVector) -> Energy {
        self.map.dynamic_energy(activity)
    }

    /// Breaks the WCU's dynamic energy down to its individual memories
    /// and logic blocks — the finer-grained analysis the paper's §V-B
    /// mentions ("investigating the power consumed by the different
    /// memories in the warp control unit").
    pub fn memory_breakdown(&self, activity: &ActivityVector) -> Vec<(&'static str, Energy)> {
        self.map.grouped(activity)
    }

    /// Per-core leakage.
    pub fn leakage(&self) -> Power {
        self.leakage
    }

    /// Per-core area.
    pub fn area(&self) -> Area {
        self.area
    }

    /// Peak per-cycle energy (fetch + issue + decode every cycle).
    pub fn peak_cycle_energy(&self) -> Energy {
        self.fetch_energy
            + self.decode_energy
            + self.ibuffer_write_energy
            + self.ibuffer_read_energy
            + self.fetch_scheduler_energy
            + self.issue_scheduler_energy
            + self.wst_energy * 2.0
            + self.scoreboard_read_energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t40() -> TechNode {
        TechNode::planar(40).unwrap()
    }

    #[test]
    fn fermi_wcu_is_bigger_than_tesla_wcu() {
        let gt = WcuPower::new(&GpuConfig::gt240(), &t40()).unwrap();
        let gtx = WcuPower::new(&GpuConfig::gtx580(), &t40()).unwrap();
        assert!(gtx.leakage() > gt.leakage());
        assert!(gtx.area().mm2() > gt.area().mm2());
    }

    #[test]
    fn dynamic_energy_scales_with_activity() {
        let wcu = WcuPower::new(&GpuConfig::gt240(), &t40()).unwrap();
        let mut a = ActivityVector::new();
        a[Ev::IcacheAccesses] = 1000;
        a[Ev::Decodes] = 1000;
        let e1 = wcu.dynamic_energy(&a);
        a[Ev::IcacheAccesses] = 2000;
        a[Ev::Decodes] = 2000;
        let e2 = wcu.dynamic_energy(&a);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn memory_breakdown_sums_to_total() {
        let wcu = WcuPower::new(&GpuConfig::gt240(), &t40()).unwrap();
        let mut a = ActivityVector::new();
        a[Ev::IcacheAccesses] = 500;
        a[Ev::Decodes] = 500;
        a[Ev::IbufferWrites] = 500;
        a[Ev::IbufferReads] = 480;
        a[Ev::ScoreboardReads] = 700;
        a[Ev::SimtStackReads] = 480;
        a[Ev::SimtStackPushes] = 20;
        a[Ev::SimtStackPops] = 21;
        a[Ev::FetchSchedulerSelects] = 500;
        a[Ev::IssueSchedulerSelects] = 480;
        a[Ev::WstReads] = 500;
        a[Ev::WstWrites] = 480;
        let parts: f64 = wcu
            .memory_breakdown(&a)
            .iter()
            .map(|(_, e)| e.joules())
            .sum();
        let total = wcu.dynamic_energy(&a).joules();
        assert!((parts - total).abs() < 1e-18 * total.max(1.0) + 1e-18);
        assert_eq!(wcu.memory_breakdown(&a).len(), 7);
    }

    #[test]
    fn zero_activity_zero_energy() {
        let wcu = WcuPower::new(&GpuConfig::gt240(), &t40()).unwrap();
        assert_eq!(wcu.dynamic_energy(&ActivityVector::new()).joules(), 0.0);
    }
}

// Fixture: rotten suppressions. A reasonless marker does not suppress
// (and is itself a finding); a marker naming a made-up lint is flagged.
fn run() {
    // simlint: allow(nondeterministic_collection)
    let m: HashMap<u32, u32> = make();
    // simlint: allow(hash_maps_are_fine): because I said so
    let s: HashSet<u32> = make();
    let _ = (m, s);
}

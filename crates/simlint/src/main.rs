//! simlint CLI — see the library docs for what is checked.
//!
//! ```text
//! cargo run -p simlint                              # check, exit 1 on findings
//! cargo run -p simlint -- --root path/to/workspace
//! cargo run -p simlint -- --update-unsafe-manifest  # rewrite UNSAFE.md
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut update_manifest = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("simlint: --root needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--update-unsafe-manifest" => update_manifest = true,
            "--help" | "-h" => {
                println!(
                    "usage: simlint [--root PATH] [--update-unsafe-manifest]\n\
                     \n\
                     Checks the workspace invariants no compiler enforces:\n\
                     determinism (no HashMap iteration / wall clock in\n\
                     result-bearing crates), unit safety (no raw f64 math on\n\
                     unwrapped quantities in the power model), unsafe audit\n\
                     (SAFETY comments + UNSAFE.md inventory), and registry\n\
                     coverage (every EventKind priced, base-model, or\n\
                     documented unpriced). Exits 1 when anything fires."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("simlint: unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = match simlint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "simlint: failed to read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };

    let mut diagnostics = report.diagnostics;
    if update_manifest {
        let path = root.join("UNSAFE.md");
        if let Err(e) = std::fs::write(&path, &report.unsafe_manifest) {
            eprintln!("simlint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("simlint: wrote {}", path.display());
        diagnostics.retain(|d| d.lint != simlint::unsafety::UNSAFE_MANIFEST_DRIFT);
    }

    for d in &diagnostics {
        println!("{d}");
    }
    if diagnostics.is_empty() {
        println!(
            "simlint: {} files checked, no findings",
            report.files_checked
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("simlint: {} finding(s)", diagnostics.len());
        ExitCode::FAILURE
    }
}

//! Second file of the compute unit for the bad phase fixture: the
//! tick path reaches this kernel cross-file, and its lock must be
//! flagged in *this* file.

use std::sync::Mutex;

static SCRATCH: Mutex<Vec<u32>> = Mutex::new(Vec::new());

pub fn lane_kernel() {
    SCRATCH.lock().unwrap().push(1);
}

pub fn unreached_helper() {
    SCRATCH.lock().unwrap().clear();
}

//! Fixture: every lane_loop_alloc pattern, one per loop flavour.

fn per_cycle(values: &[u32]) -> u32 {
    let mut acc = 0;
    for v in values {
        let lanes = vec![0u32; 32]; // vec! in a for body
        let spill: Vec<u32> = Vec::new(); // Vec::new in a for body
        acc += lanes.len() as u32 + spill.len() as u32 + v;
    }
    let mut i = 0;
    while i < values.len() {
        let copy = values.to_vec(); // .to_vec() in a while body
        let label = format!("lane {i}"); // format! in a while body
        acc += copy.len() as u32 + label.len() as u32;
        i += 1;
    }
    loop {
        let gathered: Vec<u32> = values.iter().copied().collect(); // .collect() in a loop body
        let queue: std::collections::BinaryHeap<u32> =
            std::collections::BinaryHeap::with_capacity(8);
        acc += gathered.len() as u32 + queue.capacity() as u32;
        break;
    }
    acc
}

//! GPU architecture configuration.
//!
//! GPUSimPow exposes "the key parameters of the simulated architecture …
//! using a simple XML-based interface" so architects can explore the design
//! space (paper §III-A). This struct is that interface in Rust form; the
//! facade crate additionally parses a plain-text config-file format.
//!
//! Two presets mirror Table II of the paper: [`GpuConfig::gt240`]
//! (GT215/Tesla) and [`GpuConfig::gtx580`] (GF110/Fermi).

use std::fmt;

/// L2 cache configuration (absent on the GT240).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Uncore-cycle hit latency.
    pub latency: u32,
}

/// GDDR5 timing and geometry (per channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Independent banks per channel.
    pub banks: usize,
    /// Row (page) size in bytes.
    pub row_bytes: usize,
    /// Activate-to-read delay (tRCD) in command-clock cycles.
    pub t_rcd: u32,
    /// Precharge delay (tRP) in command-clock cycles.
    pub t_rp: u32,
    /// Column access latency (CL) in command-clock cycles.
    pub t_cas: u32,
    /// Activate-to-activate (same bank) delay (tRC) in command cycles.
    pub t_rc: u32,
    /// Command cycles the data bus is busy per 32-byte burst.
    pub burst_cycles: u32,
    /// Average refresh interval (tREFI) in command cycles.
    pub t_refi: u32,
    /// Refresh cycle time (tRFC) in command cycles.
    pub t_rfc: u32,
}

impl DramConfig {
    /// Hynix-datasheet-flavoured GDDR5 timings (paper reference \[27\]).
    pub fn gddr5() -> Self {
        DramConfig {
            banks: 16,
            row_bytes: 2048,
            t_rcd: 12,
            t_rp: 12,
            t_cas: 15,
            t_rc: 40,
            burst_cycles: 2,
            t_refi: 3900,
            t_rfc: 110,
        }
    }
}

/// Warp-scheduling policy of the issue stage.
///
/// The paper's baseline is a rotating-priority (round-robin) scheduler;
/// its conclusion names two-level scheduling (Narasiman et al., MICRO
/// 2011, paper ref. \[32\]) as interesting future work "from a power
/// perspective" — implemented here as an optional policy: only a small
/// *active set* of warps is considered for issue, and warps that stall
/// on memory are swapped out for pending ones. The issue scheduler's
/// priority encoder then only spans the active set, which the power
/// model credits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpSchedPolicy {
    /// Rotating priority over all resident warps (the paper's baseline).
    RoundRobin,
    /// Two-level scheduling with the given active-set size.
    TwoLevel {
        /// Warps considered for issue at any time.
        active_warps: usize,
    },
}

/// Errors found by [`GpuConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid gpu configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Complete description of a simulated GPU.
///
/// All fields are public: this is a passive parameter record, meant to be
/// tweaked for design-space exploration. Call [`GpuConfig::validate`]
/// before simulating (the simulator does so on construction).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Human-readable name for reports ("GT240", …).
    pub name: String,

    // --- chip organisation -------------------------------------------------
    /// Core clusters (TPCs on Tesla, GPCs on Fermi).
    pub clusters: usize,
    /// SIMT cores per cluster.
    pub cores_per_cluster: usize,

    // --- per-core front end -------------------------------------------------
    /// Threads per warp (32 on all modelled GPUs).
    pub warp_size: usize,
    /// Maximum resident threads per core (Table II: 768 / 1536).
    pub max_threads_per_core: usize,
    /// Maximum resident CTAs per core.
    pub max_ctas_per_core: usize,
    /// Warp instructions issued per cycle (1 Tesla, 2 Fermi).
    pub issue_width: usize,
    /// Issue-stage warp-scheduling policy.
    pub warp_scheduler: WarpSchedPolicy,
    /// Whether register dependencies use a scoreboard (Fermi) or
    /// barrel-blocking (Tesla): Table II "Scoreboard" row.
    pub scoreboard: bool,
    /// Instruction cache capacity in bytes.
    pub icache_bytes: usize,

    // --- register file -------------------------------------------------------
    /// 32-bit registers per core.
    pub regfile_regs_per_core: usize,
    /// Single-ported register banks per core.
    pub regfile_banks: usize,
    /// Operand collector units per core.
    pub operand_collectors: usize,

    // --- execution units ------------------------------------------------------
    /// SIMD lanes per core (Table II "#FUs per core": 8 / 32).
    pub simd_width: usize,
    /// Special-function units per core.
    pub sfu_count: usize,
    /// Integer pipeline latency in shader cycles.
    pub int_latency: u32,
    /// Floating-point pipeline latency in shader cycles.
    pub fp_latency: u32,
    /// SFU operation latency in shader cycles.
    pub sfu_latency: u32,

    // --- memory hierarchy -------------------------------------------------------
    /// Unified SMEM/L1 physical storage per core, in bytes.
    pub smem_bytes: usize,
    /// Shared-memory banks.
    pub smem_banks: usize,
    /// Shared-memory access latency in shader cycles.
    pub smem_latency: u32,
    /// Whether global accesses are cached in an L1 (Fermi yes, Tesla no).
    pub l1_enabled: bool,
    /// L1 capacity in bytes (portion of the unified storage).
    pub l1_bytes: usize,
    /// L1 line size in bytes.
    pub l1_line_bytes: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L1 hit latency in shader cycles.
    pub l1_latency: u32,
    /// Per-core constant cache capacity in bytes.
    pub const_cache_bytes: usize,
    /// Constant-cache hit latency in shader cycles.
    pub const_latency: u32,
    /// Sub-AGUs per core, each generating 8 addresses per cycle
    /// (Galuzzi et al., paper reference \[22\]).
    pub sagu_count: usize,
    /// Chip-level L2, if present.
    pub l2: Option<L2Config>,

    // --- uncore --------------------------------------------------------------
    /// NoC one-way latency in uncore cycles.
    pub noc_latency: u32,
    /// NoC flit size in bytes.
    pub noc_flit_bytes: usize,
    /// Flits the NoC can accept per uncore cycle, each direction.
    pub noc_bandwidth_flits: usize,
    /// Memory channels (each a 32-bit GDDR5 device pair).
    pub mem_channels: usize,
    /// Memory-controller queue depth per channel.
    pub mc_queue_depth: usize,
    /// DRAM timing.
    pub dram: DramConfig,

    // --- clocks ----------------------------------------------------------------
    /// Uncore clock in MHz (Table II).
    pub uncore_mhz: f64,
    /// Shader-to-uncore ratio (Table II).
    pub shader_ratio: f64,
    /// DRAM command clock in MHz.
    pub dram_mhz: f64,

    // --- process ---------------------------------------------------------------
    /// Manufacturing node in nm (both paper GPUs: 40).
    pub process_nm: u32,
    /// Junction temperature in kelvin under load (drives leakage; a
    /// low-end card runs cooler than a 300 W enthusiast part).
    pub junction_temp_k: f64,
}

impl GpuConfig {
    /// The GeForce GT240 (GT215, Tesla-class) preset of Table II.
    pub fn gt240() -> Self {
        GpuConfig {
            name: "GT240".to_string(),
            clusters: 4,
            cores_per_cluster: 3,
            warp_size: 32,
            max_threads_per_core: 768,
            max_ctas_per_core: 8,
            issue_width: 1,
            warp_scheduler: WarpSchedPolicy::RoundRobin,
            scoreboard: false,
            icache_bytes: 4 * 1024,
            regfile_regs_per_core: 16 * 1024,
            regfile_banks: 16,
            operand_collectors: 4,
            simd_width: 8,
            sfu_count: 2,
            int_latency: 10,
            fp_latency: 10,
            sfu_latency: 20,
            smem_bytes: 16 * 1024,
            smem_banks: 16,
            smem_latency: 24,
            l1_enabled: false,
            l1_bytes: 0,
            l1_line_bytes: 128,
            l1_ways: 4,
            l1_latency: 28,
            const_cache_bytes: 8 * 1024,
            const_latency: 8,
            sagu_count: 4,
            l2: None,
            noc_latency: 8,
            noc_flit_bytes: 32,
            noc_bandwidth_flits: 8,
            mem_channels: 2,
            mc_queue_depth: 16,
            dram: DramConfig::gddr5(),
            uncore_mhz: 550.0,
            shader_ratio: 2.47,
            dram_mhz: 850.0,
            process_nm: 40,
            junction_temp_k: 350.0,
        }
    }

    /// The GeForce GTX580 (GF110, Fermi-class) preset of Table II.
    pub fn gtx580() -> Self {
        GpuConfig {
            name: "GTX580".to_string(),
            clusters: 4,
            cores_per_cluster: 4,
            warp_size: 32,
            max_threads_per_core: 1536,
            max_ctas_per_core: 8,
            issue_width: 2,
            warp_scheduler: WarpSchedPolicy::RoundRobin,
            scoreboard: true,
            icache_bytes: 8 * 1024,
            regfile_regs_per_core: 32 * 1024,
            regfile_banks: 16,
            operand_collectors: 6,
            simd_width: 32,
            sfu_count: 4,
            int_latency: 10,
            fp_latency: 10,
            sfu_latency: 20,
            smem_bytes: 64 * 1024,
            smem_banks: 32,
            smem_latency: 24,
            l1_enabled: true,
            l1_bytes: 16 * 1024,
            l1_line_bytes: 128,
            l1_ways: 4,
            l1_latency: 28,
            const_cache_bytes: 8 * 1024,
            const_latency: 8,
            sagu_count: 4,
            l2: Some(L2Config {
                capacity_bytes: 768 * 1024,
                line_bytes: 128,
                ways: 8,
                latency: 20,
            }),
            noc_latency: 8,
            noc_flit_bytes: 32,
            noc_bandwidth_flits: 16,
            mem_channels: 6,
            mc_queue_depth: 32,
            dram: DramConfig::gddr5(),
            uncore_mhz: 882.0,
            shader_ratio: 2.0,
            dram_mhz: 1002.0,
            process_nm: 40,
            junction_temp_k: 372.0,
        }
    }

    /// Total SIMT cores on the chip.
    pub fn total_cores(&self) -> usize {
        self.clusters * self.cores_per_cluster
    }

    /// Maximum resident warps per core.
    pub fn max_warps_per_core(&self) -> usize {
        self.max_threads_per_core / self.warp_size
    }

    /// Shader clock in MHz.
    pub fn shader_mhz(&self) -> f64 {
        self.uncore_mhz * self.shader_ratio
    }

    /// Width of the issue-stage warp selector (the whole warp pool for
    /// round-robin, the active set for two-level scheduling).
    pub fn issue_scheduler_width(&self) -> usize {
        match self.warp_scheduler {
            WarpSchedPolicy::RoundRobin => self.max_warps_per_core(),
            WarpSchedPolicy::TwoLevel { active_warps } => {
                active_warps.min(self.max_warps_per_core())
            }
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first inconsistency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let bail = |msg: &str| Err(ConfigError(msg.to_string()));
        if self.clusters == 0 || self.cores_per_cluster == 0 {
            return bail("chip must have at least one core");
        }
        if self.warp_size == 0 || self.warp_size > 64 {
            return bail("warp size must be in 1..=64");
        }
        if !self.max_threads_per_core.is_multiple_of(self.warp_size) {
            return bail("max threads per core must be a warp multiple");
        }
        if self.max_warps_per_core() == 0 {
            return bail("core must hold at least one warp");
        }
        if self.simd_width == 0 || !self.warp_size.is_multiple_of(self.simd_width) {
            return bail("simd width must divide the warp size");
        }
        if self.regfile_banks == 0 || self.operand_collectors == 0 {
            return bail("register file needs banks and collectors");
        }
        if self.smem_banks == 0 || !self.smem_banks.is_power_of_two() {
            return bail("shared memory banks must be a power of two");
        }
        if self.l1_enabled && self.l1_bytes == 0 {
            return bail("an enabled l1 needs a capacity");
        }
        if self.l1_enabled && self.l1_bytes + 16 * 1024 > self.smem_bytes + 16 * 1024 {
            // L1 carves out of the unified storage; allow equality.
            if self.l1_bytes > self.smem_bytes {
                return bail("l1 cannot exceed the unified smem/l1 storage");
            }
        }
        if self.mem_channels == 0 {
            return bail("chip needs at least one memory channel");
        }
        if self.sagu_count == 0 {
            return bail("ldst unit needs at least one sub-agu");
        }
        if self.uncore_mhz <= 0.0
            || !self.uncore_mhz.is_finite()
            || self.dram_mhz <= 0.0
            || !self.dram_mhz.is_finite()
            || self.shader_ratio < 1.0
        {
            return bail("clocks must be positive with shader ratio >= 1");
        }
        if self.issue_width == 0 {
            return bail("issue width must be at least 1");
        }
        if !(233.0..=423.0).contains(&self.junction_temp_k) {
            return bail("junction temperature outside [233, 423] K");
        }
        if let WarpSchedPolicy::TwoLevel { active_warps } = self.warp_scheduler {
            if active_warps == 0 || active_warps > self.max_warps_per_core() {
                return bail("two-level active set must be in 1..=max warps");
            }
        }
        Ok(())
    }
}

impl fmt::Display for GpuConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} cores ({} clusters x {}), {} threads/core, {}-wide SIMD, {:.0}/{:.0} MHz",
            self.name,
            self.total_cores(),
            self.clusters,
            self.cores_per_cluster,
            self.max_threads_per_core,
            self.simd_width,
            self.shader_mhz(),
            self.uncore_mhz,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_ii() {
        let gt = GpuConfig::gt240();
        assert_eq!(gt.total_cores(), 12);
        assert_eq!(gt.max_warps_per_core(), 24);
        assert_eq!(gt.simd_width, 8);
        assert!(!gt.scoreboard);
        assert!(gt.l2.is_none());
        assert!((gt.shader_ratio - 2.47).abs() < 1e-12);

        let gtx = GpuConfig::gtx580();
        assert_eq!(gtx.total_cores(), 16);
        assert_eq!(gtx.max_warps_per_core(), 48);
        assert_eq!(gtx.simd_width, 32);
        assert!(gtx.scoreboard);
        assert_eq!(gtx.l2.unwrap().capacity_bytes, 768 * 1024);
        assert!((gtx.shader_ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn presets_validate() {
        GpuConfig::gt240().validate().unwrap();
        GpuConfig::gtx580().validate().unwrap();
    }

    #[test]
    fn invalid_simd_width_rejected() {
        let mut cfg = GpuConfig::gt240();
        cfg.simd_width = 12; // does not divide 32
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn non_power_of_two_smem_banks_rejected() {
        let mut cfg = GpuConfig::gt240();
        cfg.smem_banks = 12;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_cores_rejected() {
        let mut cfg = GpuConfig::gt240();
        cfg.clusters = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn threads_must_be_warp_multiple() {
        let mut cfg = GpuConfig::gt240();
        cfg.max_threads_per_core = 700;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn shader_clock_derivation() {
        let gt = GpuConfig::gt240();
        assert!((gt.shader_mhz() - 1358.5).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_core_count() {
        let s = GpuConfig::gt240().to_string();
        assert!(s.contains("12 cores"));
    }
}

//! The reference-hardware power emulator — the "real graphics card" of
//! the virtual testbed.
//!
//! There is no GT240 or GTX580 in this environment, so the validation
//! experiments run against a *synthetic ground truth*: an independent
//! parameterization of GPU power ("the silicon") that is deliberately
//! different from the GPGPU-Pow model in `gpusimpow-power`. The
//! emulator consumes the same activity counters the simulator produces —
//! real silicon, after all, also burns energy per event — but with its
//! own per-event energies, its own static power, power gating and DRAM
//! behaviour. The difference between the two parameterizations is what
//! makes Fig. 6's simulation-vs-measurement error an emergent quantity
//! rather than a tautology.
//!
//! The truth constants are fixed (not tuned per kernel) and chosen so the
//! synthetic cards behave like the paper's: GT240 static ≈ 17.6 W, 15 W
//! gated idle, 19.5 W in the ungated pre/post-kernel state; GTX580 ≈
//! 80 W static, 90 W between kernels.

use gpusimpow_sim::{ActivityStats, GpuConfig};
use gpusimpow_tech::units::{Power, Time};

/// Per-event energies and fixed powers of the synthetic silicon.
///
/// Derived from the architecture description so that *any* configuration
/// gets a ground truth, with the two paper cards landing on the paper's
/// measured values.
#[derive(Debug, Clone)]
pub struct SiliconTruth {
    /// Integer lane-op energy (J). The §III-D microbenchmark measures
    /// ≈ 40 pJ on the real card; the silicon's true value sits nearby.
    pub int_op_j: f64,
    /// FP lane-op energy (J); ≈ 75 pJ measured.
    pub fp_op_j: f64,
    /// SFU lane-op energy (J). Real transcendental hardware is hungrier
    /// than the model's estimate — this is what makes the simulator
    /// *underestimate* SFU-heavy kernels like blackscholes (Fig. 6).
    pub sfu_op_j: f64,
    /// Front-end energy per issued warp instruction (J).
    pub frontend_per_instr_j: f64,
    /// Register-file energy per bank access (J).
    pub rf_access_j: f64,
    /// LDST energy per shared-memory bank access (J).
    pub smem_access_j: f64,
    /// Energy per coalesced memory request through the LDST unit (J).
    pub mem_request_j: f64,
    /// NoC energy per flit (J).
    pub noc_flit_j: f64,
    /// Controller+pin energy per byte to DRAM (J).
    pub mc_byte_j: f64,
    /// L2 energy per access (J).
    pub l2_access_j: f64,
    /// Global scheduler power when the chip is executing (W) — the
    /// 3.34 W step of Fig. 4.
    pub global_scheduler_w: f64,
    /// Power step when a cluster activates (W) — 0.692 W in Fig. 4,
    /// including its first core's base share.
    pub cluster_step_w: f64,
    /// Additional power per busy core beyond the first of its cluster (W).
    pub core_step_w: f64,
    /// Chip static power when not gated (W).
    pub chip_static_w: f64,
    /// Card power in the gated long-idle state (W).
    pub idle_gated_w: f64,
    /// Card power in the ungated state around kernel launches (W).
    pub pre_kernel_w: f64,
    /// DRAM background power (W).
    pub dram_background_w: f64,
    /// DRAM energy per 32-byte burst, read or write (J).
    pub dram_burst_j: f64,
    /// DRAM termination power at full bus utilization (W).
    pub dram_termination_w: f64,
}

impl SiliconTruth {
    /// Derives the silicon truth for a configuration.
    pub fn for_config(cfg: &GpuConfig) -> Self {
        let lanes = cfg.simd_width as f64;
        let channels = cfg.mem_channels as f64;
        // Static power: per-core share grows nearly linearly with lane
        // count, calibrated so the 0 Hz extrapolation recovers the
        // paper's measured estimates: GT240 17.6 W, GTX580 ~80 W (both
        // *including* the DRAM background, which does not scale with the
        // GPU clock and therefore survives the extrapolation).
        let core_static = 1.071 * (lanes / 8.0).powf(0.99);
        let uncore_static = 1.26 * channels / 2.0 + 0.78;
        let chip_static = core_static * cfg.total_cores() as f64 + uncore_static;
        let warps = cfg.max_warps_per_core() as f64;
        SiliconTruth {
            int_op_j: 29.5e-12,
            fp_op_j: 55.0e-12,
            sfu_op_j: 1150.0e-12,
            // The front end grows with the in-flight warp count (bigger
            // status tables, wider schedulers).
            frontend_per_instr_j: 275.0e-12 * (warps / 24.0).powf(0.7),
            // A warp-register access moves 1024 bits through a bank and
            // the operand crossbar regardless of core width.
            rf_access_j: 210.0e-12,
            smem_access_j: 13.0e-12 * (cfg.smem_banks as f64 / 16.0).sqrt(),
            mem_request_j: 225.0e-12,
            noc_flit_j: 300.0e-12,
            mc_byte_j: 95.0e-12,
            l2_access_j: 120.0e-12,
            global_scheduler_w: 3.34,
            cluster_step_w: 0.692,
            core_step_w: 0.199,
            chip_static_w: chip_static,
            // Gated long-idle: "around 15 W" on the GT240 card.
            idle_gated_w: chip_static * 0.898,
            // Ungated pre/post-kernel: "19.5 W", of which ~90 % is static.
            pre_kernel_w: chip_static * 1.128,
            dram_background_w: 1.35 * channels,
            dram_burst_j: 1.9e-9,
            dram_termination_w: 0.95 * channels,
        }
    }
}

/// The emulated graphics card.
#[derive(Debug, Clone)]
pub struct ReferenceGpu {
    cfg: GpuConfig,
    truth: SiliconTruth,
}

impl ReferenceGpu {
    /// Builds the emulator for a card configuration.
    pub fn new(cfg: GpuConfig) -> Self {
        let truth = SiliconTruth::for_config(&cfg);
        ReferenceGpu { cfg, truth }
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The silicon parameters (exposed for tests and documentation).
    pub fn truth(&self) -> &SiliconTruth {
        &self.truth
    }

    /// Card power in the long-idle (gated) state (GT240: ≈ 15 W).
    pub fn idle_power(&self) -> Power {
        Power::new(self.truth.idle_gated_w + self.truth.dram_background_w * 0.6)
    }

    /// Card power in the ungated state shortly before/after kernels
    /// (GT240: the 19.5 W state — about 90 % of it is static).
    pub fn pre_kernel_power(&self) -> Power {
        Power::new(self.truth.pre_kernel_w + self.truth.dram_background_w)
    }

    /// The true static card power — what the 0 Hz clock extrapolation
    /// recovers (GT240 ≈ 17.6 W, GTX580 ≈ 80 W). Includes the DRAM
    /// background, which is independent of the GPU clock.
    pub fn true_static_power(&self) -> Power {
        Power::new(self.truth.chip_static_w + self.truth.dram_background_w)
    }

    /// True total card power while executing a kernel with the given
    /// activity, at `clock_scale` of nominal shader clock (dynamic power
    /// scales with clock, static does not).
    ///
    /// # Panics
    ///
    /// Panics unless `clock_scale` is in `(0, 1.5]` and the stats carry a
    /// non-zero cycle count.
    pub fn kernel_power(&self, stats: &ActivityStats, clock_scale: f64) -> Power {
        assert!(
            clock_scale > 0.0 && clock_scale <= 1.5,
            "clock scale out of range"
        );
        assert!(stats.shader_cycles > 0, "kernel must have executed");
        let t = &self.truth;
        let nominal_time = stats.shader_cycles as f64 / (self.cfg.shader_mhz() * 1e6);

        // Event energies -> average dynamic power at nominal clock.
        let bursts = (stats.dram_read_bursts + stats.dram_write_bursts) as f64;
        let energy = stats.int_lane_ops as f64 * t.int_op_j
            + stats.fp_lane_ops as f64 * t.fp_op_j
            + stats.sfu_lane_ops as f64 * t.sfu_op_j
            + stats.warp_instructions as f64 * t.frontend_per_instr_j
            + (stats.rf_bank_reads + stats.rf_bank_writes) as f64 * t.rf_access_j
            + stats.smem_accesses as f64 * t.smem_access_j
            + stats.coalescer_outputs as f64 * t.mem_request_j
            + stats.noc_flits as f64 * t.noc_flit_j
            + bursts * 32.0 * t.mc_byte_j
            + stats.l2_accesses as f64 * t.l2_access_j
            + bursts * t.dram_burst_j;
        let switching = energy / nominal_time;

        // Occupancy-dependent base power (the Fig. 4 staircase).
        let cycles = stats.shader_cycles as f64;
        let avg_cores = stats.core_busy_cycles as f64 / cycles;
        let avg_clusters = stats.cluster_busy_cycles as f64 / cycles;
        let base = t.global_scheduler_w * avg_clusters.min(1.0)
            + t.cluster_step_w * avg_clusters
            + t.core_step_w * (avg_cores - avg_clusters).max(0.0);

        // DRAM time-dependent terms.
        let bus_busy = if stats.dram_cycles == 0 {
            0.0
        } else {
            (stats.dram_data_bus_busy_cycles as f64
                / (stats.dram_cycles as f64 * self.cfg.mem_channels as f64))
                .min(1.0)
        };
        let dram = t.dram_background_w + t.dram_termination_w * bus_busy;

        Power::new(t.chip_static_w + dram + (switching + base) * clock_scale)
    }

    /// True kernel duration at `clock_scale` of nominal clock.
    pub fn kernel_time(&self, stats: &ActivityStats, clock_scale: f64) -> Time {
        Time::new(stats.shader_cycles as f64 / (self.cfg.shader_mhz() * 1e6 * clock_scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_stats() -> ActivityStats {
        let mut s = ActivityStats::new();
        s.shader_cycles = 1_000_000;
        s.core_busy_cycles = 11_000_000;
        s.cluster_busy_cycles = 3_900_000;
        s.fp_lane_ops = 40_000_000;
        s.int_lane_ops = 12_000_000;
        s.warp_instructions = 2_000_000;
        s.rf_bank_reads = 4_000_000;
        s.rf_bank_writes = 1_800_000;
        s
    }

    #[test]
    fn gt240_truth_matches_paper_measurements() {
        let hw = ReferenceGpu::new(GpuConfig::gt240());
        assert!(
            (hw.true_static_power().watts() - 17.6).abs() < 0.3,
            "static {}",
            hw.true_static_power().watts()
        );
        // "If no kernel was executed the card is using around 15 W".
        let idle = hw.idle_power().watts();
        assert!((14.2..15.8).contains(&idle), "idle {idle}");
        // "for some milliseconds before and after the execution of a
        // kernel the card consumes 19.5 W".
        let pre = hw.pre_kernel_power().watts();
        assert!((18.8..20.2).contains(&pre), "pre-kernel {pre}");
        // "About 90% of the power consumed by the card in this state
        // thus seems to be static power."
        let ratio = hw.true_static_power().watts() / pre;
        assert!((0.85..0.95).contains(&ratio), "static/pre ratio {ratio}");
    }

    #[test]
    fn gtx580_truth_matches_paper_measurements() {
        let hw = ReferenceGpu::new(GpuConfig::gtx580());
        let s = hw.true_static_power().watts();
        assert!((s - 80.0).abs() < 4.0, "static {s}");
    }

    #[test]
    fn kernel_power_exceeds_static() {
        let hw = ReferenceGpu::new(GpuConfig::gt240());
        let p = hw.kernel_power(&busy_stats(), 1.0);
        assert!(p > hw.true_static_power());
        // A busy compute kernel should land in the paper's GT240 range.
        assert!(
            (25.0..70.0).contains(&p.watts()),
            "kernel power {} W",
            p.watts()
        );
    }

    #[test]
    fn dynamic_power_scales_linearly_with_clock() {
        let hw = ReferenceGpu::new(GpuConfig::gt240());
        let s = busy_stats();
        let p100 = hw.kernel_power(&s, 1.0).watts();
        let p80 = hw.kernel_power(&s, 0.8).watts();
        // Linear extrapolation to 0 Hz must recover the static floor
        // (the §IV-B methodology). The termination share of DRAM power
        // does not scale with the GPU clock either, so allow it as slack.
        let extrapolated = p80 - (p100 - p80) / 0.2 * 0.8;
        let floor = hw.true_static_power().watts();
        assert!(
            extrapolated >= floor - 0.2 && extrapolated < floor + 1.5,
            "extrapolated {extrapolated} vs floor {floor}"
        );
    }

    #[test]
    fn clock_scaling_stretches_time() {
        let hw = ReferenceGpu::new(GpuConfig::gt240());
        let s = busy_stats();
        let t1 = hw.kernel_time(&s, 1.0);
        let t08 = hw.kernel_time(&s, 0.8);
        assert!((t08.seconds() / t1.seconds() - 1.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "clock scale")]
    fn zero_clock_rejected() {
        let hw = ReferenceGpu::new(GpuConfig::gt240());
        let _ = hw.kernel_power(&busy_stats(), 0.0);
    }
}

//! Deterministic parallel execution: a persistent worker pool for the
//! intra-launch compute phase ([`CorePool`]) and a scoped fan-out pool
//! for independent simulations ([`SimPool`]).
//!
//! Both pools are *deterministic by construction*: they never let thread
//! scheduling influence simulated state.
//!
//! * [`CorePool`] parallelises the per-cycle compute phase over disjoint
//!   core slices. Cores only read the shared [`GpuMemory`] snapshot
//!   during that phase (stores are buffered per core; see
//!   [`Core::commit_stores`]), so any interleaving produces the same
//!   per-core state and the serial commit phase applies side effects in
//!   fixed core-id order. The batched steady-state fast path in
//!   `Gpu::launch_impl` leans on the same split from the other side: a
//!   cycle whose cores buffered nothing (`Core::has_pending_effects` is
//!   `false` everywhere) has a provably empty commit phase, so the
//!   batch runs compute phases back to back — serially, gated per core
//!   on `Core::next_wake` — and skips those commits wholesale. Results
//!   are bit-identical either way, for any thread count.
//! * [`SimPool`] runs independent jobs (each owning its own `Gpu`) and
//!   returns results positionally, so output order never depends on
//!   which thread finished first.

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;
use std::thread::JoinHandle;

use crate::config::GpuConfig;
use crate::core::{Core, DecodedInstr, LaunchCtx, PredecodedKernel};
use crate::gpu::{Gpu, LaunchReport, SimError};
use crate::mem::GpuMemory;
use gpusimpow_isa::{Kernel, LaunchConfig};
use gpusimpow_trace::KernelTrace;

/// Number of hardware threads available to this process (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A small persistent worker pool that steps disjoint chunks of a
/// launch's cores in parallel, once per shader cycle.
///
/// Workers are spawned once per [`CorePool`] (not per cycle — a launch
/// runs millions of cycles) and receive one closure per cycle over a
/// private channel. The caller always blocks until every worker has
/// acknowledged completion, which is what makes the borrowed-data
/// hand-off below sound.
pub struct CorePool {
    workers: Vec<Worker>,
}

struct Worker {
    tx: Option<Sender<Job>>,
    done_rx: Receiver<Result<(), Box<dyn Any + Send>>>,
    handle: Option<JoinHandle<()>>,
}

impl fmt::Debug for CorePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CorePool")
            .field("threads", &(self.workers.len() + 1))
            .finish()
    }
}

impl CorePool {
    /// Builds a pool that steps cores on `threads` OS threads in total:
    /// the calling thread plus `threads - 1` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads < 2` (a single thread needs no pool).
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 2, "CorePool needs at least two threads");
        let workers = (1..threads)
            .map(|i| {
                let (tx, rx) = channel::<Job>();
                let (done_tx, done_rx) = channel();
                let handle = std::thread::Builder::new()
                    .name(format!("gpusim-core-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            let result = catch_unwind(AssertUnwindSafe(job));
                            if done_tx.send(result).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawn core worker");
                Worker {
                    tx: Some(tx),
                    done_rx,
                    handle: Some(handle),
                }
            })
            .collect();
        CorePool { workers }
    }

    /// Total threads participating in the compute phase (workers + the
    /// calling thread).
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Runs the compute phase of one shader cycle: every core's
    /// [`Core::tick`] against the read-only memory snapshot, partitioned
    /// into contiguous chunks. The calling thread steps the first chunk
    /// itself. Returns `true` when any core did observable work (the
    /// stall-aware fast-forward probe).
    ///
    /// A chunk whose cores are all idle is never shipped to a worker:
    /// ticking an idle core is a proven no-op, so the chunk is elided and
    /// each core's stale `progressed` flag is cleared with
    /// [`Core::mark_idle_tick`] instead. The elision keeps the return
    /// value identical to a full tick of every core — and therefore
    /// identical across thread counts, which the determinism suite
    /// checks.
    ///
    /// Worker panics are re-raised on the calling thread after all
    /// outstanding chunks have been acknowledged.
    pub fn tick_cores(
        &mut self,
        cores: &mut [Core],
        cycle: u64,
        cfg: &GpuConfig,
        ctx: &LaunchCtx<'_>,
        mem: &GpuMemory,
    ) -> bool {
        let chunks = self.workers.len() + 1;
        let per = cores.len().div_ceil(chunks).max(1);
        let (first, rest) = cores.split_at_mut(per.min(cores.len()));
        let mut sent = 0;
        for chunk in rest.chunks_mut(per) {
            if chunk.iter().all(|c| !c.is_busy()) {
                for core in chunk.iter_mut() {
                    core.mark_idle_tick();
                }
                continue;
            }
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                for core in chunk {
                    core.tick(cycle, cfg, ctx, mem);
                }
            });
            // SAFETY: the job borrows `cores`, `cfg`, `ctx` and `mem`
            // from this call's frame. We erase those lifetimes to ship
            // the closure to a persistent worker, and re-establish
            // soundness by blocking on the worker's completion ack below
            // before returning — the borrows strictly outlive the job.
            // Every exit path drains one ack per sent job, including
            // panics: worker panics are caught and acked by the worker
            // loop, and a panic in the caller's own chunk is caught
            // below so the drain still runs before it resumes. The
            // protocol is model-checked exhaustively in
            // tests/parallel_model.rs.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
            self.workers[sent]
                .tx
                .as_ref()
                .expect("pool not dropped")
                .send(job)
                .expect("core worker alive");
            sent += 1;
        }
        // Catch a panic in the caller's own chunk: unwinding past the
        // ack drain below would free `cores` (declared before the pool
        // in `Gpu`, so dropped first) while workers still hold the
        // lifetime-erased borrows. Draining first makes every exit path
        // — normal, worker panic, caller panic — leave no job in
        // flight.
        let own = catch_unwind(AssertUnwindSafe(|| {
            for core in first {
                core.tick(cycle, cfg, ctx, mem);
            }
        }));
        let mut panic: Option<Box<dyn Any + Send>> = None;
        for worker in &self.workers[..sent] {
            match worker.done_rx.recv().expect("core worker alive") {
                Ok(()) => {}
                Err(payload) => panic = Some(payload),
            }
        }
        if let Err(payload) = own {
            resume_unwind(payload);
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        cores.iter().any(Core::progressed)
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        // Closing the channel ends the worker's recv loop; then join.
        self.tx.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Fans independent simulation jobs out over a fixed number of threads.
///
/// Jobs are claimed from a shared cursor, but results are written back
/// by *input index*, so `run` always returns outputs in input order —
/// thread scheduling can change wall-clock time, never results.
#[derive(Debug, Clone, Copy)]
pub struct SimPool {
    threads: usize,
}

impl SimPool {
    /// Builds a pool with `threads` threads; `0` means "use the
    /// machine's available parallelism".
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            available_threads()
        } else {
            threads
        };
        SimPool { threads }
    }

    /// The number of threads jobs fan out over.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` over every input, in parallel when the pool has more
    /// than one thread, and returns the outputs in input order.
    ///
    /// A panicking job propagates to the caller once the scope unwinds.
    pub fn run<I, T, F>(&self, inputs: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let n = inputs.len();
        if self.threads <= 1 || n <= 1 {
            return inputs.into_iter().map(f).collect();
        }
        let jobs: Vec<Mutex<Option<I>>> = inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads.min(n))
                .map(|_| {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let input = jobs[i]
                            .lock()
                            .expect("no prior panic")
                            .take()
                            .expect("each job claimed once");
                        let output = f(input);
                        *slots[i].lock().expect("no prior panic") = Some(output);
                    })
                })
                .collect();
            // Join by hand so a job's panic payload reaches the caller
            // verbatim instead of scope's generic "a scoped thread
            // panicked" message.
            for handle in handles {
                if let Err(payload) = handle.join() {
                    resume_unwind(payload);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("no prior panic")
                    .expect("every job completed")
            })
            .collect()
    }

    /// Runs one kernel under N GPU configurations in a single pass.
    ///
    /// The kernel is pre-decoded **once** ([`PredecodedKernel::new`]) and
    /// specialized once per *distinct* register-file bank count — the
    /// only configuration-dependent decode field — so a sweep over M
    /// configs that share a bank count (both stock presets use 16) pays
    /// for one decode and one specialization total, instead of M full
    /// decodes. Per-config back-end state stays fully private: each job
    /// builds its own [`Gpu`], runs the caller's `stage` closure (host
    /// program: allocations, copies, launch parameters), then launches
    /// through [`Gpu::launch_decoded`] against the shared table. Jobs
    /// fan out over the pool's threads and results return in config
    /// order.
    ///
    /// `stage` prepares one GPU and returns the launch geometry; it is
    /// called once per config with that config's index in `configs`
    /// (ladders that vary launch geometry key off the index) and may
    /// inspect the GPU's configuration to scale inputs.
    ///
    /// # Errors
    ///
    /// Each config's slot carries its own [`SimError`]; one config
    /// failing does not disturb the others.
    pub fn run_sweep<S>(
        &self,
        kernel: &Kernel,
        configs: &[GpuConfig],
        stage: S,
    ) -> Vec<Result<LaunchReport, SimError>>
    where
        S: Fn(usize, &mut Gpu) -> Result<LaunchConfig, SimError> + Sync,
    {
        // Shared front end: decode once, specialize per distinct bank
        // count.
        let predecoded = PredecodedKernel::new(kernel);
        let mut tables: Vec<(usize, Vec<DecodedInstr>)> = Vec::new();
        for cfg in configs {
            if !tables.iter().any(|(banks, _)| *banks == cfg.regfile_banks) {
                tables.push((cfg.regfile_banks, predecoded.specialize(cfg)));
            }
        }
        let tables = &tables;
        let stage = &stage;
        let jobs: Vec<(usize, GpuConfig)> = configs.iter().cloned().enumerate().collect();
        self.run(jobs, move |(idx, cfg)| {
            let banks = cfg.regfile_banks;
            let table = &tables
                .iter()
                .find(|(b, _)| *b == banks)
                .expect("every config's bank count was specialized")
                .1;
            let mut gpu = Gpu::new(cfg)?;
            let launch = stage(idx, &mut gpu)?;
            gpu.launch_decoded(kernel, launch, table)
        })
    }

    /// Replays one captured trace under N GPU configurations in a
    /// single pass — the trace-frontend counterpart of
    /// [`SimPool::run_sweep`]. The kernel image is reconstructed and
    /// pre-decoded **once** from the trace and shared across all
    /// configs (specialized per distinct register-file bank count);
    /// each job then builds its own [`Gpu`], runs the caller's `stage`
    /// closure (thread counts, watchdogs — replay needs no host
    /// allocations or copies, so `stage` returns no launch geometry),
    /// and replays through [`Gpu::launch_replay_decoded`].
    ///
    /// Because the recorded streams are configuration-independent for a
    /// fixed warp size, each config's report is bit-identical to an
    /// independent live run of the original kernel under that config
    /// (pinned by `tests/trace_replay.rs`).
    ///
    /// # Errors
    ///
    /// A trace rejected up front fails every slot with
    /// [`SimError::Replay`]; per-config failures stay in their own
    /// slot, as in [`SimPool::run_sweep`].
    pub fn run_sweep_replay<S>(
        &self,
        trace: &KernelTrace,
        configs: &[GpuConfig],
        stage: S,
    ) -> Vec<Result<LaunchReport, SimError>>
    where
        S: Fn(usize, &mut Gpu) -> Result<(), SimError> + Sync,
    {
        let kernel = match trace.to_kernel() {
            Ok(kernel) => kernel,
            Err(e) => {
                let err = SimError::Replay(format!("trace rejected: {e}"));
                return configs.iter().map(|_| Err(err.clone())).collect();
            }
        };
        let predecoded = PredecodedKernel::new(&kernel);
        let mut tables: Vec<(usize, Vec<DecodedInstr>)> = Vec::new();
        for cfg in configs {
            if !tables.iter().any(|(banks, _)| *banks == cfg.regfile_banks) {
                tables.push((cfg.regfile_banks, predecoded.specialize(cfg)));
            }
        }
        let tables = &tables;
        let stage = &stage;
        let jobs: Vec<(usize, GpuConfig)> = configs.iter().cloned().enumerate().collect();
        self.run(jobs, move |(idx, cfg)| {
            let banks = cfg.regfile_banks;
            let table = &tables
                .iter()
                .find(|(b, _)| *b == banks)
                .expect("every config's bank count was specialized")
                .1;
            let mut gpu = Gpu::new(cfg)?;
            stage(idx, &mut gpu)?;
            gpu.launch_replay_decoded(trace, table)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_pool_preserves_input_order() {
        let pool = SimPool::new(4);
        let out = pool.run((0..64).collect(), |i: i32| i * 2);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sim_pool_single_thread_is_plain_map() {
        let pool = SimPool::new(1);
        assert_eq!(pool.threads(), 1);
        let out = pool.run(vec!["a", "bb", "ccc"], |s| s.len());
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn sim_pool_zero_means_available_parallelism() {
        let pool = SimPool::new(0);
        assert!(pool.threads() >= 1);
    }

    #[test]
    fn sim_pool_handles_more_threads_than_jobs() {
        let pool = SimPool::new(16);
        let out = pool.run(vec![1u64, 2], |x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn sim_pool_propagates_job_panics() {
        let pool = SimPool::new(2);
        let _ = pool.run(vec![0, 1, 2, 3], |i| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }
}

//! Canonical power-estimation jobs: the unit of work the service
//! accepts, hashes, caches and simulates.
//!
//! A [`JobSpec`] is the tuple the paper's design-space-exploration use
//! case keeps asking about — *which kernel, at which grid size, on
//! which GPU, under which power-management policy, sampled how often* —
//! reduced to a versioned canonical byte encoding
//! ([`JobSpec::canonical_bytes`]). Two textually different requests
//! that mean the same job produce the same bytes, the same
//! [`JobDigest`], and therefore the same cache slot. Because PRs 2–5
//! made simulation bit-deterministic, the digest really is a content
//! address: re-simulating a digest always reproduces the cached bytes.
//!
//! [`run_job`] is the pure job → result function the server fans out
//! over its `SimPool`; it builds a fresh `Gpu` per job, so jobs are
//! independent and embarrassingly parallel.

use gpusimpow::Simulator;
use gpusimpow_isa::LaunchConfig;
use gpusimpow_kernels::{micro, small_benchmarks};
use gpusimpow_pm::{Baseline, ClusterOndemand, Governor, Ondemand, PowerCap, PowerTracer};
use gpusimpow_power::{GpuChip, ScopedPowerReport};
use gpusimpow_sim::{Gpu, GpuConfig, LaunchReport, RecordedLaunch, WindowRecorder};
use gpusimpow_tech::units::Power;
use gpusimpow_trace::{KernelTrace, TraceDigest};

use crate::digest::JobDigest;
use crate::wire::{Reader, WireError, Writer};

/// Version of the canonical job encoding. Bumping this changes every
/// job digest, deliberately orphaning all previously cached results
/// (see `crates/serve/src/digest.rs` for why that is the safe failure
/// mode).
pub const JOB_ENCODING_VERSION: u16 = 1;

/// Magic prefix of a canonical job encoding.
pub const JOB_MAGIC: [u8; 4] = *b"GSPJ";

/// Upper bound on threads per block a job may request (matches the
/// largest block size the Table I workloads use).
const MAX_THREADS_PER_BLOCK: u32 = 1024;

/// Upper bound on blocks per job — service-side sanity cap, far above
/// any workload in the suite but low enough that a garbage request
/// cannot wedge a worker for hours.
const MAX_BLOCKS: u32 = 65_536;

/// Upper bound on loop-iteration parameters of the micro kernels.
const MAX_ITERATIONS: u32 = 1 << 20;

/// Upper bound on an embedded trace payload. Well under the wire
/// frame limit (`crate::wire::MAX_LEN`), and far above any trace the
/// small suite captures, but low enough that a garbage submission
/// cannot pin a worker decoding gigabytes.
pub const MAX_TRACE_BYTES: usize = 16 << 20;

/// A job failure: the spec was invalid, or the simulation itself
/// failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job description is out of the service's accepted domain.
    Invalid(String),
    /// The simulator rejected or failed the run.
    Sim(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Invalid(m) => write!(f, "invalid job: {m}"),
            JobError::Sim(m) => write!(f, "simulation failed: {m}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Which GPU preset a job runs on (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GpuPreset {
    /// GeForce GT240.
    Gt240,
    /// GeForce GTX580.
    Gtx580,
}

impl GpuPreset {
    /// The simulator configuration for this preset.
    pub fn config(self) -> GpuConfig {
        match self {
            GpuPreset::Gt240 => GpuConfig::gt240(),
            GpuPreset::Gtx580 => GpuConfig::gtx580(),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            GpuPreset::Gt240 => "GT240",
            GpuPreset::Gtx580 => "GTX580",
        }
    }

    fn tag(self) -> u8 {
        match self {
            GpuPreset::Gt240 => 0,
            GpuPreset::Gtx580 => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(GpuPreset::Gt240),
            1 => Ok(GpuPreset::Gtx580),
            t => Err(WireError::Malformed(format!("unknown GPU preset tag {t}"))),
        }
    }
}

/// Which DVFS governor prices the job's power trace. Only meaningful
/// when the job samples windows (`window_cycles > 0`); the
/// whole-launch [`ScopedPowerReport`] is governor-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GovernorSpec {
    /// No power management: every window at nominal.
    Baseline,
    /// Utilization-driven `ondemand` (default thresholds).
    Ondemand,
    /// Busiest-cluster `ondemand` (default thresholds).
    ClusterOndemand,
    /// Per-window power cap, in integer milliwatts so the canonical
    /// encoding never touches floating point.
    PowerCap {
        /// Chip power budget in milliwatts.
        cap_mw: u64,
    },
}

impl GovernorSpec {
    /// Instantiates the governor.
    pub fn build(self) -> Box<dyn Governor> {
        match self {
            GovernorSpec::Baseline => Box::new(Baseline),
            GovernorSpec::Ondemand => Box::new(Ondemand::default()),
            GovernorSpec::ClusterOndemand => Box::new(ClusterOndemand::default()),
            GovernorSpec::PowerCap { cap_mw } => {
                Box::new(PowerCap::new(Power::from_milliwatts(cap_mw as f64)))
            }
        }
    }

    fn encode(self, w: &mut Writer) {
        match self {
            GovernorSpec::Baseline => w.put_u8(0),
            GovernorSpec::Ondemand => w.put_u8(1),
            GovernorSpec::ClusterOndemand => w.put_u8(2),
            GovernorSpec::PowerCap { cap_mw } => {
                w.put_u8(3);
                w.put_u64(cap_mw);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("governor tag")? {
            0 => Ok(GovernorSpec::Baseline),
            1 => Ok(GovernorSpec::Ondemand),
            2 => Ok(GovernorSpec::ClusterOndemand),
            3 => Ok(GovernorSpec::PowerCap {
                cap_mw: r.u64("powercap milliwatts")?,
            }),
            t => Err(WireError::Malformed(format!("unknown governor tag {t}"))),
        }
    }
}

/// Which kernel a job simulates, with its parameters and grid
/// dimensions. The micro variants address the parameterised probe
/// kernels directly; [`KernelSpec::Suite`] addresses one of the twelve
/// Table I benchmarks (whose grids are part of the workload
/// definition).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum KernelSpec {
    /// The Fig. 4 cluster-activation probe.
    ClusterStep {
        /// Loop iterations of fixed mixed INT/FP work.
        iterations: u32,
        /// Thread blocks.
        blocks: u32,
        /// Threads per block.
        threads: u32,
    },
    /// The §III-D integer (LFSR) microbenchmark.
    Lfsr {
        /// Enabled lanes per warp (1..=32).
        lanes: u32,
        /// Unrolled-loop iterations.
        iterations: u32,
        /// Thread blocks.
        blocks: u32,
        /// Threads per block.
        threads: u32,
    },
    /// The §III-D floating-point (Mandelbrot) microbenchmark.
    Mandelbrot {
        /// Enabled lanes per warp (1..=32).
        lanes: u32,
        /// Unrolled-loop iterations.
        iterations: u32,
        /// Thread blocks.
        blocks: u32,
        /// Threads per block.
        threads: u32,
    },
    /// The branch-divergence ablation probe.
    Divergence {
        /// Divergence nesting depth (1..=5).
        depth: u32,
        /// Thread blocks.
        blocks: u32,
        /// Threads per block.
        threads: u32,
    },
    /// The shared-memory bank-conflict ablation probe.
    Conflict {
        /// Access stride in words (1..=64).
        stride: u32,
        /// Loop iterations.
        iterations: u32,
        /// Thread blocks.
        blocks: u32,
        /// Threads per block.
        threads: u32,
    },
    /// One of the Table I benchmarks by suite index (0..12, the order
    /// of [`gpusimpow_kernels::small_benchmarks`]), at its small
    /// (CI-sized) or default workload size.
    Suite {
        /// Index into the suite.
        index: u8,
        /// `true` for the reduced workload sizes.
        small: bool,
    },
    /// A client-captured instruction trace, replayed through the
    /// timing pipeline ([`Gpu::launch_replay`]). The job embeds the
    /// encoded v1 trace verbatim, so the canonical bytes — and hence
    /// the digest — are a content address of the trace itself: the
    /// same capture resubmitted from anywhere hits the same cache
    /// slot, and sweeps replay one capture across presets.
    Trace {
        /// The `gpusimpow-trace` v1 encoding ([`KernelTrace::encode`]).
        bytes: Vec<u8>,
    },
}

impl KernelSpec {
    /// Human-readable label (logs, load-generator output).
    pub fn label(&self) -> String {
        match self {
            KernelSpec::ClusterStep {
                iterations,
                blocks,
                threads,
            } => format!("cluster_step(i={iterations}) {blocks}x{threads}"),
            KernelSpec::Lfsr {
                lanes,
                iterations,
                blocks,
                threads,
            } => format!("lfsr(l={lanes},i={iterations}) {blocks}x{threads}"),
            KernelSpec::Mandelbrot {
                lanes,
                iterations,
                blocks,
                threads,
            } => format!("mandelbrot(l={lanes},i={iterations}) {blocks}x{threads}"),
            KernelSpec::Divergence {
                depth,
                blocks,
                threads,
            } => format!("divergence(d={depth}) {blocks}x{threads}"),
            KernelSpec::Conflict {
                stride,
                iterations,
                blocks,
                threads,
            } => format!("conflict(s={stride},i={iterations}) {blocks}x{threads}"),
            KernelSpec::Suite { index, small } => format!(
                "suite[{index}]{}",
                if *small { " (small)" } else { " (default)" }
            ),
            KernelSpec::Trace { bytes } => format!(
                "trace({}, {} bytes)",
                &TraceDigest::compute(bytes).to_hex()[..8],
                bytes.len()
            ),
        }
    }

    fn encode(&self, w: &mut Writer) {
        match *self {
            KernelSpec::ClusterStep {
                iterations,
                blocks,
                threads,
            } => {
                w.put_u8(0);
                w.put_u32(iterations);
                w.put_u32(blocks);
                w.put_u32(threads);
            }
            KernelSpec::Lfsr {
                lanes,
                iterations,
                blocks,
                threads,
            } => {
                w.put_u8(1);
                w.put_u32(lanes);
                w.put_u32(iterations);
                w.put_u32(blocks);
                w.put_u32(threads);
            }
            KernelSpec::Mandelbrot {
                lanes,
                iterations,
                blocks,
                threads,
            } => {
                w.put_u8(2);
                w.put_u32(lanes);
                w.put_u32(iterations);
                w.put_u32(blocks);
                w.put_u32(threads);
            }
            KernelSpec::Divergence {
                depth,
                blocks,
                threads,
            } => {
                w.put_u8(3);
                w.put_u32(depth);
                w.put_u32(blocks);
                w.put_u32(threads);
            }
            KernelSpec::Conflict {
                stride,
                iterations,
                blocks,
                threads,
            } => {
                w.put_u8(4);
                w.put_u32(stride);
                w.put_u32(iterations);
                w.put_u32(blocks);
                w.put_u32(threads);
            }
            KernelSpec::Suite { index, small } => {
                w.put_u8(5);
                w.put_u8(index);
                w.put_u8(u8::from(small));
            }
            KernelSpec::Trace { ref bytes } => {
                w.put_u8(6);
                w.put_bytes(bytes);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8("kernel tag")? {
            0 => KernelSpec::ClusterStep {
                iterations: r.u32("iterations")?,
                blocks: r.u32("blocks")?,
                threads: r.u32("threads")?,
            },
            1 => KernelSpec::Lfsr {
                lanes: r.u32("lanes")?,
                iterations: r.u32("iterations")?,
                blocks: r.u32("blocks")?,
                threads: r.u32("threads")?,
            },
            2 => KernelSpec::Mandelbrot {
                lanes: r.u32("lanes")?,
                iterations: r.u32("iterations")?,
                blocks: r.u32("blocks")?,
                threads: r.u32("threads")?,
            },
            3 => KernelSpec::Divergence {
                depth: r.u32("depth")?,
                blocks: r.u32("blocks")?,
                threads: r.u32("threads")?,
            },
            4 => KernelSpec::Conflict {
                stride: r.u32("stride")?,
                iterations: r.u32("iterations")?,
                blocks: r.u32("blocks")?,
                threads: r.u32("threads")?,
            },
            5 => KernelSpec::Suite {
                index: r.u8("suite index")?,
                small: match r.u8("suite size flag")? {
                    0 => false,
                    1 => true,
                    f => {
                        return Err(WireError::Malformed(format!(
                            "suite size flag must be 0/1, got {f}"
                        )))
                    }
                },
            },
            6 => KernelSpec::Trace {
                bytes: r.bytes("trace bytes")?.to_vec(),
            },
            t => Err(WireError::Malformed(format!("unknown kernel tag {t}")))?,
        })
    }

    fn validate(&self) -> Result<(), JobError> {
        let grid = |blocks: u32, threads: u32| -> Result<(), JobError> {
            if blocks == 0 || blocks > MAX_BLOCKS {
                return Err(JobError::Invalid(format!(
                    "blocks must be in 1..={MAX_BLOCKS}, got {blocks}"
                )));
            }
            if threads == 0 || threads > MAX_THREADS_PER_BLOCK {
                return Err(JobError::Invalid(format!(
                    "threads/block must be in 1..={MAX_THREADS_PER_BLOCK}, got {threads}"
                )));
            }
            Ok(())
        };
        let iters = |iterations: u32| -> Result<(), JobError> {
            if iterations == 0 || iterations > MAX_ITERATIONS {
                return Err(JobError::Invalid(format!(
                    "iterations must be in 1..={MAX_ITERATIONS}, got {iterations}"
                )));
            }
            Ok(())
        };
        match *self {
            KernelSpec::ClusterStep {
                iterations,
                blocks,
                threads,
            } => {
                iters(iterations)?;
                grid(blocks, threads)
            }
            KernelSpec::Lfsr {
                lanes,
                iterations,
                blocks,
                threads,
            }
            | KernelSpec::Mandelbrot {
                lanes,
                iterations,
                blocks,
                threads,
            } => {
                if !(1..=32).contains(&lanes) {
                    return Err(JobError::Invalid(format!(
                        "enabled lanes must be in 1..=32, got {lanes}"
                    )));
                }
                iters(iterations)?;
                grid(blocks, threads)
            }
            KernelSpec::Divergence {
                depth,
                blocks,
                threads,
            } => {
                if !(1..=5).contains(&depth) {
                    return Err(JobError::Invalid(format!(
                        "divergence depth must be in 1..=5, got {depth}"
                    )));
                }
                grid(blocks, threads)
            }
            KernelSpec::Conflict {
                stride,
                iterations,
                blocks,
                threads,
            } => {
                if !(1..=64).contains(&stride) {
                    return Err(JobError::Invalid(format!(
                        "conflict stride must be in 1..=64, got {stride}"
                    )));
                }
                // The kernel's shared-memory buffer is sized for one
                // warp (`32 * stride` words); more threads per block
                // would write past it.
                if threads > 32 {
                    return Err(JobError::Invalid(format!(
                        "conflict kernel allows at most 32 threads/block, got {threads}"
                    )));
                }
                iters(iterations)?;
                grid(blocks, threads)
            }
            KernelSpec::Suite { index, .. } => {
                let n = small_benchmarks().len() as u8;
                if index >= n {
                    return Err(JobError::Invalid(format!(
                        "suite index must be < {n}, got {index}"
                    )));
                }
                Ok(())
            }
            KernelSpec::Trace { ref bytes } => {
                if bytes.len() > MAX_TRACE_BYTES {
                    return Err(JobError::Invalid(format!(
                        "trace is {} bytes, cap is {MAX_TRACE_BYTES}",
                        bytes.len()
                    )));
                }
                // Full decode: magic/version, structural bounds, the
                // integrity digest and the geometry checks all run
                // here, so a worker never sees a malformed trace.
                KernelTrace::decode(bytes)
                    .map(|_| ())
                    .map_err(|e| JobError::Invalid(format!("trace rejected: {e}")))
            }
        }
    }
}

/// One power-estimation job: the full canonical tuple.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct JobSpec {
    /// Kernel, parameters and grid dimensions.
    pub kernel: KernelSpec,
    /// GPU configuration preset.
    pub gpu: GpuPreset,
    /// DVFS policy pricing the trace (trace jobs only).
    pub governor: GovernorSpec,
    /// Activity-sampling window in shader cycles; `0` disables the
    /// power trace and returns only whole-launch reports.
    pub window_cycles: u64,
}

impl JobSpec {
    /// Checks the job is inside the service's accepted domain, so a
    /// malformed request turns into an error response instead of a
    /// panicking worker.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Invalid`] with the offending field.
    pub fn validate(&self) -> Result<(), JobError> {
        self.kernel.validate()
    }

    /// The versioned canonical byte encoding — the digest's preimage
    /// and the wire form of a submitted job.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_raw(&JOB_MAGIC);
        w.put_u16(JOB_ENCODING_VERSION);
        w.put_u8(self.gpu.tag());
        self.governor.encode(&mut w);
        w.put_u64(self.window_cycles);
        self.kernel.encode(&mut w);
        w.into_bytes()
    }

    /// Decodes a canonical encoding (and validates the job).
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on structural problems and maps
    /// [`JobError::Invalid`] domain violations to
    /// [`WireError::Malformed`].
    pub fn decode(bytes: &[u8]) -> Result<JobSpec, WireError> {
        let mut r = Reader::new(bytes);
        let magic = r.raw(4, "job magic")?;
        if magic != JOB_MAGIC {
            return Err(WireError::Malformed(format!("bad job magic {magic:02x?}")));
        }
        let version = r.u16("job encoding version")?;
        if version != JOB_ENCODING_VERSION {
            return Err(WireError::Malformed(format!(
                "job encoding version {version} (this build speaks {JOB_ENCODING_VERSION})"
            )));
        }
        let gpu = GpuPreset::from_tag(r.u8("gpu tag")?)?;
        let governor = GovernorSpec::decode(&mut r)?;
        let window_cycles = r.u64("window cycles")?;
        let kernel = KernelSpec::decode(&mut r)?;
        r.finish("job encoding")?;
        let spec = JobSpec {
            kernel,
            gpu,
            governor,
            window_cycles,
        };
        spec.validate()
            .map_err(|e| WireError::Malformed(e.to_string()))?;
        Ok(spec)
    }

    /// The job's content address: the digest of its canonical bytes.
    pub fn digest(&self) -> JobDigest {
        JobDigest::compute(&self.canonical_bytes())
    }
}

/// Upper bound on GPU presets one sweep may expand to. There are only
/// two presets today, but the wire field is a count, so the cap keeps a
/// garbage frame from fanning one request into thousands of jobs.
pub const MAX_SWEEP_GPUS: usize = 64;

/// A one-pass multi-config sweep: one (kernel, governor, window) tuple
/// evaluated across several GPU presets — the design-space-exploration
/// question "what does this kernel cost on *each* of these chips?".
///
/// A sweep is *not* a new cacheable unit. [`SweepSpec::expand`] lowers
/// it server-side into ordinary version-1 [`JobSpec`]s, one per preset
/// in submission order, and those flow through the existing digest /
/// cache / in-flight-dedup pipeline unchanged. A sweep member therefore
/// hits the cache entry an individual submission of the same job would
/// have created, and vice versa.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Kernel, parameters and grid dimensions (shared by every member).
    pub kernel: KernelSpec,
    /// DVFS policy pricing the traces (trace jobs only).
    pub governor: GovernorSpec,
    /// Activity-sampling window in shader cycles; `0` disables traces.
    pub window_cycles: u64,
    /// GPU presets to evaluate, in result order.
    pub gpus: Vec<GpuPreset>,
}

impl SweepSpec {
    /// Checks the sweep is inside the service's accepted domain.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Invalid`] for an empty or oversized preset
    /// list, or an out-of-domain kernel.
    pub fn validate(&self) -> Result<(), JobError> {
        if self.gpus.is_empty() {
            return Err(JobError::Invalid("sweep lists no GPU presets".to_string()));
        }
        if self.gpus.len() > MAX_SWEEP_GPUS {
            return Err(JobError::Invalid(format!(
                "sweep lists {} GPU presets, cap is {MAX_SWEEP_GPUS}",
                self.gpus.len()
            )));
        }
        self.kernel.validate()
    }

    /// Lowers the sweep into one ordinary [`JobSpec`] per preset, in
    /// the sweep's preset order. Each job's digest is exactly what an
    /// individual submission of that job would produce.
    pub fn expand(&self) -> Vec<JobSpec> {
        self.gpus
            .iter()
            .map(|&gpu| JobSpec {
                kernel: self.kernel.clone(),
                gpu,
                governor: self.governor,
                window_cycles: self.window_cycles,
            })
            .collect()
    }

    /// Encodes the sweep body (protocol use; sweeps are never digested
    /// or cached themselves, so this is not a canonical encoding).
    pub(crate) fn encode(&self, w: &mut Writer) {
        self.governor.encode(w);
        w.put_u64(self.window_cycles);
        self.kernel.encode(w);
        w.put_u32(self.gpus.len() as u32);
        for gpu in &self.gpus {
            w.put_u8(gpu.tag());
        }
    }

    /// Decodes and validates a sweep body.
    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<SweepSpec, WireError> {
        let governor = GovernorSpec::decode(r)?;
        let window_cycles = r.u64("sweep window cycles")?;
        let kernel = KernelSpec::decode(r)?;
        let count = r.u32("sweep gpu count")? as usize;
        let mut gpus = Vec::with_capacity(count.min(MAX_SWEEP_GPUS));
        for _ in 0..count {
            gpus.push(GpuPreset::from_tag(r.u8("sweep gpu tag")?)?);
        }
        let sweep = SweepSpec {
            kernel,
            governor,
            window_cycles,
            gpus,
        };
        sweep
            .validate()
            .map_err(|e| WireError::Malformed(e.to_string()))?;
        Ok(sweep)
    }
}

/// One window of a job's power trace, flattened to wire-friendly
/// scalars (exact `f64` bit patterns on the wire).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSample {
    /// Zero-based window index.
    pub index: u64,
    /// Window start relative to launch start (seconds).
    pub start_s: f64,
    /// Window duration at its operating point (seconds).
    pub duration_s: f64,
    /// Chosen operating-point index in the tracer's DVFS table.
    pub op_index: u32,
    /// Core-busy fraction of the window.
    pub utilization: f64,
    /// Chip dynamic power over the window (watts).
    pub dynamic_w: f64,
    /// Chip static power over the window (watts).
    pub static_w: f64,
    /// Off-chip DRAM power over the window (watts).
    pub dram_w: f64,
}

/// A job's power trace under its requested governor.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Kernel name.
    pub kernel: String,
    /// Governor name that priced the trace.
    pub governor: String,
    /// Per-window samples, in window order.
    pub samples: Vec<TraceSample>,
}

/// Everything a completed job returns: one [`ScopedPowerReport`] per
/// kernel launch, plus (for `window_cycles > 0`) one trace per launch.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Per-launch scoped power reports, in launch order.
    pub reports: Vec<ScopedPowerReport>,
    /// Per-launch power traces (empty when the job sampled no windows).
    pub traces: Vec<TraceSummary>,
}

/// Runs one job to completion on a fresh simulator. This is the pure
/// function behind every cache miss; identical specs produce
/// bit-identical results (the workspace determinism contract), which
/// is what makes the digest a content address.
///
/// # Errors
///
/// Returns [`JobError::Invalid`] for out-of-domain specs and
/// [`JobError::Sim`] when the simulator rejects or fails the run.
pub fn run_job(spec: &JobSpec) -> Result<JobResult, JobError> {
    spec.validate()?;
    let cfg = spec.gpu.config();
    let chip = GpuChip::new(&cfg).map_err(|e| JobError::Sim(e.to_string()))?;

    let (launches, recorded) = simulate(spec, cfg)?;
    let reports = launches
        .iter()
        .map(|l| chip.evaluate_scoped(&l.kernel, &l.stats, &l.scoped))
        .collect();

    let traces = if spec.window_cycles > 0 {
        let tracer = PowerTracer::new(chip);
        let mut governor = spec.governor.build();
        recorded
            .iter()
            .map(|launch| summarize(&tracer.replay(launch, governor.as_mut())))
            .collect()
    } else {
        Vec::new()
    };

    Ok(JobResult { reports, traces })
}

/// Runs the spec's kernel(s), returning the launch reports and (when
/// windows were requested) the recorded window streams.
fn simulate(
    spec: &JobSpec,
    cfg: GpuConfig,
) -> Result<(Vec<LaunchReport>, Vec<RecordedLaunch>), JobError> {
    match &spec.kernel {
        KernelSpec::Suite { index, small } => {
            let mut suite = if *small {
                small_benchmarks()
            } else {
                gpusimpow_kernels::all_benchmarks()
            };
            let bench = suite.swap_remove(*index as usize);
            let mut sim = Simulator::new(cfg).map_err(|e| JobError::Sim(e.to_string()))?;
            if spec.window_cycles > 0 {
                sim.gpu_mut()
                    .attach_sink(spec.window_cycles, Box::new(WindowRecorder::new()));
            }
            let reports = sim
                .run_benchmark(bench.as_ref())
                .map_err(|e| JobError::Sim(e.to_string()))?;
            let recorded = take_recordings(sim.gpu_mut(), spec.window_cycles)?;
            Ok((reports.into_iter().map(|r| r.launch).collect(), recorded))
        }
        KernelSpec::Trace { bytes } => {
            // validate() already proved the bytes decode; decode again
            // here rather than thread the parsed trace through, so the
            // worker path stays a pure function of the spec.
            let trace = KernelTrace::decode(bytes)
                .map_err(|e| JobError::Invalid(format!("trace rejected: {e}")))?;
            let mut gpu = Gpu::new(cfg).map_err(|e| JobError::Sim(e.to_string()))?;
            if spec.window_cycles > 0 {
                gpu.attach_sink(spec.window_cycles, Box::new(WindowRecorder::new()));
            }
            let report = gpu
                .launch_replay(&trace)
                .map_err(|e| JobError::Sim(e.to_string()))?;
            let recorded = take_recordings(&mut gpu, spec.window_cycles)?;
            Ok((vec![report], recorded))
        }
        micro_spec => {
            let (kernel, launch) = match *micro_spec {
                KernelSpec::ClusterStep {
                    iterations,
                    blocks,
                    threads,
                } => (
                    micro::cluster_step_kernel(iterations),
                    LaunchConfig::linear(blocks, threads),
                ),
                KernelSpec::Lfsr {
                    lanes,
                    iterations,
                    blocks,
                    threads,
                } => (
                    micro::lfsr_kernel(lanes, iterations),
                    LaunchConfig::linear(blocks, threads),
                ),
                KernelSpec::Mandelbrot {
                    lanes,
                    iterations,
                    blocks,
                    threads,
                } => (
                    micro::mandelbrot_kernel(lanes, iterations),
                    LaunchConfig::linear(blocks, threads),
                ),
                KernelSpec::Divergence {
                    depth,
                    blocks,
                    threads,
                } => (
                    micro::divergence_kernel(depth),
                    LaunchConfig::linear(blocks, threads),
                ),
                KernelSpec::Conflict {
                    stride,
                    iterations,
                    blocks,
                    threads,
                } => (
                    micro::conflict_kernel(stride, iterations),
                    LaunchConfig::linear(blocks, threads),
                ),
                KernelSpec::Suite { .. } | KernelSpec::Trace { .. } => {
                    return Err(JobError::Sim(
                        "suite/trace specs are dispatched by the arms above".into(),
                    ))
                }
            };
            let mut gpu = Gpu::new(cfg).map_err(|e| JobError::Sim(e.to_string()))?;
            if spec.window_cycles > 0 {
                gpu.attach_sink(spec.window_cycles, Box::new(WindowRecorder::new()));
            }
            let report = gpu
                .launch(&kernel, launch)
                .map_err(|e| JobError::Sim(e.to_string()))?;
            let recorded = take_recordings(&mut gpu, spec.window_cycles)?;
            Ok((vec![report], recorded))
        }
    }
}

/// Detaches and downcasts the window recorder attached by
/// [`simulate`]; empty when the job sampled no windows. A missing or
/// foreign sink is an internal invariant break — it surfaces as a
/// typed job failure rather than killing the worker.
fn take_recordings(gpu: &mut Gpu, window_cycles: u64) -> Result<Vec<RecordedLaunch>, JobError> {
    if window_cycles == 0 {
        return Ok(Vec::new());
    }
    let mut sink = gpu
        .detach_sink()
        .ok_or_else(|| JobError::Sim("window recorder missing after launch".into()))?;
    let recorder = sink
        .as_any_mut()
        .ok_or_else(|| JobError::Sim("window sink does not expose Any".into()))?
        .downcast_mut::<WindowRecorder>()
        .ok_or_else(|| JobError::Sim("attached sink is not a WindowRecorder".into()))?;
    Ok(std::mem::take(recorder).into_launches())
}

/// Flattens a [`gpusimpow_pm::PowerTrace`] to wire scalars.
fn summarize(trace: &gpusimpow_pm::PowerTrace) -> TraceSummary {
    TraceSummary {
        kernel: trace.kernel.clone(),
        governor: trace.governor.clone(),
        samples: trace
            .samples
            .iter()
            .map(|s| TraceSample {
                index: s.index,
                start_s: s.start.seconds(),
                duration_s: s.duration.seconds(),
                op_index: s.op_index as u32,
                utilization: s.utilization,
                dynamic_w: s.dynamic_power().watts(),
                static_w: s.static_power.watts(),
                dram_w: s.dram_power.watts(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> JobSpec {
        JobSpec {
            kernel: KernelSpec::ClusterStep {
                iterations: 64,
                blocks: 2,
                threads: 64,
            },
            gpu: GpuPreset::Gt240,
            governor: GovernorSpec::Baseline,
            window_cycles: 0,
        }
    }

    #[test]
    fn canonical_encoding_roundtrips() {
        let specs = vec![
            sample_spec(),
            JobSpec {
                kernel: KernelSpec::Lfsr {
                    lanes: 31,
                    iterations: 16,
                    blocks: 4,
                    threads: 128,
                },
                gpu: GpuPreset::Gtx580,
                governor: GovernorSpec::PowerCap { cap_mw: 95_000 },
                window_cycles: 2_000,
            },
            JobSpec {
                kernel: KernelSpec::Suite {
                    index: 11,
                    small: true,
                },
                gpu: GpuPreset::Gt240,
                governor: GovernorSpec::ClusterOndemand,
                window_cycles: 5_000,
            },
        ];
        for spec in specs {
            let bytes = spec.canonical_bytes();
            let back = JobSpec::decode(&bytes).unwrap();
            assert_eq!(back, spec);
            assert_eq!(back.digest(), spec.digest());
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(JobSpec::decode(b"").is_err());
        assert!(JobSpec::decode(b"NOPE").is_err());
        let mut bytes = sample_spec().canonical_bytes();
        bytes[4] = 0xFF; // version
        assert!(JobSpec::decode(&bytes).is_err());
        let mut bytes = sample_spec().canonical_bytes();
        bytes.push(0); // trailing garbage
        assert!(JobSpec::decode(&bytes).is_err());
    }

    #[test]
    fn validation_rejects_out_of_domain_jobs() {
        let bad = [
            KernelSpec::ClusterStep {
                iterations: 0,
                blocks: 1,
                threads: 32,
            },
            KernelSpec::ClusterStep {
                iterations: 8,
                blocks: 0,
                threads: 32,
            },
            KernelSpec::Lfsr {
                lanes: 33,
                iterations: 8,
                blocks: 1,
                threads: 32,
            },
            KernelSpec::Divergence {
                depth: 6,
                blocks: 1,
                threads: 32,
            },
            KernelSpec::Conflict {
                stride: 65,
                iterations: 8,
                blocks: 1,
                threads: 32,
            },
            KernelSpec::Conflict {
                stride: 4,
                iterations: 8,
                blocks: 1,
                threads: 64,
            },
            KernelSpec::Suite {
                index: 12,
                small: true,
            },
        ];
        for kernel in bad {
            let spec = JobSpec {
                kernel,
                ..sample_spec()
            };
            assert!(
                matches!(spec.validate(), Err(JobError::Invalid(_))),
                "{:?} should be rejected",
                spec.kernel
            );
            // And the decoder refuses the same encoding.
            assert!(JobSpec::decode(&spec.canonical_bytes()).is_err());
        }
    }

    fn trace_spec() -> JobSpec {
        JobSpec {
            kernel: KernelSpec::Trace {
                bytes: gpusimpow_trace::synth::stride_family(2, 2, 4, 2).encode(),
            },
            gpu: GpuPreset::Gt240,
            governor: GovernorSpec::Baseline,
            window_cycles: 0,
        }
    }

    #[test]
    fn trace_job_roundtrips_and_is_content_addressed() {
        let spec = trace_spec();
        let bytes = spec.canonical_bytes();
        let back = JobSpec::decode(&bytes).unwrap();
        assert_eq!(back, spec);
        // Rebuilding the same capture yields the same digest — the
        // trace bytes, not the submission, are the cache identity.
        assert_eq!(trace_spec().digest(), spec.digest());
    }

    #[test]
    fn trace_job_validation_rejects_corruption_and_oversize() {
        let mut corrupt = trace_spec();
        if let KernelSpec::Trace { ref mut bytes } = corrupt.kernel {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
        }
        assert!(matches!(corrupt.validate(), Err(JobError::Invalid(_))));
        assert!(JobSpec::decode(&corrupt.canonical_bytes()).is_err());

        let oversized = JobSpec {
            kernel: KernelSpec::Trace {
                bytes: vec![0; MAX_TRACE_BYTES + 1],
            },
            ..trace_spec()
        };
        assert!(matches!(oversized.validate(), Err(JobError::Invalid(_))));
    }

    #[test]
    fn trace_job_runs_and_repeats_bit_identically() {
        let spec = trace_spec();
        let a = run_job(&spec).unwrap();
        let b = run_job(&spec).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.reports.len(), 1);
        assert!(a.reports[0].report.total_power().watts() > 0.0);
    }

    #[test]
    fn sweep_expands_to_per_preset_jobs_with_individual_digests() {
        let sweep = SweepSpec {
            kernel: KernelSpec::ClusterStep {
                iterations: 64,
                blocks: 2,
                threads: 64,
            },
            governor: GovernorSpec::Ondemand,
            window_cycles: 1_000,
            gpus: vec![GpuPreset::Gt240, GpuPreset::Gtx580, GpuPreset::Gt240],
        };
        let jobs = sweep.expand();
        assert_eq!(jobs.len(), 3);
        for (job, &gpu) in jobs.iter().zip(&sweep.gpus) {
            // Each member is exactly the job an individual submission
            // would have built — same canonical bytes, same digest.
            let individual = JobSpec {
                kernel: sweep.kernel.clone(),
                gpu,
                governor: sweep.governor,
                window_cycles: sweep.window_cycles,
            };
            assert_eq!(job, &individual);
            assert_eq!(job.canonical_bytes(), individual.canonical_bytes());
            assert_eq!(job.digest(), individual.digest());
        }
    }

    #[test]
    fn sweep_validation_rejects_out_of_domain_sweeps() {
        let good_kernel = KernelSpec::ClusterStep {
            iterations: 8,
            blocks: 1,
            threads: 32,
        };
        let empty = SweepSpec {
            kernel: good_kernel.clone(),
            governor: GovernorSpec::Baseline,
            window_cycles: 0,
            gpus: Vec::new(),
        };
        assert!(matches!(empty.validate(), Err(JobError::Invalid(_))));
        let oversized = SweepSpec {
            gpus: vec![GpuPreset::Gt240; MAX_SWEEP_GPUS + 1],
            ..empty.clone()
        };
        assert!(matches!(oversized.validate(), Err(JobError::Invalid(_))));
        let bad_kernel = SweepSpec {
            kernel: KernelSpec::Divergence {
                depth: 6,
                blocks: 1,
                threads: 32,
            },
            gpus: vec![GpuPreset::Gt240],
            ..empty
        };
        assert!(matches!(bad_kernel.validate(), Err(JobError::Invalid(_))));
    }

    #[test]
    fn run_job_produces_a_consistent_report() {
        let result = run_job(&sample_spec()).unwrap();
        assert_eq!(result.reports.len(), 1);
        assert!(result.traces.is_empty());
        let report = &result.reports[0];
        assert!(report.report.total_power().watts() > 0.0);
        // Scoped rows reproduce the chip totals (PR 4's invariant).
        let total = report.total().total().watts();
        let chip = report.report.total_power().watts();
        assert!((total - chip).abs() / chip < 1e-9);
    }

    #[test]
    fn run_job_repeats_bit_identically() {
        let spec = sample_spec();
        let a = run_job(&spec).unwrap();
        let b = run_job(&spec).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn windowed_job_returns_a_trace() {
        let spec = JobSpec {
            window_cycles: 500,
            governor: GovernorSpec::Ondemand,
            ..sample_spec()
        };
        let result = run_job(&spec).unwrap();
        assert_eq!(result.traces.len(), 1);
        let trace = &result.traces[0];
        assert_eq!(trace.governor, "ondemand");
        assert!(!trace.samples.is_empty());
        // Samples are contiguous in time.
        let mut expect_start = 0.0;
        for s in &trace.samples {
            assert!((s.start_s - expect_start).abs() < 1e-12);
            expect_start += s.duration_s;
        }
    }
}

//! The framed-TCP protocol and the result encoding.
//!
//! ## Frame layout
//!
//! Every message in either direction is one frame:
//!
//! ```text
//! +----------------+---------------------------+
//! | len: u32 LE    | payload (len bytes)       |
//! +----------------+---------------------------+
//! payload = msg-type: u8 | body (type-specific)
//! ```
//!
//! `len` covers the payload only and is capped at
//! [`crate::wire::MAX_LEN`]; a peer announcing more is treated as
//! corrupt and the connection is dropped. One request frame yields
//! exactly one response frame, so a client can pipeline batches and
//! match responses by order.
//!
//! ## Result encoding
//!
//! A completed job's [`JobResult`] is encoded once
//! ([`encode_result`]) and those bytes are what the cache stores and
//! the server ships — a cache hit is a verbatim replay of the encoded
//! bytes, which is what the byte-identity tests pin down. `f64` fields
//! travel as exact IEEE-754 bit patterns, so decoding reproduces the
//! simulator's reports bit-for-bit.

use std::io::{Read, Write};

use gpusimpow_power::{
    ChipBreakdown, ClusterPowerRow, CoreBreakdown, DramPowerBreakdown, PowerReport, PowerSplit,
    ScopedPowerReport,
};
use gpusimpow_tech::units::{Power, Time};

use crate::digest::JobDigest;
use crate::job::{JobResult, JobSpec, SweepSpec, TraceSample, TraceSummary};
use crate::wire::{Reader, WireError, Writer, MAX_LEN};

/// Version of the result encoding, stored alongside every cached
/// payload; a bump invalidates cached results at read time.
pub const RESULT_ENCODING_VERSION: u16 = 1;

/// Magic prefix of an encoded result payload.
pub const RESULT_MAGIC: [u8; 4] = *b"GSPR";

// --- message type tags ------------------------------------------------------

const MSG_SUBMIT: u8 = 0x01;
const MSG_STATS: u8 = 0x02;
const MSG_SHUTDOWN: u8 = 0x03;
const MSG_PING: u8 = 0x04;
const MSG_SUBMIT_SWEEP: u8 = 0x05;

const MSG_RESULTS: u8 = 0x81;
const MSG_STATS_REPLY: u8 = 0x82;
const MSG_ERROR: u8 = 0x83;
const MSG_PONG: u8 = 0x84;
const MSG_SHUTTING_DOWN: u8 = 0x85;

// --- framing ----------------------------------------------------------------

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Returns [`WireError::TooLarge`] for oversized payloads and
/// [`WireError::Io`] on socket failure.
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_LEN {
        return Err(WireError::TooLarge(payload.len()));
    }
    // One contiguous write: prefix + payload in separate writes would
    // hand Nagle + delayed-ACK a ~40 ms stall per frame.
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    stream.write_all(&frame)?;
    stream.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean EOF
/// at a frame boundary (the peer hung up between messages).
///
/// # Errors
///
/// Returns [`WireError::TooLarge`] for frames above the wire limit,
/// [`WireError::Truncated`] for mid-frame EOF and [`WireError::Io`] on
/// socket failure.
pub fn read_frame(stream: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        // simlint: allow(panic_path): `filled` stays below 4 by the loop
        // condition and `read` returns at most the slice length, so the
        // range start can never pass the end of the 4-byte buffer.
        let n = stream.read(&mut len_bytes[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(WireError::Truncated {
                what: "frame length",
                missing: 4 - filled,
            });
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_LEN {
        return Err(WireError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated {
                what: "frame payload",
                missing: len,
            }
        } else {
            WireError::Io(e)
        }
    })?;
    Ok(Some(payload))
}

// --- requests ---------------------------------------------------------------

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or fetch) a batch of jobs; answered by
    /// [`Response::Results`] with one outcome per job, in order.
    Submit(Vec<JobSpec>),
    /// Run one kernel across several GPU presets in one request. The
    /// server expands the sweep into ordinary jobs
    /// ([`SweepSpec::expand`]) and answers with [`Response::Results`]
    /// in preset order — members share cache slots with individually
    /// submitted jobs.
    SubmitSweep(SweepSpec),
    /// Fetch the server's counters.
    Stats,
    /// Ask the server to stop accepting connections and exit.
    Shutdown,
    /// Liveness probe.
    Ping,
}

impl Request {
    /// Encodes the request as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Request::Submit(jobs) => {
                w.put_u8(MSG_SUBMIT);
                w.put_u32(jobs.len() as u32);
                for job in jobs {
                    w.put_bytes(&job.canonical_bytes());
                }
            }
            Request::SubmitSweep(sweep) => {
                w.put_u8(MSG_SUBMIT_SWEEP);
                sweep.encode(&mut w);
            }
            Request::Stats => w.put_u8(MSG_STATS),
            Request::Shutdown => w.put_u8(MSG_SHUTDOWN),
            Request::Ping => w.put_u8(MSG_PING),
        }
        w.into_bytes()
    }

    /// Decodes a frame payload as a request.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for unknown tags, malformed bodies or
    /// out-of-domain jobs.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(payload);
        let req = match r.u8("request tag")? {
            MSG_SUBMIT => {
                let count = r.u32("job count")? as usize;
                let mut jobs = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    jobs.push(JobSpec::decode(r.bytes("job encoding")?)?);
                }
                Request::Submit(jobs)
            }
            MSG_SUBMIT_SWEEP => Request::SubmitSweep(SweepSpec::decode(&mut r)?),
            MSG_STATS => Request::Stats,
            MSG_SHUTDOWN => Request::Shutdown,
            MSG_PING => Request::Ping,
            t => {
                return Err(WireError::Malformed(format!(
                    "unknown request tag {t:#04x}"
                )))
            }
        };
        r.finish("request")?;
        Ok(req)
    }
}

// --- responses --------------------------------------------------------------

/// Where a job's result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultSource {
    /// Simulated fresh by this request.
    Simulated,
    /// Served from the in-memory cache tier.
    MemoryHit,
    /// Served from the on-disk cache tier.
    DiskHit,
    /// Coalesced onto another request's in-flight simulation.
    Coalesced,
}

impl ResultSource {
    fn tag(self) -> u8 {
        match self {
            ResultSource::Simulated => 0,
            ResultSource::MemoryHit => 1,
            ResultSource::DiskHit => 2,
            ResultSource::Coalesced => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(ResultSource::Simulated),
            1 => Ok(ResultSource::MemoryHit),
            2 => Ok(ResultSource::DiskHit),
            3 => Ok(ResultSource::Coalesced),
            t => Err(WireError::Malformed(format!("unknown result source {t}"))),
        }
    }

    /// Display name (loadgen output, logs).
    pub fn name(self) -> &'static str {
        match self {
            ResultSource::Simulated => "simulated",
            ResultSource::MemoryHit => "memory-hit",
            ResultSource::DiskHit => "disk-hit",
            ResultSource::Coalesced => "coalesced",
        }
    }
}

/// One submitted job's outcome: its digest, where the result came
/// from, and either the encoded result payload or a job-level error.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Content address of the job.
    pub digest: JobDigest,
    /// Cache tier (or simulation) that produced the payload.
    pub source: ResultSource,
    /// Encoded [`JobResult`] bytes (decode with [`decode_result`]), or
    /// the error message for jobs that failed to simulate.
    pub payload: Result<Vec<u8>, String>,
}

/// A server's counters at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Jobs received across all Submit requests.
    pub jobs_received: u64,
    /// Submit batches handled.
    pub batches: u64,
    /// Jobs served from the memory tier.
    pub hits_mem: u64,
    /// Jobs served from the disk tier.
    pub hits_disk: u64,
    /// Jobs simulated (cache misses that ran).
    pub misses_simulated: u64,
    /// Jobs that waited on another request's identical in-flight job.
    pub coalesced_waits: u64,
    /// Jobs that failed (invalid or simulation error).
    pub errors: u64,
    /// Corrupt disk entries detected, evicted and recomputed.
    pub corrupt_evictions: u64,
    /// Entries currently in the memory tier.
    pub mem_entries: u64,
    /// Completed results written to the disk tier.
    pub disk_writes: u64,
}

impl StatsSnapshot {
    /// Cache hit rate over all terminally-served jobs (hits of either
    /// tier, over hits + simulated misses). Coalesced waits count as
    /// neither: they neither cost a simulation nor found a cached
    /// result.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits_mem + self.hits_disk;
        let denom = hits + self.misses_simulated;
        if denom == 0 {
            0.0
        } else {
            hits as f64 / denom as f64
        }
    }

    fn encode_into(&self, w: &mut Writer) {
        for v in [
            self.jobs_received,
            self.batches,
            self.hits_mem,
            self.hits_disk,
            self.misses_simulated,
            self.coalesced_waits,
            self.errors,
            self.corrupt_evictions,
            self.mem_entries,
            self.disk_writes,
        ] {
            w.put_u64(v);
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(StatsSnapshot {
            jobs_received: r.u64("jobs_received")?,
            batches: r.u64("batches")?,
            hits_mem: r.u64("hits_mem")?,
            hits_disk: r.u64("hits_disk")?,
            misses_simulated: r.u64("misses_simulated")?,
            coalesced_waits: r.u64("coalesced_waits")?,
            errors: r.u64("errors")?,
            corrupt_evictions: r.u64("corrupt_evictions")?,
            mem_entries: r.u64("mem_entries")?,
            disk_writes: r.u64("disk_writes")?,
        })
    }
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Outcomes of one Submit request, in submission order.
    Results(Vec<JobOutcome>),
    /// Counter snapshot.
    Stats(StatsSnapshot),
    /// A request-level failure (undecodable request, server shutting
    /// down, ...). Job-level failures travel inside [`JobOutcome`].
    Error(String),
    /// Ping reply.
    Pong,
    /// Acknowledges a shutdown request; the server exits after sending.
    ShuttingDown,
}

impl Response {
    /// Encodes the response as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Response::Results(outcomes) => {
                w.put_u8(MSG_RESULTS);
                w.put_u32(outcomes.len() as u32);
                for o in outcomes {
                    w.put_raw(&o.digest.0);
                    w.put_u8(o.source.tag());
                    match &o.payload {
                        Ok(bytes) => {
                            w.put_u8(1);
                            w.put_bytes(bytes);
                        }
                        Err(msg) => {
                            w.put_u8(0);
                            w.put_str(msg);
                        }
                    }
                }
            }
            Response::Stats(s) => {
                w.put_u8(MSG_STATS_REPLY);
                s.encode_into(&mut w);
            }
            Response::Error(msg) => {
                w.put_u8(MSG_ERROR);
                w.put_str(msg);
            }
            Response::Pong => w.put_u8(MSG_PONG),
            Response::ShuttingDown => w.put_u8(MSG_SHUTTING_DOWN),
        }
        w.into_bytes()
    }

    /// Decodes a frame payload as a response.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for unknown tags or malformed bodies.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(payload);
        let resp = match r.u8("response tag")? {
            MSG_RESULTS => {
                let count = r.u32("outcome count")? as usize;
                let mut outcomes = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let digest =
                        JobDigest(r.raw(16, "outcome digest")?.try_into().map_err(|_| {
                            WireError::Truncated {
                                what: "outcome digest",
                                missing: 16,
                            }
                        })?);
                    let source = ResultSource::from_tag(r.u8("result source")?)?;
                    let payload = match r.u8("outcome kind")? {
                        1 => Ok(r.bytes("result payload")?.to_vec()),
                        0 => Err(r.str("job error")?),
                        k => {
                            return Err(WireError::Malformed(format!(
                                "outcome kind must be 0/1, got {k}"
                            )))
                        }
                    };
                    outcomes.push(JobOutcome {
                        digest,
                        source,
                        payload,
                    });
                }
                Response::Results(outcomes)
            }
            MSG_STATS_REPLY => Response::Stats(StatsSnapshot::decode_from(&mut r)?),
            MSG_ERROR => Response::Error(r.str("error message")?),
            MSG_PONG => Response::Pong,
            MSG_SHUTTING_DOWN => Response::ShuttingDown,
            t => {
                return Err(WireError::Malformed(format!(
                    "unknown response tag {t:#04x}"
                )))
            }
        };
        r.finish("response")?;
        Ok(resp)
    }
}

// --- result payload encoding --------------------------------------------------

fn put_split(w: &mut Writer, s: PowerSplit) {
    w.put_f64(s.static_power.watts());
    w.put_f64(s.dynamic_power.watts());
}

fn get_split(r: &mut Reader<'_>, what: &'static str) -> Result<PowerSplit, WireError> {
    Ok(PowerSplit::new(
        Power::new(r.f64(what)?),
        Power::new(r.f64(what)?),
    ))
}

fn put_report(w: &mut Writer, report: &PowerReport) {
    w.put_str(&report.kernel);
    w.put_str(&report.gpu);
    w.put_f64(report.time.seconds());
    for s in [
        report.chip.cores,
        report.chip.noc,
        report.chip.mc,
        report.chip.pcie,
        report.chip.l2,
    ] {
        put_split(w, s);
    }
    for s in [
        report.core.base,
        report.core.wcu,
        report.core.regfile,
        report.core.exec,
        report.core.ldstu,
        report.core.undiff,
    ] {
        put_split(w, s);
    }
    for p in [
        report.dram.background,
        report.dram.activate,
        report.dram.read,
        report.dram.write,
        report.dram.termination,
        report.dram.refresh,
    ] {
        w.put_f64(p.watts());
    }
}

fn get_report(r: &mut Reader<'_>) -> Result<PowerReport, WireError> {
    Ok(PowerReport {
        kernel: r.str("report kernel")?,
        gpu: r.str("report gpu")?,
        time: Time::new(r.f64("report time")?),
        chip: ChipBreakdown {
            cores: get_split(r, "chip cores")?,
            noc: get_split(r, "chip noc")?,
            mc: get_split(r, "chip mc")?,
            pcie: get_split(r, "chip pcie")?,
            l2: get_split(r, "chip l2")?,
        },
        core: CoreBreakdown {
            base: get_split(r, "core base")?,
            wcu: get_split(r, "core wcu")?,
            regfile: get_split(r, "core regfile")?,
            exec: get_split(r, "core exec")?,
            ldstu: get_split(r, "core ldstu")?,
            undiff: get_split(r, "core undiff")?,
        },
        dram: DramPowerBreakdown {
            background: Power::new(r.f64("dram background")?),
            activate: Power::new(r.f64("dram activate")?),
            read: Power::new(r.f64("dram read")?),
            write: Power::new(r.f64("dram write")?),
            termination: Power::new(r.f64("dram termination")?),
            refresh: Power::new(r.f64("dram refresh")?),
        },
    })
}

fn put_scoped(w: &mut Writer, scoped: &ScopedPowerReport) {
    put_report(w, &scoped.report);
    w.put_u32(scoped.clusters.len() as u32);
    for row in &scoped.clusters {
        w.put_u64(row.cluster as u64);
        put_split(w, row.power);
        w.put_f64(row.busy_fraction);
        w.put_f64(row.avg_busy_cores);
    }
    put_split(w, scoped.scheduler);
    put_split(w, scoped.uncore);
}

fn get_scoped(r: &mut Reader<'_>) -> Result<ScopedPowerReport, WireError> {
    let report = get_report(r)?;
    let n = r.u32("cluster row count")? as usize;
    let mut clusters = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        clusters.push(ClusterPowerRow {
            cluster: usize::try_from(r.u64("cluster index")?)
                .map_err(|_| WireError::Malformed("cluster index does not fit usize".into()))?,
            power: get_split(r, "cluster power")?,
            busy_fraction: r.f64("cluster busy fraction")?,
            avg_busy_cores: r.f64("cluster avg busy cores")?,
        });
    }
    Ok(ScopedPowerReport {
        report,
        clusters,
        scheduler: get_split(r, "scheduler power")?,
        uncore: get_split(r, "uncore power")?,
    })
}

fn put_trace(w: &mut Writer, trace: &TraceSummary) {
    w.put_str(&trace.kernel);
    w.put_str(&trace.governor);
    w.put_u32(trace.samples.len() as u32);
    for s in &trace.samples {
        w.put_u64(s.index);
        w.put_f64(s.start_s);
        w.put_f64(s.duration_s);
        w.put_u32(s.op_index);
        w.put_f64(s.utilization);
        w.put_f64(s.dynamic_w);
        w.put_f64(s.static_w);
        w.put_f64(s.dram_w);
    }
}

fn get_trace(r: &mut Reader<'_>) -> Result<TraceSummary, WireError> {
    let kernel = r.str("trace kernel")?;
    let governor = r.str("trace governor")?;
    let n = r.u32("trace sample count")? as usize;
    let mut samples = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        samples.push(TraceSample {
            index: r.u64("sample index")?,
            start_s: r.f64("sample start")?,
            duration_s: r.f64("sample duration")?,
            op_index: r.u32("sample op index")?,
            utilization: r.f64("sample utilization")?,
            dynamic_w: r.f64("sample dynamic power")?,
            static_w: r.f64("sample static power")?,
            dram_w: r.f64("sample dram power")?,
        });
    }
    Ok(TraceSummary {
        kernel,
        governor,
        samples,
    })
}

/// Encodes a [`JobResult`] into the byte form the cache stores and the
/// wire ships. The encoding is exact: [`decode_result`] reproduces the
/// input bit-for-bit.
pub fn encode_result(result: &JobResult) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_raw(&RESULT_MAGIC);
    w.put_u16(RESULT_ENCODING_VERSION);
    w.put_u32(result.reports.len() as u32);
    for scoped in &result.reports {
        put_scoped(&mut w, scoped);
    }
    w.put_u32(result.traces.len() as u32);
    for trace in &result.traces {
        put_trace(&mut w, trace);
    }
    w.into_bytes()
}

/// Decodes an encoded result payload.
///
/// # Errors
///
/// Returns [`WireError`] for bad magic, a foreign encoding version or
/// structural corruption.
pub fn decode_result(bytes: &[u8]) -> Result<JobResult, WireError> {
    let mut r = Reader::new(bytes);
    let magic = r.raw(4, "result magic")?;
    if magic != RESULT_MAGIC {
        return Err(WireError::Malformed(format!(
            "bad result magic {magic:02x?}"
        )));
    }
    let version = r.u16("result encoding version")?;
    if version != RESULT_ENCODING_VERSION {
        return Err(WireError::Malformed(format!(
            "result encoding version {version} (this build speaks {RESULT_ENCODING_VERSION})"
        )));
    }
    let n_reports = r.u32("report count")? as usize;
    let mut reports = Vec::with_capacity(n_reports.min(4096));
    for _ in 0..n_reports {
        reports.push(get_scoped(&mut r)?);
    }
    let n_traces = r.u32("trace count")? as usize;
    let mut traces = Vec::with_capacity(n_traces.min(4096));
    for _ in 0..n_traces {
        traces.push(get_trace(&mut r)?);
    }
    r.finish("result payload")?;
    Ok(JobResult { reports, traces })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{run_job, GovernorSpec, GpuPreset, KernelSpec};

    fn tiny_job(window: u64) -> JobSpec {
        JobSpec {
            kernel: KernelSpec::ClusterStep {
                iterations: 32,
                blocks: 2,
                threads: 64,
            },
            gpu: GpuPreset::Gt240,
            governor: GovernorSpec::Ondemand,
            window_cycles: window,
        }
    }

    #[test]
    fn request_roundtrip() {
        let reqs = vec![
            Request::Submit(vec![tiny_job(0), tiny_job(512)]),
            Request::SubmitSweep(SweepSpec {
                kernel: tiny_job(0).kernel,
                governor: GovernorSpec::PowerCap { cap_mw: 42_000 },
                window_cycles: 256,
                gpus: vec![GpuPreset::Gtx580, GpuPreset::Gt240],
            }),
            Request::Stats,
            Request::Shutdown,
            Request::Ping,
        ];
        for req in reqs {
            let back = Request::decode(&req.encode()).unwrap();
            assert_eq!(back, req);
        }
        assert!(Request::decode(&[0xFF]).is_err());
        assert!(Request::decode(&[]).is_err());
    }

    #[test]
    fn sweep_request_decode_rejects_out_of_domain_sweeps() {
        let empty = Request::SubmitSweep(SweepSpec {
            kernel: tiny_job(0).kernel,
            governor: GovernorSpec::Baseline,
            window_cycles: 0,
            gpus: Vec::new(),
        });
        assert!(Request::decode(&empty.encode()).is_err());
        let bad_kernel = Request::SubmitSweep(SweepSpec {
            kernel: KernelSpec::ClusterStep {
                iterations: 0, // iterations must be >= 1
                blocks: 1,
                threads: 32,
            },
            governor: GovernorSpec::Baseline,
            window_cycles: 0,
            gpus: vec![GpuPreset::Gt240],
        });
        assert!(Request::decode(&bad_kernel.encode()).is_err());
    }

    #[test]
    fn response_roundtrip() {
        let outcome_ok = JobOutcome {
            digest: JobDigest([7; 16]),
            source: ResultSource::MemoryHit,
            payload: Ok(vec![1, 2, 3]),
        };
        let outcome_err = JobOutcome {
            digest: JobDigest([9; 16]),
            source: ResultSource::Simulated,
            payload: Err("kernel exploded".to_string()),
        };
        let stats = StatsSnapshot {
            jobs_received: 10,
            batches: 2,
            hits_mem: 3,
            hits_disk: 1,
            misses_simulated: 4,
            coalesced_waits: 2,
            errors: 0,
            corrupt_evictions: 1,
            mem_entries: 4,
            disk_writes: 4,
        };
        let resps = vec![
            Response::Results(vec![outcome_ok, outcome_err]),
            Response::Stats(stats),
            Response::Error("bad request".to_string()),
            Response::Pong,
            Response::ShuttingDown,
        ];
        for resp in resps {
            let back = Response::decode(&resp.encode()).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn stats_hit_rate() {
        let mut s = StatsSnapshot::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.hits_mem = 6;
        s.hits_disk = 2;
        s.misses_simulated = 2;
        assert!((s.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn result_encoding_roundtrips_bit_for_bit() {
        let result = run_job(&tiny_job(512)).unwrap();
        let bytes = encode_result(&result);
        let back = decode_result(&bytes).unwrap();
        assert_eq!(back, result);
        // Re-encoding the decoded result reproduces the exact bytes —
        // the property that lets the cache store encoded payloads.
        assert_eq!(encode_result(&back), bytes);
    }

    #[test]
    fn result_decoding_rejects_corruption() {
        let result = run_job(&tiny_job(0)).unwrap();
        let bytes = encode_result(&result);
        assert!(decode_result(&bytes[..bytes.len() - 1]).is_err());
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 0xFF;
        assert!(decode_result(&wrong_version).is_err());
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(decode_result(&wrong_magic).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(decode_result(&trailing).is_err());
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_frame_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cursor = std::io::Cursor::new(&buf[..7]);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Truncated { .. })
        ));
        // Oversized announced length.
        let huge = (MAX_LEN as u32 + 1).to_le_bytes();
        let mut cursor = std::io::Cursor::new(&huge[..]);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::TooLarge(_))
        ));
    }
}

//! # gpusimpow-bench — the experiment harness
//!
//! One function per table/figure of the paper (see `DESIGN.md`'s
//! per-experiment index); the `src/bin/*` binaries are thin wrappers and
//! `run_all_experiments` renders everything into `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cli;
pub mod experiments;
pub mod render;
pub mod report;

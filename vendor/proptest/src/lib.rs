//! Offline stand-in for the `proptest` crate.
//!
//! The sandboxed build environment cannot reach crates.io, so this crate
//! vendors the subset of proptest's API that the workspace's property
//! tests use: the [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`]
//! macro family, the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_filter`, range / tuple / `Just` / `any` / vec / regex-lite
//! strategies, and a deterministic runner.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its seed and message only;
//! * **fixed deterministic seeds** — each `(test, case-index)` pair maps
//!   to one RNG stream, so failures reproduce exactly across runs;
//! * **case count** defaults to 64 and is overridable with the
//!   `PROPTEST_CASES` environment variable.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;

/// Why a single generated test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// An assertion failed with the given message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Number of cases each property runs (`PROPTEST_CASES`, default 64).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Namespace mirror of `proptest::prop` (`prop::bool::ANY`, …).
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        /// Uniform `true` / `false`.
        pub const ANY: crate::strategy::AnyBool = crate::strategy::AnyBool;
    }
    pub use crate::collection;
}

/// The common imports every property-test file glob-uses.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two values compare equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts two values compare unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Rejects the current case (skipped, not failed) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::empty()$(.or($arm))+
    };
}

/// Declares property tests: `fn name(pattern in strategy, ...) { body }`.
///
/// Each function becomes a `#[test]` (the attribute is written by the
/// caller, exactly as with real proptest) that samples its strategies
/// [`cases`] times and runs the body; `prop_assert*` failures abort with
/// the case index so the exact inputs can be regenerated.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* $vis:vis fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            $vis fn $name() {
                let __total = $crate::cases();
                #[allow(unused_assignments)]
                let mut __rejected = 0u64;
                for __case in 0..__total {
                    let mut __rng = $crate::strategy::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            __rejected += 1;
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed at case {}/{}: {}",
                                stringify!($name), __case, __total, msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

//! Corpus test: the syntax layer must digest every first-party source
//! file in the workspace. The parser is dependency-free and recovers
//! with `Expr::Opaque` rather than failing, so "digest" is quantified:
//! every file yields items, the item walk finds the workspace's
//! functions, and opaque expressions stay a rare remainder instead of
//! a silent majority. A grammar regression (a new syntax form the
//! item scanner chokes on, a statement boundary bug that swallows a
//! body) shows up here as a collapsed count long before a lint
//! quietly stops seeing the code it is supposed to check.

use simlint::lexer::lex;
use simlint::syntax::{self, Expr, Item, ItemKind};
use std::path::{Path, PathBuf};

/// Workspace root, two levels above the simlint manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/simlint sits two levels under the root")
        .to_path_buf()
}

/// Every first-party `.rs` file, mirroring the CLI's own exclusions
/// (build output, vendored code, lint fixtures).
fn corpus(dir: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read_dir {}: {e}", dir.display()))
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | "vendor" | ".git" | "fixtures") {
                continue;
            }
            corpus(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

struct Tally {
    files: usize,
    items: usize,
    fns: usize,
    fn_bodies: usize,
    exprs: usize,
    opaque: usize,
}

#[test]
fn every_workspace_source_file_parses_with_low_opacity() {
    let root = workspace_root();
    let mut paths = Vec::new();
    corpus(&root, &mut paths);
    assert!(
        paths.len() >= 100,
        "corpus walk found only {} files — wrong root?",
        paths.len()
    );

    let mut t = Tally {
        files: 0,
        items: 0,
        fns: 0,
        fn_bodies: 0,
        exprs: 0,
        opaque: 0,
    };
    for path in &paths {
        let src = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let ast = syntax::parse(&lex(&src));
        t.files += 1;
        let mut file_items = 0usize;
        ast.walk_items(&mut |item: &Item| {
            file_items += 1;
            if item.kind == ItemKind::Fn {
                t.fns += 1;
                if let Some(body) = &item.body {
                    t.fn_bodies += 1;
                    body.walk_exprs(&mut |e: &Expr| {
                        t.exprs += 1;
                        if matches!(e, Expr::Opaque { .. }) {
                            t.opaque += 1;
                        }
                    });
                }
            }
        });
        t.items += file_items;
        // Every non-empty source file in this workspace declares at
        // least one item (a file of only comments would not, but the
        // tree has none and a parser bug mimics exactly that).
        assert!(
            file_items > 0 || src.trim().is_empty(),
            "{}: parser produced no items",
            path.display()
        );
    }

    eprintln!(
        "corpus: {} files, {} items, {} fns ({} with bodies), {} exprs ({} opaque)",
        t.files, t.items, t.fns, t.fn_bodies, t.exprs, t.opaque
    );
    // Order-of-magnitude floors, far below the current counts, so the
    // test flags structural collapse without chasing every refactor.
    assert!(t.items >= 1_000, "items collapsed: {}", t.items);
    assert!(t.fns >= 500, "fns collapsed: {}", t.fns);
    assert!(
        t.fn_bodies * 10 >= t.fns * 9,
        "bodies went missing: {} bodies for {} fns",
        t.fn_bodies,
        t.fns
    );
    assert!(t.exprs >= 10_000, "expressions collapsed: {}", t.exprs);
    // The recovery token must stay the exception: under 2% of all
    // expressions across the corpus.
    assert!(
        t.opaque * 50 <= t.exprs,
        "opacity too high: {} opaque of {} exprs",
        t.opaque,
        t.exprs
    );
}

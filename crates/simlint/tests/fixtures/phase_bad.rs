//! Compute-phase contract violations — each construct here must fire.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct GpuMemory;

static FAST_PATH: AtomicU64 = AtomicU64::new(0);

pub struct Core {
    dirty: bool,
}

impl Core {
    pub fn tick(&mut self, mem: &mut GpuMemory) {
        self.execute(mem);
        self.commit_stores(mem);
    }

    fn execute(&mut self, mem: &mut GpuMemory) {
        FAST_PATH.fetch_add(1, Ordering::Relaxed);
        lane_kernel();
        let _ = mem;
        self.dirty = true;
    }

    pub fn commit_stores(&mut self, mem: &mut GpuMemory) {
        let _ = mem;
        self.dirty = false;
    }
}

//! Fig. 4: GT240 power vs. number of thread blocks (cluster staircase).
//!
//! Usage: fig4_cluster_power [--threads N]

use gpusimpow_bench::{cli, experiments, render};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let pool = cli::pool_from_args(&args);
    let points = experiments::fig4_cluster_power(experiments::BOARD_SEED, &pool);
    println!("Fig. 4 — GT240 power vs thread blocks (measured on the virtual testbed)\n");
    println!("{}", render::fig4(&points));
    println!("paper: +3.34 W for the first block (global scheduler), +0.692 W per new cluster, smaller per extra core");
}

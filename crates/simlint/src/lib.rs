//! simlint — the workspace invariant checker.
//!
//! `rustc` and clippy enforce language rules; this crate enforces the
//! *simulator's* rules — the cross-cutting contracts this workspace
//! depends on but no compiler knows about:
//!
//! * **Determinism** ([`determinism`]): simulation results must be
//!   bit-identical run to run (EXPERIMENTS.md is regenerated and
//!   byte-compared in CI), so result-bearing crates must not iterate
//!   `HashMap`/`HashSet` or consult the wall clock.
//! * **Unit safety** ([`units`]): energy/power/time arithmetic in the
//!   power model must stay inside the `gpusimpow_tech::units` newtypes;
//!   unwrapping to raw `f64` mid-computation is where dimensional bugs
//!   hide.
//! * **Unsafe audit** ([`unsafety`]): every `unsafe` keyword needs a
//!   `// SAFETY:` comment, and the full inventory is checked into
//!   `UNSAFE.md` so new unsafe code cannot land without a reviewed
//!   manifest diff.
//! * **Hot-path allocation** ([`hotpath`]): the SoA warp pipeline's
//!   steady state must not allocate per executed instruction, so loop
//!   bodies in `crates/sim/src/{core,func,ldst}.rs` must not contain
//!   allocating expressions (`vec!`, `Vec::new`, `.collect()`, …) —
//!   the static twin of `tests/steady_state_alloc.rs`.
//! * **Registry coverage** ([`registry`]): every `EventKind` of the
//!   component-event registry must be priced by an `EnergyMap`,
//!   consumed by the empirical base model, or documented as
//!   intentionally unpriced — checked *statically*, before any test
//!   runs.
//!
//! Run it as `cargo run -p simlint` from the workspace root; it prints
//! `file:line: lint: message` per finding and exits non-zero when
//! anything fires. Findings are suppressed per site with a justified
//! marker comment:
//!
//! ```text
//! // simlint: allow(nondeterministic_collection): keyed access only,
//! // the map is never iterated.
//! ```
//!
//! A marker without the `: reason` tail is itself a finding
//! (`missing_justification`), and a marker naming a lint that does not
//! exist is `unknown_lint` — suppressions cannot rot silently.

pub mod determinism;
pub mod hotpath;
pub mod lexer;
pub mod registry;
pub mod units;
pub mod unsafety;

use lexer::{lex, Lexed, TokKind, Token};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Every lint simlint can emit, for `allow(...)` name validation.
pub const LINTS: &[&str] = &[
    determinism::NONDETERMINISTIC_COLLECTION,
    determinism::WALL_CLOCK,
    units::RAW_UNIT_MATH,
    hotpath::LANE_LOOP_ALLOC,
    hotpath::UNBOUNDED_QUEUE_IN_CORE,
    unsafety::UNDOCUMENTED_UNSAFE,
    unsafety::UNSAFE_MANIFEST_DRIFT,
    registry::UNPRICED_EVENT,
    registry::UNKNOWN_EVENT,
    registry::CONFLICTING_PRICE,
    MISSING_JUSTIFICATION,
    UNKNOWN_LINT,
];

/// An `allow` marker whose `: reason` tail is missing or empty.
pub const MISSING_JUSTIFICATION: &str = "missing_justification";
/// An `allow` marker naming a lint simlint does not define.
pub const UNKNOWN_LINT: &str = "unknown_lint";

/// One finding, printed as `file:line: lint: message`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Stable lint name (one of [`LINTS`]).
    pub lint: &'static str,
    /// Human explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// A parsed `// simlint: allow(lint): reason` marker.
#[derive(Debug, Clone)]
struct Allow {
    lint: String,
    /// Line the marker itself is on (for diagnostics about the marker).
    line: u32,
    /// Last line of the enclosing comment block; the marker suppresses
    /// from its own line through `extent + 1`, so it works trailing the
    /// offending code or above it, even with a wrapped reason.
    extent: u32,
    has_reason: bool,
}

/// One lexed source file plus its suppression markers — the input every
/// per-file pass consumes.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Token and comment streams.
    pub lexed: Lexed,
    allows: Vec<Allow>,
}

const ALLOW_PREFIX: &str = "simlint: allow(";

impl SourceFile {
    /// Lexes `src` and collects its `allow` markers.
    ///
    /// A marker must *start* its comment line (`// simlint: allow(x):
    /// reason`); the lint name in running prose — like this sentence —
    /// is not a marker. The reason may wrap onto following comment
    /// lines; only the first must be non-empty.
    pub fn parse(rel_path: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let mut allows = Vec::new();
        for c in &lexed.comments {
            for (idx, raw_line) in c.text.lines().enumerate() {
                // Strip exactly one comment introducer, so a marker
                // quoted inside doc text (`//! // simlint: ...`) still
                // leads with `//` afterwards and is ignored.
                let mut body = raw_line.trim_start();
                if let Some(stripped) = body.strip_prefix("//") {
                    body = stripped.strip_prefix(['!', '/']).unwrap_or(stripped);
                } else if let Some(stripped) = body.strip_prefix("/*") {
                    body = stripped.strip_prefix(['!', '*']).unwrap_or(stripped);
                }
                let Some(rest) = body.trim_start().strip_prefix(ALLOW_PREFIX) else {
                    continue;
                };
                let Some(close) = rest.find(')') else {
                    continue;
                };
                let lint = rest[..close].trim().to_string();
                let tail = rest[close + 1..].trim_start();
                let has_reason = tail
                    .strip_prefix(':')
                    .is_some_and(|r| !r.trim_matches(['/', '*', ' ']).is_empty());
                allows.push(Allow {
                    lint,
                    line: c.line_start + idx as u32,
                    extent: c.line_end,
                    has_reason,
                });
            }
        }
        SourceFile {
            rel_path: rel_path.to_string(),
            lexed,
            allows,
        }
    }

    /// Builds a diagnostic against this file.
    pub(crate) fn diag(&self, line: u32, lint: &'static str, message: String) -> Diagnostic {
        Diagnostic {
            file: self.rel_path.clone(),
            line,
            lint,
            message,
        }
    }

    /// Whether a justified marker suppresses `lint` on `line`.
    fn allowed(&self, lint: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.has_reason && a.lint == lint && a.line <= line && line <= a.extent + 1)
    }

    /// Findings about the markers themselves. Never suppressible.
    fn marker_diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for a in &self.allows {
            if !LINTS.contains(&a.lint.as_str()) {
                out.push(self.diag(
                    a.line,
                    UNKNOWN_LINT,
                    format!(
                        "allow marker names `{}`, which is not a simlint lint",
                        a.lint
                    ),
                ));
            }
            if !a.has_reason {
                out.push(self.diag(
                    a.line,
                    MISSING_JUSTIFICATION,
                    format!(
                        "allow({}) needs a `: reason` tail — unexplained suppressions rot",
                        a.lint
                    ),
                ));
            }
        }
        out
    }
}

/// Index of the `}` matching the `{`/`(`/`[` at `open`, or the last
/// token if unbalanced.
pub(crate) fn match_close(tokens: &[Token], open: usize) -> usize {
    let (o, c) = match tokens[open].text.as_str() {
        "{" => ("{", "}"),
        "(" => ("(", ")"),
        _ => ("[", "]"),
    };
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == o {
                depth += 1;
            } else if t.text == c {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
    }
    tokens.len().saturating_sub(1)
}

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// Token ranges (inclusive) of `#[cfg(test)]`-gated items and
/// `#[test]` functions — code whose behaviour never reaches simulation
/// results.
pub(crate) fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < tokens.len() {
        let gated = is_punct(&tokens[i], "#")
            && is_punct(&tokens[i + 1], "[")
            && ((is_ident(&tokens[i + 2], "cfg")
                && tokens.get(i + 4).is_some_and(|t| is_ident(t, "test")))
                || is_ident(&tokens[i + 2], "test"));
        if gated {
            let attr_end = match_close(tokens, i + 1);
            if let Some(open) = (attr_end..tokens.len()).find(|&j| is_punct(&tokens[j], "{")) {
                let close = match_close(tokens, open);
                out.push((i, close));
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Token ranges of `impl …Display/Debug… for …` blocks — rendering
/// code, exempt from [`units::RAW_UNIT_MATH`] because percent columns
/// and unit formatting legitimately divide raw magnitudes.
pub(crate) fn fmt_impl_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_ident(&tokens[i], "impl") {
            let mut saw_fmt_trait = false;
            let mut saw_for = false;
            let mut j = i + 1;
            while j < tokens.len() && !is_punct(&tokens[j], "{") {
                if is_ident(&tokens[j], "Display") || is_ident(&tokens[j], "Debug") {
                    saw_fmt_trait = true;
                }
                if is_ident(&tokens[j], "for") {
                    saw_for = true;
                }
                j += 1;
            }
            if j < tokens.len() && saw_fmt_trait && saw_for {
                let close = match_close(tokens, j);
                out.push((i, close));
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Whether token index `idx` lies inside any of `regions`.
pub(crate) fn in_regions(regions: &[(usize, usize)], idx: usize) -> bool {
    regions.iter().any(|&(a, b)| a <= idx && idx <= b)
}

fn determinism_scope(rel_path: &str) -> bool {
    [
        "crates/sim/src/",
        "crates/power/src/",
        "crates/pm/src/",
        // The result cache turns the determinism contract into a
        // correctness requirement (a digest is only a content address
        // if re-simulation is bit-identical), so the service crate is
        // held to the same lints. Its socket/filesystem edges carry
        // explicit `simlint: allow` markers.
        "crates/serve/src/",
        // Traces are archival, content-addressed artifacts: capturing
        // the same run twice must produce the same bytes, and replay
        // must be as deterministic as live execution. Iteration-order
        // or wall-clock dependence in the trace crate would silently
        // fork digests.
        "crates/trace/src/",
    ]
    .iter()
    .any(|p| rel_path.starts_with(p))
}

fn units_scope(rel_path: &str) -> bool {
    // The trace crate is in scope alongside the power model: trace
    // records carry byte/cycle quantities next to code that also sees
    // unit-typed values, and raw-f64 unit math there would leak into
    // the replay-derived reports.
    rel_path.starts_with("crates/power/src/") || rel_path.starts_with("crates/trace/src/")
}

/// Runs every per-file pass applicable to `rel_path` on `src` and
/// returns the surviving (non-suppressed) findings. This is the entry
/// point the fixture tests drive; [`run_workspace`] uses it for real
/// files.
pub fn check_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let file = SourceFile::parse(rel_path, src);
    let mut raw = Vec::new();
    if determinism_scope(rel_path) {
        raw.extend(determinism::check(&file));
    }
    if units_scope(rel_path) {
        raw.extend(units::check(&file));
    }
    if hotpath::scope(rel_path) {
        raw.extend(hotpath::check(&file));
    }
    if hotpath::queue_scope(rel_path) {
        raw.extend(hotpath::check_queues(&file));
    }
    raw.extend(unsafety::check(&file));
    let mut out: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| !file.allowed(d.lint, d.line))
        .collect();
    out.extend(file.marker_diagnostics());
    out
}

/// Everything one workspace run produces.
#[derive(Debug)]
pub struct WorkspaceReport {
    /// Surviving findings across all passes, in path order.
    pub diagnostics: Vec<Diagnostic>,
    /// The regenerated `UNSAFE.md` content (what the checked-in file
    /// must equal).
    pub unsafe_manifest: String,
    /// Number of `.rs` files checked.
    pub files_checked: usize,
}

/// Relative `/`-separated path of `path` under `root`.
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| Ok(e?.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | "vendor" | ".git" | "fixtures") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Checks the whole workspace rooted at `root`: every first-party `.rs`
/// file (vendored stubs, build outputs and simlint's own lint fixtures
/// excluded), the registry-coverage contract, and `UNSAFE.md` drift.
pub fn run_workspace(root: &Path) -> io::Result<WorkspaceReport> {
    let mut paths = Vec::new();
    collect_rs_files(root, &mut paths)?;

    let mut diagnostics = Vec::new();
    let mut unsafe_files = Vec::new();
    let mut events_file = None;
    let mut registry_file = None;
    let mut pricing_files = Vec::new();

    for path in &paths {
        let rel_path = rel(root, path);
        let src = fs::read_to_string(path)?;
        diagnostics.extend(check_source(&rel_path, &src));
        let file = SourceFile::parse(&rel_path, &src);
        let sites = unsafety::sites(&file);
        if !sites.is_empty() {
            unsafe_files.push((rel_path.clone(), sites));
        }
        match rel_path.as_str() {
            "crates/sim/src/events.rs" => events_file = Some(file),
            "crates/power/src/registry.rs" => registry_file = Some(file),
            p if p.starts_with("crates/power/src/components/")
                || p == "crates/power/src/dram.rs" =>
            {
                pricing_files.push(file)
            }
            _ => {}
        }
    }

    if let (Some(events), Some(reg)) = (&events_file, &registry_file) {
        diagnostics.extend(registry::check(events, reg, &pricing_files));
    }

    let unsafe_manifest = unsafety::manifest(&unsafe_files);
    let on_disk = fs::read_to_string(root.join("UNSAFE.md")).unwrap_or_default();
    if on_disk != unsafe_manifest {
        diagnostics.push(Diagnostic {
            file: "UNSAFE.md".to_string(),
            line: 1,
            lint: unsafety::UNSAFE_MANIFEST_DRIFT,
            message: "inventory is stale; regenerate with \
                      `cargo run -p simlint -- --update-unsafe-manifest` \
                      and commit the diff"
                .to_string(),
        });
    }

    Ok(WorkspaceReport {
        diagnostics,
        unsafe_manifest,
        files_checked: paths.len(),
    })
}

//! Windowed activity sampling — the observation side of power
//! management.
//!
//! A cycle-level power trace needs activity at a finer grain than one
//! launch. [`crate::gpu::Gpu::launch_with_sink`] snapshots the running
//! [`ActivityStats`] every `window_cycles` shader cycles and hands the
//! *delta* of consecutive snapshots to an [`ActivitySink`] as an
//! [`ActivityWindow`]. Deltas are exact: the `+=`-sum of every window of
//! a launch reproduces the whole-launch aggregate counter for counter
//! (peak-concurrency fields are per-window maxima instead, so the
//! running max over windows reproduces the launch peak).
//!
//! The trait is deliberately synchronous and allocation-light — it is
//! called from inside the simulation loop. Consumers that want to keep
//! the data (power tracers, DVFS governors, CSV writers) either process
//! each window on the spot or record them with [`WindowRecorder`] and
//! replay later.

use crate::gpu::LaunchReport;
use crate::stats::ActivityStats;

/// One sampling window of a kernel launch.
#[derive(Debug, Clone)]
pub struct ActivityWindow {
    /// Zero-based window index within the launch.
    pub index: u64,
    /// First shader cycle covered (inclusive).
    pub start_cycle: u64,
    /// One past the last shader cycle covered (exclusive); the window
    /// spans `end_cycle - start_cycle` shader cycles. The final window
    /// of a launch may be shorter than the configured width.
    pub end_cycle: u64,
    /// Activity delta of exactly this window. Counter fields are events
    /// that happened inside the window; `peak_cores_busy` /
    /// `peak_clusters_busy` are the within-window concurrency maxima.
    pub stats: ActivityStats,
    /// Busy cycles per cluster inside this window (same span-multiply
    /// semantics as `stats.cluster_busy_cycles`, which equals this
    /// vector's sum). Lets governors see per-cluster load instead of
    /// the chip average.
    pub cluster_busy: Vec<u64>,
}

impl ActivityWindow {
    /// Shader cycles covered by this window.
    pub fn cycles(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }

    /// Per-cluster busy fraction in `[0, 1]`: the fraction of this
    /// window's cycles each cluster had at least one busy core.
    pub fn cluster_busy_fractions(&self) -> Vec<f64> {
        let cycles = self.cycles().max(1) as f64;
        self.cluster_busy
            .iter()
            .map(|&busy| busy as f64 / cycles)
            .collect()
    }
}

/// Receiver of windowed activity samples during a launch.
///
/// All methods have empty defaults except [`ActivitySink::on_window`],
/// so trivial consumers implement one method.
pub trait ActivitySink {
    /// Called once before the first simulated cycle.
    fn on_launch_begin(&mut self, kernel: &str, window_cycles: u64) {
        let _ = (kernel, window_cycles);
    }

    /// Called after each completed window, in order. The final window of
    /// a launch may cover fewer than `window_cycles` cycles.
    fn on_window(&mut self, window: &ActivityWindow);

    /// Called once after the launch terminates, with the same report the
    /// launch returns.
    fn on_launch_end(&mut self, report: &LaunchReport) {
        let _ = report;
    }

    /// Recovers the concrete sink type after [`crate::gpu::Gpu::detach_sink`].
    ///
    /// `'static` sinks should override this to `Some(self)`; the default
    /// (for borrowing sinks, which cannot be `Any`) returns `None`.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

/// Everything observed about one sampled launch.
#[derive(Debug, Clone)]
pub struct RecordedLaunch {
    /// Kernel name.
    pub kernel: String,
    /// Configured window width in shader cycles.
    pub window_cycles: u64,
    /// All windows of the launch, in order.
    pub windows: Vec<ActivityWindow>,
    /// The whole-launch report (present once the launch has ended).
    pub report: Option<LaunchReport>,
}

impl RecordedLaunch {
    /// `+=`-sum of all window deltas — equals the launch aggregate.
    pub fn aggregate(&self) -> ActivityStats {
        let mut total = ActivityStats::new();
        for w in &self.windows {
            total += &w.stats;
        }
        total
    }
}

/// An [`ActivitySink`] that simply stores every window, so a launch can
/// be simulated once and replayed many times (e.g. under different
/// power-management policies).
#[derive(Debug, Clone, Default)]
pub struct WindowRecorder {
    launches: Vec<RecordedLaunch>,
}

impl WindowRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// All recorded launches, in launch order.
    pub fn launches(&self) -> &[RecordedLaunch] {
        &self.launches
    }

    /// Consumes the recorder, returning its launches.
    pub fn into_launches(self) -> Vec<RecordedLaunch> {
        self.launches
    }
}

impl ActivitySink for WindowRecorder {
    fn on_launch_begin(&mut self, kernel: &str, window_cycles: u64) {
        self.launches.push(RecordedLaunch {
            kernel: kernel.to_string(),
            window_cycles,
            windows: Vec::new(),
            report: None,
        });
    }

    fn on_window(&mut self, window: &ActivityWindow) {
        self.launches
            .last_mut()
            .expect("on_launch_begin precedes on_window")
            .windows
            .push(window.clone());
    }

    fn on_launch_end(&mut self, report: &LaunchReport) {
        self.launches
            .last_mut()
            .expect("on_launch_begin precedes on_launch_end")
            .report = Some(report.clone());
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

//! `gpusimpow-serve` — the long-running simulation server.
//!
//! ```text
//! cargo run --release -p gpusimpow-serve --bin gpusimpow-serve -- \
//!     [--addr HOST:PORT] [--threads N] [--cache-dir DIR] [--mem-capacity N]
//! ```
//!
//! Binds (default `127.0.0.1:7979`), prints the bound address, and
//! serves until a client sends a Shutdown request. `--cache-dir`
//! enables the on-disk cache tier, which persists results across server
//! restarts; without it the cache is memory-only. `--threads 0` (the
//! default) sizes the simulation pool to the machine.

use gpusimpow_serve::{Server, ServerConfig, StoreConfig};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == flag {
            return Some(
                iter.next()
                    .unwrap_or_else(|| panic!("{flag} needs a value"))
                    .clone(),
            );
        }
        if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = flag_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7979".to_string());
    let threads: usize = flag_value(&args, "--threads")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("--threads expects a number, got {v:?}"))
        })
        .unwrap_or(0);
    let mem_capacity: usize = flag_value(&args, "--mem-capacity")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("--mem-capacity expects a number, got {v:?}"))
        })
        .unwrap_or(1024);
    let dir = flag_value(&args, "--cache-dir").map(std::path::PathBuf::from);

    let config = ServerConfig {
        addr,
        threads,
        store: StoreConfig {
            dir: dir.clone(),
            mem_capacity,
        },
    };
    let server = Server::start(config).expect("bind and start the service");
    println!(
        "gpusimpow-serve listening on {} ({} sim threads, {} cache)",
        server.local_addr(),
        server.threads(),
        match &dir {
            Some(d) => format!("memory+disk at {}", d.display()),
            None => "memory-only".to_string(),
        }
    );

    // Blocks until a client sends a Shutdown request and the last
    // connection drains.
    let stats = server.join();
    println!(
        "gpusimpow-serve exiting: {} jobs ({} simulated, {} mem hits, {} disk hits, \
         {} coalesced, {} errors), hit rate {:.1}%",
        stats.jobs_received,
        stats.misses_simulated,
        stats.hits_mem,
        stats.hits_disk,
        stats.coalesced_waits,
        stats.errors,
        100.0 * stats.hit_rate(),
    );
}

//! Crossbar interconnect model.
//!
//! Crossbars appear three times in the modelled GPU: connecting register
//! banks to operand collectors, connecting lanes to shared-memory banks
//! (address and data crossbars), and as the chip-level NoC between cores
//! and memory partitions. The model follows McPAT's matrix-crossbar
//! approach: each input drives a horizontal bus across all outputs, each
//! output multiplexes all inputs through a vertical bus.

use gpusimpow_tech::node::{DeviceType, TechNode};
use gpusimpow_tech::units::{Energy, Power};
use gpusimpow_tech::wire::{Wire, WireClass};

use crate::costs::CircuitCosts;

/// A matrix crossbar with `inputs × outputs` ports of `width_bits` each.
///
/// # Examples
///
/// ```
/// use gpusimpow_circuit::crossbar::Crossbar;
/// use gpusimpow_tech::node::TechNode;
///
/// // Shared-memory data crossbar: 32 lanes to 16 banks, 32-bit data.
/// let tech = TechNode::planar(40)?;
/// let xbar = Crossbar::new(&tech, 32, 16, 32, 0.05)?;
/// assert!(xbar.transfer_energy().picojoules() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Crossbar {
    inputs: usize,
    outputs: usize,
    width_bits: usize,
    costs: CircuitCosts,
}

impl Crossbar {
    /// Builds a crossbar.
    ///
    /// `port_pitch_mm` is the physical spacing between adjacent ports —
    /// small (≈0.05 mm) for intra-core crossbars, large (≈1–2 mm) for the
    /// chip-level NoC.
    ///
    /// # Errors
    ///
    /// Returns an error for zero ports/width or a non-positive pitch.
    pub fn new(
        tech: &TechNode,
        inputs: usize,
        outputs: usize,
        width_bits: usize,
        port_pitch_mm: f64,
    ) -> Result<Self, &'static str> {
        if inputs == 0 || outputs == 0 || width_bits == 0 {
            return Err("crossbar ports and width must be non-zero");
        }
        if port_pitch_mm <= 0.0 || !port_pitch_mm.is_finite() {
            return Err("crossbar port pitch must be positive");
        }
        let vdd = tech.vdd();
        let class = if port_pitch_mm >= 0.5 {
            WireClass::Global
        } else {
            WireClass::Intermediate
        };
        // One transfer drives a horizontal bus spanning all outputs and a
        // vertical bus spanning all inputs (the selected column).
        let h_wire = Wire::new(tech, class, outputs as f64 * port_pitch_mm);
        let v_wire = Wire::new(tech, class, inputs as f64 * port_pitch_mm);
        let min_width_um = tech.feature_um() * 1.5;
        // Pass-gate drain loading at every crosspoint on both buses.
        let crosspoint_cap = tech.drain_cap_per_um() * (min_width_um * 4.0);
        let per_bit_cap = h_wire.capacitance()
            + v_wire.capacitance()
            + crosspoint_cap * (inputs + outputs) as f64;
        // Half the bits toggle on an average transfer.
        let transfer_energy = (per_bit_cap * width_bits as f64).switching_energy(vdd, vdd) * 0.5;

        // Area: wire grid plus crosspoint switches.
        let grid_area_mm2 = (inputs as f64 * port_pitch_mm) * (outputs as f64 * port_pitch_mm)
            * 0.05 // the crossbar occupies a slice of the routed area
            + (inputs * outputs * width_bits) as f64 * tech.logic_gate_area().mm2() * 0.25;
        let area = gpusimpow_tech::units::Area::from_mm2(grid_area_mm2);

        // Leakage: crosspoint drivers.
        let drivers = (inputs * outputs * width_bits) as f64;
        let leak_per_driver =
            (tech.sub_leak_per_um(DeviceType::HighPerformance) * (min_width_um * 2.0)) * vdd;
        let leakage: Power = leak_per_driver * drivers * 0.25;

        Ok(Crossbar {
            inputs,
            outputs,
            width_bits,
            costs: CircuitCosts::uniform(area, transfer_energy, leakage),
        })
    }

    /// Energy of moving one `width_bits` word through the crossbar.
    pub fn transfer_energy(&self) -> Energy {
        self.costs.read_energy
    }

    /// Aggregate bundle.
    pub fn costs(&self) -> CircuitCosts {
        self.costs
    }

    /// Input port count.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Output port count.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Port width in bits.
    pub fn width_bits(&self) -> usize {
        self.width_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t40() -> TechNode {
        TechNode::planar(40).unwrap()
    }

    #[test]
    fn bigger_crossbars_cost_more() {
        let small = Crossbar::new(&t40(), 8, 8, 32, 0.05).unwrap();
        let big = Crossbar::new(&t40(), 32, 32, 32, 0.05).unwrap();
        assert!(big.transfer_energy() > small.transfer_energy());
        assert!(big.costs().area.mm2() > small.costs().area.mm2());
        assert!(big.costs().leakage > small.costs().leakage);
    }

    #[test]
    fn wider_ports_cost_proportionally_more() {
        let narrow = Crossbar::new(&t40(), 16, 16, 32, 0.05).unwrap();
        let wide = Crossbar::new(&t40(), 16, 16, 128, 0.05).unwrap();
        let ratio = wide.transfer_energy() / narrow.transfer_energy();
        assert!((ratio - 4.0).abs() < 0.01);
    }

    #[test]
    fn noc_scale_crossbar_uses_global_wires() {
        // A chip-level crossbar (mm pitch) must cost much more per transfer
        // than an intra-core one.
        let core = Crossbar::new(&t40(), 16, 16, 64, 0.05).unwrap();
        let noc = Crossbar::new(&t40(), 16, 16, 64, 1.0).unwrap();
        assert!(noc.transfer_energy().picojoules() > 5.0 * core.transfer_energy().picojoules());
    }

    #[test]
    fn invalid_parameters_rejected() {
        let t = t40();
        assert!(Crossbar::new(&t, 0, 8, 32, 0.05).is_err());
        assert!(Crossbar::new(&t, 8, 0, 32, 0.05).is_err());
        assert!(Crossbar::new(&t, 8, 8, 0, 0.05).is_err());
        assert!(Crossbar::new(&t, 8, 8, 32, 0.0).is_err());
        assert!(Crossbar::new(&t, 8, 8, 32, -1.0).is_err());
    }

    #[test]
    fn transfer_energy_magnitude() {
        // A 32x16 shared-memory crossbar transfer should be O(0.1..10) pJ.
        let xbar = Crossbar::new(&t40(), 32, 16, 32, 0.05).unwrap();
        let pj = xbar.transfer_energy().picojoules();
        assert!(pj > 0.05 && pj < 20.0, "transfer {pj} pJ");
    }
}

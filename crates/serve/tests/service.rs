//! End-to-end service tests over a real TCP socket: protocol
//! roundtrips, cache behaviour across submissions, in-flight request
//! deduplication and cache/direct byte identity.

use std::sync::{Arc, Barrier};

use gpusimpow_serve::proto::decode_result;
use gpusimpow_serve::{
    Client, GovernorSpec, GpuPreset, JobSpec, KernelSpec, ResultSource, Server, ServerConfig,
    StoreConfig, SweepSpec,
};

fn quick_spec(iterations: u32) -> JobSpec {
    JobSpec {
        kernel: KernelSpec::ClusterStep {
            iterations,
            blocks: 2,
            threads: 64,
        },
        gpu: GpuPreset::Gt240,
        governor: GovernorSpec::Baseline,
        window_cycles: 0,
    }
}

fn start_server() -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        store: StoreConfig::default(),
    })
    .expect("server starts")
}

#[test]
fn submit_then_resubmit_serves_from_memory() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.ping().unwrap();

    let jobs = [quick_spec(32), quick_spec(48)];
    let first = client.submit(&jobs).unwrap();
    assert_eq!(first.len(), 2);
    for (outcome, job) in first.iter().zip(&jobs) {
        assert_eq!(outcome.digest, job.digest());
        assert_eq!(outcome.source, ResultSource::Simulated);
        let payload = outcome.payload.as_ref().expect("job succeeded");
        let result = decode_result(payload).expect("payload decodes");
        assert_eq!(result.reports.len(), 1);
        assert!(result.reports[0].report.total_power().watts() > 0.0);
    }

    // Same batch again: every job is a memory hit with identical bytes.
    let second = client.submit(&jobs).unwrap();
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(b.source, ResultSource::MemoryHit);
        assert_eq!(a.payload, b.payload, "cache must serve identical bytes");
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.misses_simulated, 2);
    assert_eq!(stats.hits_mem, 2);
    assert_eq!(stats.errors, 0);

    client.shutdown().unwrap();
    server.join();
}

/// Duplicates *within one batch* coalesce onto a single simulation.
#[test]
fn duplicates_in_one_batch_simulate_once() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let job = quick_spec(40);
    let outcomes = client
        .submit(&[job.clone(), job.clone(), job.clone()])
        .unwrap();
    assert_eq!(outcomes[0].source, ResultSource::Simulated);
    assert_eq!(outcomes[1].source, ResultSource::Coalesced);
    assert_eq!(outcomes[2].source, ResultSource::Coalesced);
    assert_eq!(outcomes[0].payload, outcomes[1].payload);
    assert_eq!(outcomes[0].payload, outcomes[2].payload);

    let stats = client.stats().unwrap();
    assert_eq!(stats.misses_simulated, 1);
    assert_eq!(stats.coalesced_waits, 2);

    client.shutdown().unwrap();
    server.join();
}

/// Two clients racing the same uncached job cost exactly one
/// simulation: whoever loses the claim blocks on the in-flight slot and
/// is served the owner's bytes. The job is deliberately slow (large
/// iteration count) so the loser reliably arrives while the owner is
/// still simulating.
#[test]
fn concurrent_identical_submissions_dedup_in_flight() {
    let server = start_server();
    let addr = server.local_addr();
    let slow = quick_spec(1500);

    let barrier = Arc::new(Barrier::new(2));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let job = slow.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                client.submit(&[job]).unwrap().remove(0)
            })
        })
        .collect();
    let outcomes: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    // Exactly one Simulated, the other Coalesced (or a memory hit if
    // the owner finished publishing before the loser classified — both
    // mean the loser paid nothing).
    let simulated = outcomes
        .iter()
        .filter(|o| o.source == ResultSource::Simulated)
        .count();
    assert_eq!(simulated, 1, "exactly one client owns the simulation");
    assert_eq!(
        outcomes[0].payload, outcomes[1].payload,
        "both clients receive byte-identical results"
    );

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.misses_simulated, 1,
        "the duplicate submission must not re-simulate"
    );
    assert_eq!(stats.errors, 0);

    client.shutdown().unwrap();
    server.join();
}

/// A cache-served report equals a direct in-process run, field for
/// field *and* byte for byte: the service adds transport and caching,
/// never a different answer.
#[test]
fn cached_result_is_byte_identical_to_direct_run() {
    let spec = JobSpec {
        kernel: KernelSpec::Lfsr {
            lanes: 16,
            iterations: 24,
            blocks: 2,
            threads: 64,
        },
        gpu: GpuPreset::Gt240,
        governor: GovernorSpec::Ondemand,
        window_cycles: 512,
    };
    let direct = gpusimpow_serve::run_job(&spec).unwrap();

    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let cold = client
        .submit(std::slice::from_ref(&spec))
        .unwrap()
        .remove(0);
    let warm = client.submit(&[spec]).unwrap().remove(0);
    assert_eq!(warm.source, ResultSource::MemoryHit);

    let cold_bytes = cold.payload.unwrap();
    let warm_bytes = warm.payload.unwrap();
    assert_eq!(
        cold_bytes, warm_bytes,
        "cold and cache-served payloads are the same bytes"
    );
    let served = decode_result(&warm_bytes).unwrap();
    assert_eq!(
        served, direct,
        "the service's answer equals a direct Gpu run (exact f64 bits)"
    );

    client.shutdown().unwrap();
    server.join();
}

/// A captured trace submitted as a job round-trips the whole service —
/// capture on the "client", replay on a server worker, power-evaluate,
/// cache, ship — and the answer equals a local power evaluation of the
/// *live* run it was captured from (exact f64 bits). Resubmission hits
/// the cache: the digest is a content address of the trace bytes.
#[test]
fn trace_job_matches_local_evaluation_of_the_captured_run() {
    use gpusimpow_kernels::{blackscholes::BlackScholes, Benchmark};
    use gpusimpow_power::GpuChip;
    use gpusimpow_sim::{Gpu, GpuConfig};

    let cfg = GpuConfig::gt240();
    let mut gpu = Gpu::new(cfg.clone()).unwrap();
    gpu.set_tracing(true);
    let live = BlackScholes { options: 1024 }
        .run(&mut gpu)
        .unwrap()
        .remove(0);
    let trace = gpu.take_traces().remove(0);
    let chip = GpuChip::new(&cfg).unwrap();
    let local = chip.evaluate_scoped(&live.kernel, &live.stats, &live.scoped);

    let spec = JobSpec {
        kernel: KernelSpec::Trace {
            bytes: trace.encode(),
        },
        gpu: GpuPreset::Gt240,
        governor: GovernorSpec::Baseline,
        window_cycles: 0,
    };

    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let cold = client
        .submit(std::slice::from_ref(&spec))
        .unwrap()
        .remove(0);
    assert_eq!(cold.source, ResultSource::Simulated);
    let served = decode_result(cold.payload.as_ref().unwrap()).unwrap();
    assert_eq!(served.reports.len(), 1);
    assert_eq!(
        served.reports[0], local,
        "served replay evaluation equals local live-run evaluation"
    );

    let warm = client.submit(&[spec]).unwrap().remove(0);
    assert_eq!(warm.source, ResultSource::MemoryHit);
    assert_eq!(warm.payload, cold.payload);

    client.shutdown().unwrap();
    server.join();
}

/// A multi-preset sweep is pure server-side expansion: its outcomes
/// are byte-identical to individually submitted per-preset jobs, and
/// sweep members share cache slots with individual submissions in both
/// directions.
#[test]
fn sweep_matches_individual_submissions_and_shares_the_cache() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Seed the cache with the GT240 member submitted individually.
    let gt240 = quick_spec(36);
    let seeded = client
        .submit(std::slice::from_ref(&gt240))
        .unwrap()
        .remove(0);
    assert_eq!(seeded.source, ResultSource::Simulated);

    let sweep = SweepSpec {
        kernel: gt240.kernel.clone(),
        governor: gt240.governor,
        window_cycles: gt240.window_cycles,
        gpus: vec![GpuPreset::Gt240, GpuPreset::Gtx580],
    };
    let outcomes = client.submit_sweep(&sweep).unwrap();
    assert_eq!(outcomes.len(), 2);

    // The GT240 member hits the individually seeded cache entry with
    // identical bytes; the GTX580 member is the only fresh simulation.
    assert_eq!(outcomes[0].digest, gt240.digest());
    assert_eq!(outcomes[0].source, ResultSource::MemoryHit);
    assert_eq!(outcomes[0].payload, seeded.payload);
    assert_eq!(outcomes[1].source, ResultSource::Simulated);

    // Every sweep outcome equals what submitting that member alone
    // returns (now all memory hits — the cache is shared both ways).
    for (outcome, member) in outcomes.iter().zip(sweep.expand()) {
        assert_eq!(outcome.digest, member.digest());
        let individual = client
            .submit(std::slice::from_ref(&member))
            .unwrap()
            .remove(0);
        assert_eq!(individual.source, ResultSource::MemoryHit);
        assert_eq!(outcome.payload, individual.payload);
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.misses_simulated, 2, "one simulation per distinct job");
    assert_eq!(stats.errors, 0);

    client.shutdown().unwrap();
    server.join();
}

/// Out-of-domain jobs are rejected at the protocol edge — the Submit
/// decodes to a request-level error — without killing the connection
/// or the server, and nothing from the bad batch is simulated.
#[test]
fn invalid_job_is_rejected_without_killing_the_connection() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let bad = JobSpec {
        kernel: KernelSpec::Conflict {
            stride: 4,
            iterations: 16,
            blocks: 1,
            threads: 64, // conflict kernel allows at most 32
        },
        gpu: GpuPreset::Gt240,
        governor: GovernorSpec::Baseline,
        window_cycles: 0,
    };
    let err = client.submit(&[bad, quick_spec(32)]).unwrap_err();
    assert!(
        err.to_string().contains("invalid job"),
        "rejection names the domain violation, got: {err}"
    );

    // Connection still healthy; nothing from the rejected batch ran.
    client.ping().unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.misses_simulated, 0);
    assert_eq!(stats.errors, 0);

    // A clean batch on the same connection works.
    let ok = client.submit(&[quick_spec(32)]).unwrap().remove(0);
    assert!(ok.payload.is_ok());

    client.shutdown().unwrap();
    server.join();
}

/// Disk-tier persistence through the full service: results survive a
/// server restart, and a corrupted entry is evicted and re-simulated.
#[test]
fn disk_tier_survives_restart_and_heals_corruption() {
    let dir = std::env::temp_dir().join(format!("gpusimpow-serve-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        store: StoreConfig {
            dir: Some(dir.clone()),
            mem_capacity: 64,
        },
    };
    let job = quick_spec(56);

    // First server instance simulates and writes through to disk.
    let server = Server::start(config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let cold = client.submit(std::slice::from_ref(&job)).unwrap().remove(0);
    assert_eq!(cold.source, ResultSource::Simulated);
    client.shutdown().unwrap();
    server.join();

    // Second instance (empty memory tier) serves the same job from
    // disk.
    let server = Server::start(config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let warm = client.submit(std::slice::from_ref(&job)).unwrap().remove(0);
    assert_eq!(warm.source, ResultSource::DiskHit);
    assert_eq!(cold.payload, warm.payload);
    client.shutdown().unwrap();
    server.join();

    // Corrupt the on-disk entry; a third instance detects it, evicts
    // it and transparently re-simulates to the same bytes.
    let entry = dir.join(format!("{}.gspc", job.digest().to_hex()));
    let good = std::fs::read(&entry).unwrap();
    std::fs::write(&entry, &good[..good.len() - 7]).unwrap();

    let server = Server::start(config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let healed = client.submit(&[job]).unwrap().remove(0);
    assert_eq!(
        healed.source,
        ResultSource::Simulated,
        "corrupt entry must be re-simulated, not served"
    );
    assert_eq!(
        cold.payload, healed.payload,
        "re-simulation reproduces the bytes"
    );
    let stats = client.stats().unwrap();
    assert_eq!(stats.corrupt_evictions, 1);
    client.shutdown().unwrap();
    server.join();

    std::fs::remove_dir_all(&dir).unwrap();
}

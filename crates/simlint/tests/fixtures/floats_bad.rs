//! Order-ambiguous float reductions and build-divergent float math —
//! each construct here must fire.

use std::collections::BTreeMap;

pub fn total_power(parts: &BTreeMap<String, f64>) -> f64 {
    parts.values().sum::<f64>()
}

pub fn folded(parts: &BTreeMap<String, f64>) -> f64 {
    parts.values().fold(0.0, |acc, p| acc + p)
}

#[cfg(target_arch = "x86_64")]
pub fn lane_energy(xs: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for x in xs {
        acc += x;
    }
    acc
}

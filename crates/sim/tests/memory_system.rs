//! Focused tests of the memory-system behaviours that drive DRAM power:
//! cross-warp miss merging (the coalescer's pending-request table),
//! row-buffer locality, and NoC traffic accounting.

use gpusimpow_isa::{assemble, LaunchConfig};
use gpusimpow_sim::{Gpu, GpuConfig};

#[test]
fn cross_warp_misses_merge_in_the_pending_request_table() {
    // Every thread of every warp reads the SAME 128-byte line: the
    // pending-request table (paper ref. [24]) must collapse all of it
    // into very few DRAM reads.
    let mut gpu = Gpu::new(GpuConfig::gt240()).unwrap();
    let buf = gpu.alloc_f32(1024);
    let src = format!(
        "
        mov r0, #0
        ld.global r1, [r0+{0}]
        exit
    ",
        buf.addr()
    );
    let k = assemble("sameline", &src).unwrap();
    let report = gpu.launch(&k, LaunchConfig::linear(1, 256)).unwrap();
    let s = &report.stats;
    assert_eq!(s.coalescer_outputs, 8, "one segment per warp");
    // All 8 warps run on one core; their misses merge into (nearly) one
    // outstanding line.
    assert!(
        s.dram_read_bursts <= 8,
        "merged reads, got {} bursts",
        s.dram_read_bursts
    );
}

#[test]
fn sequential_streams_enjoy_row_buffer_locality() {
    let mut gpu = Gpu::new(GpuConfig::gt240()).unwrap();
    let buf = gpu.alloc(1 << 20);
    let src = format!(
        "
        s2r r0, tid.x
        s2r r1, ctaid.x
        s2r r2, ntid.x
        imad r3, r1, r2, r0
        shl r4, r3, #2
        ld.global r5, [r4+{0}]
        exit
    ",
        buf.addr()
    );
    let k = assemble("stream", &src).unwrap();
    let report = gpu.launch(&k, LaunchConfig::linear(32, 256)).unwrap();
    let s = &report.stats;
    assert!(
        s.dram_row_hit_rate() > 0.9,
        "sequential stream should hit open rows: {:.2}",
        s.dram_row_hit_rate()
    );
}

#[test]
fn scattered_accesses_thrash_rows() {
    let mut gpu = Gpu::new(GpuConfig::gt240()).unwrap();
    let buf = gpu.alloc(32 << 20);
    // Each thread strides by 64 KiB: every access a fresh row.
    let src = format!(
        "
        s2r r0, tid.x
        s2r r1, ctaid.x
        s2r r2, ntid.x
        imad r3, r1, r2, r0
        shl r4, r3, #16
        ld.global r5, [r4+{0}]
        exit
    ",
        buf.addr()
    );
    let k = assemble("scatter", &src).unwrap();
    let report = gpu.launch(&k, LaunchConfig::linear(2, 256)).unwrap();
    let s = &report.stats;
    // Each 128 B request is 4 bursts to one row, so even with zero
    // inter-request locality the burst-level hit rate floors at 0.75.
    assert!(
        s.dram_row_hit_rate() <= 0.78,
        "64 KiB strides should open a row per request: {:.2}",
        s.dram_row_hit_rate()
    );
    // Every request activates a fresh row: maximum activate power.
    assert!(
        s.dram_activates * 4 >= s.dram_read_bursts,
        "{} activates for {} bursts",
        s.dram_activates,
        s.dram_read_bursts
    );
}

#[test]
fn noc_flits_scale_with_traffic_both_directions() {
    let mut gpu = Gpu::new(GpuConfig::gt240()).unwrap();
    let buf = gpu.alloc(1 << 20);
    let read_src = format!(
        "
        s2r r0, tid.x
        s2r r1, ctaid.x
        s2r r2, ntid.x
        imad r3, r1, r2, r0
        shl r4, r3, #2
        ld.global r5, [r4+{0}]
        exit
    ",
        buf.addr()
    );
    let k = assemble("rd", &read_src).unwrap();
    let small = gpu.launch(&k, LaunchConfig::linear(4, 256)).unwrap();
    let large = gpu.launch(&k, LaunchConfig::linear(16, 256)).unwrap();
    assert!(
        large.stats.noc_flits > 3 * small.stats.noc_flits,
        "4x the warps, ~4x the flits: {} vs {}",
        large.stats.noc_flits,
        small.stats.noc_flits
    );
    // Read replies carry data: flits exceed transfers.
    assert!(large.stats.noc_flits > large.stats.noc_transfers);
}

#[test]
fn stores_generate_write_traffic_without_blocking_warps() {
    let mut gpu = Gpu::new(GpuConfig::gt240()).unwrap();
    let buf = gpu.alloc_f32(65536);
    let src = format!(
        "
        s2r r0, tid.x
        s2r r1, ctaid.x
        s2r r2, ntid.x
        imad r3, r1, r2, r0
        shl r4, r3, #2
        st.global [r4+{0}], r3
        exit
    ",
        buf.addr()
    );
    let k = assemble("wr", &src).unwrap();
    let report = gpu.launch(&k, LaunchConfig::linear(8, 256)).unwrap();
    let s = &report.stats;
    assert!(s.dram_write_bursts > 0);
    assert_eq!(s.dram_read_bursts, 0, "pure store kernel");
    // Fire-and-forget stores: the kernel should not be memory-latency
    // bound (cycles comparable to an ALU-only kernel of the same size).
    assert!(
        s.shader_cycles < 6000,
        "stores stalled: {}",
        s.shader_cycles
    );
    // Data made it to memory.
    assert_eq!(gpu.d2h_u32(buf, 3), vec![0, 1, 2]);
}

#[test]
fn l2_absorbs_repeated_lines_on_fermi() {
    let mut gpu = Gpu::new(GpuConfig::gtx580()).unwrap();
    let buf = gpu.alloc_f32(256);
    // 64 blocks all read the same 1 KiB region: after the cold fills,
    // the L2 serves everything; DRAM sees only the cold misses.
    let src = format!(
        "
        s2r r0, tid.x
        shl r4, r0, #2
        ld.global r5, [r4+{0}]
        exit
    ",
        buf.addr()
    );
    let k = assemble("l2reuse", &src).unwrap();
    let report = gpu.launch(&k, LaunchConfig::linear(64, 256)).unwrap();
    let s = &report.stats;
    assert!(s.l2_accesses > 0);
    assert!(
        s.l2_hit_rate() > 0.5,
        "cross-block reuse should hit in L2: {:.2}",
        s.l2_hit_rate()
    );
    assert!(
        s.dram_read_bursts <= 16 * 4,
        "only cold lines reach DRAM: {}",
        s.dram_read_bursts
    );
}

//! The power tracer: turns activity windows into [`PowerTrace`]s under a
//! [`Governor`], with optional idle-cluster gating.

use gpusimpow_power::GpuChip;
use gpusimpow_sim::{ActivitySink, ActivityWindow, LaunchReport, RecordedLaunch};
use gpusimpow_tech::clockdomain::DvfsTable;
use gpusimpow_tech::clockdomain::OperatingPoint;
use gpusimpow_tech::units::{Cycles, Power, Time};

use crate::governor::{Governor, WindowContext};
use crate::trace::{ComponentPowers, PowerSample, PowerTrace};

/// Clock/power gating of idle clusters.
///
/// When enabled, the static power of the cores block is scaled by
/// `busy + (1 − busy) × retention`, where `busy` is the window's
/// busy-cluster fraction: fully idle clusters drop to the retention
/// floor (state-preserving sleep keeps some rails up), busy clusters pay
/// full leakage. Disabled by default so that an ungoverned trace
/// integrates to exactly the single-shot report energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterGating {
    /// Whether gating is applied at all.
    pub enabled: bool,
    /// Fraction of leakage an idle (gated) cluster still draws, in
    /// `[0, 1]`.
    pub retention: f64,
    /// When true, gating decisions are made per cluster from the
    /// window's scoped busy vector ([`ActivityWindow::cluster_busy`]):
    /// a cluster is gated only if it was idle for the *entire* window
    /// (entering and leaving a sleep state has latency, so a cluster
    /// that was busy at any point keeps its rails up). This is the
    /// realistic, non-linear policy — unlike the chip-average factor it
    /// cannot be reproduced from `cluster_busy_cycles` alone.
    pub per_cluster: bool,
}

impl ClusterGating {
    /// Gating disabled (the default).
    pub fn off() -> Self {
        ClusterGating {
            enabled: false,
            retention: 1.0,
            per_cluster: false,
        }
    }

    /// Gating enabled with the given retention floor, priced from the
    /// chip-average busy-cluster fraction.
    ///
    /// # Panics
    ///
    /// Panics if `retention` is outside `[0, 1]`.
    pub fn with_retention(retention: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&retention),
            "retention must be in [0, 1]"
        );
        ClusterGating {
            enabled: true,
            retention,
            per_cluster: false,
        }
    }

    /// Gating enabled with the given retention floor, decided per
    /// cluster from the scoped activity registry (whole-window-idle
    /// clusters only).
    ///
    /// # Panics
    ///
    /// Panics if `retention` is outside `[0, 1]`.
    pub fn per_cluster(retention: f64) -> Self {
        ClusterGating {
            per_cluster: true,
            ..Self::with_retention(retention)
        }
    }

    /// Factor applied to cores static power for a window whose
    /// busy-cluster fraction is `busy_fraction`.
    pub fn static_factor(&self, busy_fraction: f64) -> f64 {
        if !self.enabled {
            1.0
        } else {
            let busy = busy_fraction.clamp(0.0, 1.0);
            busy + (1.0 - busy) * self.retention
        }
    }

    /// Factor applied to cores static power under the per-cluster
    /// policy: clusters with any busy cycle in the window pay full
    /// leakage, whole-window-idle clusters drop to the retention floor.
    pub fn scoped_static_factor(&self, cluster_busy: &[u64]) -> f64 {
        if !self.enabled || cluster_busy.is_empty() {
            return if self.enabled { self.retention } else { 1.0 };
        }
        let clusters = cluster_busy.len() as f64;
        let awake = cluster_busy.iter().filter(|&&busy| busy > 0).count() as f64;
        (awake + (clusters - awake) * self.retention) / clusters
    }
}

impl Default for ClusterGating {
    fn default() -> Self {
        Self::off()
    }
}

/// Evaluates windowed activity into power samples for a fixed chip,
/// DVFS table and gating setting. One tracer can replay the same
/// recording under many governors, or trace live via
/// [`PowerTracer::stream`].
#[derive(Debug, Clone)]
pub struct PowerTracer {
    chip: GpuChip,
    dvfs: DvfsTable,
    gating: ClusterGating,
}

impl PowerTracer {
    /// A tracer for `chip` with a default five-point DVFS ladder
    /// (frequency 50 %–100 % of nominal, voltage 80 %–100 % of the
    /// node's Vdd) and gating off.
    pub fn new(chip: GpuChip) -> Self {
        let nominal = OperatingPoint::new(chip.tech().vdd(), chip.clocks().shader());
        let dvfs = DvfsTable::linear(nominal, 0.5, 0.8, 5);
        PowerTracer {
            chip,
            dvfs,
            gating: ClusterGating::off(),
        }
    }

    /// Replaces the DVFS table.
    ///
    /// # Panics
    ///
    /// Panics if the table's nominal frequency does not match the chip's
    /// shader clock (the activity was simulated at that clock).
    pub fn with_dvfs(mut self, dvfs: DvfsTable) -> Self {
        let chip_shader = self.chip.clocks().shader().hertz();
        let nominal = dvfs.nominal().shader_freq.hertz();
        assert!(
            (nominal / chip_shader - 1.0).abs() < 1e-9,
            "DVFS nominal frequency must equal the chip's shader clock"
        );
        self.dvfs = dvfs;
        self
    }

    /// Replaces the gating setting.
    pub fn with_gating(mut self, gating: ClusterGating) -> Self {
        self.gating = gating;
        self
    }

    /// The chip being traced.
    pub fn chip(&self) -> &GpuChip {
        &self.chip
    }

    /// The DVFS table in effect.
    pub fn dvfs(&self) -> &DvfsTable {
        &self.dvfs
    }

    /// The gating setting in effect.
    pub fn gating(&self) -> ClusterGating {
        self.gating
    }

    /// Replays a recorded launch under `governor`, producing one sample
    /// per window.
    pub fn replay(&self, launch: &RecordedLaunch, governor: &mut dyn Governor) -> PowerTrace {
        governor.reset();
        let mut trace = PowerTrace::new(launch.kernel.clone(), governor.name());
        let mut prev_op = self.dvfs.nominal_index();
        let mut start = Time::ZERO;
        for w in &launch.windows {
            let sample = self.eval_window(&launch.kernel, w, prev_op, governor, start);
            start += sample.duration;
            prev_op = sample.op_index;
            trace.samples.push(sample);
        }
        trace
    }

    /// A live [`ActivitySink`] that builds traces as the simulation
    /// runs; pass it to `Gpu::launch_with_sink`.
    pub fn stream<G: Governor>(&self, governor: G) -> StreamingTracer<'_, G> {
        StreamingTracer {
            tracer: self,
            governor,
            prev_op: self.dvfs.nominal_index(),
            start: Time::ZERO,
            current: None,
            finished: Vec::new(),
        }
    }

    /// Evaluates one window: estimates its chip power at every operating
    /// point, lets the governor choose one, and prices the window there.
    fn eval_window(
        &self,
        kernel: &str,
        w: &ActivityWindow,
        prev_op: usize,
        governor: &mut dyn Governor,
        start: Time,
    ) -> PowerSample {
        let cycles = w.cycles();
        debug_assert!(cycles > 0, "windows cover at least one cycle");
        let report = self.chip.evaluate(kernel, &w.stats);
        let cfg = self.chip.config();

        let utilization =
            w.stats.core_busy_cycles as f64 / (cycles as f64 * cfg.total_cores() as f64);
        let busy_cluster_fraction =
            w.stats.cluster_busy_cycles as f64 / (cycles as f64 * cfg.clusters as f64);
        // Scoped per-cluster load from the registry's scope dimension;
        // empty when the window predates scoped recording (hand-built
        // test windows).
        let cluster_utilization = w.cluster_busy_fractions();
        let gate = if self.gating.per_cluster && !w.cluster_busy.is_empty() {
            self.gating.scoped_static_factor(&w.cluster_busy)
        } else {
            self.gating.static_factor(busy_cluster_fraction)
        };

        // Static power with gating applied to the cores block only (the
        // uncore keeps serving the rest of the chip).
        let cores_static = report.chip.cores.static_power * gate;
        let uncore_static = report.chip.noc.static_power
            + report.chip.mc.static_power
            + report.chip.pcie.static_power
            + report.chip.l2.static_power;

        // Chip power of this window at each operating point: dynamic
        // scales as (V/V₀)²·(f/f₀), static as (V/V₀)³.
        let dynamic_nominal = report.dynamic_power();
        let power_at: Vec<Power> = (0..self.dvfs.len())
            .map(|i| {
                dynamic_nominal * self.dvfs.dynamic_power_factor(i)
                    + (cores_static + uncore_static) * self.dvfs.leakage_factor(i)
            })
            .collect();

        let op_index = governor
            .select(&WindowContext {
                window: w,
                utilization,
                cluster_utilization: &cluster_utilization,
                prev_op,
                dvfs: &self.dvfs,
                power_at: &power_at,
            })
            .min(self.dvfs.len() - 1);

        let dyn_factor = self.dvfs.dynamic_power_factor(op_index);
        let leak_factor = self.dvfs.leakage_factor(op_index);
        let freq_scale = self.dvfs.freq_scale(op_index);
        let duration = self
            .chip
            .clocks()
            .shader_cycles_to_time(Cycles::new(cycles))
            * (1.0 / freq_scale);

        PowerSample {
            index: w.index,
            start,
            duration,
            op_index,
            op: self.dvfs.point(op_index),
            utilization,
            dynamic: ComponentPowers {
                cores: report.chip.cores.dynamic_power * dyn_factor,
                noc: report.chip.noc.dynamic_power * dyn_factor,
                mc: report.chip.mc.dynamic_power * dyn_factor,
                pcie: report.chip.pcie.dynamic_power * dyn_factor,
                l2: report.chip.l2.dynamic_power * dyn_factor,
            },
            static_power: (cores_static + uncore_static) * leak_factor,
            dram_power: self
                .chip
                .dram()
                .evaluate(&w.stats.to_vector(), duration)
                .total(),
        }
    }
}

/// Live tracing sink returned by [`PowerTracer::stream`].
#[derive(Debug)]
pub struct StreamingTracer<'a, G> {
    tracer: &'a PowerTracer,
    governor: G,
    prev_op: usize,
    start: Time,
    current: Option<PowerTrace>,
    finished: Vec<PowerTrace>,
}

impl<G: Governor> StreamingTracer<'_, G> {
    /// Traces of all finished launches, in launch order.
    pub fn traces(&self) -> &[PowerTrace] {
        &self.finished
    }

    /// Consumes the sink, returning its finished traces.
    pub fn into_traces(self) -> Vec<PowerTrace> {
        self.finished
    }
}

impl<G: Governor> ActivitySink for StreamingTracer<'_, G> {
    fn on_launch_begin(&mut self, kernel: &str, _window_cycles: u64) {
        self.governor.reset();
        self.prev_op = self.tracer.dvfs.nominal_index();
        self.start = Time::ZERO;
        self.current = Some(PowerTrace::new(kernel, self.governor.name()));
    }

    fn on_window(&mut self, window: &ActivityWindow) {
        let trace = self
            .current
            .as_mut()
            .expect("on_launch_begin precedes on_window");
        let sample = self.tracer.eval_window(
            &trace.kernel,
            window,
            self.prev_op,
            &mut self.governor,
            self.start,
        );
        self.start += sample.duration;
        self.prev_op = sample.op_index;
        trace.samples.push(sample);
    }

    fn on_launch_end(&mut self, _report: &LaunchReport) {
        if let Some(trace) = self.current.take() {
            self.finished.push(trace);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusimpow_sim::{ActivityStats, GpuConfig};

    #[test]
    fn gating_factor_interpolates_to_retention() {
        let g = ClusterGating::with_retention(0.2);
        assert!((g.static_factor(1.0) - 1.0).abs() < 1e-12);
        assert!((g.static_factor(0.0) - 0.2).abs() < 1e-12);
        assert!((g.static_factor(0.5) - 0.6).abs() < 1e-12);
        assert!((ClusterGating::off().static_factor(0.0) - 1.0).abs() < 1e-12);
    }

    fn window(cycles: u64, busy_cores: u64, busy_clusters: u64) -> ActivityWindow {
        let mut stats = ActivityStats::new();
        stats.shader_cycles = cycles;
        stats.core_busy_cycles = busy_cores;
        stats.cluster_busy_cycles = busy_clusters;
        stats.int_lane_ops = 1000 * cycles;
        ActivityWindow {
            index: 0,
            start_cycle: 0,
            end_cycle: cycles,
            stats,
            cluster_busy: Vec::new(),
        }
    }

    /// A window with an explicit per-cluster busy split (cycles each
    /// cluster had at least one busy core).
    fn scoped_window(cycles: u64, busy_cores: u64, cluster_busy: Vec<u64>) -> ActivityWindow {
        let mut w = window(cycles, busy_cores, cluster_busy.iter().sum());
        w.cluster_busy = cluster_busy;
        w
    }

    fn tracer() -> PowerTracer {
        PowerTracer::new(GpuChip::new(&GpuConfig::gt240()).unwrap())
    }

    #[test]
    fn nominal_window_matches_single_shot_report() {
        let t = tracer();
        let w = window(2048, 2048 * 12, 2048 * 3);
        let mut g = crate::governor::Baseline;
        let sample = t.eval_window("k", &w, t.dvfs.nominal_index(), &mut g, Time::ZERO);
        let report = t.chip.evaluate("k", &w.stats);
        assert!(
            (sample.total_power().watts() - report.total_power().watts()).abs() < 1e-9,
            "baseline sample must price windows exactly like the report"
        );
        assert!((sample.duration.seconds() - report.time.seconds()).abs() < 1e-15);
        assert!((sample.dram_power.watts() - report.dram.total().watts()).abs() < 1e-9);
    }

    #[test]
    fn slower_point_cuts_power_and_stretches_time() {
        let t = tracer();
        let w = window(2048, 2048 * 12, 2048 * 3);
        struct Slowest;
        impl Governor for Slowest {
            fn name(&self) -> &str {
                "slowest"
            }
            fn select(&mut self, _ctx: &WindowContext<'_>) -> usize {
                0
            }
        }
        let mut g = Slowest;
        let slow = t.eval_window("k", &w, t.dvfs.nominal_index(), &mut g, Time::ZERO);
        let mut b = crate::governor::Baseline;
        let fast = t.eval_window("k", &w, t.dvfs.nominal_index(), &mut b, Time::ZERO);
        assert!(slow.total_power() < fast.total_power());
        assert!(slow.duration > fast.duration);
        // Dynamic energy still drops (V² factor) even though time grows.
        assert!(slow.dynamic_power() * slow.duration < fast.dynamic_power() * fast.duration);
    }

    #[test]
    fn gating_reduces_static_power_on_idle_windows() {
        let chip = GpuChip::new(&GpuConfig::gt240()).unwrap();
        let gated = PowerTracer::new(chip.clone()).with_gating(ClusterGating::with_retention(0.1));
        let ungated = PowerTracer::new(chip);
        // Half the clusters idle the whole window.
        let w = window(2048, 2048 * 6, 2048 * 2);
        let mut g1 = crate::governor::Baseline;
        let mut g2 = crate::governor::Baseline;
        let a = gated.eval_window("k", &w, 4, &mut g1, Time::ZERO);
        let b = ungated.eval_window("k", &w, 4, &mut g2, Time::ZERO);
        assert!(a.static_power < b.static_power);
        assert_eq!(a.dynamic_power(), b.dynamic_power());
    }

    #[test]
    fn scoped_gating_differs_from_chip_average_on_partial_busy() {
        // Every cluster busy for half the window: the chip-average
        // policy sees busy fraction 0.5 and gates half the leakage
        // away, but no cluster was idle long enough to actually enter a
        // sleep state — the scoped policy keeps all rails up.
        let retention = 0.1;
        let chip = GpuChip::new(&GpuConfig::gt240()).unwrap();
        let averaged =
            PowerTracer::new(chip.clone()).with_gating(ClusterGating::with_retention(retention));
        let scoped = PowerTracer::new(chip).with_gating(ClusterGating::per_cluster(retention));
        let w = scoped_window(2048, 2048 * 6, vec![1024, 1024, 1024, 1024]);
        let mut g1 = crate::governor::Baseline;
        let mut g2 = crate::governor::Baseline;
        let avg_sample = averaged.eval_window("k", &w, 4, &mut g1, Time::ZERO);
        let scoped_sample = scoped.eval_window("k", &w, 4, &mut g2, Time::ZERO);
        assert!(
            scoped_sample.static_power > avg_sample.static_power,
            "no whole-window-idle cluster, so scoped gating must not gate"
        );

        // Same chip-wide busy-cluster cycles, but concentrated: three
        // clusters idle the whole window and do get gated.
        let w2 = scoped_window(2048, 2048 * 6, vec![2048, 2048, 0, 0]);
        let mut g3 = crate::governor::Baseline;
        let gated = scoped.eval_window("k", &w2, 4, &mut g3, Time::ZERO);
        assert!(gated.static_power < scoped_sample.static_power);
    }

    #[test]
    fn scoped_factor_gates_only_whole_window_idle_clusters() {
        let g = ClusterGating::per_cluster(0.2);
        // Two of four clusters idle: (2 + 2*0.2)/4 = 0.6.
        assert!((g.scoped_static_factor(&[100, 1, 0, 0]) - 0.6).abs() < 1e-12);
        // Everyone at least briefly busy: nothing gated.
        assert!((g.scoped_static_factor(&[1, 1, 1, 1]) - 1.0).abs() < 1e-12);
        // Chip-average policy on the same window gates by fraction.
        let avg = ClusterGating::with_retention(0.2);
        assert!(avg.static_factor(0.5) < g.scoped_static_factor(&[100, 1, 1, 1]));
    }

    #[test]
    fn replay_produces_one_sample_per_window() {
        let t = tracer();
        let launch = RecordedLaunch {
            kernel: "k".to_string(),
            window_cycles: 2048,
            windows: vec![
                window(2048, 2048 * 12, 2048 * 3),
                window(2048, 2048 * 2, 2048),
            ],
            report: None,
        };
        let mut g = crate::governor::Baseline;
        let trace = t.replay(&launch, &mut g);
        assert_eq!(trace.samples.len(), 2);
        assert_eq!(trace.governor, "baseline");
        // Samples are laid out back to back in time.
        assert!(
            (trace.samples[1].start - trace.samples[0].duration)
                .seconds()
                .abs()
                < 1e-15
        );
    }
}

//! Functional (value-level) semantics of the ISA.
//!
//! The simulator executes instructions functionally at issue time and
//! models timing separately; these pure helpers define the arithmetic.

use gpusimpow_isa::{CmpOp, FpOp, IntOp, SfuOp};

/// Evaluates a two-source integer operation.
pub fn eval_int(op: IntOp, a: u32, b: u32) -> u32 {
    match op {
        IntOp::Add => a.wrapping_add(b),
        IntOp::Sub => a.wrapping_sub(b),
        IntOp::Mul => a.wrapping_mul(b),
        IntOp::Min => (a as i32).min(b as i32) as u32,
        IntOp::Max => (a as i32).max(b as i32) as u32,
        IntOp::And => a & b,
        IntOp::Or => a | b,
        IntOp::Xor => a ^ b,
        IntOp::Shl => a.wrapping_shl(b),
        IntOp::Shr => a.wrapping_shr(b),
        IntOp::Sra => ((a as i32).wrapping_shr(b)) as u32,
    }
}

/// The single quiet NaN all FP results are canonicalized to, like real
/// GPU hardware.
///
/// IEEE 754 leaves NaN payload propagation implementation-defined and
/// LLVM freely commutes `fadd`/`fmul` operands, so without this the bits
/// of `NaN op NaN` would depend on which code path (scalar call vs
/// autovectorised row loop) the optimiser happened to emit.
pub const CANONICAL_NAN: u32 = 0x7FC0_0000;

#[inline]
fn canonical_bits(r: f32) -> u32 {
    if r.is_nan() {
        CANONICAL_NAN
    } else {
        r.to_bits()
    }
}

/// Evaluates a two-source floating-point operation on f32 bit patterns.
pub fn eval_fp(op: FpOp, a: u32, b: u32) -> u32 {
    let (x, y) = (f32::from_bits(a), f32::from_bits(b));
    let r = match op {
        FpOp::Add => x + y,
        FpOp::Sub => x - y,
        FpOp::Mul => x * y,
        FpOp::Min => x.min(y),
        FpOp::Max => x.max(y),
    };
    canonical_bits(r)
}

/// Evaluates a fused multiply-add on f32 bit patterns.
pub fn eval_ffma(a: u32, b: u32, c: u32) -> u32 {
    canonical_bits(f32::from_bits(a).mul_add(f32::from_bits(b), f32::from_bits(c)))
}

/// Evaluates an integer multiply-add.
pub fn eval_imad(a: u32, b: u32, c: u32) -> u32 {
    a.wrapping_mul(b).wrapping_add(c)
}

/// Evaluates a special-function operation on an f32 bit pattern.
///
/// Real SFUs use quadratic interpolation with ~22 good mantissa bits; the
/// difference is irrelevant to power/performance, so we use full-precision
/// host math.
pub fn eval_sfu(op: SfuOp, a: u32) -> u32 {
    let x = f32::from_bits(a);
    let r = match op {
        SfuOp::Rcp => 1.0 / x,
        SfuOp::Sqrt => x.sqrt(),
        SfuOp::Rsqrt => 1.0 / x.sqrt(),
        SfuOp::Sin => x.sin(),
        SfuOp::Cos => x.cos(),
        SfuOp::Ex2 => x.exp2(),
        SfuOp::Lg2 => x.log2(),
    };
    canonical_bits(r)
}

/// Evaluates a signed integer comparison to 0/1.
pub fn eval_icmp(op: CmpOp, a: u32, b: u32) -> u32 {
    let (x, y) = (a as i32, b as i32);
    let r = match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    };
    r as u32
}

/// Evaluates an f32 comparison to 0/1 (false on NaN except `Ne`).
pub fn eval_fcmp(op: CmpOp, a: u32, b: u32) -> u32 {
    let (x, y) = (f32::from_bits(a), f32::from_bits(b));
    let r = match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    };
    r as u32
}

/// Signed int → f32.
pub fn eval_i2f(a: u32) -> u32 {
    (a as i32 as f32).to_bits()
}

/// f32 → signed int, truncating, saturating at the i32 range.
pub fn eval_f2i(a: u32) -> u32 {
    let x = f32::from_bits(a);
    if x.is_nan() {
        0
    } else {
        (x as i64).clamp(i32::MIN as i64, i32::MAX as i64) as i32 as u32
    }
}

// --- lane-array (SoA) variants ----------------------------------------------
//
// Dense structure-of-arrays forms of the scalar helpers above: each takes
// contiguous per-lane input rows and fills one output row, with the opcode
// dispatch hoisted out of the loop so every arm monomorphises into a tight
// loop over equal-length slices the compiler can autovectorise. Callers
// evaluate *every* lane of the warp — including inactive ones, whose rows
// may hold stale register values — and discard the dead results with a
// masked scatter; that is sound because every operation here is total
// (wrapping integer math, IEEE f32 arithmetic, saturating conversions).
// Each arm applies the matching scalar helper with a constant opcode, so
// per-lane bit-identity with the scalar path holds by construction.

#[inline]
fn map1(a: &[u32], out: &mut [u32], f: impl Fn(u32) -> u32) {
    for (o, &x) in out.iter_mut().zip(a) {
        *o = f(x);
    }
}

#[inline]
fn map2(a: &[u32], b: &[u32], out: &mut [u32], f: impl Fn(u32, u32) -> u32) {
    for (o, (&x, &y)) in out.iter_mut().zip(a.iter().zip(b)) {
        *o = f(x, y);
    }
}

#[inline]
fn map3(a: &[u32], b: &[u32], c: &[u32], out: &mut [u32], f: impl Fn(u32, u32, u32) -> u32) {
    for (o, ((&x, &y), &z)) in out.iter_mut().zip(a.iter().zip(b).zip(c)) {
        *o = f(x, y, z);
    }
}

/// Row form of [`eval_int`].
pub fn eval_int_lanes(op: IntOp, a: &[u32], b: &[u32], out: &mut [u32]) {
    match op {
        IntOp::Add => map2(a, b, out, |x, y| eval_int(IntOp::Add, x, y)),
        IntOp::Sub => map2(a, b, out, |x, y| eval_int(IntOp::Sub, x, y)),
        IntOp::Mul => map2(a, b, out, |x, y| eval_int(IntOp::Mul, x, y)),
        IntOp::Min => map2(a, b, out, |x, y| eval_int(IntOp::Min, x, y)),
        IntOp::Max => map2(a, b, out, |x, y| eval_int(IntOp::Max, x, y)),
        IntOp::And => map2(a, b, out, |x, y| eval_int(IntOp::And, x, y)),
        IntOp::Or => map2(a, b, out, |x, y| eval_int(IntOp::Or, x, y)),
        IntOp::Xor => map2(a, b, out, |x, y| eval_int(IntOp::Xor, x, y)),
        IntOp::Shl => map2(a, b, out, |x, y| eval_int(IntOp::Shl, x, y)),
        IntOp::Shr => map2(a, b, out, |x, y| eval_int(IntOp::Shr, x, y)),
        IntOp::Sra => map2(a, b, out, |x, y| eval_int(IntOp::Sra, x, y)),
    }
}

/// Row form of [`eval_fp`].
pub fn eval_fp_lanes(op: FpOp, a: &[u32], b: &[u32], out: &mut [u32]) {
    match op {
        FpOp::Add => map2(a, b, out, |x, y| eval_fp(FpOp::Add, x, y)),
        FpOp::Sub => map2(a, b, out, |x, y| eval_fp(FpOp::Sub, x, y)),
        FpOp::Mul => map2(a, b, out, |x, y| eval_fp(FpOp::Mul, x, y)),
        FpOp::Min => map2(a, b, out, |x, y| eval_fp(FpOp::Min, x, y)),
        FpOp::Max => map2(a, b, out, |x, y| eval_fp(FpOp::Max, x, y)),
    }
}

/// Row form of [`eval_ffma`].
///
/// On x86-64 hosts with AVX+FMA this dispatches to a `vfmadd`-based
/// row kernel: IEEE 754-2008 specifies `fusedMultiplyAdd` exactly (one
/// rounding of the infinitely precise `a*b + c`), so the hardware
/// instruction and the scalar `f32::mul_add` (libm `fmaf`) agree bit
/// for bit on every non-NaN result, and both paths canonicalize NaN
/// outputs to [`CANONICAL_NAN`]. The scalar fallback keeps other hosts
/// working unchanged. This matters because `f32::mul_add` compiles to
/// a per-lane libm call on baseline x86-64 — the single most expensive
/// operation in the warp hot path before this dispatch existed.
pub fn eval_ffma_lanes(a: &[u32], b: &[u32], c: &[u32], out: &mut [u32]) {
    #[cfg(target_arch = "x86_64")]
    if fma_x86::supported() {
        // SAFETY: `supported()` confirmed the avx and fma target
        // features at runtime on this CPU.
        unsafe { fma_x86::ffma_rows(a, b, c, out) };
        return;
    }
    map3(a, b, c, out, eval_ffma);
}

/// Hardware fused-multiply-add row kernel (x86-64, AVX+FMA).
#[cfg(target_arch = "x86_64")]
mod fma_x86 {
    use super::{eval_ffma, CANONICAL_NAN};
    use std::arch::x86_64::*;
    use std::sync::atomic::{AtomicU8, Ordering};

    /// Cached runtime feature probe: 0 = unknown, 1 = no, 2 = yes.
    static HW: AtomicU8 = AtomicU8::new(0);

    /// Whether this CPU executes the AVX+FMA row kernel.
    #[inline]
    pub fn supported() -> bool {
        // simlint: allow(phase_interior_mut): the cached probe is
        // write-once monotone — every thread computes the same answer
        // from the same CPU, so racing ticks can only agree; no
        // simulated state flows through it.
        match HW.load(Ordering::Relaxed) {
            0 => {
                let yes = is_x86_feature_detected!("avx") && is_x86_feature_detected!("fma");
                HW.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
                yes
            }
            v => v == 2,
        }
    }

    /// `out[i] = canonicalize(fma(a[i], b[i], c[i]))` for equal-length
    /// rows, eight lanes per `vfmadd231ps`. NaN canonicalization is a
    /// branch-free unordered self-compare + blend, matching the scalar
    /// `canonical_bits` per lane.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX and FMA — call only after
    /// [`supported`] returned `true`.
    // SAFETY: contract above; `eval_ffma_lanes` is the only caller.
    #[target_feature(enable = "avx,fma")]
    // simlint: allow(float_cfg_divergence): pinned bit-identical to the
    // scalar fallback by `lane_rows_match_scalar_helpers_bit_for_bit`.
    pub unsafe fn ffma_rows(a: &[u32], b: &[u32], c: &[u32], out: &mut [u32]) {
        let n = out.len().min(a.len()).min(b.len()).min(c.len());
        let canon = _mm256_castsi256_ps(_mm256_set1_epi32(CANONICAL_NAN as i32));
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: `i + 8 <= n` bounds every 8-lane unaligned load
            // and store within the four slices.
            unsafe {
                let va = _mm256_loadu_ps(a.as_ptr().add(i).cast());
                let vb = _mm256_loadu_ps(b.as_ptr().add(i).cast());
                let vc = _mm256_loadu_ps(c.as_ptr().add(i).cast());
                let r = _mm256_fmadd_ps(va, vb, vc);
                let is_nan = _mm256_cmp_ps::<_CMP_UNORD_Q>(r, r);
                let res = _mm256_blendv_ps(r, canon, is_nan);
                _mm256_storeu_ps(out.as_mut_ptr().add(i).cast(), res);
            }
            i += 8;
        }
        for k in i..n {
            out[k] = eval_ffma(a[k], b[k], c[k]);
        }
    }
}

/// Row form of [`eval_imad`].
pub fn eval_imad_lanes(a: &[u32], b: &[u32], c: &[u32], out: &mut [u32]) {
    map3(a, b, c, out, eval_imad);
}

/// Row form of [`eval_sfu`].
pub fn eval_sfu_lanes(op: SfuOp, a: &[u32], out: &mut [u32]) {
    match op {
        SfuOp::Rcp => map1(a, out, |x| eval_sfu(SfuOp::Rcp, x)),
        SfuOp::Sqrt => map1(a, out, |x| eval_sfu(SfuOp::Sqrt, x)),
        SfuOp::Rsqrt => map1(a, out, |x| eval_sfu(SfuOp::Rsqrt, x)),
        SfuOp::Sin => map1(a, out, |x| eval_sfu(SfuOp::Sin, x)),
        SfuOp::Cos => map1(a, out, |x| eval_sfu(SfuOp::Cos, x)),
        SfuOp::Ex2 => map1(a, out, |x| eval_sfu(SfuOp::Ex2, x)),
        SfuOp::Lg2 => map1(a, out, |x| eval_sfu(SfuOp::Lg2, x)),
    }
}

/// Row form of [`eval_icmp`].
pub fn eval_icmp_lanes(op: CmpOp, a: &[u32], b: &[u32], out: &mut [u32]) {
    match op {
        CmpOp::Eq => map2(a, b, out, |x, y| eval_icmp(CmpOp::Eq, x, y)),
        CmpOp::Ne => map2(a, b, out, |x, y| eval_icmp(CmpOp::Ne, x, y)),
        CmpOp::Lt => map2(a, b, out, |x, y| eval_icmp(CmpOp::Lt, x, y)),
        CmpOp::Le => map2(a, b, out, |x, y| eval_icmp(CmpOp::Le, x, y)),
        CmpOp::Gt => map2(a, b, out, |x, y| eval_icmp(CmpOp::Gt, x, y)),
        CmpOp::Ge => map2(a, b, out, |x, y| eval_icmp(CmpOp::Ge, x, y)),
    }
}

/// Row form of [`eval_fcmp`].
pub fn eval_fcmp_lanes(op: CmpOp, a: &[u32], b: &[u32], out: &mut [u32]) {
    match op {
        CmpOp::Eq => map2(a, b, out, |x, y| eval_fcmp(CmpOp::Eq, x, y)),
        CmpOp::Ne => map2(a, b, out, |x, y| eval_fcmp(CmpOp::Ne, x, y)),
        CmpOp::Lt => map2(a, b, out, |x, y| eval_fcmp(CmpOp::Lt, x, y)),
        CmpOp::Le => map2(a, b, out, |x, y| eval_fcmp(CmpOp::Le, x, y)),
        CmpOp::Gt => map2(a, b, out, |x, y| eval_fcmp(CmpOp::Gt, x, y)),
        CmpOp::Ge => map2(a, b, out, |x, y| eval_fcmp(CmpOp::Ge, x, y)),
    }
}

/// Row form of [`eval_i2f`].
pub fn eval_i2f_lanes(a: &[u32], out: &mut [u32]) {
    map1(a, out, eval_i2f);
}

/// Row form of [`eval_f2i`].
pub fn eval_f2i_lanes(a: &[u32], out: &mut [u32]) {
    map1(a, out, eval_f2i);
}

/// Row select: `out[i] = if cond[i] != 0 { a[i] } else { b[i] }`.
pub fn eval_sel_lanes(cond: &[u32], a: &[u32], b: &[u32], out: &mut [u32]) {
    map3(cond, a, b, out, |c, x, y| if c != 0 { x } else { y });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ops_wrap() {
        assert_eq!(eval_int(IntOp::Add, u32::MAX, 1), 0);
        assert_eq!(eval_int(IntOp::Sub, 0, 1), u32::MAX);
        assert_eq!(eval_int(IntOp::Mul, 1 << 31, 2), 0);
    }

    #[test]
    fn signed_min_max() {
        let neg1 = (-1i32) as u32;
        assert_eq!(eval_int(IntOp::Min, neg1, 5), neg1);
        assert_eq!(eval_int(IntOp::Max, neg1, 5), 5);
    }

    #[test]
    fn shifts() {
        assert_eq!(eval_int(IntOp::Shl, 1, 4), 16);
        assert_eq!(eval_int(IntOp::Shr, 0x8000_0000, 31), 1);
        assert_eq!(eval_int(IntOp::Sra, 0x8000_0000, 31), u32::MAX);
    }

    #[test]
    fn fp_arithmetic() {
        let two = 2.0f32.to_bits();
        let three = 3.0f32.to_bits();
        assert_eq!(f32::from_bits(eval_fp(FpOp::Mul, two, three)), 6.0);
        assert_eq!(f32::from_bits(eval_ffma(two, three, two)), 8.0);
    }

    #[test]
    fn imad() {
        assert_eq!(eval_imad(3, 4, 5), 17);
    }

    #[test]
    fn sfu_functions() {
        let four = 4.0f32.to_bits();
        assert_eq!(f32::from_bits(eval_sfu(SfuOp::Sqrt, four)), 2.0);
        assert_eq!(f32::from_bits(eval_sfu(SfuOp::Rcp, four)), 0.25);
        assert_eq!(f32::from_bits(eval_sfu(SfuOp::Rsqrt, four)), 0.5);
        assert_eq!(f32::from_bits(eval_sfu(SfuOp::Ex2, 3.0f32.to_bits())), 8.0);
        let s = f32::from_bits(eval_sfu(SfuOp::Sin, 0.5f32.to_bits()));
        assert!((s - 0.5f32.sin()).abs() < 1e-6);
    }

    #[test]
    fn comparisons_are_signed() {
        let neg1 = (-1i32) as u32;
        assert_eq!(eval_icmp(CmpOp::Lt, neg1, 0), 1);
        assert_eq!(eval_icmp(CmpOp::Gt, neg1, 0), 0);
        assert_eq!(eval_fcmp(CmpOp::Le, 1.0f32.to_bits(), 1.0f32.to_bits()), 1);
    }

    #[test]
    fn nan_compares_false_except_ne() {
        let nan = f32::NAN.to_bits();
        assert_eq!(eval_fcmp(CmpOp::Eq, nan, nan), 0);
        assert_eq!(eval_fcmp(CmpOp::Lt, nan, 0), 0);
        assert_eq!(eval_fcmp(CmpOp::Ne, nan, nan), 1);
    }

    #[test]
    fn nan_results_are_canonical() {
        let nan1 = 0xFFFF_FFFFu32;
        let nan2 = 0x7FFF_FFFFu32;
        assert_eq!(eval_fp(FpOp::Add, nan1, nan2), CANONICAL_NAN);
        assert_eq!(eval_fp(FpOp::Add, nan2, nan1), CANONICAL_NAN);
        assert_eq!(eval_fp(FpOp::Min, nan1, nan2), CANONICAL_NAN);
        assert_eq!(eval_ffma(nan1, nan2, 0), CANONICAL_NAN);
        assert_eq!(eval_sfu(SfuOp::Lg2, (-2.0f32).to_bits()), CANONICAL_NAN);
    }

    #[test]
    fn conversions() {
        assert_eq!(f32::from_bits(eval_i2f((-7i32) as u32)), -7.0);
        assert_eq!(eval_f2i((-7.9f32).to_bits()) as i32, -7);
        assert_eq!(eval_f2i(f32::NAN.to_bits()), 0);
        assert_eq!(eval_f2i(1e20f32.to_bits()) as i32, i32::MAX);
    }

    /// Bit patterns that stress every edge of the scalar helpers:
    /// wrap-around, signedness flips, NaN/Inf/denormal f32 values.
    fn edge_rows() -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        let specials = [
            0u32,
            1,
            2,
            31,
            32,
            u32::MAX,
            i32::MAX as u32,
            i32::MIN as u32,
            1.0f32.to_bits(),
            (-1.0f32).to_bits(),
            f32::NAN.to_bits(),
            f32::INFINITY.to_bits(),
            f32::NEG_INFINITY.to_bits(),
            f32::MIN_POSITIVE.to_bits() >> 1, // denormal
            0.5f32.to_bits(),
            1e20f32.to_bits(),
        ];
        let mut x = 0x1234_5678u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x as u32
        };
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut c = Vec::new();
        for i in 0..64 {
            a.push(specials[i % specials.len()]);
            b.push(specials[(i * 7 + 3) % specials.len()]);
            c.push(next());
        }
        (a, b, c)
    }

    #[test]
    fn lane_rows_match_scalar_helpers_bit_for_bit() {
        let (a, b, c) = edge_rows();
        let mut out = vec![0u32; 64];
        for op in [
            IntOp::Add,
            IntOp::Sub,
            IntOp::Mul,
            IntOp::Min,
            IntOp::Max,
            IntOp::And,
            IntOp::Or,
            IntOp::Xor,
            IntOp::Shl,
            IntOp::Shr,
            IntOp::Sra,
        ] {
            eval_int_lanes(op, &a, &b, &mut out);
            for i in 0..64 {
                assert_eq!(out[i], eval_int(op, a[i], b[i]), "{op:?} lane {i}");
            }
        }
        for op in [FpOp::Add, FpOp::Sub, FpOp::Mul, FpOp::Min, FpOp::Max] {
            eval_fp_lanes(op, &a, &b, &mut out);
            for i in 0..64 {
                assert_eq!(out[i], eval_fp(op, a[i], b[i]), "{op:?} lane {i}");
            }
        }
        for op in [
            SfuOp::Rcp,
            SfuOp::Sqrt,
            SfuOp::Rsqrt,
            SfuOp::Sin,
            SfuOp::Cos,
            SfuOp::Ex2,
            SfuOp::Lg2,
        ] {
            eval_sfu_lanes(op, &a, &mut out);
            for i in 0..64 {
                assert_eq!(out[i], eval_sfu(op, a[i]), "{op:?} lane {i}");
            }
        }
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            eval_icmp_lanes(op, &a, &b, &mut out);
            for i in 0..64 {
                assert_eq!(out[i], eval_icmp(op, a[i], b[i]), "icmp {op:?} lane {i}");
            }
            eval_fcmp_lanes(op, &a, &b, &mut out);
            for i in 0..64 {
                assert_eq!(out[i], eval_fcmp(op, a[i], b[i]), "fcmp {op:?} lane {i}");
            }
        }
        eval_ffma_lanes(&a, &b, &c, &mut out);
        for i in 0..64 {
            assert_eq!(out[i], eval_ffma(a[i], b[i], c[i]), "ffma lane {i}");
        }
        eval_imad_lanes(&a, &b, &c, &mut out);
        for i in 0..64 {
            assert_eq!(out[i], eval_imad(a[i], b[i], c[i]), "imad lane {i}");
        }
        eval_i2f_lanes(&a, &mut out);
        for i in 0..64 {
            assert_eq!(out[i], eval_i2f(a[i]), "i2f lane {i}");
        }
        eval_f2i_lanes(&a, &mut out);
        for i in 0..64 {
            assert_eq!(out[i], eval_f2i(a[i]), "f2i lane {i}");
        }
        eval_sel_lanes(&a, &b, &c, &mut out);
        for i in 0..64 {
            let want = if a[i] != 0 { b[i] } else { c[i] };
            assert_eq!(out[i], want, "sel lane {i}");
        }
    }
}

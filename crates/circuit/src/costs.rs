//! Common cost bundle shared by every circuit model.

use std::iter::Sum;
use std::ops::Add;

use gpusimpow_tech::units::{Area, Energy, Power};

/// Area, per-access energies and leakage of one circuit block.
///
/// Every model in this crate evaluates to one of these; the architecture
/// tier (the `gpusimpow-power` crate) aggregates them per component.
///
/// # Examples
///
/// ```
/// use gpusimpow_circuit::costs::CircuitCosts;
/// use gpusimpow_tech::units::{Area, Energy, Power};
///
/// let a = CircuitCosts::new(
///     Area::from_mm2(0.1),
///     Energy::from_picojoules(2.0),
///     Energy::from_picojoules(3.0),
///     Power::from_milliwatts(5.0),
/// );
/// let total = a + a;
/// assert!((total.area.mm2() - 0.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CircuitCosts {
    /// Silicon area of the block.
    pub area: Area,
    /// Energy of one read (or generic operation for logic blocks).
    pub read_energy: Energy,
    /// Energy of one write (equal to `read_energy` for symmetric blocks).
    pub write_energy: Energy,
    /// Static (subthreshold + gate) leakage power.
    pub leakage: Power,
}

impl CircuitCosts {
    /// A block with zero cost.
    pub const ZERO: CircuitCosts = CircuitCosts {
        area: Area::ZERO,
        read_energy: Energy::ZERO,
        write_energy: Energy::ZERO,
        leakage: Power::ZERO,
    };

    /// Creates a cost bundle.
    pub const fn new(
        area: Area,
        read_energy: Energy,
        write_energy: Energy,
        leakage: Power,
    ) -> Self {
        CircuitCosts {
            area,
            read_energy,
            write_energy,
            leakage,
        }
    }

    /// Creates a cost bundle for a block with a single operation energy
    /// (read and write identical).
    pub const fn uniform(area: Area, op_energy: Energy, leakage: Power) -> Self {
        CircuitCosts {
            area,
            read_energy: op_energy,
            write_energy: op_energy,
            leakage,
        }
    }

    /// Scales the whole bundle by a replication count (`n` identical
    /// instances *each* accessed independently: energy stays per-access,
    /// area and leakage multiply).
    pub fn replicated(self, n: usize) -> Self {
        CircuitCosts {
            area: self.area * n as f64,
            read_energy: self.read_energy,
            write_energy: self.write_energy,
            leakage: self.leakage * n as f64,
        }
    }
}

impl Add for CircuitCosts {
    type Output = CircuitCosts;
    fn add(self, rhs: CircuitCosts) -> CircuitCosts {
        CircuitCosts {
            area: self.area + rhs.area,
            read_energy: self.read_energy + rhs.read_energy,
            write_energy: self.write_energy + rhs.write_energy,
            leakage: self.leakage + rhs.leakage,
        }
    }
}

impl Sum for CircuitCosts {
    fn sum<I: Iterator<Item = CircuitCosts>>(iter: I) -> CircuitCosts {
        iter.fold(CircuitCosts::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CircuitCosts {
        CircuitCosts::new(
            Area::from_mm2(0.5),
            Energy::from_picojoules(1.0),
            Energy::from_picojoules(2.0),
            Power::from_milliwatts(3.0),
        )
    }

    #[test]
    fn addition_is_elementwise() {
        let s = sample() + sample();
        assert!((s.area.mm2() - 1.0).abs() < 1e-12);
        assert!((s.read_energy.picojoules() - 2.0).abs() < 1e-12);
        assert!((s.write_energy.picojoules() - 4.0).abs() < 1e-12);
        assert!((s.leakage.milliwatts() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn replication_multiplies_area_and_leakage_only() {
        let r = sample().replicated(4);
        assert!((r.area.mm2() - 2.0).abs() < 1e-12);
        assert!((r.leakage.milliwatts() - 12.0).abs() < 1e-12);
        assert!((r.read_energy.picojoules() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sum_over_iterator() {
        let total: CircuitCosts = (0..3).map(|_| sample()).sum();
        assert!((total.area.mm2() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn uniform_sets_both_energies() {
        let u = CircuitCosts::uniform(Area::ZERO, Energy::from_picojoules(5.0), Power::ZERO);
        assert_eq!(u.read_energy, u.write_energy);
    }
}

//! simlint — the workspace invariant checker.
//!
//! `rustc` and clippy enforce language rules; this crate enforces the
//! *simulator's* rules — the cross-cutting contracts this workspace
//! depends on but no compiler knows about. It is dependency-free: a
//! comment/string-aware lexer ([`lexer`]) feeds a recovering parser
//! ([`syntax`]) whose typed item/expression IR the structural passes
//! walk; lint scopes are discovered from the workspace manifest
//! ([`scope`]) so new crates are covered from their first commit.
//!
//! * **Determinism** ([`determinism`]): simulation results must be
//!   bit-identical run to run (EXPERIMENTS.md is regenerated and
//!   byte-compared in CI), so result-bearing crates must not iterate
//!   `HashMap`/`HashSet` or consult the wall clock.
//! * **Panic-free decoding** ([`untrusted`]): the service and trace
//!   wire formats parse bytes that arrive from outside the process, so
//!   everything reachable from a decode entry point must return typed
//!   errors — no `unwrap`/indexing/`panic!` (`panic_path`) and no
//!   unchecked arithmetic or narrowing casts on decoded lengths and
//!   counts (`decode_arith`).
//! * **Float determinism** ([`floats`]): results are byte-compared in
//!   CI and float addition is not associative, so float reductions
//!   must not iterate unordered sources (`float_reduce_order`) and
//!   `#[cfg]`-divergent kernels must not do float math unless pinned
//!   bit-identical to the fallback (`float_cfg_divergence`).
//! * **Phase discipline** ([`phase`]): the parallel engine's compute
//!   phase — everything reachable from `tick`, cross-file — must not
//!   take `&mut GpuMemory`, touch interior mutability, or call the
//!   commit API before the barrier (`phase_*`).
//! * **Unit safety** ([`units`]): energy/power/time arithmetic in the
//!   power model must stay inside the `gpusimpow_tech::units` newtypes;
//!   unwrapping to raw `f64` mid-computation is where dimensional bugs
//!   hide.
//! * **Unsafe audit** ([`unsafety`]): every `unsafe` keyword needs a
//!   `// SAFETY:` comment, and the full inventory is checked into
//!   `UNSAFE.md` so new unsafe code cannot land without a reviewed
//!   manifest diff.
//! * **Hot-path allocation** ([`hotpath`]): the SoA warp pipeline's
//!   steady state must not allocate per executed instruction, so loop
//!   bodies in `crates/sim/src/{core,func,ldst}.rs` must not contain
//!   allocating expressions (`vec!`, `Vec::new`, `.collect()`, …) —
//!   the static twin of `tests/steady_state_alloc.rs`.
//! * **Registry coverage** ([`registry`]): every `EventKind` of the
//!   component-event registry must be priced by an `EnergyMap`,
//!   consumed by the empirical base model, or documented as
//!   intentionally unpriced — checked *statically*, before any test
//!   runs.
//!
//! Run it as `cargo run -p simlint` from the workspace root; it prints
//! `file:line: lint: message` per finding and exits non-zero when
//! anything fires (`--json PATH` additionally writes a
//! schema-versioned machine-readable report). Findings are suppressed
//! per site with a justified marker comment:
//!
//! ```text
//! // simlint: allow(nondeterministic_collection): keyed access only,
//! // the map is never iterated.
//! ```
//!
//! A marker without the `: reason` tail is itself a finding
//! (`missing_justification`), and a marker naming a lint that does not
//! exist is `unknown_lint` — suppressions cannot rot silently.

pub mod determinism;
pub mod floats;
pub mod hotpath;
pub mod lexer;
pub mod phase;
pub mod registry;
pub mod scope;
pub mod syntax;
pub mod units;
pub mod unsafety;
pub mod untrusted;

use lexer::{lex, Lexed};
use scope::ScopeConfig;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Every lint simlint can emit, for `allow(...)` name validation.
pub const LINTS: &[&str] = &[
    determinism::NONDETERMINISTIC_COLLECTION,
    determinism::WALL_CLOCK,
    units::RAW_UNIT_MATH,
    hotpath::LANE_LOOP_ALLOC,
    hotpath::UNBOUNDED_QUEUE_IN_CORE,
    unsafety::UNDOCUMENTED_UNSAFE,
    unsafety::UNSAFE_MANIFEST_DRIFT,
    registry::UNPRICED_EVENT,
    registry::UNKNOWN_EVENT,
    registry::CONFLICTING_PRICE,
    untrusted::PANIC_PATH,
    untrusted::DECODE_ARITH,
    floats::FLOAT_REDUCE_ORDER,
    floats::FLOAT_CFG_DIVERGENCE,
    phase::PHASE_MUT_MEMORY,
    phase::PHASE_INTERIOR_MUT,
    phase::PHASE_COMMIT_API,
    MISSING_JUSTIFICATION,
    UNKNOWN_LINT,
];

/// An `allow` marker whose `: reason` tail is missing or empty.
pub const MISSING_JUSTIFICATION: &str = "missing_justification";
/// An `allow` marker naming a lint simlint does not define.
pub const UNKNOWN_LINT: &str = "unknown_lint";

/// One finding, printed as `file:line: lint: message`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Stable lint name (one of [`LINTS`]).
    pub lint: &'static str,
    /// Human explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// A parsed `// simlint: allow(lint): reason` marker.
#[derive(Debug, Clone)]
struct Allow {
    lint: String,
    /// Line the marker itself is on (for diagnostics about the marker).
    line: u32,
    /// Last line of the enclosing comment block; the marker suppresses
    /// from its own line through `extent + 1`, so it works trailing the
    /// offending code or above it, even with a wrapped reason.
    extent: u32,
    has_reason: bool,
}

/// One lexed source file plus its suppression markers — the input every
/// per-file pass consumes.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Token and comment streams.
    pub lexed: Lexed,
    /// Item/expression IR parsed from the token stream ([`syntax`]).
    pub ast: syntax::Ast,
    allows: Vec<Allow>,
}

const ALLOW_PREFIX: &str = "simlint: allow(";

impl SourceFile {
    /// Lexes `src` and collects its `allow` markers.
    ///
    /// A marker must *start* its comment line (`// simlint: allow(x):
    /// reason`); the lint name in running prose — like this sentence —
    /// is not a marker. The reason may wrap onto following comment
    /// lines; only the first must be non-empty.
    pub fn parse(rel_path: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let mut allows = Vec::new();
        for c in &lexed.comments {
            for (idx, raw_line) in c.text.lines().enumerate() {
                // Strip exactly one comment introducer, so a marker
                // quoted inside doc text (`//! // simlint: ...`) still
                // leads with `//` afterwards and is ignored.
                let mut body = raw_line.trim_start();
                if let Some(stripped) = body.strip_prefix("//") {
                    body = stripped.strip_prefix(['!', '/']).unwrap_or(stripped);
                } else if let Some(stripped) = body.strip_prefix("/*") {
                    body = stripped.strip_prefix(['!', '*']).unwrap_or(stripped);
                }
                let Some(rest) = body.trim_start().strip_prefix(ALLOW_PREFIX) else {
                    continue;
                };
                let Some(close) = rest.find(')') else {
                    continue;
                };
                let lint = rest[..close].trim().to_string();
                let tail = rest[close + 1..].trim_start();
                let has_reason = tail
                    .strip_prefix(':')
                    .is_some_and(|r| !r.trim_matches(['/', '*', ' ']).is_empty());
                allows.push(Allow {
                    lint,
                    line: c.line_start + idx as u32,
                    extent: c.line_end,
                    has_reason,
                });
            }
        }
        let ast = syntax::parse(&lexed);
        SourceFile {
            rel_path: rel_path.to_string(),
            lexed,
            ast,
            allows,
        }
    }

    /// Builds a diagnostic against this file.
    pub(crate) fn diag(&self, line: u32, lint: &'static str, message: String) -> Diagnostic {
        Diagnostic {
            file: self.rel_path.clone(),
            line,
            lint,
            message,
        }
    }

    /// Whether a justified marker suppresses `lint` on `line`.
    fn allowed(&self, lint: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.has_reason && a.lint == lint && a.line <= line && line <= a.extent + 1)
    }

    /// Findings about the markers themselves. Never suppressible.
    fn marker_diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for a in &self.allows {
            if !LINTS.contains(&a.lint.as_str()) {
                out.push(self.diag(
                    a.line,
                    UNKNOWN_LINT,
                    format!(
                        "allow marker names `{}`, which is not a simlint lint",
                        a.lint
                    ),
                ));
            }
            if !a.has_reason {
                out.push(self.diag(
                    a.line,
                    MISSING_JUSTIFICATION,
                    format!(
                        "allow({}) needs a `: reason` tail — unexplained suppressions rot",
                        a.lint
                    ),
                ));
            }
        }
        out
    }
}

/// Whether token index `idx` lies inside any of `regions`.
pub(crate) fn in_regions(regions: &[(usize, usize)], idx: usize) -> bool {
    regions.iter().any(|&(a, b)| a <= idx && idx <= b)
}

/// Runs every per-file pass applicable to `rel_path` on `src` under the
/// static default scopes and returns the surviving (non-suppressed)
/// findings. This is the entry point the fixture tests drive;
/// [`run_workspace`] discovers scopes from the manifest and goes
/// through [`check_source_with`].
pub fn check_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    check_source_with(&ScopeConfig::default_static(), rel_path, src)
}

/// [`check_source`] with explicit lint scopes.
pub fn check_source_with(scopes: &ScopeConfig, rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let file = SourceFile::parse(rel_path, src);
    let mut raw = Vec::new();
    if scopes.determinism(rel_path) {
        raw.extend(determinism::check(&file));
    }
    if scopes.units(rel_path) {
        raw.extend(units::check(&file));
    }
    if hotpath::scope(rel_path) {
        raw.extend(hotpath::check(&file));
    }
    if hotpath::queue_scope(rel_path) {
        raw.extend(hotpath::check_queues(&file));
    }
    if untrusted::scope(rel_path) {
        raw.extend(untrusted::check(&file));
    }
    if scopes.floats(rel_path) {
        raw.extend(floats::check(&file));
    }
    raw.extend(unsafety::check(&file));
    let mut out: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| !file.allowed(d.lint, d.line))
        .collect();
    out.extend(file.marker_diagnostics());
    out
}

/// Everything one workspace run produces.
#[derive(Debug)]
pub struct WorkspaceReport {
    /// Surviving findings across all passes, in path order.
    pub diagnostics: Vec<Diagnostic>,
    /// The regenerated `UNSAFE.md` content (what the checked-in file
    /// must equal).
    pub unsafe_manifest: String,
    /// Number of `.rs` files checked.
    pub files_checked: usize,
}

/// Relative `/`-separated path of `path` under `root`.
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| Ok(e?.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | "vendor" | ".git" | "fixtures") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Checks the whole workspace rooted at `root`: every first-party `.rs`
/// file (vendored stubs, build outputs and simlint's own lint fixtures
/// excluded), the registry-coverage contract, and `UNSAFE.md` drift.
pub fn run_workspace(root: &Path) -> io::Result<WorkspaceReport> {
    let scopes = ScopeConfig::discover(root)?;
    let mut paths = Vec::new();
    collect_rs_files(root, &mut paths)?;

    let mut diagnostics = Vec::new();
    let mut unsafe_files = Vec::new();
    let mut events_file = None;
    let mut registry_file = None;
    let mut pricing_files = Vec::new();
    let mut phase_files = Vec::new();

    for path in &paths {
        let rel_path = rel(root, path);
        let src = fs::read_to_string(path)?;
        diagnostics.extend(check_source_with(&scopes, &rel_path, &src));
        let file = SourceFile::parse(&rel_path, &src);
        let sites = unsafety::sites(&file);
        if !sites.is_empty() {
            unsafe_files.push((rel_path.clone(), sites));
        }
        if phase::scope(&rel_path) {
            phase_files.push(SourceFile::parse(&rel_path, &src));
        }
        match rel_path.as_str() {
            "crates/sim/src/events.rs" => events_file = Some(file),
            "crates/power/src/registry.rs" => registry_file = Some(file),
            p if p.starts_with("crates/power/src/components/")
                || p == "crates/power/src/dram.rs" =>
            {
                pricing_files.push(file)
            }
            _ => {}
        }
    }

    if let (Some(events), Some(reg)) = (&events_file, &registry_file) {
        diagnostics.extend(registry::check(events, reg, &pricing_files));
    }

    let phase_refs: Vec<&SourceFile> = phase_files.iter().collect();
    diagnostics.extend(phase::check(&phase_refs));

    let unsafe_manifest = unsafety::manifest(&unsafe_files);
    let on_disk = fs::read_to_string(root.join("UNSAFE.md")).unwrap_or_default();
    if on_disk != unsafe_manifest {
        diagnostics.push(Diagnostic {
            file: "UNSAFE.md".to_string(),
            line: 1,
            lint: unsafety::UNSAFE_MANIFEST_DRIFT,
            message: "inventory is stale; regenerate with \
                      `cargo run -p simlint -- --update-unsafe-manifest` \
                      and commit the diff"
                .to_string(),
        });
    }

    Ok(WorkspaceReport {
        diagnostics,
        unsafe_manifest,
        files_checked: paths.len(),
    })
}

/// Version of the [`json_report`] schema. Bump on any change to the
/// object shape — CI consumers key on it.
pub const JSON_SCHEMA_VERSION: u32 = 1;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as the machine-readable report the CI job uploads:
/// a single JSON object with `schema_version`, `files_checked`,
/// `finding_count`, and a `findings` array of
/// `{file, line, lint, message}` rows in emission order. Hand-rolled —
/// simlint takes no dependencies — so the shape is pinned by
/// [`JSON_SCHEMA_VERSION`] and the round-trip test, not a serde
/// contract.
pub fn json_report(diagnostics: &[Diagnostic], files_checked: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"schema_version\": {JSON_SCHEMA_VERSION},\n  \
         \"files_checked\": {files_checked},\n  \
         \"finding_count\": {},\n  \"findings\": [",
        diagnostics.len()
    ));
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.file),
            d.line,
            json_escape(d.lint),
            json_escape(&d.message)
        ));
    }
    if !diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod json_tests {
    use super::*;

    #[test]
    fn json_report_escapes_and_counts() {
        let diags = vec![
            Diagnostic {
                file: "crates/a/src/lib.rs".to_string(),
                line: 7,
                lint: "panic_path",
                message: "uses `.unwrap()` — \"bad\"\non two lines".to_string(),
            },
            Diagnostic {
                file: "crates\\b.rs".to_string(),
                line: 1,
                lint: "decode_arith",
                message: "tab\there".to_string(),
            },
        ];
        let json = json_report(&diags, 42);
        assert!(json.contains("\"schema_version\": 1"), "{json}");
        assert!(json.contains("\"files_checked\": 42"), "{json}");
        assert!(json.contains("\"finding_count\": 2"), "{json}");
        assert!(json.contains("\\\"bad\\\"\\non two lines"), "{json}");
        assert!(json.contains("crates\\\\b.rs"), "{json}");
        assert!(json.contains("tab\\there"), "{json}");
    }

    #[test]
    fn json_report_with_no_findings_is_a_closed_empty_array() {
        let json = json_report(&[], 173);
        assert!(json.contains("\"findings\": []"), "{json}");
        assert!(json.contains("\"finding_count\": 0"), "{json}");
    }
}

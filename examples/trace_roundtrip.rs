//! Trace roundtrip: capture a kernel's instruction streams, encode
//! them to the versioned binary format, replay from the decoded bytes
//! — on the same chip and on a different one — and verify the replays
//! are bit-identical to live execution.
//!
//! ```text
//! cargo run --example trace_roundtrip
//! ```

use gpusimpow_kernels::{blackscholes::BlackScholes, Benchmark};
use gpusimpow_sim::{Gpu, GpuConfig};
use gpusimpow_trace::KernelTrace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Capture: run the benchmark live with tracing on. The capture
    //    has zero effect on the run — same counters, same time bits.
    let mut gpu = Gpu::new(GpuConfig::gt240())?;
    gpu.set_tracing(true);
    let live = BlackScholes { options: 2048 }.run(&mut gpu)?.remove(0);
    let trace = gpu.take_traces().remove(0);
    println!(
        "captured `{}`: {} warps, {} warp instructions",
        trace.name,
        trace.streams.len(),
        trace.warp_instructions()
    );

    // 2. Archive: the encoding is self-contained (kernel image, launch
    //    geometry, streams) and integrity-checked by a digest footer.
    let bytes = trace.encode();
    println!(
        "encoded: {} bytes ({:.2} bytes/instruction), digest {}",
        bytes.len(),
        bytes.len() as f64 / trace.warp_instructions() as f64,
        trace.content_digest().to_hex()
    );

    // 3. Replay on the same chip: no functional execution — the three
    //    recorded streams drive the full timing pipeline.
    let decoded = KernelTrace::decode(&bytes)?;
    let replayed = Gpu::new(GpuConfig::gt240())?.launch_replay(&decoded)?;
    assert_eq!(replayed.stats, live.stats);
    assert_eq!(replayed.time_s.to_bits(), live.time_s.to_bits());
    println!(
        "GT240 replay: {} cycles, bit-identical to the live run",
        replayed.stats.shader_cycles
    );

    // 4. Replay on a different chip: the streams are configuration-
    //    independent, so one capture re-prices anywhere (and matches a
    //    live GTX580 run bit for bit — see tests/trace_replay.rs).
    let cross = Gpu::new(GpuConfig::gtx580())?.launch_replay(&decoded)?;
    println!(
        "GTX580 replay: {} cycles ({:.2} us vs {:.2} us on GT240)",
        cross.stats.shader_cycles,
        cross.time_s * 1e6,
        replayed.time_s * 1e6
    );
    Ok(())
}

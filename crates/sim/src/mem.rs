//! Global-memory backing store and host-side allocation interface.
//!
//! The functional side of the simulator needs actual data; this module
//! provides the flat GDDR address space with a bump allocator, plus typed
//! read/write helpers used by the benchmark host code (the stand-in for
//! `cudaMalloc`/`cudaMemcpy`).

use std::fmt;

/// A device pointer: a byte address in simulated global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DevicePtr(pub u32);

impl DevicePtr {
    /// The raw byte address.
    pub fn addr(self) -> u32 {
        self.0
    }

    /// Pointer `bytes` past this one.
    pub fn offset(self, bytes: u32) -> DevicePtr {
        DevicePtr(self.0 + bytes)
    }
}

impl fmt::Display for DevicePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:08x}", self.0)
    }
}

/// Simulated global (GDDR) memory with a bump allocator.
///
/// # Examples
///
/// ```
/// use gpusimpow_sim::mem::GpuMemory;
///
/// let mut mem = GpuMemory::new(1 << 20);
/// let buf = mem.alloc_f32(4);
/// mem.write_f32_slice(buf, &[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(mem.read_f32(buf.offset(8)), 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct GpuMemory {
    data: Vec<u8>,
    next: u32,
}

impl GpuMemory {
    /// Creates a memory of `capacity_bytes` (zero-initialized).
    ///
    /// # Panics
    ///
    /// Panics if the capacity exceeds 1 GiB (the 32-bit simulated address
    /// space keeps workloads honest).
    pub fn new(capacity_bytes: usize) -> Self {
        assert!(
            capacity_bytes <= 1 << 30,
            "simulated memory capped at 1 GiB"
        );
        GpuMemory {
            data: vec![0; capacity_bytes],
            // Address 0 is kept unmapped so that a zero pointer faults
            // loudly in kernels.
            next: 256,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Bytes allocated so far.
    pub fn allocated(&self) -> u32 {
        self.next
    }

    /// Allocates `bytes`, 256-byte aligned (mirrors `cudaMalloc`).
    ///
    /// # Panics
    ///
    /// Panics when the capacity is exhausted.
    pub fn alloc(&mut self, bytes: u32) -> DevicePtr {
        let base = (self.next + 255) & !255;
        let end = base as u64 + bytes as u64;
        assert!(
            end <= self.data.len() as u64,
            "simulated memory exhausted: need {end} of {}",
            self.data.len()
        );
        self.next = end as u32;
        DevicePtr(base)
    }

    /// Allocates space for `count` f32/u32 words.
    pub fn alloc_f32(&mut self, count: u32) -> DevicePtr {
        self.alloc(count * 4)
    }

    /// Reads one 32-bit word.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range or unaligned address.
    pub fn read_u32(&self, ptr: DevicePtr) -> u32 {
        let a = ptr.0 as usize;
        assert!(a.is_multiple_of(4), "unaligned 32-bit read at {ptr}");
        u32::from_le_bytes(self.data[a..a + 4].try_into().expect("range checked"))
    }

    /// Writes one 32-bit word.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range or unaligned address.
    pub fn write_u32(&mut self, ptr: DevicePtr, value: u32) {
        let a = ptr.0 as usize;
        assert!(a.is_multiple_of(4), "unaligned 32-bit write at {ptr}");
        self.data[a..a + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads one f32.
    pub fn read_f32(&self, ptr: DevicePtr) -> f32 {
        f32::from_bits(self.read_u32(ptr))
    }

    /// Writes one f32.
    pub fn write_f32(&mut self, ptr: DevicePtr, value: f32) {
        self.write_u32(ptr, value.to_bits());
    }

    /// Copies a host slice into device memory (`cudaMemcpy` H2D).
    pub fn write_u32_slice(&mut self, ptr: DevicePtr, values: &[u32]) {
        for (i, v) in values.iter().enumerate() {
            self.write_u32(ptr.offset((i * 4) as u32), *v);
        }
    }

    /// Copies a host f32 slice into device memory.
    pub fn write_f32_slice(&mut self, ptr: DevicePtr, values: &[f32]) {
        for (i, v) in values.iter().enumerate() {
            self.write_f32(ptr.offset((i * 4) as u32), *v);
        }
    }

    /// Reads `count` u32 words back to the host (`cudaMemcpy` D2H).
    pub fn read_u32_slice(&self, ptr: DevicePtr, count: usize) -> Vec<u32> {
        (0..count)
            .map(|i| self.read_u32(ptr.offset((i * 4) as u32)))
            .collect()
    }

    /// Reads `count` f32 words back to the host.
    pub fn read_f32_slice(&self, ptr: DevicePtr, count: usize) -> Vec<f32> {
        (0..count)
            .map(|i| self.read_f32(ptr.offset((i * 4) as u32)))
            .collect()
    }

    /// Word access used by the simulator's load path (byte address).
    pub(crate) fn load_word(&self, addr: u32) -> u32 {
        let a = (addr & !3) as usize;
        if a + 4 > self.data.len() {
            panic!("kernel read past end of simulated memory: 0x{addr:08x}");
        }
        u32::from_le_bytes(self.data[a..a + 4].try_into().expect("range checked"))
    }

    /// Word write used by the simulator's store path (byte address).
    pub(crate) fn store_word(&mut self, addr: u32, value: u32) {
        let a = (addr & !3) as usize;
        if a + 4 > self.data.len() {
            panic!("kernel write past end of simulated memory: 0x{addr:08x}");
        }
        self.data[a..a + 4].copy_from_slice(&value.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_monotonic() {
        let mut mem = GpuMemory::new(1 << 16);
        let a = mem.alloc(100);
        let b = mem.alloc(4);
        assert_eq!(a.addr() % 256, 0);
        assert_eq!(b.addr() % 256, 0);
        assert!(b.addr() >= a.addr() + 100);
    }

    #[test]
    fn zero_page_is_never_handed_out() {
        let mut mem = GpuMemory::new(1 << 16);
        assert!(mem.alloc(4).addr() > 0);
    }

    #[test]
    fn u32_and_f32_roundtrip() {
        let mut mem = GpuMemory::new(1 << 16);
        let p = mem.alloc_f32(8);
        mem.write_f32_slice(p, &[0.5, -2.0, 3.25]);
        assert_eq!(mem.read_f32_slice(p, 3), vec![0.5, -2.0, 3.25]);
        mem.write_u32(p, 0xdeadbeef);
        assert_eq!(mem.read_u32(p), 0xdeadbeef);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_host_read_panics() {
        let mem = GpuMemory::new(1 << 12);
        let _ = mem.read_u32(DevicePtr(2));
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut mem = GpuMemory::new(1 << 12);
        let _ = mem.alloc(1 << 13);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn kernel_oob_access_panics() {
        let mem = GpuMemory::new(1 << 12);
        let _ = mem.load_word(1 << 20);
    }

    #[test]
    fn load_word_masks_to_word_boundary() {
        let mut mem = GpuMemory::new(1 << 12);
        let p = mem.alloc(8);
        mem.write_u32(p, 0x11223344);
        assert_eq!(mem.load_word(p.addr() + 3), 0x11223344);
    }
}

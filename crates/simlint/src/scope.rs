//! Lint-scope discovery from the workspace manifest.
//!
//! Until this module existed, each pass carried a hard-coded directory
//! list — and `crates/trace` shipped a whole binary format before
//! anyone noticed it was missing from every list. Scopes are now
//! derived from the workspace's own `Cargo.toml` members, so a new
//! crate is linted from its first commit and can only leave a scope
//! through an explicit, documented opt-out below.
//!
//! Two kinds of scope exist:
//!
//! * **Discovery-driven** (determinism, panic-path/decode-arithmetic's
//!   crate guard): every first-party member is in unless opted out.
//!   Opt-outs: `vendor/*` (third-party API stand-ins, not our code)
//!   and `crates/bench` (reads the wall clock by design — that is its
//!   job). The root meta-crate re-exports only and has no `src`
//!   logic of its own; members under `crates/` are the policy unit.
//! * **Policy lists validated against discovery** (units, float
//!   determinism): widening these is a semantic decision — the
//!   circuit crate, for instance, legitimately computes on raw
//!   capacitance/voltage magnitudes, so auto-widening `raw_unit_math`
//!   to every member would force allows onto code whose job is raw
//!   math. The named crates are intersected with the discovered
//!   member set, so a renamed or deleted crate drops out instead of
//!   lingering as a dead path prefix.

use std::fs;
use std::io;
use std::path::Path;

/// Members the determinism lints never apply to, with the reason a
/// reviewer needs. Everything else discovered under `crates/` is in.
const DETERMINISM_OPT_OUTS: &[(&str, &str)] = &[(
    "bench",
    "benchmarks read the wall clock on purpose; their output is not a \
     simulation result",
)];

/// Crates whose code must keep unit arithmetic inside the
/// `gpusimpow_tech::units` newtypes. Curated, not discovered: see the
/// module docs.
const UNIT_CRATES: &[&str] = &["power", "trace"];

/// Crates whose float arithmetic feeds bit-compared results, for the
/// float-determinism family. Curated for the same reason as
/// [`UNIT_CRATES`].
const FLOAT_CRATES: &[&str] = &["sim", "power", "pm"];

/// Resolved path-prefix scopes every per-file pass consults.
#[derive(Debug, Clone)]
pub struct ScopeConfig {
    /// `crates/<name>/src/` prefixes in determinism scope.
    pub determinism_prefixes: Vec<String>,
    /// Prefixes in raw-unit-math scope.
    pub units_prefixes: Vec<String>,
    /// Prefixes in float-determinism scope.
    pub float_prefixes: Vec<String>,
}

fn src_prefix(member: &str) -> String {
    format!("{member}/src/")
}

impl ScopeConfig {
    /// The static mirror of the discovered scopes on the current tree.
    /// Fixture tests use this so they stay hermetic (no workspace walk);
    /// `tests/workspace_clean.rs` pins that discovery on the real tree
    /// yields a superset of these prefixes.
    pub fn default_static() -> ScopeConfig {
        ScopeConfig {
            determinism_prefixes: [
                "crates/sim",
                "crates/power",
                "crates/pm",
                "crates/serve",
                "crates/trace",
            ]
            .iter()
            .map(|m| src_prefix(m))
            .collect(),
            units_prefixes: vec![src_prefix("crates/power"), src_prefix("crates/trace")],
            float_prefixes: vec![
                src_prefix("crates/sim"),
                src_prefix("crates/power"),
                src_prefix("crates/pm"),
            ],
        }
    }

    /// Builds the scopes from the workspace manifest at `root`.
    pub fn discover(root: &Path) -> io::Result<ScopeConfig> {
        let members = workspace_members(root)?;
        let crates: Vec<&String> = members
            .iter()
            .filter(|m| m.starts_with("crates/"))
            .collect();
        let name_of = |m: &str| m.strip_prefix("crates/").unwrap_or(m).to_string();
        let determinism_prefixes = crates
            .iter()
            .filter(|m| {
                let name = name_of(m);
                !DETERMINISM_OPT_OUTS.iter().any(|(n, _)| *n == name)
            })
            .map(|m| src_prefix(m))
            .collect();
        let from_list = |list: &[&str]| -> Vec<String> {
            crates
                .iter()
                .filter(|m| list.contains(&name_of(m).as_str()))
                .map(|m| src_prefix(m))
                .collect()
        };
        Ok(ScopeConfig {
            determinism_prefixes,
            units_prefixes: from_list(UNIT_CRATES),
            float_prefixes: from_list(FLOAT_CRATES),
        })
    }

    /// Whether `rel_path` is in determinism scope.
    pub fn determinism(&self, rel_path: &str) -> bool {
        self.determinism_prefixes
            .iter()
            .any(|p| rel_path.starts_with(p.as_str()))
    }

    /// Whether `rel_path` is in raw-unit-math scope.
    pub fn units(&self, rel_path: &str) -> bool {
        self.units_prefixes
            .iter()
            .any(|p| rel_path.starts_with(p.as_str()))
    }

    /// Whether `rel_path` is in float-determinism scope.
    pub fn floats(&self, rel_path: &str) -> bool {
        self.float_prefixes
            .iter()
            .any(|p| rel_path.starts_with(p.as_str()))
    }
}

/// Expands the `[workspace] members` globs of `root/Cargo.toml` into
/// the list of member directories (workspace-relative, `/`-separated),
/// keeping only directories that actually contain a `Cargo.toml`.
pub fn workspace_members(root: &Path) -> io::Result<Vec<String>> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut out = Vec::new();
    for pattern in member_patterns(&manifest) {
        if let Some(prefix) = pattern.strip_suffix("/*") {
            let dir = root.join(prefix);
            let Ok(entries) = fs::read_dir(&dir) else {
                continue;
            };
            let mut found: Vec<String> = entries
                .flatten()
                .filter(|e| e.path().join("Cargo.toml").is_file())
                .map(|e| format!("{prefix}/{}", e.file_name().to_string_lossy()))
                .collect();
            found.sort();
            out.extend(found);
        } else if root.join(&pattern).join("Cargo.toml").is_file() {
            out.push(pattern);
        }
    }
    Ok(out)
}

/// Pulls the string entries of the `members = [...]` array out of a
/// manifest without a TOML dependency. Tolerates line comments and
/// arbitrary line breaking inside the array.
fn member_patterns(manifest: &str) -> Vec<String> {
    let Some(start) = manifest.find("members") else {
        return Vec::new();
    };
    let Some(open_rel) = manifest[start..].find('[') else {
        return Vec::new();
    };
    let after_open = &manifest[start + open_rel + 1..];
    let Some(close) = after_open.find(']') else {
        return Vec::new();
    };
    let body = &after_open[..close];
    let mut out = Vec::new();
    for line in body.lines() {
        let line = line.split('#').next().unwrap_or("");
        let mut rest = line;
        while let Some(q1) = rest.find('"') {
            let tail = &rest[q1 + 1..];
            let Some(q2) = tail.find('"') else { break };
            out.push(tail[..q2].to_string());
            rest = &tail[q2 + 1..];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch_workspace(name: &str, members_line: &str, crates: &[&str]) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("simlint-scope-{}-{}", std::process::id(), name));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        fs::write(
            root.join("Cargo.toml"),
            format!("[workspace]\nmembers = {members_line}\n"),
        )
        .unwrap();
        for c in crates {
            let dir = root.join("crates").join(c);
            fs::create_dir_all(&dir).unwrap();
            fs::write(dir.join("Cargo.toml"), "[package]\n").unwrap();
        }
        root
    }

    #[test]
    fn new_member_lands_in_determinism_scope_automatically() {
        let root = scratch_workspace(
            "new-member",
            r#"["crates/*"]"#,
            &["sim", "bench", "brandnew"],
        );
        let cfg = ScopeConfig::discover(&root).unwrap();
        // The crate nobody hand-listed is in scope from its first file…
        assert!(cfg.determinism("crates/brandnew/src/lib.rs"), "{cfg:?}");
        assert!(cfg.determinism("crates/sim/src/core.rs"));
        // …while the documented opt-out stays out.
        assert!(!cfg.determinism("crates/bench/src/report.rs"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn curated_scopes_drop_missing_members() {
        let root = scratch_workspace("curated", r#"["crates/*"]"#, &["power", "sim"]);
        let cfg = ScopeConfig::discover(&root).unwrap();
        assert!(cfg.units("crates/power/src/registry.rs"));
        // `trace` is on the curated list but absent from this
        // workspace, so its prefix must not linger.
        assert!(
            !cfg.units_prefixes.iter().any(|p| p.contains("trace")),
            "{cfg:?}"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn member_array_parsing_survives_comments_and_wrapping() {
        let patterns = member_patterns(
            "[workspace]\nmembers = [\n  \"crates/*\", # the real code\n  \"vendor/*\",\n]\n",
        );
        assert_eq!(patterns, ["crates/*", "vendor/*"]);
    }

    #[test]
    fn static_default_matches_curated_lists() {
        let cfg = ScopeConfig::default_static();
        assert!(cfg.determinism("crates/trace/src/wire.rs"));
        assert!(!cfg.determinism("crates/bench/src/report.rs"));
        assert!(cfg.units("crates/trace/src/codec.rs"));
        assert!(!cfg.units("crates/measure/src/fixture.rs"));
        assert!(cfg.floats("crates/pm/src/governor.rs"));
        assert!(!cfg.floats("crates/serve/src/job.rs"));
    }
}

//! Empirical anchors of the power model, with provenance.
//!
//! GPUSimPow mixes analytical circuit models with empirically measured
//! constants (paper §III-B/§III-D). Every measured or calibrated number
//! in the model lives here, each with its source:
//!
//! * *measured* — published in the paper, obtained on the authors'
//!   GT240/GTX580 testbed;
//! * *calibrated* — free parameter of this reproduction's CACTI-lite
//!   circuit tier, anchored so that the GT240 chip representation
//!   reproduces the paper's Table IV (static power, area) and Table V
//!   (blackscholes component breakdown). This mirrors how McPAT anchors
//!   its analytic models to industrial data.
//!
//! All energies are quoted at the 40 nm node the paper measures on;
//! [`scaled`] carries them to other nodes via the ITRS tier.

use gpusimpow_tech::node::TechNode;
use gpusimpow_tech::scaling::NodeScaling;
use gpusimpow_tech::units::{Energy, Power};

/// The node the anchors were "measured" at (the paper's GPUs, 40 nm).
pub const ANCHOR_NODE_NM: u32 = 40;

/// Energy of one integer lane-operation. *Measured* (paper §III-D:
/// "integer instructions are using approximately 40 pJ").
pub const INT_OP: Energy = Energy::from_picojoules(40.0);

/// Energy of one floating-point lane-operation. *Measured* (paper
/// §III-D: "about 75 pJ per instruction"; NVIDIA reports 50 pJ \[28\]).
pub const FP_OP: Energy = Energy::from_picojoules(75.0);

/// Energy of one SFU lane-operation. *Calibrated* from the
/// piecewise-quadratic SFU of De Caro et al. (paper ref. \[21\]) scaled to
/// 40 nm — several arithmetic stages per transcendental.
pub const SFU_OP: Energy = Energy::from_picojoules(300.0);

/// Dynamic power of the global block scheduler while any work is on the
/// chip. *Measured* (paper Fig. 4: "this extra power (3.34 W) can be
/// attributed to the activation of the global scheduler").
pub const GLOBAL_SCHEDULER: Power = Power::new(3.34);

/// Additional dynamic power of an *active cluster* beyond its cores'
/// own power. *Measured*: Fig. 4's 0.692 W per-cluster step minus the
/// 0.199 W core base power below.
pub const CLUSTER_OVERHEAD: Power = Power::new(0.493);

/// Dynamic "base power" of one busy core: clocking and the per-core
/// fixed-function slices the paper cannot model structurally.
/// *Measured* (Table V: core base power 0.199 W).
pub const CORE_BASE: Power = Power::new(0.199);

/// Static power of the undifferentiated per-core transistors (ROPs,
/// video decode slices, and everything else with no public
/// documentation), per mm² of *undifferentiated core area* at 40 nm /
/// 350 K. *Calibrated* so a GT240 core shows Table V's 0.886 W.
pub const UNDIFF_STATIC_PER_MM2: Power = Power::from_milliwatts(155.5);

/// Undifferentiated area per core, in multiples of the *modelled* core
/// area. *Calibrated* so the GT240 die lands at Table IV's 105 mm².
pub const UNDIFF_AREA_FACTOR: f64 = 9.0;

/// Chip-level overhead area (pads, PLLs, display, ROP partitions) as a
/// fraction of the summed component area. *Calibrated* (Table IV).
pub const CHIP_AREA_OVERHEAD: f64 = 1.25;

// ---- per-component calibration multipliers --------------------------------
//
// Applied on top of the CACTI-lite circuit-tier outputs. A value of 1.0
// means the analytic model is used as-is.

/// Register file energy multiplier (operand-collector datapath wires are
/// longer than the bare-array model assumes). *Calibrated* to Table V's
/// 0.173 W RF dynamic on blackscholes.
pub const RF_ENERGY_SCALE: f64 = 2.63;

/// Register file leakage multiplier. *Calibrated* (Table V: 0.112 W).
pub const RF_LEAKAGE_SCALE: f64 = 9.7;

/// WCU energy multiplier. *Calibrated* (Table V: 0.089 W dynamic).
pub const WCU_ENERGY_SCALE: f64 = 28.0;

/// WCU leakage multiplier. *Calibrated* (Table V: 0.042 W).
pub const WCU_LEAKAGE_SCALE: f64 = 20.0;

/// LDST unit energy multiplier for the AGU/coalescer/cache path.
/// *Calibrated* (Table V: 0.014 W dynamic on the nearly-memory-free
/// blackscholes).
pub const LDST_ENERGY_SCALE: f64 = 17.0;

/// Separate multiplier for the banked SMEM array and its crossbars.
/// The blackscholes anchor never touches shared memory, so this path is
/// anchored to the §III-D-class microbenchmark magnitudes instead.
pub const LDST_SMEM_SCALE: f64 = 1.5;

/// LDST unit leakage multiplier. *Calibrated* (Table V: 0.234 W).
pub const LDST_LEAKAGE_SCALE: f64 = 31.6;

/// Execution-unit leakage per SIMD lane at 40 nm. *Calibrated*
/// (Table V: 0.0096 W for 8 INT + 8 FP + 2 SFU lanes).
pub const EXEC_LEAKAGE_PER_LANE: Power = Power::from_milliwatts(0.53);

/// NoC energy multiplier. *Calibrated* (Table V: 1.229 W chip dynamic).
pub const NOC_ENERGY_SCALE: f64 = 4.1;

/// NoC leakage multiplier. *Calibrated* (Table V: 1.484 W chip static).
pub const NOC_LEAKAGE_SCALE: f64 = 1.0;

/// NoC static power per attached port (routers, link drivers kept
/// powered). *Calibrated* (Table V: 1.484 W for the GT240's 15 ports).
pub const NOC_STATIC_PER_PORT: Power = Power::from_milliwatts(99.0);

/// Share of the Fig. 4 cluster overhead the *chip model* attributes as
/// cluster-level dynamic power; the rest of the measured 0.493 W step is
/// board-level (VRM, DRAM co-activation) and appears only in the
/// hardware emulator. *Calibrated* (Table V cores row).
pub const MODEL_CLUSTER_OVERHEAD: Power = Power::from_milliwatts(150.0);

/// Memory-controller energy per byte crossing the pins (controller +
/// PHY + I/O). *Calibrated* (Table V: 1.753 W MC dynamic).
pub const MC_ENERGY_PER_BYTE: Energy = Energy::from_picojoules(90.0);

/// Memory-controller static power per channel. *Calibrated*
/// (Table V: 0.497 W for the GT240's interface).
pub const MC_STATIC_PER_CHANNEL: Power = Power::from_milliwatts(248.0);

/// PCIe controller static power (PHY always-on lanes). *Calibrated*
/// (Table V: 0.539 W).
pub const PCIE_STATIC: Power = Power::from_milliwatts(539.0);

/// PCIe dynamic power while the link/controller is active during kernel
/// execution (DMA engines, replay buffers). *Calibrated*
/// (Table V: 0.992 W).
pub const PCIE_ACTIVE: Power = Power::from_milliwatts(992.0);

/// PCIe energy per byte, amortized into the kernel window (bulk
/// transfers happen outside the measured window, so only a small
/// residual is attributed here). *Calibrated*.
pub const PCIE_ENERGY_PER_BYTE: Energy = Energy::from_picojoules(2.0);

// ---- GDDR5 device power (Micron power-calculation methodology) -----------
//
// Derived from datasheet-style IDD values (paper refs. [26], [27]) for a
// 1.5 V GDDR5 device; the per-channel model multiplies by the channel
// count.

/// Background (standby, banks precharged, clocks running) power per
/// channel — two GDDR5 devices per 32-bit channel with their clocks
/// running. Dominates light-traffic kernels, which is why the paper's
/// blackscholes DRAM figure is 4.3 W despite minimal memory activity.
pub const DRAM_BACKGROUND_PER_CHANNEL: Power = Power::from_milliwatts(1500.0);

/// Energy of one activate+precharge pair.
pub const DRAM_ACTIVATE_ENERGY: Energy = Energy::from_nanojoules(2.5);

/// Energy of one 32-byte read burst (core + I/O).
pub const DRAM_READ_BURST_ENERGY: Energy = Energy::from_nanojoules(1.1);

/// Energy of one 32-byte write burst (core + ODT).
pub const DRAM_WRITE_BURST_ENERGY: Energy = Energy::from_nanojoules(1.2);

/// Energy of one all-bank refresh.
pub const DRAM_REFRESH_ENERGY: Energy = Energy::from_nanojoules(60.0);

/// Termination power while the data bus is driven, per channel.
pub const DRAM_TERMINATION_ACTIVE: Power = Power::from_milliwatts(400.0);

/// Scales an anchored energy from the 40 nm anchor node to `target`.
pub fn scaled(e: Energy, target: &TechNode) -> Energy {
    if target.feature_nm() == ANCHOR_NODE_NM {
        return e;
    }
    let anchor = TechNode::planar(ANCHOR_NODE_NM).expect("anchor node exists");
    NodeScaling::between(&anchor, target).scale_energy(e)
}

/// Scales an anchored leakage power to `target`, including its junction
/// temperature (the anchors are quoted at 350 K; the [`NodeScaling`]
/// leakage factor compares temperature-corrected currents, so a hotter
/// target node leaks proportionally more).
pub fn scaled_leakage(p: Power, target: &TechNode) -> Power {
    let anchor = TechNode::planar(ANCHOR_NODE_NM).expect("anchor node exists");
    p * NodeScaling::between(&anchor, target).leakage_power_factor()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_measured_anchors() {
        assert_eq!(INT_OP.picojoules(), 40.0);
        assert_eq!(FP_OP.picojoules(), 75.0);
        assert_eq!(GLOBAL_SCHEDULER.watts(), 3.34);
        // Cluster step of Fig. 4 = overhead + core base.
        let step = CLUSTER_OVERHEAD + CORE_BASE;
        assert!((step.watts() - 0.692).abs() < 1e-9);
    }

    #[test]
    fn scaling_to_smaller_node_reduces_energy() {
        let t28 = TechNode::planar(28).unwrap();
        assert!(scaled(FP_OP, &t28) < FP_OP);
        let same = TechNode::planar(40).unwrap();
        assert_eq!(scaled(FP_OP, &same), FP_OP);
    }

    #[test]
    fn leakage_scaling_is_consistent() {
        let t28 = TechNode::planar(28).unwrap();
        let p = scaled_leakage(Power::new(1.0), &t28);
        assert!(p.watts() > 0.0 && p.watts() != 1.0);
    }
}

//! A blocking client for the simulation service.
//!
//! One [`Client`] owns one TCP connection. Requests are synchronous:
//! each call writes one frame and reads one response frame (the server
//! answers in order, so no correlation ids are needed).

use std::net::{TcpStream, ToSocketAddrs};

use crate::job::{JobSpec, SweepSpec};
use crate::proto::{read_frame, write_frame, JobOutcome, Request, Response, StatsSnapshot};
use crate::wire::WireError;

/// A connected service client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] if the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Response, WireError> {
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream)?.ok_or(WireError::Truncated {
            what: "response frame",
            missing: 4,
        })?;
        Response::decode(&payload)
    }

    /// Submits a batch of jobs; returns one outcome per job, in order.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on transport failure or a request-level
    /// server error. Per-job failures are inside the outcomes.
    pub fn submit(&mut self, jobs: &[JobSpec]) -> Result<Vec<JobOutcome>, WireError> {
        match self.roundtrip(&Request::Submit(jobs.to_vec()))? {
            Response::Results(outcomes) => Ok(outcomes),
            Response::Error(msg) => Err(WireError::Malformed(format!("server error: {msg}"))),
            other => Err(WireError::Malformed(format!(
                "expected Results, got {other:?}"
            ))),
        }
    }

    /// Submits a multi-preset sweep; returns one outcome per GPU
    /// preset, in the sweep's preset order.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on transport failure or a request-level
    /// server error. Per-job failures are inside the outcomes.
    pub fn submit_sweep(&mut self, sweep: &SweepSpec) -> Result<Vec<JobOutcome>, WireError> {
        match self.roundtrip(&Request::SubmitSweep(sweep.clone()))? {
            Response::Results(outcomes) => Ok(outcomes),
            Response::Error(msg) => Err(WireError::Malformed(format!("server error: {msg}"))),
            other => Err(WireError::Malformed(format!(
                "expected Results, got {other:?}"
            ))),
        }
    }

    /// Fetches the server's counter snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on transport failure or a non-Stats reply.
    pub fn stats(&mut self) -> Result<StatsSnapshot, WireError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(WireError::Malformed(format!(
                "expected Stats, got {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on transport failure or a non-Pong reply.
    pub fn ping(&mut self) -> Result<(), WireError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(WireError::Malformed(format!(
                "expected Pong, got {other:?}"
            ))),
        }
    }

    /// Asks the server to shut down; the connection is spent afterward.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on transport failure or an unexpected
    /// reply.
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(WireError::Malformed(format!(
                "expected ShuttingDown, got {other:?}"
            ))),
        }
    }
}

// Fixture: a complete coverage allowlist for registry_events.rs.
pub const UNPRICED_EVENTS: &[EventKind] = &[
    EventKind::Branches,
    EventKind::GhostEvent,
];

pub const BASE_MODEL_EVENTS: &[EventKind] = &[EventKind::ShaderCycles];

//! Table I: the benchmark suite.
//!
//! Usage: table1_benchmarks [--threads N]

use gpusimpow_bench::cli;
use gpusimpow_kernels::all_benchmarks;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let pool = cli::pool_from_args(&args);
    println!("Table I — GPGPU benchmarks used for experimental evaluation\n");
    println!("| name | #kernels | description | origin |");
    println!("|---|---|---|---|");
    // Row formatting fans out by benchmark index (each job instantiates
    // its own suite — the descriptors are cheap); rows come back in
    // suite order, so the table never depends on the thread count.
    let n = all_benchmarks().len();
    let rows = pool.run((0..n).collect(), |i| {
        let b = &all_benchmarks()[i];
        format!(
            "| {} | {} | {} | {} |",
            b.name(),
            b.kernel_names().len(),
            b.description(),
            b.origin()
        )
    });
    for row in rows {
        println!("{row}");
    }
}

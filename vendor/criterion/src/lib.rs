//! Offline stand-in for the `criterion` crate.
//!
//! The sandboxed build environment cannot reach crates.io, so this crate
//! provides the minimal harness surface the workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Instead of
//! statistical sampling it times a fixed iteration budget and prints one
//! mean-per-iteration line per benchmark — enough to eyeball regressions
//! and to keep `cargo bench` compiling and running offline.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier, same contract as `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly (a short warm-up, then a timed budget) and
    /// records mean wall time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..3 {
            black_box(f());
        }
        // Calibrate an iteration count targeting ~50 ms of measurement.
        let probe = Instant::now();
        black_box(f());
        let once = probe.elapsed().max(Duration::from_nanos(20));
        let iters =
            (Duration::from_millis(50).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// Registry and runner for benchmarks, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        };
        println!(
            "bench {name:<40} {mean_ns:>12.1} ns/iter ({} iters)",
            b.iters
        );
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

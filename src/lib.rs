//! Meta-crate for the GPUSimPow reproduction: re-exports the public
//! API of all workspace crates. See the `gpusimpow` facade crate for
//! the primary entry point.

pub use gpusimpow::*;
pub use gpusimpow_circuit as circuit;
pub use gpusimpow_isa as isa;
pub use gpusimpow_kernels as kernels;
pub use gpusimpow_measure as measure;
pub use gpusimpow_power as power;
pub use gpusimpow_sim as sim;
pub use gpusimpow_tech as tech;
pub use gpusimpow_trace as trace;

//! Criterion microbenchmarks of the model's hot inner components:
//! coalescing, bank-conflict analysis, SRAM-array evaluation and the
//! DRAM channel scheduler.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use gpusimpow_circuit::{SramArray, SramSpec};
use gpusimpow_sim::dram::{DramChannel, DramRequest};
use gpusimpow_sim::ldst::{coalesce, smem_conflicts};
use gpusimpow_sim::{ActivityVector, DramConfig, EventKind};
use gpusimpow_tech::node::TechNode;

fn bench_coalescer(c: &mut Criterion) {
    let coalesced: Vec<u32> = (0..32).map(|i| 0x1000 + i * 4).collect();
    let scattered: Vec<u32> = (0..32).map(|i| 0x1000 + i * 4096).collect();
    c.bench_function("coalesce/sequential-warp", |b| {
        b.iter(|| coalesce(black_box(&coalesced), 128))
    });
    c.bench_function("coalesce/scattered-warp", |b| {
        b.iter(|| coalesce(black_box(&scattered), 128))
    });
}

fn bench_smem_conflicts(c: &mut Criterion) {
    let free: Vec<u32> = (0..32).collect();
    let conflicted: Vec<u32> = (0..32).map(|i| i * 16).collect();
    c.bench_function("smem/conflict-free", |b| {
        b.iter(|| smem_conflicts(black_box(&free), 16))
    });
    c.bench_function("smem/16-way-conflict", |b| {
        b.iter(|| smem_conflicts(black_box(&conflicted), 16))
    });
}

fn bench_sram_model(c: &mut Criterion) {
    let tech = TechNode::planar(40).unwrap();
    c.bench_function("circuit/sram-array-eval", |b| {
        b.iter(|| SramArray::new(black_box(&tech), SramSpec::simple(4096, 128)).unwrap())
    });
}

fn bench_dram_scheduler(c: &mut Criterion) {
    c.bench_function("dram/channel-100-requests", |b| {
        b.iter(|| {
            let mut ch: DramChannel<u32> = DramChannel::new(DramConfig::gddr5(), 16);
            let mut stats = ActivityVector::new();
            let mut fed = 0u32;
            let mut done = 0;
            let mut cycle = 0u64;
            while done < 100 {
                if fed < 100 && ch.can_accept() {
                    ch.push(
                        DramRequest {
                            write: fed.is_multiple_of(3),
                            addr: fed.wrapping_mul(2503) * 64,
                            bytes: 128,
                            token: fed,
                        },
                        &mut stats,
                    );
                    if fed.is_multiple_of(3) {
                        done += 1; // writes complete silently
                    }
                    fed += 1;
                }
                ch.tick(cycle, &mut stats);
                done += ch.pop_completed(cycle).len();
                cycle += 1;
            }
            black_box(stats[EventKind::DramActivates])
        })
    });
}

criterion_group!(
    benches,
    bench_coalescer,
    bench_smem_conflicts,
    bench_sram_model,
    bench_dram_scheduler
);
criterion_main!(benches);

//! # gpusimpow-measure — the virtual power-measurement testbed
//!
//! A software stand-in for the paper's custom measurement setup
//! (§IV-A, Fig. 5). There is no physical GT240/GTX580 here, so the
//! "real hardware" is a reference power emulator with its *own*
//! parameterization, independent of the GPGPU-Pow model — the validation
//! experiments (Fig. 4, Fig. 6, Table IV, §III-D, §IV-B) compare the
//! power *model* against this emulator through a faithful model of the
//! measurement chain:
//!
//! * [`hardware`] — the reference card (synthetic silicon truth, power
//!   gating, the Fig. 4 occupancy staircase);
//! * [`rails`] — PCIe slot 12 V/3.3 V rails and external connectors with
//!   riser/cable shunt resistors;
//! * [`sensing`] — AD8210 current-shunt monitors (gain 20, ±0.5 % gain,
//!   ±1 mV offset) and ±1.7 % resistive dividers;
//! * [`daq`] — the NI USB-6210 (31.2 kHz, 16 bit, datasheet errors);
//! * [`testbed`] — the assembled flow with profiler-timestamp windowing
//!   and the repeat-short-kernels workaround;
//! * [`static_est`] — the two §IV-B static-power estimation methods;
//! * [`analysis`] — §III-D per-op-energy derivation and Fig. 6 error
//!   metrics.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod daq;
pub mod hardware;
pub mod rails;
pub mod sensing;
pub mod static_est;
pub mod testbed;

pub use analysis::{average_relative_error, max_relative_error, per_op_energy, ValidationRow};
pub use hardware::{ReferenceGpu, SiliconTruth};
pub use testbed::{KernelExec, KernelMeasurement, Testbed};

//! Power-rail model of the card under test.
//!
//! The testbed probes every supply path (paper §IV-A): the PCIe slot's
//! 12 V and 3.3 V rails through a riser card with 20 mΩ shunts, and —
//! for cards with external connectors like the GTX580 — the PCIe power
//! cables through 10 mΩ shunts. Measuring *all* sources is one of the
//! paper's methodological improvements over prior work.

use gpusimpow_tech::units::{Current, Power, Voltage};

/// One supply rail with its nominal voltage and shunt resistor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rail {
    /// Rail name for reports.
    pub name: &'static str,
    /// Nominal rail voltage.
    pub nominal: Voltage,
    /// Shunt resistance in ohms (20 mΩ riser, 10 mΩ cable).
    pub shunt_ohm: f64,
    /// Source impedance causing load-dependent droop (V per A).
    pub droop_v_per_a: f64,
}

/// Instantaneous electrical state of one rail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RailState {
    /// Voltage at the card after droop.
    pub voltage: Voltage,
    /// Current drawn.
    pub current: Current,
}

impl RailState {
    /// Power delivered over this rail.
    pub fn power(&self) -> Power {
        self.voltage * self.current
    }
}

/// How a card distributes its draw over the available rails.
#[derive(Debug, Clone)]
pub struct RailSplit {
    rails: Vec<Rail>,
    /// Fixed draw on the 3.3 V rail (fans-off logic, straps).
    aux_3v3: Power,
    /// Maximum the slot 12 V rail delivers before external connectors
    /// take over (PCIe spec: 66 W on 12 V slot power).
    slot_12v_cap: Power,
}

impl RailSplit {
    /// A slot-only card (GT240: no external connector).
    pub fn slot_only() -> Self {
        RailSplit {
            rails: vec![
                Rail {
                    name: "slot12v",
                    nominal: Voltage::new(12.05),
                    shunt_ohm: 0.020,
                    droop_v_per_a: 0.012,
                },
                Rail {
                    name: "slot3v3",
                    nominal: Voltage::new(3.32),
                    shunt_ohm: 0.020,
                    droop_v_per_a: 0.005,
                },
            ],
            aux_3v3: Power::new(1.9),
            slot_12v_cap: Power::new(66.0),
        }
    }

    /// A card with two external PCIe power connectors (GTX580).
    pub fn with_external_connectors() -> Self {
        let mut split = RailSplit::slot_only();
        split.rails.push(Rail {
            name: "ext12v_a",
            nominal: Voltage::new(12.10),
            shunt_ohm: 0.010,
            droop_v_per_a: 0.010,
        });
        split.rails.push(Rail {
            name: "ext12v_b",
            nominal: Voltage::new(12.08),
            shunt_ohm: 0.010,
            droop_v_per_a: 0.010,
        });
        split
    }

    /// The rails of this card.
    pub fn rails(&self) -> &[Rail] {
        &self.rails
    }

    /// Splits a total card power over the rails, returning per-rail
    /// electrical state in rail order.
    ///
    /// # Panics
    ///
    /// Panics if `total` is negative or exceeds what the rails can carry.
    pub fn split(&self, total: Power) -> Vec<RailState> {
        assert!(total.watts() >= 0.0, "power cannot be negative");
        let mut remaining = (total - self.aux_3v3).max(Power::ZERO);
        let mut states = Vec::with_capacity(self.rails.len());
        for rail in &self.rails {
            let share = match rail.name {
                "slot3v3" => self.aux_3v3.min(total),
                "slot12v" => {
                    let cap = if self.rails.len() > 2 {
                        // With external connectors the slot carries less.
                        Power::new(35.0)
                    } else {
                        self.slot_12v_cap
                    };
                    let s = remaining.min(cap);
                    remaining -= s;
                    s
                }
                _ => {
                    // External connectors share the rest equally.
                    let ext_count = self
                        .rails
                        .iter()
                        .filter(|r| r.name.starts_with("ext"))
                        .count() as f64;
                    remaining / ext_count
                }
            };
            // Solve P = V·I with droop: V = V0 - k·I  =>  quadratic in I.
            let v0 = rail.nominal.volts();
            let k = rail.droop_v_per_a;
            let p = share.watts();
            let disc = (v0 * v0 - 4.0 * k * p).max(0.0);
            let current = if k > 0.0 {
                (v0 - disc.sqrt()) / (2.0 * k)
            } else {
                p / v0
            };
            let voltage = v0 - k * current;
            states.push(RailState {
                voltage: Voltage::new(voltage),
                current: Current::new(current),
            });
        }
        assert!(
            remaining.watts() < 1e-9 || self.rails.len() > 2,
            "slot-only card over its power budget"
        );
        states
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_conserves_power() {
        let split = RailSplit::slot_only();
        let states = split.split(Power::new(35.0));
        let sum: f64 = states.iter().map(|s| s.power().watts()).sum();
        assert!((sum - 35.0).abs() < 0.05, "sum {sum}");
    }

    #[test]
    fn external_connectors_take_the_bulk_on_big_cards() {
        let split = RailSplit::with_external_connectors();
        let states = split.split(Power::new(250.0));
        let sum: f64 = states.iter().map(|s| s.power().watts()).sum();
        assert!((sum - 250.0).abs() < 0.2, "sum {sum}");
        // slot12 capped at 35 W; externals carry > 100 W each.
        assert!(states[0].power().watts() <= 35.5);
        assert!(states[2].power().watts() > 90.0);
        assert!(states[3].power().watts() > 90.0);
    }

    #[test]
    fn droop_lowers_voltage_under_load() {
        let split = RailSplit::slot_only();
        let light = split.split(Power::new(16.0));
        let heavy = split.split(Power::new(60.0));
        assert!(heavy[0].voltage < light[0].voltage);
        assert!(heavy[0].current > light[0].current);
    }

    #[test]
    fn aux_rail_carries_fixed_load() {
        let split = RailSplit::slot_only();
        let states = split.split(Power::new(30.0));
        assert!((states[1].power().watts() - 1.9).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn overload_panics_on_slot_only_cards() {
        let split = RailSplit::slot_only();
        let _ = split.split(Power::new(120.0));
    }
}

//! The SIMT core model: warp control unit, register file, execution
//! units and load/store unit (paper §III-C, Figs. 2 and 3).
//!
//! Each shader cycle a core:
//!
//! 1. retires completed operations (writeback, dependency release);
//! 2. issues up to `issue_width` ready warp instructions, executing them
//!    *functionally* at issue and modelling timing via pipeline occupancy
//!    and latency events;
//! 3. fetches/decodes one instruction into an empty instruction-buffer
//!    slot, selected by a rotating-priority scheduler.
//!
//! Dependencies use either a per-warp scoreboard (Fermi-class configs) or
//! barrel blocking — the warp stalls until its previous instruction
//! commits (Tesla-class, Table II "Scoreboard ✗").

use std::collections::BTreeMap;

use gpusimpow_isa::{
    Instr, InstrClass, Kernel, LaunchConfig, MemSpace, Operand, Pc, Reg, SpecialReg,
};

use crate::cache::{Mshr, Probe, SimCache};
use crate::config::{GpuConfig, WarpSchedPolicy};
use crate::events::{ActivityVector, EventKind as Ev};
use crate::func;
use crate::ldst;
use crate::mem::GpuMemory;
use crate::replay::{ReplaySource, Tracer, WarpCapture};
use crate::simt_stack::{LaneMask, SimtStack};
use crate::wheel::EventWheel;

/// Per-launch context shared by all cores.
#[derive(Debug, Clone, Copy)]
pub struct LaunchCtx<'a> {
    /// The kernel being executed.
    pub kernel: &'a Kernel,
    /// Its launch configuration.
    pub launch: LaunchConfig,
    /// Global-memory base address where the constant bank was staged.
    pub const_base: u32,
    /// Size of the staged constant bank in bytes.
    pub const_bytes: u32,
    /// Pre-decoded metadata for every instruction of the kernel,
    /// indexed by PC (see [`DecodedInstr::decode_kernel`]).
    pub decoded: &'a [DecodedInstr],
    /// Recorded warp streams driving this launch, when the replay
    /// frontend is active (see [`crate::replay::ReplaySource`]); `None`
    /// under the live frontend.
    pub replay: Option<&'a ReplaySource<'a>>,
}

/// Pre-decoded instruction metadata, derived once per launch and shared
/// read-only by all cores.
///
/// Re-deriving the source-register list (a `Vec` allocation) and the
/// register-file bank conflicts on every issue attempt was the hottest
/// part of the cycle loop; everything the issue stage needs is computed
/// here exactly once per kernel instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodedInstr {
    /// The architectural instruction.
    pub instr: Instr,
    /// Execution class (pipeline selector).
    pub class: InstrClass,
    /// Destination register, if any.
    pub dst: Option<Reg>,
    /// Number of source registers (at most four).
    pub n_srcs: u8,
    /// Scoreboard dependence mask: source ∪ destination register bits,
    /// indices clamped to 63 (the scoreboard width).
    pub dep_mask: u64,
    /// Register-file bank conflicts among the sources under the
    /// configuration's bank count.
    pub bank_conflicts: u8,
    /// `true` for instructions that drain the warp before issue
    /// (`Exit`, `Bar`).
    pub drains: bool,
}

/// Register-file bank conflicts among `srcs` under `banks` banks:
/// sources minus distinct banks touched, as the banked register file
/// serializes same-bank reads.
fn bank_conflicts(srcs: &[Reg], regfile_banks: usize) -> u8 {
    let mut banks = [0usize; 4];
    for (b, r) in banks.iter_mut().zip(srcs) {
        *b = r.index() % regfile_banks;
    }
    let n = srcs.len();
    let mut distinct = 0;
    for i in 0..n {
        if !banks[..i].contains(&banks[i]) {
            distinct += 1;
        }
    }
    (n - distinct) as u8
}

impl DecodedInstr {
    /// Configuration-independent part of the decode: everything except
    /// `bank_conflicts`, which is left at zero. Also returns the source
    /// list so callers can derive the bank conflicts for any bank count.
    fn decode_base(instr: Instr) -> (Self, [Reg; 4], usize) {
        let class = instr.class();
        let dst = instr.dst();
        let mut srcs = [Reg(0); 4];
        let n = instr.srcs_into(&mut srcs);
        let mut dep_mask: u64 = 0;
        for r in &srcs[..n] {
            dep_mask |= 1u64 << r.index().min(63);
        }
        if let Some(d) = dst {
            dep_mask |= 1u64 << d.index().min(63);
        }
        (
            DecodedInstr {
                instr,
                class,
                dst,
                n_srcs: n as u8,
                dep_mask,
                bank_conflicts: 0,
                drains: matches!(instr, Instr::Exit | Instr::Bar),
            },
            srcs,
            n,
        )
    }

    /// Decodes one instruction against `cfg` (bank conflicts depend on
    /// the register-file bank count).
    pub fn decode(instr: Instr, cfg: &GpuConfig) -> Self {
        let (mut di, srcs, n) = Self::decode_base(instr);
        di.bank_conflicts = bank_conflicts(&srcs[..n], cfg.regfile_banks);
        di
    }

    /// Decodes a whole kernel into a PC-indexed table.
    pub fn decode_kernel(kernel: &Kernel, cfg: &GpuConfig) -> Vec<DecodedInstr> {
        kernel
            .code()
            .iter()
            .map(|&i| Self::decode(i, cfg))
            .collect()
    }
}

/// Configuration-independent predecode of a whole kernel, shared across
/// the GPU configurations of a sweep.
///
/// [`DecodedInstr`] depends on the configuration through exactly one
/// field — `bank_conflicts`, a function of `cfg.regfile_banks` — so a
/// sweep decodes each kernel once with [`PredecodedKernel::new`] and
/// stamps out one PC-indexed table per *distinct bank count* with
/// [`PredecodedKernel::specialize`] (both stock presets use 16 banks,
/// so a GT240 + GTX580 sweep shares a single table).
#[derive(Debug, Clone)]
pub struct PredecodedKernel {
    /// Bank-count-independent decode (`bank_conflicts` zeroed).
    base: Vec<DecodedInstr>,
    /// Per-instruction source lists for re-deriving bank conflicts.
    srcs: Vec<([Reg; 4], u8)>,
}

impl PredecodedKernel {
    /// Pre-decodes every instruction of `kernel` once.
    pub fn new(kernel: &Kernel) -> Self {
        let mut base = Vec::with_capacity(kernel.code().len());
        let mut srcs = Vec::with_capacity(kernel.code().len());
        for &instr in kernel.code() {
            let (di, s, n) = DecodedInstr::decode_base(instr);
            base.push(di);
            srcs.push((s, n as u8));
        }
        PredecodedKernel { base, srcs }
    }

    /// Number of pre-decoded instructions.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// `true` when the kernel has no instructions.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Specializes the shared predecode for one configuration. The
    /// result is bit-identical to [`DecodedInstr::decode_kernel`] on
    /// the same kernel and configuration.
    pub fn specialize(&self, cfg: &GpuConfig) -> Vec<DecodedInstr> {
        self.base
            .iter()
            .zip(&self.srcs)
            .map(|(&di, &(srcs, n))| DecodedInstr {
                bank_conflicts: bank_conflicts(&srcs[..n as usize], cfg.regfile_banks),
                ..di
            })
            .collect()
    }
}

/// A memory request leaving a core for the uncore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Issuing core.
    pub core: usize,
    /// `true` for writes (no reply expected).
    pub write: bool,
    /// Segment base address.
    pub addr: u32,
    /// Transfer size in bytes.
    pub bytes: u32,
}

/// What a completion event releases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Completion {
    /// An ALU/SFU/short-memory operation commits: clear the dst pending
    /// bit and (barrel) the busy flag.
    Commit { warp: usize, dst: Option<Reg> },
}

/// An in-flight coalesced load group (one warp load instruction).
#[derive(Debug)]
struct LoadGroup {
    warp: usize,
    dst: Reg,
    remaining: u32,
}

#[derive(Debug)]
struct Warp {
    cta_slot: usize,
    /// Linear thread id of lane 0 within the CTA.
    base_tid: u32,
    stack: SimtStack,
    /// Register file in structure-of-arrays layout: register `r`'s
    /// per-lane row is `regs[r * ws .. (r + 1) * ws]` with
    /// `ws = cfg.warp_size`, so operand collection reads one contiguous
    /// row per source and the execute stage runs dense row loops (see
    /// [`gather_row`] / [`scatter_row`]).
    regs: Vec<u32>,
    /// Fetched-but-unissued instruction, by PC (the decoded table in
    /// [`LaunchCtx`] holds the metadata).
    ibuf: Option<Pc>,
    /// Scoreboard: bit `r` set while register `r` has a pending write.
    pending_writes: u64,
    /// Barrel mode: an instruction is in flight.
    busy: bool,
    at_barrier: bool,
    outstanding_groups: u32,
    done: bool,
}

#[derive(Debug)]
struct Cta {
    warp_slots: Vec<usize>,
    smem: Vec<u8>,
    live_warps: usize,
    waiting_at_barrier: usize,
}

/// Sets a scheduler-hint bit; slots beyond 64 are never hinted.
#[inline]
fn set_hint(mask: &mut u64, slot: usize) {
    if slot < 64 {
        *mask |= 1u64 << slot;
    }
}

/// Clears a scheduler-hint bit; slots beyond 64 are never hinted.
#[inline]
fn clear_hint(mask: &mut u64, slot: usize) {
    if slot < 64 {
        *mask &= !(1u64 << slot);
    }
}

/// Index of an instruction class in the per-unit-class ready masks
/// ([`Core`]'s `class_next`). `Control` has no execution unit and is
/// never masked.
#[inline]
fn class_index(class: InstrClass) -> Option<usize> {
    match class {
        InstrClass::Int => Some(0),
        InstrClass::Fp => Some(1),
        InstrClass::Sfu => Some(2),
        InstrClass::Mem => Some(3),
        InstrClass::Control => None,
    }
}

/// Next set bit of `mask` at or after `pos`, walking circularly within
/// the low `n` bits (`mask` must be non-zero and confined to them).
/// Returns the bit index and the number of positions walked from `pos`.
#[inline]
fn next_hint(mask: u64, pos: usize, n: usize) -> (usize, usize) {
    debug_assert!(mask != 0 && pos < n && n <= 64);
    let ahead = (mask >> pos) << pos;
    if ahead != 0 {
        let b = ahead.trailing_zeros() as usize;
        (b, b - pos)
    } else {
        let b = mask.trailing_zeros() as usize;
        (b, n - pos + b)
    }
}

/// Maximum lanes per warp the SoA hot path models — the [`LaneMask`]
/// width. `GpuConfig::validate` bounds `warp_size` by this.
pub const MAX_LANES: usize = 64;

/// Full-warp lane mask for a `ws`-lane warp.
#[inline]
fn warp_full_mask(ws: usize) -> LaneMask {
    if ws >= 64 {
        !0
    } else {
        (1u64 << ws) - 1
    }
}

/// Operand collection over the SoA register file: copies the operand's
/// register row (or splats an immediate) into a dense lane row.
#[inline]
fn gather_row(regs: &[u32], ws: usize, op: Operand, out: &mut [u32; MAX_LANES]) {
    match op {
        Operand::Reg(r) => {
            let base = r.index() * ws;
            out[..ws].copy_from_slice(&regs[base..base + ws]);
        }
        Operand::Imm(v) => out[..ws].fill(v),
    }
}

/// Masked scatter back into the SoA register file: a full-warp mask is
/// one contiguous row copy, divergent masks write per set bit.
#[inline]
fn scatter_row(
    regs: &mut [u32],
    ws: usize,
    dst: Reg,
    vals: &[u32; MAX_LANES],
    mask: LaneMask,
    full: LaneMask,
) {
    let base = dst.index() * ws;
    let row = &mut regs[base..base + ws];
    if mask == full {
        row.copy_from_slice(&vals[..ws]);
    } else {
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            row[lane] = vals[lane];
        }
    }
}

/// Reusable structure-of-arrays scratch block for the per-warp hot
/// pipeline: fixed 64-lane rows for operand collection, dense results
/// and generated addresses (pure stack-style storage — no allocation,
/// no take/put-back churn) plus two reused vectors for the
/// variable-length coalescer outputs. One block per core; zero
/// steady-state allocation.
#[derive(Debug)]
struct LaneScratch {
    /// First gathered source row.
    a: [u32; MAX_LANES],
    /// Second gathered source row.
    b: [u32; MAX_LANES],
    /// Third gathered source row (FFMA/IMAD/SEL).
    c: [u32; MAX_LANES],
    /// Dense result row, scattered under the active mask.
    out: [u32; MAX_LANES],
    /// Generated addresses, dense by lane id.
    addrs: [u32; MAX_LANES],
    /// Active lanes' addresses, compacted in ascending lane order
    /// (feeds the coalescer and the access statistics).
    words: Vec<u32>,
    /// Coalesced segment bases.
    segs: Vec<u32>,
}

impl LaneScratch {
    fn new() -> Self {
        LaneScratch {
            a: [0; MAX_LANES],
            b: [0; MAX_LANES],
            c: [0; MAX_LANES],
            out: [0; MAX_LANES],
            addrs: [0; MAX_LANES],
            words: Vec::new(),
            segs: Vec::new(),
        }
    }
}

/// Outcome of one [`Core::try_issue`] probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IssueProbe {
    /// An instruction issued.
    Issued,
    /// Silent failure on a busy execution unit (barrel configs only):
    /// it lapses with time alone, so the slot stays hinted, and a scan
    /// where every failure is of this kind proves the core cannot
    /// issue before [`Core::unit_wake`].
    UnitBusy,
    /// Any other failure — sticky states, or scoreboard probes that
    /// counted activity and must re-probe every cycle. The issue-stall
    /// sleep must not engage on a scan containing one of these.
    Blocked,
}

/// One SIMT core.
#[derive(Debug)]
pub struct Core {
    id: usize,
    cluster: usize,
    max_warps: usize,
    warps: Vec<Option<Warp>>,
    ctas: Vec<Option<Cta>>,
    smem_in_use: u32,
    fetch_rr: usize,
    issue_rr: usize,
    /// Two-level scheduling: warp slots currently eligible for issue.
    active_set: Vec<usize>,
    /// Rotating pointer over the pending (inactive) warps.
    pending_rr: usize,
    icache: SimCache,
    l1: Option<SimCache>,
    const_cache: SimCache,
    busy_int: u64,
    busy_fp: u64,
    busy_sfu: u64,
    busy_ldst: u64,
    /// Pending completion events, ordered by (fire cycle, insertion) —
    /// the calendar wheel preserves the FIFO same-cycle semantics of
    /// the `BinaryHeap<(cycle, seq)>` it replaced (see
    /// [`crate::wheel`]), so retire order and every golden bit pattern
    /// are unchanged.
    events: EventWheel<Completion>,
    mshr: Mshr<u32>,
    groups: BTreeMap<u32, LoadGroup>,
    next_group: u32,
    out_requests: Vec<MemRequest>,
    completed_ctas: u64,
    /// Block coordinates of each resident CTA, by CTA slot.
    cta_coords: BTreeMap<usize, (u32, u32)>,
    /// Global-memory store overlay filled during the compute phase
    /// (word address → value) and applied by [`Core::commit_stores`]
    /// in the serial commit phase. Loads from this core see it
    /// (read-your-own-writes); other cores see the stores one cycle
    /// later, which keeps the parallel step deterministic.
    store_buf: BTreeMap<u32, u32>,
    /// Whether the current/last tick did observable work.
    work: bool,
    /// Issue-scan hint: bit `s` set means warp slot `s` *might* issue
    /// (or, under a scoreboard, might count a dependency probe). A
    /// conservative superset — stale set bits only cost a wasted probe,
    /// while a clear bit is a proof that probing the slot would be a
    /// silent no-op. Bits are cleared only on sticky failures (see
    /// [`Core::clear_issue_hint_if_blocked`]) and re-set by the events
    /// that can end them: i-buffer fill, writeback retire, barrier
    /// release and CTA dispatch. Slots ≥ 64 are never hinted (the scans
    /// fall back to probing every slot when `max_warps > 64`).
    issue_ready: u64,
    /// Issue-scan sleep: cycles below this are proven issue no-ops.
    /// Engaged only on barrel (non-scoreboard) configs when a full
    /// hinted scan fails with every probe silently blocked on a busy
    /// execution unit — such failures lapse with time alone, at the
    /// earliest when a unit frees ([`Core::unit_wake`]). Any event that
    /// can create a *new* issue candidate (i-buffer fill, writeback
    /// retire, barrier release, CTA dispatch) re-arms the scan by
    /// resetting this to zero at its `set_hint` site. Scoreboard
    /// configs never engage it: their failed dependency probes count
    /// `ScoreboardReads` every cycle, so skipping scans would change
    /// the activity counters.
    issue_stall_until: u64,
    /// Per-unit-class issue candidates: bit `s` of `class_next[c]` is
    /// set iff warp slot `s` currently satisfies *every* probe
    /// precondition short of unit availability — live, not done, not
    /// parked at a barrier, not executing (barrel `busy`) — and its
    /// i-buffer holds a decoded instruction of unit class `c` (see
    /// [`class_index`]). Under that invariant, probing a masked slot
    /// while unit `c` is busy is *proven* to return a silent
    /// [`IssueProbe::UnitBusy`], so the hinted issue scan folds such
    /// slots into its gap distance instead of probing them —
    /// generalizing the whole-scan `issue_stall_until` short-circuit to
    /// per-warp, per-unit-class granularity. Maintained at the i-buffer
    /// fill (set when neither busy nor at a barrier), the issue (the
    /// i-buffer empties: clear), the writeback retire and barrier
    /// release (the withheld bit is set once the blocking condition
    /// lifts), and the launch boundary. Scoreboard configs maintain but
    /// never consult these masks: their failed probes count
    /// `ScoreboardReads`, so skipping them would change the counters.
    /// Slots ≥ 64 are never masked (the scans fall back to full
    /// probing).
    class_next: [u64; 4],
    /// Fetch-scan hint, same contract as `issue_ready`: bit `s` set
    /// means slot `s` might fetch. Every fetch failure is sticky (an
    /// empty i-buffer can only reappear via issue, a freed slot via
    /// dispatch), so failed probes always clear their bit.
    fetch_ready: u64,
    /// Reusable SoA scratch block for the execute and load/store hot
    /// paths (see [`LaneScratch`]).
    scratch: LaneScratch,
    /// Core-local registry counters (all [`crate::events::Scope::Core`]
    /// events), merged by the GPU after a launch and exposed per-core
    /// through [`crate::gpu::ScopedActivity`].
    pub stats: ActivityVector,
    /// Capture/replay frontend state for the current launch (`Off`
    /// under the live frontend; see [`crate::replay::Tracer`]). Capture
    /// records the issued-PC/branch-mask/address streams without
    /// touching stats or timing; replay substitutes them for the
    /// functional value layer.
    tracer: Tracer,
}

impl Core {
    /// Creates a core for the given configuration.
    pub fn new(id: usize, cluster: usize, cfg: &GpuConfig) -> Self {
        let l1 = if cfg.l1_enabled {
            Some(SimCache::new(
                cfg.l1_bytes,
                cfg.l1_line_bytes as u32,
                cfg.l1_ways,
            ))
        } else {
            None
        };
        Core {
            id,
            cluster,
            max_warps: cfg.max_warps_per_core(),
            warps: (0..cfg.max_warps_per_core()).map(|_| None).collect(),
            ctas: (0..cfg.max_ctas_per_core).map(|_| None).collect(),
            smem_in_use: 0,
            fetch_rr: 0,
            issue_rr: 0,
            active_set: Vec::new(),
            pending_rr: 0,
            icache: SimCache::new(cfg.icache_bytes, 64, 4),
            l1,
            const_cache: SimCache::new(cfg.const_cache_bytes, 64, 4),
            busy_int: 0,
            busy_fp: 0,
            busy_sfu: 0,
            busy_ldst: 0,
            events: EventWheel::new(),
            // Generously sized: the pending-request table of the
            // coalescer merges requests chip-side in our model.
            mshr: Mshr::new(128, 4096),
            groups: BTreeMap::new(),
            next_group: 0,
            out_requests: Vec::new(),
            completed_ctas: 0,
            cta_coords: BTreeMap::new(),
            store_buf: BTreeMap::new(),
            work: false,
            issue_ready: !0,
            issue_stall_until: 0,
            class_next: [0; 4],
            fetch_ready: !0,
            scratch: LaneScratch::new(),
            stats: ActivityVector::new(),
            tracer: Tracer::Off,
        }
    }

    /// This core's chip-wide index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The cluster this core belongs to.
    pub fn cluster(&self) -> usize {
        self.cluster
    }

    /// Number of resident CTAs. O(1): `cta_coords` gains an entry on
    /// dispatch and loses it on CTA completion, so its length is exactly
    /// the occupied-slot count. This is queried every cycle by the block
    /// scheduler and busy accounting, so it must not scan the slot array.
    pub fn resident_ctas(&self) -> usize {
        self.cta_coords.len()
    }

    /// CTAs completed since construction.
    pub fn completed_ctas(&self) -> u64 {
        self.completed_ctas
    }

    /// `true` while any work is resident or in flight.
    pub fn is_busy(&self) -> bool {
        self.resident_ctas() > 0 || !self.events.is_empty() || !self.groups.is_empty()
    }

    /// Whether a CTA of this kernel can be accepted right now.
    pub fn can_accept(&self, cfg: &GpuConfig, ctx: &LaunchCtx<'_>) -> bool {
        let warps_needed = ctx.launch.warps_per_block(cfg.warp_size as u32) as usize;
        let free_warps = self.warps.iter().filter(|w| w.is_none()).count();
        let free_cta = self.ctas.iter().any(|c| c.is_none());
        let smem_avail = cfg.smem_bytes as u32
            - if cfg.l1_enabled {
                cfg.l1_bytes as u32
            } else {
                0
            }
            - self.smem_in_use;
        let resident_warps = self.max_warps - free_warps;
        let regs_needed =
            (resident_warps + warps_needed) * cfg.warp_size * ctx.kernel.num_regs() as usize;
        free_cta
            && free_warps >= warps_needed
            && ctx.kernel.smem_bytes() <= smem_avail
            && regs_needed <= cfg.regfile_regs_per_core
    }

    /// Places a CTA onto this core.
    ///
    /// # Panics
    ///
    /// Panics if [`Core::can_accept`] would return `false`.
    pub fn dispatch_cta(
        &mut self,
        cfg: &GpuConfig,
        ctx: &LaunchCtx<'_>,
        block_x: u32,
        block_y: u32,
    ) {
        assert!(self.can_accept(cfg, ctx), "dispatch without capacity");
        let threads = ctx.launch.threads_per_block();
        let warps_needed = ctx.launch.warps_per_block(cfg.warp_size as u32) as usize;
        let cta_slot = self
            .ctas
            .iter()
            .position(|c| c.is_none())
            .expect("checked by can_accept");
        let num_regs = ctx.kernel.num_regs() as usize;
        let mut warp_slots = Vec::with_capacity(warps_needed);
        for w in 0..warps_needed {
            let slot = self
                .warps
                .iter()
                .position(|s| s.is_none())
                .expect("checked by can_accept");
            let base_tid = (w * cfg.warp_size) as u32;
            let lanes_active = (threads - base_tid).min(cfg.warp_size as u32) as usize;
            let mask: LaneMask = if lanes_active >= 64 {
                u64::MAX
            } else {
                (1u64 << lanes_active) - 1
            };
            self.warps[slot] = Some(Warp {
                cta_slot,
                base_tid,
                stack: SimtStack::new(0, mask),
                // simlint: allow(lane_loop_alloc): one register file per
                // dispatched warp — grid-proportional launch setup, not
                // per-cycle work; the steady-state alloc test holds the
                // grid fixed and tolerates exactly this.
                regs: vec![0; cfg.warp_size * num_regs],
                ibuf: None,
                pending_writes: 0,
                busy: false,
                at_barrier: false,
                outstanding_groups: 0,
                done: false,
            });
            set_hint(&mut self.issue_ready, slot);
            self.issue_stall_until = 0;
            set_hint(&mut self.fetch_ready, slot);
            // A fresh warp has an empty i-buffer: no unit-class mask may
            // claim it (its previous occupant's bits were cleared when
            // that warp issued its final instruction; this keeps the
            // invariant robust regardless).
            for mask in &mut self.class_next {
                clear_hint(mask, slot);
            }
            self.tracer
                .attach_warp(slot, block_x, block_y, w as u32, ctx.replay);
            warp_slots.push(slot);
        }
        self.smem_in_use += ctx.kernel.smem_bytes();
        self.ctas[cta_slot] = Some(Cta {
            live_warps: warp_slots.len(),
            warp_slots,
            smem: vec![0; ctx.kernel.smem_bytes() as usize],
            waiting_at_barrier: 0,
        });
        self.cta_coords.insert(cta_slot, (block_x, block_y));
        self.stats[Ev::CtasDispatched] += 1;
    }

    /// Switches the frontend back to live execution, dropping any
    /// capture/replay state from a previous launch.
    pub(crate) fn set_tracer_off(&mut self) {
        self.tracer.set_off();
    }

    /// Arms stream capture for the next launch.
    pub(crate) fn set_tracer_capture(&mut self) {
        self.tracer.set_capture(self.max_warps);
    }

    /// Arms trace replay for the next launch (streams arrive through
    /// `LaunchCtx::replay`).
    pub(crate) fn set_tracer_replay(&mut self) {
        self.tracer.set_replay(self.max_warps);
    }

    /// Drains the capture buffers of every warp retired since capture
    /// was armed.
    pub(crate) fn take_captured_warps(&mut self) -> Vec<WarpCapture> {
        self.tracer.take_captured()
    }

    /// The first trace/pipeline divergence recorded during replay.
    pub(crate) fn take_replay_desync(&mut self) -> Option<String> {
        self.tracer.take_desync()
    }

    fn schedule(&mut self, cycle: u64, completion: Completion) {
        self.events.schedule(cycle, completion);
    }

    /// Prepares the core for a new kernel launch: resets pipeline
    /// occupancy (cycle numbers restart at zero per launch) and flushes
    /// the caches, mirroring GPGPU-Sim's kernel-boundary flush.
    ///
    /// # Panics
    ///
    /// Panics if work from a previous launch is still in flight.
    pub fn begin_launch(&mut self) {
        assert!(!self.is_busy(), "core still busy at kernel-launch boundary");
        // Cycle numbers restart at zero: rewind the wheel's window base
        // along with them (the wheel is drained — `is_busy` was false).
        self.events.reset();
        self.busy_int = 0;
        self.busy_fp = 0;
        self.busy_sfu = 0;
        self.busy_ldst = 0;
        self.fetch_rr = 0;
        self.issue_rr = 0;
        self.active_set.clear();
        self.pending_rr = 0;
        self.issue_ready = !0;
        self.issue_stall_until = 0;
        self.class_next = [0; 4];
        self.fetch_ready = !0;
        self.icache.flush();
        self.const_cache.flush();
        if let Some(l1) = &mut self.l1 {
            l1.flush();
        }
    }

    /// Drains the memory requests generated since the last call.
    pub fn drain_requests(&mut self) -> Vec<MemRequest> {
        std::mem::take(&mut self.out_requests)
    }

    /// Appends the memory requests generated since the last call to
    /// `out`, keeping both vectors' capacity (allocation-free variant of
    /// [`Core::drain_requests`]).
    pub fn drain_requests_into(&mut self, out: &mut Vec<MemRequest>) {
        out.append(&mut self.out_requests);
    }

    /// Applies the global-memory stores buffered during the compute
    /// phase. Called serially per core (in core order) after the
    /// parallel compute phase; buffered addresses are distinct words
    /// (the overlay keeps the last write per word), so the application
    /// order within one core cannot affect the result — and the ordered
    /// overlay drains in ascending address order anyway, so the sequence
    /// of `store_word` calls is itself deterministic (simlint's
    /// `nondeterministic_collection` pass bans order-randomised maps in
    /// this crate outright).
    pub fn commit_stores(&mut self, mem: &mut GpuMemory) {
        while let Some((addr, value)) = self.store_buf.pop_first() {
            mem.store_word(addr, value);
        }
    }

    /// `true` while this core holds compute-phase side effects the
    /// serial commit phase has not applied yet: buffered global stores
    /// or un-drained memory requests. The batched steady-state stepping
    /// in `Gpu::launch_impl` may only run the compute phase for a cycle
    /// without its commit phase when this is `false` for every live
    /// core — then the commit would have been a no-op, and every load
    /// in the next cycle reads the same frozen memory either way.
    #[inline]
    pub fn has_pending_effects(&self) -> bool {
        !self.out_requests.is_empty() || !self.store_buf.is_empty()
    }

    /// The earliest future cycle at which this core could make progress
    /// again, assuming no memory responses arrive: the next writeback
    /// event or pipeline-busy release. `None` when nothing is scheduled
    /// (the core is idle, or deadlocked at a barrier).
    pub fn next_wake(&self, cycle: u64) -> Option<u64> {
        let mut wake = self.events.next_fire();
        for busy in [self.busy_int, self.busy_fp, self.busy_sfu, self.busy_ldst] {
            if busy > cycle {
                wake = Some(wake.map_or(busy, |w: u64| w.min(busy)));
            }
        }
        wake
    }

    /// Whether the last [`Core::tick`] did observable work.
    pub fn progressed(&self) -> bool {
        self.work
    }

    /// Records that this cycle's [`Core::tick`] was skipped because the
    /// core is provably idle ([`Core::is_busy`] is `false`). Equivalent
    /// to the early-out path of `tick` — it clears the `work` flag and
    /// nothing else — so callers that elide whole idle core chunks (see
    /// `CorePool::tick_cores`) keep [`Core::progressed`] exact for any
    /// thread count.
    pub(crate) fn mark_idle_tick(&mut self) {
        debug_assert!(!self.is_busy(), "only a provably idle tick may be skipped");
        self.work = false;
    }

    /// Delivers a memory reply for the 128-byte line containing `addr`.
    pub fn mem_response(&mut self, addr: u32, cycle: u64, ctx: &LaunchCtx<'_>) {
        // Install into the right cache.
        let is_const = addr >= ctx.const_base && addr < ctx.const_base + ctx.const_bytes;
        if is_const {
            self.const_cache.install(addr);
        } else if let Some(l1) = &mut self.l1 {
            l1.install(addr);
            self.stats[Ev::L1Fills] += 1;
        }
        for group_id in self.mshr.complete(addr) {
            let finished = {
                let group = self
                    .groups
                    .get_mut(&group_id)
                    .expect("response for unknown group");
                group.remaining -= 1;
                group.remaining == 0
            };
            if finished {
                let group = self.groups.remove(&group_id).expect("present");
                if let Some(w) = self.warps[group.warp].as_mut() {
                    w.outstanding_groups -= 1;
                }
                self.schedule(
                    cycle + 2,
                    Completion::Commit {
                        warp: group.warp,
                        dst: Some(group.dst),
                    },
                );
            }
        }
    }

    /// Advances the core by one shader cycle — the *compute* phase of
    /// the two-phase step. The core only reads shared global memory;
    /// its stores are buffered in the overlay and applied by
    /// [`Core::commit_stores`] in the serial commit phase, so cores can
    /// tick in parallel with deterministic results.
    ///
    /// Returns `true` when the core did observable work (including
    /// failed-but-counted scoreboard probes); `false` means the tick
    /// was a provable no-op, which the GPU's idle fast-forward relies
    /// on.
    pub fn tick(
        &mut self,
        cycle: u64,
        cfg: &GpuConfig,
        ctx: &LaunchCtx<'_>,
        mem: &GpuMemory,
    ) -> bool {
        self.work = false;
        // Fully idle core: no resident CTAs (CTA completion frees every
        // warp slot, so the warp table is empty too), no scheduled
        // events, no outstanding memory groups. Each stage below would
        // scan empty structures and mutate nothing — skip them outright.
        // This is the dominant case for launches that occupy only a few
        // cores (the paper's Fig. 4 cluster-power sweep).
        if self.cta_coords.is_empty() && self.events.is_empty() && self.groups.is_empty() {
            return false;
        }
        self.retire(cycle, cfg, ctx);
        self.issue_stage(cycle, cfg, ctx, mem);
        self.fetch_stage(cycle, cfg, ctx);
        self.work
    }

    // --- writeback / retire ---------------------------------------------------

    fn retire(&mut self, cycle: u64, cfg: &GpuConfig, ctx: &LaunchCtx<'_>) {
        while let Some(completion) = self.events.pop_due(cycle) {
            self.work = true;
            match completion {
                Completion::Commit { warp, dst } => {
                    if let Some(w) = self.warps[warp].as_mut() {
                        if let Some(dst) = dst {
                            w.pending_writes &= !(1u64 << dst.index().min(63));
                            self.stats[Ev::RfBankWrites] += 1;
                            self.stats[Ev::ScoreboardWrites] += 1;
                        }
                        w.busy = false;
                        set_hint(&mut self.issue_ready, warp);
                        // The retired warp may already hold a fetched
                        // next instruction (fetch ignores `busy`); now
                        // that it stopped executing it is a real issue
                        // candidate, so publish its unit class.
                        if !w.at_barrier {
                            if let Some(pc) = w.ibuf {
                                if let Some(ci) = class_index(ctx.decoded[pc as usize].class) {
                                    set_hint(&mut self.class_next[ci], warp);
                                }
                            }
                        }
                        if self.issue_stall_until > cycle {
                            // Barrel: keep sleeping until the retired
                            // warp's own unit frees (its next instruction
                            // is already decoded in the i-buffer), rather
                            // than waking the scan for a probe that must
                            // fail silently. Scoreboard: cancel outright,
                            // failed probes there are observable.
                            self.issue_stall_until = if cfg.scoreboard {
                                0
                            } else {
                                self.issue_stall_until
                                    .min(self.candidate_wake(warp, cycle, ctx))
                            };
                        }
                    }
                }
            }
        }
    }

    // --- issue -------------------------------------------------------------------

    fn issue_stage(&mut self, cycle: u64, cfg: &GpuConfig, ctx: &LaunchCtx<'_>, mem: &GpuMemory) {
        // Issue-stall sleep: a previous scan proved no probe can do
        // anything before `issue_stall_until` (see the field docs).
        // Only the hinted RoundRobin scan below ever engages it.
        if cycle < self.issue_stall_until {
            return;
        }
        match cfg.warp_scheduler {
            WarpSchedPolicy::RoundRobin => {
                let mut issued = 0;
                let mut scanned = 0;
                let n = self.max_warps;
                // Wrap-around index instead of `(rr + scanned) % n` on
                // every probe: the scan visits the same slots in the
                // same order, but the per-slot integer division was the
                // single largest cost of a stall cycle (two 24-slot
                // scans per core per cycle). The rare post-issue path
                // keeps the original formula verbatim.
                let mut slot = self.issue_rr % n;
                if n <= 64 {
                    // Hint-guided scan: `issue_ready` is a superset of
                    // the slots whose probe could do anything
                    // observable, so jumping between set bits probes
                    // exactly the slots the full scan would have probed
                    // non-silently, in the same order and with the same
                    // `scanned` accounting (skipped gaps still count).
                    let window: u64 = if n == 64 { !0 } else { (1u64 << n) - 1 };
                    // Stall-engage bookkeeping: `only_unit_busy` stays
                    // true while every failed probe was a silent
                    // unit-busy lapse. If the scan then *exhausts* the
                    // candidates (rather than filling `issue_width`),
                    // nothing can issue before a unit frees or a hint
                    // set-site fires — both covered below.
                    let mut only_unit_busy = true;
                    while issued < cfg.issue_width && scanned < n {
                        let mut hints = self.issue_ready & window;
                        // Per-unit-class skip (barrel only): a slot
                        // whose published next-instruction class
                        // targets a busy unit would probe to a silent
                        // `UnitBusy` — fold it into the jump distance.
                        // Recomputed every iteration because an issue
                        // above makes its own unit busy mid-scan. The
                        // skipped probes mutate nothing and keep their
                        // hints, `scanned` advances by the same total
                        // (gap + 1 arithmetic), and `only_unit_busy`
                        // stays true — so engage/stall decisions, visit
                        // order and all counters are bit-identical to
                        // the probing scan. Scoreboard probes are
                        // observable and are never skipped.
                        if !cfg.scoreboard {
                            if self.busy_int > cycle {
                                hints &= !self.class_next[0];
                            }
                            if self.busy_fp > cycle {
                                hints &= !self.class_next[1];
                            }
                            if self.busy_sfu > cycle {
                                hints &= !self.class_next[2];
                            }
                            if self.busy_ldst > cycle {
                                hints &= !self.class_next[3];
                            }
                        }
                        if hints == 0 {
                            break;
                        }
                        let (next, dist) = next_hint(hints, slot, n);
                        if scanned + dist >= n {
                            break;
                        }
                        scanned += dist + 1;
                        slot = next;
                        match self.try_issue(slot, cycle, cfg, ctx, mem) {
                            IssueProbe::Issued => {
                                issued += 1;
                                self.issue_rr = if slot + 1 == n { 0 } else { slot + 1 };
                                self.stats[Ev::IssueSchedulerSelects] += 1;
                                slot = (self.issue_rr + scanned) % n;
                            }
                            outcome => {
                                if outcome == IssueProbe::Blocked {
                                    only_unit_busy = false;
                                }
                                self.clear_issue_hint_if_blocked(slot, cfg);
                                slot += 1;
                                if slot == n {
                                    slot = 0;
                                }
                            }
                        }
                    }
                    if only_unit_busy && issued < cfg.issue_width {
                        self.issue_stall_until = self.unit_wake(cycle);
                    }
                } else {
                    while issued < cfg.issue_width && scanned < n {
                        scanned += 1;
                        if self.try_issue(slot, cycle, cfg, ctx, mem) == IssueProbe::Issued {
                            issued += 1;
                            self.issue_rr = if slot + 1 == n { 0 } else { slot + 1 };
                            self.stats[Ev::IssueSchedulerSelects] += 1;
                            slot = (self.issue_rr + scanned) % n;
                        } else {
                            slot += 1;
                            if slot == n {
                                slot = 0;
                            }
                        }
                    }
                }
            }
            WarpSchedPolicy::TwoLevel { active_warps } => {
                self.maintain_active_set(active_warps);
                if self.active_set.is_empty() {
                    return;
                }
                // Swap the set out instead of cloning it each cycle;
                // `try_issue` never touches `active_set`.
                let set = std::mem::take(&mut self.active_set);
                let mut issued = 0;
                let mut scanned = 0;
                let n = set.len();
                // Same wrap-around strength reduction as the RoundRobin
                // scan; the post-issue path recomputes with the original
                // formula (rare — at most `issue_width` times a cycle).
                let mut idx = self.issue_rr % n;
                while issued < cfg.issue_width && scanned < n {
                    let slot = set[idx];
                    scanned += 1;
                    if self.try_issue(slot, cycle, cfg, ctx, mem) == IssueProbe::Issued {
                        issued += 1;
                        self.issue_rr = (self.issue_rr + scanned) % n;
                        self.stats[Ev::IssueSchedulerSelects] += 1;
                        idx = (self.issue_rr + scanned) % n;
                    } else {
                        idx += 1;
                        if idx == n {
                            idx = 0;
                        }
                    }
                }
                self.active_set = set;
            }
        }
    }

    /// Two-level scheduling (Narasiman et al.): keeps at most
    /// `active_warps` issue candidates, demoting warps that stall on
    /// memory or barriers and promoting pending ones round-robin.
    fn maintain_active_set(&mut self, active_warps: usize) {
        let eligible = |w: &Warp| !w.done && !w.at_barrier && w.outstanding_groups == 0;
        let warps = &self.warps;
        self.active_set
            .retain(|&s| warps[s].as_ref().is_some_and(&eligible));
        self.active_set.truncate(active_warps);
        let total = self.max_warps;
        let mut scanned = 0;
        // Wrap-around candidate index (no division per probed slot);
        // the promote path recomputes with the original formula.
        let mut slot = self.pending_rr % total;
        while self.active_set.len() < active_warps && scanned < total {
            scanned += 1;
            let promote = !self.active_set.contains(&slot)
                && self.warps[slot].as_ref().is_some_and(&eligible);
            if promote {
                self.active_set.push(slot);
                self.pending_rr = if slot + 1 == total { 0 } else { slot + 1 };
                slot = (self.pending_rr + scanned) % total;
            } else {
                slot += 1;
                if slot == total {
                    slot = 0;
                }
            }
        }
    }

    /// Earliest future cycle at which any execution unit frees, or
    /// `u64::MAX` when none is busy (then only a hint set-site event
    /// can create issue work).
    #[inline]
    fn unit_wake(&self, cycle: u64) -> u64 {
        let mut wake = u64::MAX;
        for busy in [self.busy_int, self.busy_fp, self.busy_sfu, self.busy_ldst] {
            if busy > cycle {
                wake = wake.min(busy);
            }
        }
        wake
    }

    /// Earliest cycle — not before `earliest` — at which `slot`, which
    /// just became an issue candidate (writeback retire or i-buffer
    /// fill), could pass the unit-availability check. Refines an
    /// engaged issue stall instead of cancelling it outright: while
    /// every other candidate is silently unit-blocked, the new one only
    /// forces a re-scan once its own unit frees. `u64::MAX` when the
    /// slot cannot issue at all until another hint set-site fires
    /// (empty i-buffer, still-executing, finished or barrier-parked
    /// warp — for the busy case the commit event performs its own
    /// refinement when it retires).
    ///
    /// Barrel-only: under a scoreboard, failed probes are observable
    /// (`Ev::ScoreboardReads`), so a kept stall would skip scans the
    /// unrefined pipeline performed — callers must cancel outright
    /// instead (`cfg.scoreboard` gate at both call sites).
    fn candidate_wake(&self, slot: usize, earliest: u64, ctx: &LaunchCtx<'_>) -> u64 {
        let Some(w) = self.warps[slot].as_ref() else {
            return u64::MAX;
        };
        if w.done || w.at_barrier || w.busy {
            return u64::MAX;
        }
        let Some(pc) = w.ibuf else {
            return u64::MAX;
        };
        let busy = match ctx.decoded[pc as usize].class {
            InstrClass::Int => self.busy_int,
            InstrClass::Fp => self.busy_fp,
            InstrClass::Sfu => self.busy_sfu,
            InstrClass::Mem => self.busy_ldst,
            InstrClass::Control => 0,
        };
        busy.max(earliest)
    }

    /// After a failed [`Core::try_issue`] probe of `slot`, clears its
    /// issue hint when the failure is *sticky*: it can only end via an
    /// event that passes a hint set-site (i-buffer fill, writeback
    /// retire, barrier release, CTA dispatch). Structural-unit and
    /// scoreboard-dependency failures lapse with time alone — and a
    /// scoreboard dependency probe counts activity — so those keep the
    /// hint and stay probed every cycle.
    #[inline]
    fn clear_issue_hint_if_blocked(&mut self, slot: usize, cfg: &GpuConfig) {
        let sticky = match self.warps[slot].as_ref() {
            None => true,
            Some(w) => {
                w.done
                    || w.at_barrier
                    || w.ibuf.is_none()
                    || (!cfg.scoreboard && (w.busy || w.stack.current().is_none()))
            }
        };
        if sticky {
            clear_hint(&mut self.issue_ready, slot);
        }
    }

    fn try_issue(
        &mut self,
        slot: usize,
        cycle: u64,
        cfg: &GpuConfig,
        ctx: &LaunchCtx<'_>,
        mem: &GpuMemory,
    ) -> IssueProbe {
        let (di, mask, pc) = {
            let w = match self.warps[slot].as_ref() {
                Some(w) => w,
                None => return IssueProbe::Blocked,
            };
            if w.done || w.at_barrier {
                return IssueProbe::Blocked;
            }
            let pc = match w.ibuf {
                Some(pc) => pc,
                None => return IssueProbe::Blocked,
            };
            // Barrel blocking needs no instruction metadata — bail out
            // before the decoded-table load on this hot stall path.
            if !cfg.scoreboard && w.busy {
                return IssueProbe::Blocked;
            }
            let di = ctx.decoded[pc as usize];
            // Dependency check.
            if cfg.scoreboard {
                // A failed probe still counts scoreboard activity, so
                // this cycle is not quiescent (the idle fast-forward
                // must not skip it) — and the issue-stall sleep must
                // never swallow the per-cycle re-probe, so every
                // scoreboard failure below reports `Blocked`.
                self.stats[Ev::ScoreboardReads] += 1;
                self.work = true;
                if w.pending_writes & di.dep_mask != 0 {
                    return IssueProbe::Blocked;
                }
                // Exit and barriers drain the warp first.
                if di.drains && (w.pending_writes != 0 || w.outstanding_groups > 0) {
                    return IssueProbe::Blocked;
                }
            }
            let entry = match w.stack.current() {
                Some(e) => e,
                None => return IssueProbe::Blocked,
            };
            (di, entry.mask, pc)
        };

        // Unit availability. On barrel configs these failures are
        // silent and lapse when the unit frees, which is what lets a
        // fully unit-blocked scan sleep until [`Core::unit_wake`].
        let unit_busy = || {
            if cfg.scoreboard {
                IssueProbe::Blocked
            } else {
                IssueProbe::UnitBusy
            }
        };
        let class = di.class;
        let dispatch = match class {
            InstrClass::Int => {
                if self.busy_int > cycle {
                    return unit_busy();
                }
                (cfg.warp_size / cfg.simd_width) as u64
            }
            InstrClass::Fp => {
                if self.busy_fp > cycle {
                    return unit_busy();
                }
                (cfg.warp_size / cfg.simd_width) as u64
            }
            InstrClass::Sfu => {
                if self.busy_sfu > cycle {
                    return unit_busy();
                }
                (cfg.warp_size / cfg.sfu_count.max(1)).max(1) as u64
            }
            InstrClass::Mem => {
                if self.busy_ldst > cycle {
                    return unit_busy();
                }
                // The SAGUs run in parallel, each producing 8 addresses
                // per cycle (reference [22]).
                let acts = ldst::agu_activations(mask.count_ones(), 8);
                acts.div_ceil(cfg.sagu_count as u32).max(1) as u64
            }
            InstrClass::Control => 1,
        };

        // Commit to issuing. The i-buffer empties below, so the slot
        // stops being a unit-class candidate until the next fetch.
        if let Some(ci) = class_index(class) {
            clear_hint(&mut self.class_next[ci], slot);
        }
        self.work = true;
        self.account_issue(&di, mask);
        // Capture records the issued PC; replay checks it against the
        // recorded stream. No-op on the live frontend.
        self.tracer.on_issue(slot, pc, ctx.replay);
        let latency = match class {
            InstrClass::Int => cfg.int_latency as u64,
            InstrClass::Fp => cfg.fp_latency as u64,
            InstrClass::Sfu => cfg.sfu_latency as u64,
            InstrClass::Mem => 0, // determined by the memory path below
            InstrClass::Control => 1,
        };
        match class {
            InstrClass::Int => self.busy_int = cycle + dispatch,
            InstrClass::Fp => self.busy_fp = cycle + dispatch,
            InstrClass::Sfu => self.busy_sfu = cycle + dispatch,
            InstrClass::Mem => self.busy_ldst = cycle + dispatch,
            InstrClass::Control => {}
        }

        // Functional execution + architectural bookkeeping.
        let mem_commit = self.execute(slot, di.instr, mask, cycle, dispatch, cfg, ctx, mem);
        self.stats[Ev::IbufferReads] += 1;
        self.stats[Ev::WstWrites] += 1;

        // An `Exit` can retire the warp (and free its slot) inside
        // `execute`; nothing further to track in that case.
        let Some(w) = self.warps[slot].as_mut() else {
            return IssueProbe::Issued;
        };
        w.ibuf = None;
        clear_hint(&mut self.issue_ready, slot);
        set_hint(&mut self.fetch_ready, slot);

        match class {
            InstrClass::Mem => {
                if let Some((commit_cycle, dst)) = mem_commit {
                    if let Some(d) = dst {
                        w.pending_writes |= 1u64 << d.index().min(63);
                    }
                    if !cfg.scoreboard {
                        w.busy = true;
                    }
                    self.schedule(commit_cycle, Completion::Commit { warp: slot, dst });
                } else {
                    // Load waiting on memory replies: dependency held by
                    // the group; barrel warps stay busy.
                    if !cfg.scoreboard {
                        w.busy = true;
                    }
                }
            }
            _ => {
                let dst = di.dst;
                if let Some(d) = dst {
                    w.pending_writes |= 1u64 << d.index().min(63);
                }
                if !cfg.scoreboard {
                    w.busy = true;
                }
                self.schedule(
                    cycle + dispatch + latency,
                    Completion::Commit { warp: slot, dst },
                );
            }
        }
        IssueProbe::Issued
    }

    fn account_issue(&mut self, di: &DecodedInstr, mask: LaneMask) {
        let lanes = mask.count_ones() as u64;
        self.stats[Ev::WarpInstructions] += 1;
        self.stats[Ev::ThreadInstructions] += lanes;
        self.stats[Ev::SimtStackReads] += 1;
        match di.class {
            InstrClass::Int => {
                self.stats[Ev::IntInstructions] += 1;
                self.stats[Ev::IntLaneOps] += lanes;
            }
            InstrClass::Fp => {
                self.stats[Ev::FpInstructions] += 1;
                self.stats[Ev::FpLaneOps] += lanes;
            }
            InstrClass::Sfu => {
                self.stats[Ev::SfuInstructions] += 1;
                self.stats[Ev::SfuLaneOps] += lanes;
            }
            InstrClass::Mem => {
                self.stats[Ev::MemInstructions] += 1;
            }
            InstrClass::Control => {}
        }
        // Register-file operand collection (counts precomputed at
        // decode; see `DecodedInstr`).
        let n_srcs = di.n_srcs as u64;
        if n_srcs > 0 || di.dst.is_some() {
            self.stats[Ev::CollectorAllocations] += 1;
        }
        if n_srcs > 0 {
            self.stats[Ev::RfBankReads] += n_srcs;
            self.stats[Ev::CollectorXbarTransfers] += n_srcs;
            self.stats[Ev::RfBankConflicts] += di.bank_conflicts as u64;
        }
    }

    // --- functional execution ------------------------------------------------------

    /// Executes `instr` for all lanes in `mask`. For memory instructions
    /// returns `Some((commit_cycle, dst))` when the access completes at a
    /// known time (hits, shared, stores) and `None` when a load group
    /// waits on memory replies.
    ///
    /// ALU-class instructions run the SoA scheme: gather each operand's
    /// contiguous register row (or immediate splat) into the scratch
    /// block, evaluate *every* lane densely with the row helpers in
    /// [`crate::func`] — sound because all operations are total, so
    /// stale values in inactive lanes produce garbage that the masked
    /// scatter then discards — and write back the active lanes (one row
    /// copy when the warp is converged). Per-lane results are
    /// bit-identical to the old lane-at-a-time loop because each row
    /// helper applies the same scalar evaluator per lane.
    #[allow(clippy::too_many_arguments)]
    fn execute(
        &mut self,
        slot: usize,
        instr: Instr,
        mask: LaneMask,
        cycle: u64,
        dispatch: u64,
        cfg: &GpuConfig,
        ctx: &LaunchCtx<'_>,
        mem: &GpuMemory,
    ) -> Option<(u64, Option<Reg>)> {
        let ws = cfg.warp_size;
        let full = warp_full_mask(ws);
        // The replay frontend skips the functional value layer: register
        // contents are never read (branch masks and memory addresses come
        // from the recorded streams instead), so the gather/eval/scatter
        // work below is elided while the architectural PC advancement —
        // which the timing model does consume — runs identically.
        let replaying = self.tracer.is_replay();

        macro_rules! warp {
            () => {
                self.warps[slot].as_mut().expect("live warp")
            };
        }
        // `self.warps` and `self.scratch` are disjoint fields, so the
        // gather/eval/scatter sequence borrows both directly — no
        // staging copies, no allocation.
        macro_rules! unary {
            ($a:expr, $dst:expr, $eval:expr) => {{
                if !replaying {
                    let w = self.warps[slot].as_mut().expect("live warp");
                    let sc = &mut self.scratch;
                    gather_row(&w.regs, ws, $a, &mut sc.a);
                    $eval(&sc.a[..ws], &mut sc.out[..ws]);
                    scatter_row(&mut w.regs, ws, $dst, &sc.out, mask, full);
                }
                self.advance(slot, cycle);
            }};
        }
        macro_rules! binary {
            ($a:expr, $b:expr, $dst:expr, $eval:expr) => {{
                if !replaying {
                    let w = self.warps[slot].as_mut().expect("live warp");
                    let sc = &mut self.scratch;
                    gather_row(&w.regs, ws, $a, &mut sc.a);
                    gather_row(&w.regs, ws, $b, &mut sc.b);
                    $eval(&sc.a[..ws], &sc.b[..ws], &mut sc.out[..ws]);
                    scatter_row(&mut w.regs, ws, $dst, &sc.out, mask, full);
                }
                self.advance(slot, cycle);
            }};
        }
        macro_rules! ternary {
            ($a:expr, $b:expr, $c:expr, $dst:expr, $eval:expr) => {{
                if !replaying {
                    let w = self.warps[slot].as_mut().expect("live warp");
                    let sc = &mut self.scratch;
                    gather_row(&w.regs, ws, $a, &mut sc.a);
                    gather_row(&w.regs, ws, $b, &mut sc.b);
                    gather_row(&w.regs, ws, $c, &mut sc.c);
                    $eval(&sc.a[..ws], &sc.b[..ws], &sc.c[..ws], &mut sc.out[..ws]);
                    scatter_row(&mut w.regs, ws, $dst, &sc.out, mask, full);
                }
                self.advance(slot, cycle);
            }};
        }

        match instr {
            Instr::IAlu { op, dst, a, b } => {
                binary!(a, b, dst, |x, y, o| func::eval_int_lanes(op, x, y, o))
            }
            Instr::IMad { dst, a, b, c } => ternary!(a, b, c, dst, func::eval_imad_lanes),
            Instr::FAlu { op, dst, a, b } => {
                binary!(a, b, dst, |x, y, o| func::eval_fp_lanes(op, x, y, o))
            }
            Instr::FFma { dst, a, b, c } => ternary!(a, b, c, dst, func::eval_ffma_lanes),
            Instr::Sfu { op, dst, a } => unary!(a, dst, |x, o| func::eval_sfu_lanes(op, x, o)),
            Instr::ISetp { op, dst, a, b } => {
                binary!(a, b, dst, |x, y, o| func::eval_icmp_lanes(op, x, y, o))
            }
            Instr::FSetp { op, dst, a, b } => {
                binary!(a, b, dst, |x, y, o| func::eval_fcmp_lanes(op, x, y, o))
            }
            Instr::I2F { dst, a } => unary!(a, dst, func::eval_i2f_lanes),
            Instr::F2I { dst, a } => unary!(a, dst, func::eval_f2i_lanes),
            Instr::Mov { dst, src } => {
                unary!(src, dst, |x: &[u32], o: &mut [u32]| o.copy_from_slice(x))
            }
            Instr::Sel { dst, cond, a, b } => {
                ternary!(Operand::Reg(cond), a, b, dst, func::eval_sel_lanes)
            }
            Instr::S2R { dst, sr } => {
                if replaying {
                    self.advance(slot, cycle);
                    return None;
                }
                let block = ctx.launch.block;
                let grid = ctx.launch.grid;
                let (bx, by) = {
                    let w = self.warps[slot].as_ref().expect("live warp");
                    *self
                        .cta_coords
                        .get(&w.cta_slot)
                        .expect("cta has coordinates")
                };
                let w = self.warps[slot].as_mut().expect("live warp");
                let sc = &mut self.scratch;
                let base = w.base_tid;
                {
                    // Special-register dispatch hoisted out of the lane
                    // loop: only the thread-id registers vary per lane,
                    // everything else is a row splat.
                    let out = &mut sc.out[..ws];
                    match sr {
                        SpecialReg::TidX => {
                            for (i, o) in out.iter_mut().enumerate() {
                                *o = (base + i as u32) % block.x;
                            }
                        }
                        SpecialReg::TidY => {
                            for (i, o) in out.iter_mut().enumerate() {
                                *o = (base + i as u32) / block.x;
                            }
                        }
                        SpecialReg::CtaIdX => out.fill(bx),
                        SpecialReg::CtaIdY => out.fill(by),
                        SpecialReg::NTidX => out.fill(block.x),
                        SpecialReg::NTidY => out.fill(block.y),
                        SpecialReg::NCtaIdX => out.fill(grid.x),
                        SpecialReg::NCtaIdY => out.fill(grid.y),
                    }
                }
                scatter_row(&mut w.regs, ws, dst, &sc.out, mask, full);
                self.advance(slot, cycle);
            }
            Instr::Ld { .. } | Instr::St { .. } => {
                let result = self.execute_mem(slot, instr, mask, cycle, dispatch, cfg, ctx, mem);
                self.advance(slot, cycle);
                return result;
            }
            Instr::Bra {
                cond,
                negate,
                target,
                reconv,
            } => {
                self.stats[Ev::Branches] += 1;
                let (computed, fallthrough) = {
                    let w = self.warps[slot].as_ref().expect("live warp");
                    let entry = w.stack.current().expect("executing warp has a token");
                    let taken = if replaying {
                        // Substituted from the recorded stream below;
                        // the register row holds no values in replay.
                        0
                    } else {
                        // Dense truth mask over the whole condition row,
                        // confined to the active lanes afterwards.
                        let base = cond.index() * ws;
                        let row = &w.regs[base..base + ws];
                        let mut truth: LaneMask = 0;
                        for (lane, &c) in row.iter().enumerate() {
                            truth |= ((c != 0) as u64) << lane;
                        }
                        if negate {
                            mask & !truth
                        } else {
                            mask & truth
                        }
                    };
                    (taken, entry.pc + 1)
                };
                let taken = self.tracer.branch_mask(slot, computed, mask, ctx.replay);
                let w = warp!();
                let act = w.stack.branch(target, reconv, taken, fallthrough);
                if act.diverged {
                    self.stats[Ev::DivergentBranches] += 1;
                }
                self.stats[Ev::SimtStackPushes] += act.pushes;
                self.stats[Ev::SimtStackPops] += act.pops;
            }
            Instr::Jmp { target } => {
                let w = warp!();
                let act = w.stack.jump(target);
                self.stats[Ev::SimtStackPops] += act.pops;
            }
            Instr::Bar => {
                self.stats[Ev::BarrierWaits] += 1;
                let cta_slot = {
                    let w = warp!();
                    w.at_barrier = true;
                    w.cta_slot
                };
                self.advance(slot, cycle);
                let release = {
                    let cta = self.ctas[cta_slot].as_mut().expect("live cta");
                    cta.waiting_at_barrier += 1;
                    cta.waiting_at_barrier >= cta.live_warps
                };
                if release {
                    self.release_barrier(cta_slot, ctx);
                }
            }
            Instr::Exit => {
                let (finished, cta_slot) = {
                    let w = warp!();
                    let act = w.stack.exit_lanes();
                    self.stats[Ev::SimtStackPops] += act.pops;
                    (w.stack.finished(), w.cta_slot)
                };
                if finished {
                    self.finish_warp(slot, cta_slot, ctx);
                }
            }
            Instr::Nop => {
                self.advance(slot, cycle);
            }
        }
        None
    }

    /// Advances the warp's PC past a straight-line instruction.
    fn advance(&mut self, slot: usize, _cycle: u64) {
        let w = self.warps[slot].as_mut().expect("live warp");
        if let Some(entry) = w.stack.current() {
            let act = w.stack.advance(entry.pc + 1);
            self.stats[Ev::SimtStackPops] += act.pops;
        }
    }

    fn release_barrier(&mut self, cta_slot: usize, ctx: &LaunchCtx<'_>) {
        let slots = {
            let cta = self.ctas[cta_slot].as_mut().expect("live cta");
            cta.waiting_at_barrier = 0;
            cta.warp_slots.clone()
        };
        for s in slots {
            if let Some(w) = self.warps[s].as_mut() {
                w.at_barrier = false;
                set_hint(&mut self.issue_ready, s);
                self.issue_stall_until = 0;
                // A released warp with a fetched instruction and no
                // in-flight execution becomes a unit-class candidate
                // again (fetch ignores `at_barrier`, so its i-buffer
                // may have refilled while parked).
                if !w.busy {
                    if let Some(pc) = w.ibuf {
                        if let Some(ci) = class_index(ctx.decoded[pc as usize].class) {
                            set_hint(&mut self.class_next[ci], s);
                        }
                    }
                }
            }
        }
    }

    fn finish_warp(&mut self, slot: usize, cta_slot: usize, ctx: &LaunchCtx<'_>) {
        {
            let w = self.warps[slot].as_mut().expect("live warp");
            w.done = true;
        }
        // Capture banks the retired warp's streams; replay verifies the
        // recorded stream was consumed exactly.
        self.tracer.finish_warp(slot, ctx.replay);
        let (cta_done, needs_release) = {
            let cta = self.ctas[cta_slot].as_mut().expect("live cta");
            cta.live_warps -= 1;
            (
                cta.live_warps == 0,
                cta.live_warps > 0 && cta.waiting_at_barrier >= cta.live_warps,
            )
        };
        if needs_release {
            self.release_barrier(cta_slot, ctx);
        }
        if cta_done {
            let cta = self.ctas[cta_slot].take().expect("live cta");
            for s in cta.warp_slots {
                self.warps[s] = None;
            }
            self.cta_coords.remove(&cta_slot);
            self.smem_in_use = self.smem_in_use.saturating_sub(cta.smem.len() as u32);
            self.completed_ctas += 1;
        }
    }

    // --- memory instructions -------------------------------------------------------

    /// Executes a load/store. Address generation runs dense over the SoA
    /// address-register row into the scratch block (inactive lanes
    /// compute garbage the active-lane walk never reads); the active
    /// addresses are then compacted, in ascending lane order, into the
    /// reusable `scratch.words` buffer for the coalescer/bank analyses.
    /// No per-access allocation anywhere on this path.
    #[allow(clippy::too_many_arguments)]
    fn execute_mem(
        &mut self,
        slot: usize,
        instr: Instr,
        mask: LaneMask,
        cycle: u64,
        dispatch: u64,
        cfg: &GpuConfig,
        ctx: &LaunchCtx<'_>,
        mem: &GpuMemory,
    ) -> Option<(u64, Option<Reg>)> {
        let ws = cfg.warp_size;
        let lanes = mask.count_ones();
        self.stats[Ev::AguOps] += ldst::agu_activations(lanes, 8) as u64;

        let (space, addr_reg, offset, dst, src) = match instr {
            Instr::Ld {
                space,
                dst,
                addr,
                offset,
            } => (space, addr, offset, Some(dst), None),
            Instr::St {
                space,
                src,
                addr,
                offset,
            } => (space, addr, offset, None, Some(src)),
            _ => unreachable!("execute_mem called on non-memory instruction"),
        };

        // Dense per-lane address generation over the contiguous register
        // row — or, under the replay frontend, the recorded active-lane
        // addresses (same values the capture run generated here).
        let replaying = self.tracer.is_replay();
        if replaying {
            self.tracer
                .fill_addrs(slot, mask, &mut self.scratch.addrs[..ws], ctx.replay);
        } else {
            {
                let w = self.warps[slot].as_ref().expect("live warp");
                let base = addr_reg.index() * ws;
                let row = &w.regs[base..base + ws];
                for (o, &b) in self.scratch.addrs[..ws].iter_mut().zip(row) {
                    *o = b.wrapping_add(offset as u32);
                }
            }
            self.tracer
                .record_addrs(slot, mask, &self.scratch.addrs[..ws]);
        }

        match space {
            MemSpace::Shared => {
                {
                    let LaneScratch { addrs, words, .. } = &mut self.scratch;
                    words.clear();
                    let mut m = mask;
                    while m != 0 {
                        let lane = m.trailing_zeros() as usize;
                        m &= m - 1;
                        words.push(addrs[lane] / 4);
                    }
                }
                let plan = ldst::smem_conflicts_lanes(&self.scratch.words, cfg.smem_banks as u32);
                self.stats[Ev::SmemAccesses] += plan.bank_accesses as u64;
                self.stats[Ev::SmemBankConflictCycles] += plan.passes.saturating_sub(1) as u64;
                // Functional access to the CTA's shared array; `warps`,
                // `ctas` and `scratch` are disjoint fields. Skipped by
                // the replay frontend (no register/memory values), which
                // also keeps the shared-array bounds asserts out of
                // reach of hostile trace addresses.
                if !replaying {
                    let cta_slot = self.warps[slot].as_ref().expect("live warp").cta_slot;
                    if let Some(d) = dst {
                        let w = self.warps[slot].as_mut().expect("live warp");
                        let cta = self.ctas[cta_slot].as_ref().expect("live cta");
                        let addrs = &self.scratch.addrs;
                        let dbase = d.index() * ws;
                        let mut m = mask;
                        while m != 0 {
                            let lane = m.trailing_zeros() as usize;
                            m &= m - 1;
                            w.regs[dbase + lane] = read_smem(&cta.smem, addrs[lane]);
                        }
                    } else if let Some(s) = src {
                        let w = self.warps[slot].as_ref().expect("live warp");
                        let cta = self.ctas[cta_slot].as_mut().expect("live cta");
                        let addrs = &self.scratch.addrs;
                        let sbase = s.index() * ws;
                        let mut m = mask;
                        while m != 0 {
                            let lane = m.trailing_zeros() as usize;
                            m &= m - 1;
                            write_smem(&mut cta.smem, addrs[lane], w.regs[sbase + lane]);
                        }
                    }
                }
                self.busy_ldst = self
                    .busy_ldst
                    .max(cycle + dispatch + plan.passes as u64 - 1);
                Some((
                    cycle + dispatch + cfg.smem_latency as u64 + plan.passes as u64 - 1,
                    dst,
                ))
            }
            MemSpace::Const => {
                // Constant addresses live in the staged constant segment.
                {
                    let LaneScratch { addrs, words, .. } = &mut self.scratch;
                    words.clear();
                    let mut m = mask;
                    while m != 0 {
                        let lane = m.trailing_zeros() as usize;
                        m &= m - 1;
                        words.push(ctx.const_base.wrapping_add(addrs[lane]));
                    }
                }
                let unique = ldst::const_unique_lanes(&self.scratch.words);
                self.stats[Ev::ConstAccesses] += unique as u64;
                // Functional read through this core's store overlay
                // (skipped under replay: no register values to fill).
                if !replaying {
                    if let Some(d) = dst {
                        let w = self.warps[slot].as_mut().expect("live warp");
                        let addrs = &self.scratch.addrs;
                        let store_buf = &self.store_buf;
                        let dbase = d.index() * ws;
                        let mut m = mask;
                        while m != 0 {
                            let lane = m.trailing_zeros() as usize;
                            m &= m - 1;
                            w.regs[dbase + lane] = read_global_overlay(
                                store_buf,
                                mem,
                                ctx.const_base.wrapping_add(addrs[lane]),
                            );
                        }
                    }
                }
                // Probe the constant cache per distinct 64 B line.
                {
                    let LaneScratch { words, segs, .. } = &mut self.scratch;
                    segs.clear();
                    ldst::coalesce_into(words, 64, segs);
                }
                let mut misses = 0;
                for i in 0..self.scratch.segs.len() {
                    let line = self.scratch.segs[i];
                    if self.const_cache.read(line) == Probe::Miss {
                        self.stats[Ev::ConstMisses] += 1;
                        misses += self.issue_read_request(slot, dst, line & !127, cfg);
                    }
                }
                if misses == 0 {
                    Some((cycle + dispatch + cfg.const_latency as u64, dst))
                } else {
                    self.finalize_group(slot, dst, misses);
                    None
                }
            }
            MemSpace::Global => {
                {
                    let LaneScratch { addrs, words, .. } = &mut self.scratch;
                    words.clear();
                    let mut m = mask;
                    while m != 0 {
                        let lane = m.trailing_zeros() as usize;
                        m &= m - 1;
                        words.push(addrs[lane]);
                    }
                }
                self.stats[Ev::CoalescerInputs] += self.scratch.words.len() as u64;
                {
                    let LaneScratch { words, segs, .. } = &mut self.scratch;
                    segs.clear();
                    ldst::coalesce_into(words, 128, segs);
                }
                self.stats[Ev::CoalescerOutputs] += self.scratch.segs.len() as u64;

                // Functional access first. Loads see this core's own
                // buffered stores (read-your-own-writes via the overlay);
                // stores buffer until the serial commit phase. The
                // replay frontend skips this value layer entirely —
                // timing-wise a store is represented by the NoC request
                // pushed below in the same tick, so the batched-stepping
                // side-effect scan fires on the identical cycle either
                // way.
                if !replaying {
                    if let Some(d) = dst {
                        let w = self.warps[slot].as_mut().expect("live warp");
                        let addrs = &self.scratch.addrs;
                        let store_buf = &self.store_buf;
                        let dbase = d.index() * ws;
                        let mut m = mask;
                        while m != 0 {
                            let lane = m.trailing_zeros() as usize;
                            m &= m - 1;
                            w.regs[dbase + lane] = read_global_overlay(store_buf, mem, addrs[lane]);
                        }
                    } else if let Some(s) = src {
                        let w = self.warps[slot].as_ref().expect("live warp");
                        let addrs = &self.scratch.addrs;
                        let store_buf = &mut self.store_buf;
                        let sbase = s.index() * ws;
                        let mut m = mask;
                        while m != 0 {
                            let lane = m.trailing_zeros() as usize;
                            m &= m - 1;
                            buffer_store_into(store_buf, mem, addrs[lane], w.regs[sbase + lane]);
                        }
                    }
                }

                if dst.is_some() {
                    // Load: probe L1 (if present), send misses out.
                    let mut misses = 0;
                    for i in 0..self.scratch.segs.len() {
                        let seg = self.scratch.segs[i];
                        let hit = match &mut self.l1 {
                            Some(l1) => {
                                self.stats[Ev::L1Accesses] += 1;
                                let probe = l1.read(seg);
                                if probe == Probe::Miss {
                                    self.stats[Ev::L1Misses] += 1;
                                }
                                probe == Probe::Hit
                            }
                            None => false,
                        };
                        if !hit {
                            misses += self.issue_read_request(slot, dst, seg, cfg);
                        }
                    }
                    if misses == 0 {
                        Some((cycle + dispatch + cfg.l1_latency as u64, dst))
                    } else {
                        self.finalize_group(slot, dst, misses);
                        None
                    }
                } else {
                    // Store: write-through, no allocate, no reply.
                    for i in 0..self.scratch.segs.len() {
                        let seg = self.scratch.segs[i];
                        if let Some(l1) = &mut self.l1 {
                            self.stats[Ev::L1Accesses] += 1;
                            let _ = l1.write(seg);
                        }
                        // Size the write by the lanes that fall in this
                        // segment (32 B granularity like the DRAM burst).
                        let in_seg = self
                            .scratch
                            .words
                            .iter()
                            .filter(|&&a| a & !127 == seg)
                            .count() as u32;
                        self.out_requests.push(MemRequest {
                            core: self.id,
                            write: true,
                            addr: seg,
                            bytes: (in_seg * 4).clamp(32, 128),
                        });
                    }
                    Some((cycle + dispatch + 2, None))
                }
            }
        }
    }

    /// Registers a read for `line` in the MSHR; returns 1 if this created
    /// a new outstanding request (sent downstream), 0 if merged.
    fn issue_read_request(
        &mut self,
        slot: usize,
        dst: Option<Reg>,
        line: u32,
        _cfg: &GpuConfig,
    ) -> u32 {
        let group_id = self.next_group; // reserved in finalize_group
        let _ = (slot, dst);
        if self.mshr.register(line, group_id) {
            self.out_requests.push(MemRequest {
                core: self.id,
                write: false,
                addr: line,
                bytes: 128,
            });
        }
        1
    }

    fn finalize_group(&mut self, slot: usize, dst: Option<Reg>, count: u32) {
        let dst = dst.expect("load groups always have a destination");
        let group_id = self.next_group;
        self.next_group = self.next_group.wrapping_add(1);
        self.groups.insert(
            group_id,
            LoadGroup {
                warp: slot,
                dst,
                remaining: count,
            },
        );
        let w = self.warps[slot].as_mut().expect("live warp");
        w.outstanding_groups += 1;
        w.pending_writes |= 1u64 << dst.index().min(63);
    }

    // --- fetch / decode -----------------------------------------------------------

    fn fetch_stage(&mut self, cycle: u64, cfg: &GpuConfig, ctx: &LaunchCtx<'_>) {
        let n = self.max_warps;
        // Wrap-around slot index — same visit order as the former
        // `(fetch_rr + i) % n`, without a division per probed slot.
        let mut slot = self.fetch_rr % n;
        if n <= 64 {
            // Hint-guided scan (see `fetch_ready`): every fetch failure
            // is sticky, so a failed probe always clears its bit and
            // steady-state full-i-buffer cycles cost one mask test.
            let window: u64 = if n == 64 { !0 } else { (1u64 << n) - 1 };
            let mut scanned = 0;
            while scanned < n {
                let hints = self.fetch_ready & window;
                if hints == 0 {
                    return;
                }
                let (next, dist) = next_hint(hints, slot, n);
                if scanned + dist >= n {
                    return;
                }
                scanned += dist + 1;
                slot = next;
                if self.try_fetch(slot, cycle, cfg, ctx) {
                    return;
                }
                clear_hint(&mut self.fetch_ready, slot);
                slot += 1;
                if slot == n {
                    slot = 0;
                }
            }
        } else {
            for _ in 0..n {
                if self.try_fetch(slot, cycle, cfg, ctx) {
                    return;
                }
                slot += 1;
                if slot == n {
                    slot = 0;
                }
            }
        }
    }

    /// Probes `slot` for fetch; on success fills the i-buffer, advances
    /// the fetch pointer and returns `true`. Every failure is silent
    /// (no stats, no `work`), which is what lets the hinted scan skip
    /// cleared slots.
    fn try_fetch(&mut self, slot: usize, cycle: u64, cfg: &GpuConfig, ctx: &LaunchCtx<'_>) -> bool {
        let pc = self.warps[slot].as_ref().and_then(|w| {
            if w.done || w.ibuf.is_some() {
                return None;
            }
            w.stack.current().map(|e| e.pc)
        });
        let pc = match pc {
            Some(pc) if (pc as usize) < ctx.kernel.code().len() => pc,
            _ => return false,
        };
        self.work = true;
        self.stats[Ev::FetchSchedulerSelects] += 1;
        self.stats[Ev::WstReads] += 1;
        self.stats[Ev::IcacheAccesses] += 1;
        if self.icache.read(pc * 8) == Probe::Miss {
            self.stats[Ev::IcacheMisses] += 1;
        }
        self.stats[Ev::Decodes] += 1;
        self.stats[Ev::IbufferWrites] += 1;
        // The i-buffer holds the PC; operands and metadata come from
        // the launch-wide decoded table (`LaunchCtx::decoded`).
        let (busy, at_barrier) = {
            let w = self.warps[slot].as_mut().expect("checked above");
            w.ibuf = Some(pc);
            (w.busy, w.at_barrier)
        };
        let n = self.max_warps;
        self.fetch_rr = if slot + 1 == n { 0 } else { slot + 1 };
        clear_hint(&mut self.fetch_ready, slot);
        set_hint(&mut self.issue_ready, slot);
        // Publish the fetched instruction's unit class — but only for a
        // warp that could actually probe to `UnitBusy` right now. For a
        // still-executing or barrier-parked warp the bit is withheld
        // here and set by the retire/release site that lifts the block.
        if !busy && !at_barrier {
            if let Some(ci) = class_index(ctx.decoded[pc as usize].class) {
                set_hint(&mut self.class_next[ci], slot);
            }
        }
        // Fetch runs after issue within a tick, so the refilled warp can
        // issue at `cycle + 1` at the earliest. Barrel: refine an engaged
        // stall by this candidate's own unit-free time (usually it is
        // still executing, in which case its commit event refines
        // instead). Scoreboard: cancel outright — see `candidate_wake`.
        if self.issue_stall_until > cycle + 1 {
            self.issue_stall_until = if cfg.scoreboard {
                0
            } else {
                self.issue_stall_until
                    .min(self.candidate_wake(slot, cycle + 1, ctx))
            };
        }
        true
    }
}

/// Reads a global-memory word through a core's store overlay
/// (read-your-own-writes within the current cycle). A free function —
/// rather than a `&self` method — so the load path can hold the warp's
/// register file mutably while it reads.
fn read_global_overlay(store_buf: &BTreeMap<u32, u32>, mem: &GpuMemory, addr: u32) -> u32 {
    if !store_buf.is_empty() {
        if let Some(v) = store_buf.get(&(addr & !3)) {
            return *v;
        }
    }
    mem.load_word(addr)
}

/// Buffers a global-memory store for the commit phase. Bounds are
/// checked now so an out-of-range kernel store still fails inside the
/// offending core's compute phase.
fn buffer_store_into(store_buf: &mut BTreeMap<u32, u32>, mem: &GpuMemory, addr: u32, value: u32) {
    let a = addr & !3;
    if a as usize + 4 > mem.capacity() {
        panic!("kernel write past end of simulated memory: 0x{addr:08x}");
    }
    store_buf.insert(a, value);
}

fn read_smem(smem: &[u8], addr: u32) -> u32 {
    let a = addr as usize & !3;
    assert!(
        a + 4 <= smem.len(),
        "kernel read past end of shared memory: 0x{addr:x} of {}",
        smem.len()
    );
    u32::from_le_bytes(smem[a..a + 4].try_into().expect("range checked"))
}

fn write_smem(smem: &mut [u8], addr: u32, value: u32) {
    let a = addr as usize & !3;
    assert!(
        a + 4 <= smem.len(),
        "kernel write past end of shared memory: 0x{addr:x} of {}",
        smem.len()
    );
    smem[a..a + 4].copy_from_slice(&value.to_le_bytes());
}

//! `backprop` (Rodinia): multi-layer perceptron training.
//!
//! Two kernels, following the Rodinia structure:
//!
//! * `backprop1` (`layerforward`) — each 16×16 block computes partial
//!   weighted sums of 16 inputs against the 16 hidden units, reducing
//!   over the input dimension in shared memory (log-tree with barriers);
//! * `backprop2` (`adjust_weights`) — applies the delta rule with
//!   momentum to every weight: `w += lr·δ[j]·x[i] + m·Δw_old`, an
//!   embarrassingly parallel FP update.

use gpusimpow_isa::{CmpOp, Dim2, KernelBuilder, LaunchConfig, Operand, Reg, SpecialReg};
use gpusimpow_sim::{Gpu, LaunchReport};

use crate::common::{check_f32, BenchError, Benchmark, Origin, XorShift};

const HID: u32 = 16;
const LEARNING_RATE: f32 = 0.3;
const MOMENTUM: f32 = 0.3;

/// The backprop benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Backprop {
    /// Input-layer size (multiple of 16).
    pub inputs: u32,
}

impl Default for Backprop {
    fn default() -> Self {
        Backprop { inputs: 256 }
    }
}

impl Benchmark for Backprop {
    fn name(&self) -> &'static str {
        "backprop"
    }

    fn origin(&self) -> Origin {
        Origin::Rodinia
    }

    fn description(&self) -> &'static str {
        "Multi-layer perceptron training"
    }

    fn kernel_names(&self) -> Vec<String> {
        vec!["backprop1".to_string(), "backprop2".to_string()]
    }

    fn run(&self, gpu: &mut Gpu) -> Result<Vec<LaunchReport>, BenchError> {
        let n = self.inputs;
        assert!(n.is_multiple_of(HID));
        let blocks = n / HID;
        let mut rng = XorShift::new(0xB9);
        let input: Vec<f32> = (0..n).map(|_| rng.next_range(0.0, 1.0)).collect();
        let weights: Vec<f32> = (0..n * HID).map(|_| rng.next_range(-0.5, 0.5)).collect();
        let delta: Vec<f32> = (0..HID).map(|_| rng.next_range(-0.1, 0.1)).collect();
        let oldw: Vec<f32> = (0..n * HID).map(|_| rng.next_range(-0.01, 0.01)).collect();

        let d_input = gpu.alloc_f32(n);
        let d_weights = gpu.alloc_f32(n * HID);
        let d_partial = gpu.alloc_f32(blocks * HID);
        let d_delta = gpu.alloc_f32(HID);
        let d_oldw = gpu.alloc_f32(n * HID);
        gpu.h2d_f32(d_input, &input);
        gpu.h2d_f32(d_weights, &weights);
        gpu.h2d_f32(d_delta, &delta);
        gpu.h2d_f32(d_oldw, &oldw);

        let mut reports = Vec::new();

        // backprop1: partial forward sums.
        let k1 = build_layerforward(d_input.addr(), d_weights.addr(), d_partial.addr(), n);
        reports.push(gpu.launch(
            &k1,
            LaunchConfig::new(Dim2::xy(1, blocks), Dim2::xy(HID, HID)),
        )?);
        let got_partial = gpu.d2h_f32(d_partial, (blocks * HID) as usize);
        let mut want_partial = vec![0f32; (blocks * HID) as usize];
        for b in 0..blocks as usize {
            for j in 0..HID as usize {
                // Tree reduction order: pairwise, matching the kernel.
                let mut vals: Vec<f32> = (0..HID as usize)
                    .map(|i| {
                        let gi = b * HID as usize + i;
                        input[gi] * weights[gi * HID as usize + j]
                    })
                    .collect();
                let mut len = HID as usize / 2;
                while len > 0 {
                    for i in 0..len {
                        vals[i] += vals[i + len];
                    }
                    len /= 2;
                }
                want_partial[b * HID as usize + j] = vals[0];
            }
        }
        check_f32("backprop", &got_partial, &want_partial, 1e-4)?;

        // backprop2: weight adjustment.
        let k2 = build_adjust(
            d_input.addr(),
            d_weights.addr(),
            d_delta.addr(),
            d_oldw.addr(),
        );
        reports.push(gpu.launch(
            &k2,
            LaunchConfig::new(Dim2::xy(1, blocks), Dim2::xy(HID, HID)),
        )?);
        let got_w = gpu.d2h_f32(d_weights, (n * HID) as usize);
        let mut want_w = weights.clone();
        for i in 0..n as usize {
            for j in 0..HID as usize {
                let dw =
                    LEARNING_RATE * delta[j] * input[i] + MOMENTUM * oldw[i * HID as usize + j];
                want_w[i * HID as usize + j] += dw;
            }
        }
        check_f32("backprop", &got_w, &want_w, 1e-4)?;
        Ok(reports)
    }
}

/// backprop1: block (1, b) computes
/// `partial[b][j] = Σ_{i in block} input[b*16+i] · w[(b*16+i)][j]`
/// with a shared-memory log-tree over `i`.
fn build_layerforward(input: u32, weights: u32, partial: u32, _n: u32) -> gpusimpow_isa::Kernel {
    let mut k = KernelBuilder::new("backprop1");
    let smem = k.alloc_smem(HID * HID * 4);

    let tx = Reg(0); // j: hidden unit
    let ty = Reg(1); // i: input within block
    let by = Reg(2);
    k.s2r(tx, SpecialReg::TidX);
    k.s2r(ty, SpecialReg::TidY);
    k.s2r(by, SpecialReg::CtaIdY);

    // gi = by*16 + ty
    let gi = Reg(3);
    k.imad(gi, by, Operand::imm_u32(HID), ty);

    // prod = input[gi] * w[gi*16 + tx]
    let ia = Reg(4);
    k.shl(ia, gi, Operand::imm_u32(2));
    let x = Reg(5);
    k.ld_global(x, ia, input as i32);
    let wa = Reg(6);
    k.imad(wa, gi, Operand::imm_u32(HID), tx);
    k.shl(wa, wa, Operand::imm_u32(2));
    let w = Reg(7);
    k.ld_global(w, wa, weights as i32);
    let prod = Reg(8);
    k.fmul(prod, x, w);

    // smem[ty][tx] = prod
    let sa = Reg(9);
    k.imad(sa, ty, Operand::imm_u32(HID), tx);
    k.shl(sa, sa, Operand::imm_u32(2));
    k.iadd(sa, sa, Operand::imm_u32(smem));
    k.st_shared(prod, sa, 0);
    k.bar();

    // Tree-reduce over ty.
    let stride = Reg(10);
    k.movi(stride, HID / 2);
    let cond = Reg(11);
    k.while_loop(
        |k| {
            k.isetp(CmpOp::Gt, cond, stride, Operand::imm_u32(0));
            cond
        },
        |k| {
            let active = Reg(12);
            k.isetp(CmpOp::Lt, active, ty, stride);
            k.if_then(active, |k| {
                let other = Reg(13);
                let mine = Reg(14);
                let theirs = Reg(15);
                // other = smem + ((ty+stride)*16 + tx)*4
                k.iadd(other, ty, stride);
                k.imad(other, other, Operand::imm_u32(HID), tx);
                k.shl(other, other, Operand::imm_u32(2));
                k.iadd(other, other, Operand::imm_u32(smem));
                k.ld_shared(theirs, other, 0);
                k.ld_shared(mine, sa, 0);
                k.fadd(mine, mine, theirs);
                k.st_shared(mine, sa, 0);
            });
            k.bar();
            k.shr(stride, stride, Operand::imm_u32(1));
        },
    );

    // ty == 0 stores partial[by*16 + tx].
    let is0 = Reg(16);
    k.isetp(CmpOp::Eq, is0, ty, Operand::imm_u32(0));
    k.if_then(is0, |k| {
        let res = Reg(17);
        k.ld_shared(res, sa, 0);
        let pa = Reg(18);
        k.imad(pa, by, Operand::imm_u32(HID), tx);
        k.shl(pa, pa, Operand::imm_u32(2));
        k.st_global(res, pa, partial as i32);
    });
    k.exit();
    k.build().expect("backprop1 kernel is valid")
}

/// backprop2: `w[i][j] += lr·δ[j]·x[i] + m·Δw_old[i][j]`.
fn build_adjust(input: u32, weights: u32, delta: u32, oldw: u32) -> gpusimpow_isa::Kernel {
    let mut k = KernelBuilder::new("backprop2");
    let tx = Reg(0); // j
    let ty = Reg(1); // i within block
    let by = Reg(2);
    k.s2r(tx, SpecialReg::TidX);
    k.s2r(ty, SpecialReg::TidY);
    k.s2r(by, SpecialReg::CtaIdY);
    let gi = Reg(3);
    k.imad(gi, by, Operand::imm_u32(HID), ty);

    let da = Reg(4);
    k.shl(da, tx, Operand::imm_u32(2));
    let dj = Reg(5);
    k.ld_global(dj, da, delta as i32);
    let ia = Reg(6);
    k.shl(ia, gi, Operand::imm_u32(2));
    let x = Reg(7);
    k.ld_global(x, ia, input as i32);
    let wa = Reg(8);
    k.imad(wa, gi, Operand::imm_u32(HID), tx);
    k.shl(wa, wa, Operand::imm_u32(2));
    let old = Reg(9);
    k.ld_global(old, wa, oldw as i32);
    let w = Reg(10);
    k.ld_global(w, wa, weights as i32);

    // dw = lr*dj*x + m*old
    let dw = Reg(11);
    k.fmul(dw, dj, x);
    k.fmul(dw, dw, Operand::imm_f32(LEARNING_RATE));
    k.ffma(dw, old, Operand::imm_f32(MOMENTUM), dw);
    k.fadd(w, w, dw);
    k.st_global(w, wa, weights as i32);
    k.exit();
    k.build().expect("backprop2 kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusimpow_sim::GpuConfig;

    #[test]
    fn runs_and_verifies_on_gt240() {
        let mut gpu = Gpu::new(GpuConfig::gt240()).unwrap();
        let reports = Backprop { inputs: 64 }.run(&mut gpu).unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports[0].stats.barrier_waits > 0, "layerforward reduces");
        assert!(reports[1].stats.fp_instructions > 0);
    }
}

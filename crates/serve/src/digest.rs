//! The content-address: a hand-rolled 128-bit digest over a job's
//! canonical byte encoding.
//!
//! The container has no crates.io access, so there is no `sha2` to
//! lean on. The digest here is two independent FNV-1a-style 64-bit
//! lanes over the same byte stream (distinct offset bases and
//! multipliers, the second lane additionally whitening each input
//! byte), finished with a SplitMix64-style avalanche that folds the
//! length in and cross-mixes the lanes. It is *not* cryptographic —
//! nothing here defends against adversarial collisions — but it is
//! deterministic across platforms, avalanche-complete in the finisher,
//! and 128 bits wide, which is what a result cache keyed by honest job
//! descriptions needs.
//!
//! The digest is versioned *indirectly*: it hashes the canonical job
//! encoding, which carries its own version field
//! ([`crate::job::JOB_ENCODING_VERSION`]). Changing the encoding bumps
//! that version, which changes every digest, which cleanly orphans all
//! previously cached results rather than silently serving stale ones.

use std::fmt;

use crate::wire::WireError;

/// FNV-1a 64-bit offset basis (lane 0).
const OFFSET0: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime (lane 0 multiplier).
const PRIME0: u64 = 0x0000_0100_0000_01b3;
/// Lane 1 offset basis: the golden-ratio constant, unrelated to lane 0.
const OFFSET1: u64 = 0x9e37_79b9_7f4a_7c15;
/// Lane 1 multiplier: an odd constant with good bit dispersion
/// (from MurmurHash3's 64-bit finalizer family).
const PRIME1: u64 = 0xff51_afd7_ed55_8ccd;

/// SplitMix64 finalizer: full-avalanche bijection on 64 bits.
fn avalanche(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A 128-bit content address of one canonical job encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobDigest(pub [u8; 16]);

impl JobDigest {
    /// Digests `bytes`.
    pub fn compute(bytes: &[u8]) -> JobDigest {
        let mut h0 = OFFSET0;
        let mut h1 = OFFSET1;
        for &b in bytes {
            h0 = (h0 ^ u64::from(b)).wrapping_mul(PRIME0);
            h1 = (h1 ^ u64::from(b.rotate_left(3) ^ 0xa5)).wrapping_mul(PRIME1);
        }
        let len = bytes.len() as u64;
        let a = avalanche(h0 ^ len);
        let b = avalanche(h1 ^ len.rotate_left(32) ^ a);
        let a = avalanche(a ^ b.rotate_left(17));
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&a.to_le_bytes());
        out[8..].copy_from_slice(&b.to_le_bytes());
        JobDigest(out)
    }

    /// Lowercase 32-character hex form (file names, logs, goldens).
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses the 32-character hex form.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Malformed`] unless `hex` is exactly 32
    /// lowercase/uppercase hex digits.
    pub fn from_hex(hex: &str) -> Result<JobDigest, WireError> {
        if hex.len() != 32 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(WireError::Malformed(format!(
                "digest hex must be 32 hex digits, got {hex:?}"
            )));
        }
        let mut out = [0u8; 16];
        for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
            let s = std::str::from_utf8(chunk).expect("hex is ASCII");
            out[i] = u8::from_str_radix(s, 16).expect("validated hex digit pair");
        }
        Ok(JobDigest(out))
    }
}

impl fmt::Display for JobDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bit_flips_avalanche() {
        let base = JobDigest::compute(b"the quick brown fox");
        let mut flipped = b"the quick brown fox".to_vec();
        flipped[0] ^= 1;
        let other = JobDigest::compute(&flipped);
        assert_ne!(base, other);
        // A decent digest flips roughly half the 128 output bits.
        let differing: u32 = base
            .0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert!(
            (32..=96).contains(&differing),
            "only {differing}/128 bits differ"
        );
    }

    #[test]
    fn length_extension_changes_digest() {
        // Same prefix, appended zero byte: the length fold must matter.
        assert_ne!(
            JobDigest::compute(b""),
            JobDigest::compute(&[0u8]),
            "empty vs single zero byte"
        );
        assert_ne!(JobDigest::compute(&[0u8]), JobDigest::compute(&[0u8, 0]));
    }

    #[test]
    fn hex_roundtrip() {
        let d = JobDigest::compute(b"roundtrip");
        let hex = d.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(JobDigest::from_hex(&hex).unwrap(), d);
        assert!(JobDigest::from_hex("xyz").is_err());
        assert!(JobDigest::from_hex(&hex[..30]).is_err());
    }
}

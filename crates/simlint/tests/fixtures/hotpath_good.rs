//! Fixture: allocation-free loops, allocations outside loops, an
//! `impl … for …` block (not a loop despite the `for` keyword), and a
//! test region — none of which may fire lane_loop_alloc.

struct Scratch {
    lanes: Vec<u32>,
}

impl Default for Scratch {
    fn default() -> Self {
        // Allocation outside any loop is launch setup, not hot path.
        Scratch {
            lanes: Vec::with_capacity(32),
        }
    }
}

fn per_cycle(scratch: &mut Scratch, values: &[u32]) -> u32 {
    let mut acc = 0;
    scratch.lanes.clear();
    for v in values {
        // Reuse of a pre-sized buffer: push into retained capacity.
        scratch.lanes.push(*v);
        acc += v;
    }
    while acc > 100 {
        acc /= 2;
    }
    acc
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_helpers_may_allocate() {
        for i in 0..4 {
            let expected = vec![i; 8];
            assert_eq!(expected.len(), 8);
        }
    }
}

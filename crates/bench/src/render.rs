//! Text rendering of experiment results: console tables, ASCII bar
//! charts and the markdown used by `EXPERIMENTS.md`.

use gpusimpow::ValidationSummary;

use crate::experiments::{ErrorBudget, Fig4Point, MicrobenchEnergies, StaticEstimation, Table4Row};

/// Renders Fig. 4 as a table plus an ASCII staircase.
pub fn fig4(points: &[Fig4Point]) -> String {
    let mut out = String::new();
    out.push_str("| blocks | clusters | power [W] | delta [W] |\n");
    out.push_str("|---|---|---|---|\n");
    for p in points {
        out.push_str(&format!(
            "| {} | {} | {:.3} | {:+.3} |\n",
            p.blocks, p.clusters_active, p.measured_w, p.delta_w
        ));
    }
    let min = points.first().map(|p| p.measured_w).unwrap_or(0.0) - 1.0;
    out.push('\n');
    for p in points {
        let bar = ((p.measured_w - min) * 8.0) as usize;
        out.push_str(&format!(
            "{:>2} blocks {:>7.3} W |{}\n",
            p.blocks,
            p.measured_w,
            "#".repeat(bar)
        ));
    }
    out
}

/// Renders Table IV with the paper's values alongside.
pub fn table4(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "| GPU | static sim [W] | static hw-est [W] | paper sim/real [W] | area sim [mm²] | paper sim/real [mm²] | hw method |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.1} | {:.1} | {:.1} / {:.1} | {:.0} | {:.0} / {:.0} | {} |\n",
            r.gpu,
            r.sim_static_w,
            r.hw_static_w,
            r.paper.0,
            r.paper.1,
            r.sim_area_mm2,
            r.paper.2,
            r.paper.3,
            r.method
        ));
    }
    out
}

/// Renders a Fig. 6 validation summary: per-kernel bars and the error
/// statistics the paper quotes.
pub fn fig6(summary: &ValidationSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!("### {} (Fig. 6 reproduction)\n\n", summary.gpu));
    out.push_str("| kernel | simulated [W] | measured [W] | error |\n");
    out.push_str("|---|---|---|---|\n");
    for row in &summary.rows {
        out.push_str(&format!(
            "| {} | {:.2} | {:.2} | {:+.1}% |\n",
            row.kernel,
            row.simulated_total_w,
            row.measured_total_w,
            row.signed_error() * 100.0
        ));
    }
    out.push('\n');
    let max_w = summary
        .rows
        .iter()
        .map(|r| r.simulated_total_w.max(r.measured_total_w))
        .fold(1.0f64, f64::max);
    for row in &summary.rows {
        let sim = (row.simulated_total_w / max_w * 40.0) as usize;
        let meas = (row.measured_total_w / max_w * 40.0) as usize;
        out.push_str(&format!("{:>13} sim  |{}\n", row.kernel, "#".repeat(sim)));
        out.push_str(&format!("{:>13} meas |{}\n", "", "=".repeat(meas)));
    }
    out.push('\n');
    out.push_str(&format!(
        "- average relative error: **{:.1}%** (paper: 11.7% GT240 / 10.8% GTX580)\n",
        summary.average_relative_error() * 100.0
    ));
    out.push_str(&format!(
        "- average dynamic-only error: {:.1}% (paper: 28.3% GT240 / 20.9% GTX580)\n",
        summary.average_dynamic_error() * 100.0
    ));
    if let Some((k, e)) = summary.max_relative_error() {
        out.push_str(&format!("- maximum error: {:.1}% on `{k}`\n", e * 100.0));
    }
    out.push_str(&format!(
        "- simulator overestimates {} of {} kernels (paper: all but 2 on GT240)\n",
        summary.overestimated_count(),
        summary.rows.len()
    ));
    out.push_str(&format!(
        "- static power: simulated {:.1} W vs hardware estimate {:.1} W\n",
        summary.simulated_static_w, summary.measured_static_w
    ));
    out
}

/// Renders the §III-D microbenchmark result.
pub fn microbench(e: &MicrobenchEnergies) -> String {
    format!(
        "| op class | measured [pJ/op] | synthetic-silicon truth [pJ/op] | paper's card [pJ/op] |\n|---|---|---|---|\n\
         | integer (LFSR) | {:.1} | 29.5 | ≈ 40 |\n\
         | floating point (Mandelbrot) | {:.1} | 55.0 | ≈ 75 (NVIDIA: 50) |\n\n\
         The experiment reproduces the paper's *methodology*: differencing two\n\
         launches that differ only in enabled lanes isolates the per-lane energy,\n\
         recovering the (synthetic) silicon's true values through the measurement\n\
         chain. The power model keeps the paper's measured 40/75 pJ anchors.\n",
        e.int_pj, e.fp_pj
    )
}

/// Renders the §IV-B static-estimation experiment.
pub fn static_estimation(s: &StaticEstimation) -> String {
    format!(
        "GT240 clock extrapolation:\n\
         - P(100% clock) = {:.2} W, P(80% clock) = {:.2} W\n\
         - extrapolated static = {:.2} W (ground truth {:.2} W, paper 17.6 W)\n\
         - static-to-idle ratio = {:.3}\n\
         GTX580 idle-ratio method (driver cannot scale clocks):\n\
         - estimated static = {:.2} W (ground truth {:.2} W, paper 80 W)\n",
        s.gt240_full_w,
        s.gt240_scaled_w,
        s.gt240_static_w,
        s.gt240_truth_w,
        s.ratio,
        s.gtx580_static_w,
        s.gtx580_truth_w,
    )
}

/// Renders the §IV-A measurement error budget.
pub fn error_budget(b: &ErrorBudget) -> String {
    format!(
        "measurement-chain error over {} virtual boards x 4 operating points:\n\
         - worst |error| = {:.2}% (paper budget: ±3.2%)\n\
         - mean  |error| = {:.2}%\n",
        b.boards,
        b.worst_rel_error * 100.0,
        b.mean_rel_error * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_render_contains_bars() {
        let pts = vec![
            Fig4Point {
                blocks: 1,
                measured_w: 24.0,
                delta_w: 0.0,
                clusters_active: 1,
            },
            Fig4Point {
                blocks: 2,
                measured_w: 24.7,
                delta_w: 0.7,
                clusters_active: 2,
            },
        ];
        let text = fig4(&pts);
        assert!(text.contains("| 2 | 2 | 24.700 | +0.700 |"));
        assert!(text.contains('#'));
    }

    #[test]
    fn microbench_render_mentions_paper_values() {
        let text = microbench(&MicrobenchEnergies {
            int_pj: 39.0,
            fp_pj: 76.0,
        });
        assert!(text.contains("≈ 40"));
        assert!(text.contains("≈ 75"));
    }
}

//! Microbenchmarks of the event-driven uncore hot path: the same spans
//! advanced cycle-by-cycle (`advance(1)` in a loop — the dense-loop
//! cost model) versus in one skip-ahead call. The ratio between the
//! `dense` and `skip` variants is the per-component payoff behind the
//! suite-level speedup recorded in `BENCH_sim_throughput.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use gpusimpow_sim::core::MemRequest;
use gpusimpow_sim::uncore::Uncore;
use gpusimpow_sim::{ActivityVector, EventKind, GpuConfig};

const IDLE_SPAN: u64 = 65_536;

fn read_req(core: usize, addr: u32) -> MemRequest {
    MemRequest {
        core,
        write: false,
        addr,
        bytes: 128,
    }
}

/// Idle uncore, stepped one shader cycle at a time: every NoC link, L2
/// bank and DRAM channel is consulted each cycle even though only the
/// periodic DRAM refresh ever has work. This is the dense loop's cost.
fn bench_idle_dense(c: &mut Criterion) {
    let cfg = GpuConfig::gt240();
    let mut uncore = Uncore::new(&cfg);
    let mut stats = ActivityVector::new();
    let mut resps = Vec::new();
    c.bench_function("uncore/idle-dense-65536", |b| {
        b.iter(|| {
            for _ in 0..IDLE_SPAN {
                uncore.advance(1, &mut resps, &mut stats);
                resps.clear();
            }
            black_box(stats[EventKind::DramRefreshes])
        })
    });
}

/// The same idle span in one skip-ahead call: component work only runs
/// on due event cycles (refresh), leaving the clock-domain accumulator
/// walk as the only per-cycle cost.
fn bench_idle_skip(c: &mut Criterion) {
    let cfg = GpuConfig::gt240();
    let mut uncore = Uncore::new(&cfg);
    let mut stats = ActivityVector::new();
    let mut resps = Vec::new();
    c.bench_function("uncore/idle-skip-65536", |b| {
        b.iter(|| {
            let mut left = IDLE_SPAN;
            while left > 0 {
                left -= uncore.advance(left, &mut resps, &mut stats);
                resps.clear();
            }
            black_box(stats[EventKind::DramRefreshes])
        })
    });
}

/// A loaded drain: a coalesced read burst across all channels pushed at
/// cycle 0, then advanced until every response is back. Measures the
/// event engine under real traffic (links, L2 probes, DRAM timing),
/// where events are due nearly every cycle and skip spans are short.
fn bench_drain_burst(c: &mut Criterion) {
    let cfg = GpuConfig::gt240();
    c.bench_function("uncore/drain-read-burst-32", |b| {
        b.iter(|| {
            let mut uncore = Uncore::new(&cfg);
            let mut stats = ActivityVector::new();
            let mut resps = Vec::new();
            for i in 0..32u32 {
                uncore.push_request(read_req(i as usize % 12, i * 0x100), &mut stats);
            }
            let mut delivered = 0usize;
            while !uncore.is_idle() {
                uncore.advance(u64::MAX, &mut resps, &mut stats);
                delivered += resps.len();
                resps.clear();
            }
            assert_eq!(delivered, 32);
            black_box(stats[EventKind::DramReadBursts])
        })
    });
}

criterion_group!(
    benches,
    bench_idle_dense,
    bench_idle_skip,
    bench_drain_burst
);
criterion_main!(benches);

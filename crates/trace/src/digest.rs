//! 128-bit integrity digest for trace payloads.
//!
//! Deliberately the same construction as the serve crate's job digest
//! (`crates/serve/src/digest.rs`): two independent FNV-1a-style lanes
//! over the payload bytes — the second lane rotating and salting each
//! byte so the lanes cannot cancel — finished through a SplitMix64
//! avalanche with the length folded in. The duplication is a
//! dependency-direction necessity (serve depends on sim which depends
//! on this crate), and it keeps the property the service relies on:
//! one digest family across the workspace, so a trace's footer digest
//! can double as its content address.
//!
//! This is an integrity check against accidental corruption, not a
//! cryptographic MAC.

use std::fmt;

const OFFSET0: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME0: u64 = 0x0000_0100_0000_01b3;
const OFFSET1: u64 = 0x9e37_79b9_7f4a_7c15;
const PRIME1: u64 = 0xff51_afd7_ed55_8ccd;

/// SplitMix64-style finalizer: full-width bit diffusion.
fn avalanche(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A 128-bit content digest of an encoded trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceDigest(pub [u8; 16]);

impl TraceDigest {
    /// Digests a byte payload.
    pub fn compute(bytes: &[u8]) -> Self {
        let mut h0 = OFFSET0;
        let mut h1 = OFFSET1;
        for &b in bytes {
            h0 = (h0 ^ b as u64).wrapping_mul(PRIME0);
            h1 = (h1 ^ (b.rotate_left(3) ^ 0xa5) as u64).wrapping_mul(PRIME1);
        }
        let len = bytes.len() as u64;
        let a = avalanche(h0 ^ len);
        let b = avalanche(h1 ^ len.rotate_left(32) ^ a);
        let a = avalanche(a ^ b.rotate_left(17));
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&a.to_le_bytes());
        out[8..].copy_from_slice(&b.to_le_bytes());
        TraceDigest(out)
    }

    /// Lower-hex rendering (32 chars), for golden tests and logs.
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
            s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
        }
        s
    }
}

impl fmt::Display for TraceDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_inputs_distinct_digests() {
        let a = TraceDigest::compute(b"abc");
        let b = TraceDigest::compute(b"abd");
        let c = TraceDigest::compute(b"abc\0");
        assert_ne!(a, b);
        assert_ne!(a, c, "length is folded into the finalizer");
    }

    #[test]
    fn single_bit_flip_changes_many_bits() {
        let base = TraceDigest::compute(&[0u8; 64]);
        let mut flipped = [0u8; 64];
        flipped[20] ^= 0x10;
        let other = TraceDigest::compute(&flipped);
        let differing: u32 = base
            .0
            .iter()
            .zip(other.0.iter())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert!(
            (32..=96).contains(&differing),
            "poor diffusion: {differing} differing bits"
        );
    }

    #[test]
    fn hex_is_stable() {
        let d = TraceDigest::compute(b"gpusimpow");
        assert_eq!(d.to_hex().len(), 32);
        assert_eq!(d, TraceDigest::compute(b"gpusimpow"));
    }
}

//! Golden pins for the v1 trace byte format. The synthetic families are
//! pure functions of their parameters, so their encodings are stable
//! byte strings; pinning length and content digest means any change to
//! the wire layout — header fields, varint packing, record order,
//! footer — trips here instead of silently invalidating every trace
//! archived by users. A layout change requires a version bump and new
//! goldens, in that order.

use gpusimpow_trace::{synth, KernelTrace, TraceDigest, TRACE_MAGIC, TRACE_VERSION};

fn families() -> Vec<(&'static str, KernelTrace)> {
    vec![
        ("stride", synth::stride_family(4, 2, 4, 3)),
        ("occupancy", synth::occupancy_family(6, 4, 16)),
        ("conflict", synth::conflict_family(2, 2, 8, 4)),
        ("divergence", synth::divergence_family(3, 2, 11)),
    ]
}

#[test]
fn v1_encoding_is_pinned_byte_for_byte() {
    let golden: &[(&str, usize, &str)] = &[
        ("stride", 2218, "614e43da2723ab91443d034f4fce45b4"),
        ("occupancy", 902, "74922306ff0faed91ecd43a4718003db"),
        ("conflict", 1098, "80c821bf4897c9e0b208553e4b36858f"),
        ("divergence", 177, "5b1a70da39c376223262cf76a9f40466"),
    ];
    for ((tag, trace), (gtag, glen, ghex)) in families().iter().zip(golden) {
        assert_eq!(tag, gtag);
        let bytes = trace.encode();
        assert_eq!(bytes.len(), *glen, "{tag}: encoded length drifted");
        assert_eq!(
            TraceDigest::compute(&bytes).to_hex(),
            *ghex,
            "{tag}: encoded bytes drifted — wire-format change without a version bump?"
        );
    }
}

#[test]
fn header_leads_with_magic_and_version() {
    for (tag, trace) in families() {
        let bytes = trace.encode();
        assert_eq!(&bytes[..4], TRACE_MAGIC, "{tag}: magic");
        assert_eq!(
            u16::from_le_bytes([bytes[4], bytes[5]]),
            TRACE_VERSION,
            "{tag}: version"
        );
    }
}

#[test]
fn goldens_survive_a_decode_reencode_cycle() {
    // Decoding and re-encoding must be the identity on the byte level,
    // not just the structural level — otherwise re-archived traces get
    // new digests and content-addressed caches double up.
    for (tag, trace) in families() {
        let bytes = trace.encode();
        let decoded = KernelTrace::decode(&bytes).expect("golden traces decode");
        assert_eq!(
            decoded.encode(),
            bytes,
            "{tag}: re-encode is not the identity"
        );
    }
}

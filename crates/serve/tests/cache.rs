//! Cache-layer contract tests: golden job digests, canonical-encoding
//! stability, disk-tier corruption recovery and LRU bounds.

use std::sync::Arc;

use gpusimpow_serve::store::StoreTier;
use gpusimpow_serve::{
    GovernorSpec, GpuPreset, JobDigest, JobSpec, KernelSpec, ResultStore, StoreConfig,
};

fn golden_specs() -> Vec<(&'static str, JobSpec, &'static str)> {
    vec![
        (
            "cluster_step",
            JobSpec {
                kernel: KernelSpec::ClusterStep {
                    iterations: 64,
                    blocks: 2,
                    threads: 64,
                },
                gpu: GpuPreset::Gt240,
                governor: GovernorSpec::Baseline,
                window_cycles: 0,
            },
            "4c99912e70155664d0f77863716b68ee",
        ),
        (
            "lfsr",
            JobSpec {
                kernel: KernelSpec::Lfsr {
                    lanes: 8,
                    iterations: 32,
                    blocks: 4,
                    threads: 128,
                },
                gpu: GpuPreset::Gtx580,
                governor: GovernorSpec::Ondemand,
                window_cycles: 2048,
            },
            "d23d5b493c7c2124102682230412bd3f",
        ),
        (
            "mandelbrot",
            JobSpec {
                kernel: KernelSpec::Mandelbrot {
                    lanes: 32,
                    iterations: 16,
                    blocks: 2,
                    threads: 64,
                },
                gpu: GpuPreset::Gt240,
                governor: GovernorSpec::ClusterOndemand,
                window_cycles: 1024,
            },
            "50f225f3a42934609f589f1b6d5c6cd0",
        ),
        (
            "divergence",
            JobSpec {
                kernel: KernelSpec::Divergence {
                    depth: 3,
                    blocks: 2,
                    threads: 64,
                },
                gpu: GpuPreset::Gt240,
                governor: GovernorSpec::PowerCap { cap_mw: 70_000 },
                window_cycles: 4096,
            },
            "4ed6a593d0d366f675f32b8b3b584f40",
        ),
        (
            "conflict",
            JobSpec {
                kernel: KernelSpec::Conflict {
                    stride: 8,
                    iterations: 32,
                    blocks: 2,
                    threads: 32,
                },
                gpu: GpuPreset::Gtx580,
                governor: GovernorSpec::Baseline,
                window_cycles: 0,
            },
            "da2c3dd1165f8f17a23f92f09aaaa357",
        ),
        (
            "suite",
            JobSpec {
                kernel: KernelSpec::Suite {
                    index: 0,
                    small: true,
                },
                gpu: GpuPreset::Gt240,
                governor: GovernorSpec::Baseline,
                window_cycles: 0,
            },
            "b90e28a8e50faf0f62150b842c9d8e72",
        ),
    ]
}

/// The checked-in digests pin the canonical encoding: any accidental
/// change to field order, widths, tags or the digest function itself
/// fails here loudly. An *intentional* change must bump
/// `JOB_ENCODING_VERSION` (orphaning every cached result) and update
/// these goldens in the same commit.
#[test]
fn job_digests_match_checked_in_goldens() {
    for (name, spec, expected) in golden_specs() {
        assert_eq!(
            spec.digest().to_hex(),
            expected,
            "digest of the `{name}` golden job changed — if the canonical \
             encoding changed on purpose, bump JOB_ENCODING_VERSION and \
             refresh the goldens"
        );
    }
}

/// The digest is a pure function of the spec — rebuilding the same spec
/// yields the same digest, and every golden decodes back to its spec.
#[test]
fn canonical_encoding_is_stable_and_injective_on_goldens() {
    let specs = golden_specs();
    for (name, spec, _) in &specs {
        let decoded = JobSpec::decode(&spec.canonical_bytes()).unwrap();
        assert_eq!(&decoded, spec, "{name} roundtrips");
        assert_eq!(decoded.digest(), spec.digest(), "{name} digest stable");
    }
    // All goldens are distinct jobs with distinct digests.
    for (i, (_, a, _)) in specs.iter().enumerate() {
        for (_, b, _) in specs.iter().skip(i + 1) {
            assert_ne!(a.digest(), b.digest());
        }
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gpusimpow-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// End-to-end disk-tier corruption: a truncated entry and a garbage
/// entry are both detected, evicted and transparently recomputed.
#[test]
fn disk_corruption_is_detected_evicted_and_recomputed() {
    let dir = temp_dir("corrupt");
    let cfg = StoreConfig {
        dir: Some(dir.clone()),
        mem_capacity: 8,
    };
    let digest = JobDigest([0x42; 16]);
    let payload = Arc::new(vec![7u8; 256]);

    // Write through one store instance.
    let mut store = ResultStore::new(cfg.clone()).unwrap();
    store.insert(digest, Arc::clone(&payload));

    // Find the entry file and truncate it.
    let entry = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "gspc"))
        .expect("disk tier wrote an entry");
    let good = std::fs::read(&entry).unwrap();
    std::fs::write(&entry, &good[..good.len() / 3]).unwrap();

    let mut cold = ResultStore::new(cfg.clone()).unwrap();
    assert!(cold.get(digest).is_none(), "truncated entry must miss");
    assert_eq!(cold.counters().corrupt_evictions, 1);
    assert!(!entry.exists(), "truncated entry must be deleted");

    // Recompute (re-insert) and confirm the heal.
    cold.insert(digest, Arc::clone(&payload));
    assert!(entry.exists(), "healed entry is rewritten");

    // Replace with outright garbage.
    std::fs::write(&entry, b"not a cache entry at all").unwrap();
    let mut cold = ResultStore::new(cfg).unwrap();
    assert!(cold.get(digest).is_none(), "garbage entry must miss");
    assert_eq!(cold.counters().corrupt_evictions, 1);
    assert!(!entry.exists());

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The memory tier stays bounded and falls back to the disk tier for
/// evicted entries.
#[test]
fn lru_bound_holds_with_disk_backing() {
    let dir = temp_dir("lru");
    let cfg = StoreConfig {
        dir: Some(dir.clone()),
        mem_capacity: 4,
    };
    let mut store = ResultStore::new(cfg).unwrap();
    for n in 0..16u8 {
        store.insert(JobDigest([n; 16]), Arc::new(vec![n; 32]));
        assert!(store.mem_entries() <= 4, "memory tier exceeded its bound");
    }
    // An early entry was evicted from memory but survives on disk.
    let (payload, tier) = store.get(JobDigest([0; 16])).expect("disk backs the LRU");
    assert_eq!(tier, StoreTier::Disk);
    assert_eq!(*payload, vec![0u8; 32]);
    std::fs::remove_dir_all(&dir).unwrap();
}

//! Simulator-throughput baseline: measures cycles/second per kernel and
//! the wall-clock time of the full experiment suite, writing the
//! trajectory file `BENCH_sim_throughput.json` for future PRs to beat.
//!
//! ```text
//! cargo run --release -p gpusimpow-bench --bin perf_baseline \
//!     [--small|--full] [--threads N] [--check] [out.json]
//! ```
//!
//! The "suite" section times `report::generate` — the exact workload of
//! `run_all_experiments --small` (all eight stages) — sequentially
//! (`--threads 1`) and, when the machine has more than one CPU, again
//! with the requested pool. On a single-CPU host the second run would
//! time the identical serial execution, so it is skipped and the JSON
//! carries a note instead of a meaningless speedup. Simulated results
//! are bit-identical for any thread count — only wall time may differ.
//!
//! `--check` reads the committed `BENCH_sim_throughput.json` *before*
//! writing the new numbers and exits non-zero when the suite wall time
//! — or any dominant per-stage wall time — regressed by more than
//! 10 % — the CI performance gate. Stages under an absolute-noise
//! floor are exempt: a 0.002 s stage doubling to 0.005 s is scheduler
//! jitter, not a regression.

use std::fmt::Write as _;
use std::time::Instant;

use gpusimpow_bench::{cli, report};
use gpusimpow_isa::LaunchConfig;
use gpusimpow_kernels::{
    blackscholes::BlackScholes, matmul::MatrixMul, micro, vectoradd::VectorAdd, Benchmark,
};
use gpusimpow_sim::{Gpu, GpuConfig, SimPool};

/// Baseline file the `--check` gate compares against.
const BASELINE_PATH: &str = "BENCH_sim_throughput.json";

/// Monotonic schema version of the JSON this tool writes. Bump whenever
/// a field is added, removed or changes meaning, so downstream readers
/// of committed baselines can tell layouts apart. History: 1 = the
/// original layout (implicit, no version field); 2 = adds
/// `schema_version` and `git_commit`; 3 = adds per-stage suite wall
/// times (`suite.stages`) and the one-pass `sweep` comparison section;
/// 4 = the sweep section stops claiming a `speedup` on single-CPU
/// hosts (`speedup: null` plus `predecode_shared_wall_s`, the
/// predecode saving that is the only real difference there) and the
/// `--check` gate compares per-stage times, not just the suite total;
/// 5 = adds the `trace` section (capture wall vs plain live wall, a
/// replay-only sweep from one capture vs independent live runs, and
/// the encoded trace size), with the same single-CPU honesty rule as
/// v4: serial replay beats serial live runs by skipping the functional
/// layer, which is a per-member saving, never pool fan-out.
const SCHEMA_VERSION: u32 = 5;

/// Wall-time regression the gate tolerates (noise headroom).
const CHECK_TOLERANCE: f64 = 1.10;

/// Stages faster than this are exempt from the per-stage gate: at
/// millisecond scale the 10 % band is smaller than scheduler jitter.
const STAGE_FLOOR_S: f64 = 0.05;

/// One per-kernel throughput sample.
struct KernelSample {
    name: String,
    shader_cycles: u64,
    wall_s: f64,
}

fn sample_kernel(name: &str, cfg: GpuConfig, bench: &dyn Benchmark) -> KernelSample {
    // Warm-up run (page in code paths), then a timed run on a fresh GPU.
    let mut gpu = Gpu::new(cfg.clone()).expect("preset is valid");
    bench.run(&mut gpu).expect("benchmark verifies");
    let mut gpu = Gpu::new(cfg).expect("preset is valid");
    let start = Instant::now();
    let reports = bench.run(&mut gpu).expect("benchmark verifies");
    let wall_s = start.elapsed().as_secs_f64();
    KernelSample {
        name: name.to_string(),
        shader_cycles: reports.iter().map(|r| r.stats.shader_cycles).sum(),
        wall_s,
    }
}

/// Times one full report generation (the suite workload), returning
/// the total wall time and the per-stage breakdown.
fn suite_wall(pool: &SimPool, small: bool) -> (f64, Vec<report::StageTiming>) {
    let start = Instant::now();
    let (md, stages) = report::generate_timed(small, pool);
    assert!(md.contains("Table V"), "report generated completely");
    (start.elapsed().as_secs_f64(), stages)
}

/// Wall time of a one-pass two-config sweep (GT240 + GTX580, one
/// predecode shared across both) next to the same two launches run
/// independently back to back — the workload pattern of every
/// multi-config design-space question.
fn sweep_walls(pool: &SimPool) -> (f64, f64) {
    let kernel = micro::cluster_step_kernel(2048);
    let launch = LaunchConfig::linear(8, 128);
    let configs = [GpuConfig::gt240(), GpuConfig::gtx580()];

    // Warm-up both code paths.
    for cfg in &configs {
        let mut gpu = Gpu::new(cfg.clone()).expect("preset is valid");
        gpu.launch(&kernel, launch).expect("kernel runs");
    }
    pool.run_sweep(&kernel, &configs, |_, _| Ok(launch));

    let start = Instant::now();
    for r in pool.run_sweep(&kernel, &configs, |_, _| Ok(launch)) {
        r.expect("sweep member runs");
    }
    let sweep_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    for cfg in &configs {
        let mut gpu = Gpu::new(cfg.clone()).expect("preset is valid");
        gpu.launch(&kernel, launch).expect("kernel runs");
    }
    let independent_s = start.elapsed().as_secs_f64();
    (sweep_s, independent_s)
}

/// Walls of the trace frontend (schema v5): capture wall next to a
/// plain live wall (the capture tax), then a replay-only two-config
/// sweep from that single capture next to the same two launches run
/// live and independently (the workload of "re-price this captured
/// workload on N chips"). Returns `(live_s, capture_s, replay_sweep_s,
/// live_independent_s, trace_bytes)`.
fn trace_walls(pool: &SimPool) -> (f64, f64, f64, f64, usize) {
    let kernel = micro::cluster_step_kernel(2048);
    let launch = LaunchConfig::linear(8, 128);
    let configs = [GpuConfig::gt240(), GpuConfig::gtx580()];

    // Warm-up all three code paths.
    let mut gpu = Gpu::new(GpuConfig::gt240()).expect("preset is valid");
    let (_, trace) = gpu.launch_traced(&kernel, launch).expect("kernel captures");
    pool.run_sweep_replay(&trace, &configs, |_, _| Ok(()));

    let start = Instant::now();
    let mut gpu = Gpu::new(GpuConfig::gt240()).expect("preset is valid");
    gpu.launch(&kernel, launch).expect("kernel runs");
    let live_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut gpu = Gpu::new(GpuConfig::gt240()).expect("preset is valid");
    let (_, trace) = gpu.launch_traced(&kernel, launch).expect("kernel captures");
    let capture_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    for r in pool.run_sweep_replay(&trace, &configs, |_, _| Ok(())) {
        r.expect("sweep member replays");
    }
    let replay_sweep_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    for cfg in &configs {
        let mut gpu = Gpu::new(cfg.clone()).expect("preset is valid");
        gpu.launch(&kernel, launch).expect("kernel runs");
    }
    let live_independent_s = start.elapsed().as_secs_f64();

    (
        live_s,
        capture_s,
        replay_sweep_s,
        live_independent_s,
        trace.encode().len(),
    )
}

/// The commit this baseline was measured at, for provenance when
/// comparing committed BENCH files across history.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Pulls `"key": <number>` out of the hand-rolled baseline JSON.
fn json_number(json: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let rest = &json[json.find(&tag)? + tag.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pulls the `wall_s` of one named suite stage out of the baseline
/// JSON. Stage entries are written on one line each, so the first
/// `"wall_s"` after the exact name tag belongs to that stage (plain
/// `json_number` would always hit the first stage in the file).
fn stage_wall_s(json: &str, stage: &str) -> Option<f64> {
    let tag = format!("{{\"name\": \"{stage}\",");
    json_number(&json[json.find(&tag)?..], "wall_s")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = !args.iter().any(|a| a == "--full");
    let check = args.iter().any(|a| a == "--check");
    let pool = cli::pool_from_args(&args);
    let out_path = {
        let mut out = BASELINE_PATH.to_string();
        let mut i = 1;
        while i < args.len() {
            if args[i] == "--threads" {
                i += 2;
            } else if args[i].starts_with("--") {
                i += 1;
            } else {
                out = args[i].clone();
                break;
            }
        }
        out
    };
    // Read the committed baseline before we may overwrite it below.
    let baseline = if check {
        Some(std::fs::read_to_string(BASELINE_PATH).expect("--check needs a committed baseline"))
    } else {
        None
    };

    eprintln!("[1/5] per-kernel throughput");
    let samples = [
        sample_kernel(
            "vectoradd-2048-gt240",
            GpuConfig::gt240(),
            &VectorAdd { n: 2048 },
        ),
        sample_kernel("matmul-32-gt240", GpuConfig::gt240(), &MatrixMul { n: 32 }),
        sample_kernel(
            "matmul-32-gtx580",
            GpuConfig::gtx580(),
            &MatrixMul { n: 32 },
        ),
        sample_kernel(
            "blackscholes-gt240",
            GpuConfig::gt240(),
            &BlackScholes::default(),
        ),
    ];

    let machine = gpusimpow_sim::parallel::available_threads();
    eprintln!("[2/5] experiment suite, sequential");
    let (sequential_s, stages) = suite_wall(&SimPool::new(1), small);
    let parallel_s = if machine > 1 {
        eprintln!("[3/5] experiment suite, {} threads", pool.threads());
        Some(suite_wall(&pool, small).0)
    } else {
        eprintln!("[3/5] single-CPU host: skipping the parallel comparison");
        None
    };
    eprintln!("[4/5] one-pass sweep vs independent runs");
    let (sweep_s, independent_s) = sweep_walls(&pool);
    eprintln!("[5/5] trace capture + replay-only sweep");
    let (live_s, capture_s, replay_sweep_s, live_independent_s, trace_bytes) = trace_walls(&pool);

    // Hand-rolled JSON: the offline workspace vendors no serializer.
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"generated_by\": \"perf_baseline\",");
    let _ = writeln!(json, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(json, "  \"git_commit\": \"{}\",", git_commit());
    let _ = writeln!(json, "  \"machine_threads\": {machine},");
    json.push_str("  \"kernels\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"shader_cycles\": {}, \"wall_s\": {:.6}, \
             \"cycles_per_sec\": {:.0}}}{}",
            s.name,
            s.shader_cycles,
            s.wall_s,
            s.shader_cycles as f64 / s.wall_s.max(1e-9),
            if i + 1 < samples.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"suite\": {\n");
    let _ = writeln!(
        json,
        "    \"name\": \"run_all_experiments{} (all 8 stages)\",",
        if small { " --small" } else { "" }
    );
    let _ = writeln!(json, "    \"available_parallelism\": {machine},");
    let _ = writeln!(json, "    \"threads\": {},", pool.threads());
    let _ = writeln!(json, "    \"sequential_wall_s\": {sequential_s:.3},");
    // Per-stage breakdown of the sequential run (schema v3): the
    // fig4/fig6 simulation stages dominate, so speedup claims are
    // checked against these, not the suite total.
    json.push_str("    \"stages\": [\n");
    for (i, s) in stages.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"name\": \"{}\", \"wall_s\": {:.3}}}{}",
            s.name,
            s.wall_s,
            if i + 1 < stages.len() { "," } else { "" }
        );
    }
    json.push_str("    ],\n");
    match parallel_s {
        Some(p) => {
            let _ = writeln!(json, "    \"parallel_wall_s\": {p:.3},");
            let _ = writeln!(json, "    \"speedup\": {:.3}", sequential_s / p.max(1e-9));
        }
        None => {
            let _ = writeln!(
                json,
                "    \"comparison\": \"skipped: single-CPU host (available_parallelism = 1)\""
            );
        }
    }
    json.push_str("  },\n");
    // One-pass sweep vs independent runs (schema v3). On a multi-core
    // host the sweep also fans members across the pool, which is where
    // the headline speedup comes from; on a single CPU both sides run
    // serially and only the shared predecode differs, so the numbers
    // are reported with a note instead of a parallel claim.
    json.push_str("  \"sweep\": {\n");
    let _ = writeln!(
        json,
        "    \"name\": \"one-pass GT240+GTX580 cluster_step sweep vs two independent runs\","
    );
    let _ = writeln!(json, "    \"threads\": {},", pool.threads());
    let _ = writeln!(json, "    \"sweep_wall_s\": {sweep_s:.3},");
    let _ = writeln!(json, "    \"independent_wall_s\": {independent_s:.3},");
    if machine > 1 {
        let _ = writeln!(
            json,
            "    \"speedup\": {:.3}",
            independent_s / sweep_s.max(1e-9)
        );
    } else {
        // Serial sweep vs serial independent runs differ only by the
        // shared predecode — calling that difference a "speedup" (as
        // schema ≤ 3 did) misread predecode reuse as pool fan-out.
        let _ = writeln!(
            json,
            "    \"predecode_shared_wall_s\": {:.3},",
            (independent_s - sweep_s).max(0.0)
        );
        json.push_str("    \"speedup\": null,\n");
        let _ = writeln!(
            json,
            "    \"note\": \"single-CPU host (available_parallelism = 1): sweep members \
             ran serially, so the delta is the shared predecode, not pool fan-out\""
        );
    }
    json.push_str("  },\n");
    // Trace frontend (schema v5): the capture tax on a live run, and a
    // replay-only sweep from one capture against independent live runs.
    // The same honesty rule as the sweep section applies: on one CPU
    // the replay advantage is the skipped functional layer (register
    // gather/eval/scatter and memory contents) plus the shared decode,
    // reported as a per-member ratio, never as pool fan-out.
    json.push_str("  \"trace\": {\n");
    let _ = writeln!(
        json,
        "    \"name\": \"GT240 cluster_step capture + replay-only GT240+GTX580 sweep\","
    );
    let _ = writeln!(json, "    \"threads\": {},", pool.threads());
    let _ = writeln!(json, "    \"live_wall_s\": {live_s:.3},");
    let _ = writeln!(json, "    \"capture_wall_s\": {capture_s:.3},");
    let _ = writeln!(json, "    \"replay_sweep_wall_s\": {replay_sweep_s:.3},");
    let _ = writeln!(
        json,
        "    \"live_independent_wall_s\": {live_independent_s:.3},"
    );
    let _ = writeln!(json, "    \"trace_bytes\": {trace_bytes},");
    if machine > 1 {
        let _ = writeln!(
            json,
            "    \"replay_speedup\": {:.3}",
            live_independent_s / replay_sweep_s.max(1e-9)
        );
    } else {
        let _ = writeln!(
            json,
            "    \"serial_replay_ratio\": {:.3},",
            live_independent_s / replay_sweep_s.max(1e-9)
        );
        let _ = writeln!(
            json,
            "    \"note\": \"single-CPU host (available_parallelism = 1): members replayed \
             serially, so the ratio is the skipped functional layer plus the shared decode, \
             not pool fan-out\""
        );
    }
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).expect("write throughput json");
    eprintln!("wrote {out_path}");
    print!("{json}");

    if let Some(baseline) = baseline {
        let mut failed = false;
        let base = json_number(&baseline, "sequential_wall_s")
            .expect("baseline has a suite sequential_wall_s");
        let limit = base * CHECK_TOLERANCE;
        eprintln!("check: suite {sequential_s:.3}s vs baseline {base:.3}s (limit {limit:.3}s)");
        if sequential_s > limit {
            eprintln!("check: FAIL — suite wall time regressed more than 10%");
            failed = true;
        }
        // Per-stage gate (schema v4): a regression in one dominant
        // stage (Fig. 4, Fig. 6 + Table V) must not hide inside the
        // suite total's noise band. Stages missing from an older
        // baseline, or under the absolute floor, are skipped.
        for s in &stages {
            let Some(b) = stage_wall_s(&baseline, s.name) else {
                continue;
            };
            if b < STAGE_FLOOR_S {
                continue;
            }
            let stage_limit = b * CHECK_TOLERANCE;
            eprintln!(
                "check: stage \"{}\" {:.3}s vs baseline {:.3}s (limit {:.3}s)",
                s.name, s.wall_s, b, stage_limit
            );
            if s.wall_s > stage_limit {
                eprintln!("check: FAIL — stage \"{}\" regressed more than 10%", s.name);
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("check: OK");
    }
}

//! Phase-discipline lints for the two-phase parallel engine.
//!
//! The parallel engine's correctness argument (DESIGN.md §18,
//! `crates/sim/src/parallel.rs`) is phase separation: during the
//! *compute* phase every core runs `Core::tick` against a shared
//! **read-only** [`GpuMemory`] snapshot and buffers its global stores;
//! the *commit* phase then applies those buffers serially through
//! `Core::commit_stores`. Any mutation of shared state from inside the
//! compute phase — however synchronised — re-introduces
//! interleaving-dependent results, which the engine's serial/parallel
//! equivalence tests would catch only for the schedules they happen to
//! run. These passes make the contract structural:
//!
//! * [`PHASE_MUT_MEMORY`]: a function reachable from the compute phase
//!   must not take `&mut GpuMemory`. Only the commit API
//!   ([`COMMIT_API`]) may; it must not itself be compute-reachable.
//! * [`PHASE_INTERIOR_MUT`]: compute-reachable code must not touch
//!   interior mutability — `Cell`/`RefCell`/`Mutex`/`RwLock`/
//!   `UnsafeCell`/atomics, whether named directly, taken as a
//!   parameter, or read via a unit-level `static`. Mutation through a
//!   shared reference is exactly what phase separation exists to
//!   exclude. (The engine's own worker plumbing in `parallel.rs` is
//!   outside the compute-reachable set: workers are driven *around*
//!   the phases, not from inside `tick`.)
//! * [`PHASE_COMMIT_API`]: no compute-reachable function may call the
//!   commit API. Commits are driven by the engine between phases; a
//!   tick-path commit would write to memory other cores are reading.
//!
//! The analysis is cross-file over the compute unit —
//! `crates/sim/src/{core,func,ldst,wheel,parallel}.rs` — because the
//! tick path criss-crosses those files. Roots are the functions named
//! `tick`; reachability follows call and method names within the unit
//! (collisions over-approximate, so the failure mode is a justified
//! allow, not a hole). Test items are exempt. Findings are
//! allow-filtered against the file they land in, like every per-file
//! pass.

use std::collections::{BTreeMap, BTreeSet};

use crate::syntax::{Expr, Item, ItemKind, Stmt};
use crate::{Diagnostic, SourceFile};

/// `&mut GpuMemory` in a compute-phase signature.
pub const PHASE_MUT_MEMORY: &str = "phase_mut_memory";
/// Interior mutability reached from the compute phase.
pub const PHASE_INTERIOR_MUT: &str = "phase_interior_mut";
/// Compute-phase call into the commit API.
pub const PHASE_COMMIT_API: &str = "phase_commit_api";

/// The one function allowed to take `&mut GpuMemory`: the serial
/// commit entry point.
pub const COMMIT_API: &str = "commit_stores";

/// Compute-phase root functions.
const ROOTS: &[&str] = &["tick"];

/// Interior-mutability type names.
const INTERIOR_TYPES: &[&str] = &[
    "Cell",
    "RefCell",
    "Mutex",
    "RwLock",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "LazyLock",
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

/// The files forming the compute unit the tick path runs through.
pub fn scope(rel_path: &str) -> bool {
    matches!(
        rel_path,
        "crates/sim/src/core.rs"
            | "crates/sim/src/func.rs"
            | "crates/sim/src/ldst.rs"
            | "crates/sim/src/wheel.rs"
            | "crates/sim/src/parallel.rs"
    )
}

fn is_interior_type(tokens: &[String]) -> bool {
    tokens.iter().any(|t| INTERIOR_TYPES.contains(&t.as_str()))
}

/// One function of the unit.
struct FnNode<'a> {
    file: usize,
    item: &'a Item,
    in_test: bool,
}

fn collect<'a>(
    file_idx: usize,
    items: &'a [Item],
    in_test: bool,
    fns: &mut Vec<FnNode<'a>>,
    statics: &mut BTreeMap<String, bool>,
) {
    for item in items {
        let in_test = in_test || item.is_test_only();
        match item.kind {
            ItemKind::Fn => fns.push(FnNode {
                file: file_idx,
                item,
                in_test,
            }),
            ItemKind::Const => {
                if let Some(name) = &item.name {
                    let mut interior = is_interior_type(&item.ty);
                    if let Some(init) = &item.init {
                        init.walk(&mut |e| {
                            if let Expr::Path { segs, .. } = e {
                                if is_interior_type(segs) {
                                    interior = true;
                                }
                            }
                        });
                    }
                    statics
                        .entry(name.clone())
                        .and_modify(|v| *v = *v || interior)
                        .or_insert(interior);
                }
            }
            _ => {}
        }
        collect(file_idx, &item.children, in_test, fns, statics);
        if let Some(body) = &item.body {
            let mut nested = Vec::new();
            body.walk_stmts(&mut |stmt| {
                if let Stmt::Item(it) = stmt {
                    nested.push(it);
                }
            });
            for it in nested {
                collect(file_idx, std::slice::from_ref(it), in_test, fns, statics);
            }
        }
    }
}

/// Names bound locally inside `item`: parameters, `let` bindings,
/// closure parameters, and `match`-pattern identifiers. A bare path
/// mention of one of these is a variable read, not a function edge.
fn bound_names(item: &Item) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    if let Some(sig) = &item.sig {
        for p in &sig.params {
            out.insert(p.name.clone());
        }
    }
    if let Some(body) = &item.body {
        body.walk_stmts(&mut |stmt| {
            if let Stmt::Let { names, .. } = stmt {
                out.extend(names.iter().cloned());
            }
        });
        body.walk_exprs(&mut |e| match e {
            Expr::Closure { params, .. } => out.extend(params.iter().cloned()),
            Expr::Match { arms, .. } => {
                for arm in arms {
                    out.extend(
                        arm.pat
                            .iter()
                            .filter(|t| t.starts_with(|c: char| c.is_lowercase() || c == '_'))
                            .cloned(),
                    );
                }
            }
            _ => {}
        });
    }
    out
}

/// Called or referenced function names in `item`'s body. Bare path
/// mentions count as edges too — the tick path passes lane kernels as
/// function values (`ternary!(.., func::eval_ffma_lanes)`), and a
/// reference that never runs only over-approximates. Single-segment
/// mentions of locally-bound names are variable reads and are dropped;
/// resolution against the unit's own `fn` table keeps variant and
/// constant paths from adding noise.
fn callees(item: &Item) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let Some(body) = &item.body else {
        return out;
    };
    let bound = bound_names(item);
    body.walk_exprs(&mut |e| match e {
        Expr::MethodCall { method, .. } => {
            out.insert(method.clone());
        }
        Expr::Path { segs, .. } => {
            if let Some(last) = segs.last() {
                if segs.len() > 1 || !bound.contains(last) {
                    out.insert(last.clone());
                }
            }
        }
        _ => {}
    });
    out
}

/// Cross-checks the compute unit. `files` are the in-scope sources in
/// any order; findings are already allow-filtered per file.
pub fn check(files: &[&SourceFile]) -> Vec<Diagnostic> {
    let mut fns: Vec<FnNode<'_>> = Vec::new();
    let mut statics: BTreeMap<String, bool> = BTreeMap::new();
    for (idx, file) in files.iter().enumerate() {
        collect(idx, &file.ast.items, false, &mut fns, &mut statics);
    }

    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, node) in fns.iter().enumerate() {
        if let Some(name) = node.item.name.as_deref() {
            by_name.entry(name).or_default().push(i);
        }
    }

    // Reachability from the tick roots. The commit API is deliberately
    // not traversed even if referenced: its body is the one place
    // `&mut GpuMemory` is legal, and the *call* is flagged separately.
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    let mut queue: Vec<usize> = Vec::new();
    for (i, node) in fns.iter().enumerate() {
        if !node.in_test
            && node
                .item
                .name
                .as_deref()
                .is_some_and(|n| ROOTS.contains(&n))
        {
            seen.insert(i);
            queue.push(i);
        }
    }
    while let Some(i) = queue.pop() {
        for name in callees(fns[i].item) {
            if name == COMMIT_API {
                continue;
            }
            for &j in by_name.get(name.as_str()).into_iter().flatten() {
                if !fns[j].in_test && seen.insert(j) {
                    queue.push(j);
                }
            }
        }
    }

    let mut out = Vec::new();
    for i in seen {
        let node = &fns[i];
        let file = files[node.file];
        let item = node.item;
        let fn_name = item.name.as_deref().unwrap_or("_");
        let mut raw: Vec<Diagnostic> = Vec::new();

        if let Some(sig) = &item.sig {
            for p in &sig.params {
                let mutable = p.ty.iter().any(|t| t == "mut");
                if mutable && p.ty.iter().any(|t| t == "GpuMemory") && fn_name != COMMIT_API {
                    raw.push(file.diag(
                        p.line,
                        PHASE_MUT_MEMORY,
                        format!(
                            "compute-phase function `{fn_name}` takes `&mut GpuMemory`; \
                             the tick path reads a shared snapshot — buffer stores and \
                             apply them in `{COMMIT_API}` during the commit phase"
                        ),
                    ));
                }
            }
        }

        if let Some(body) = &item.body {
            // One interior-mutability finding per fn: the first
            // mention (directly named type, interior-typed parameter,
            // or unit-level interior static read by name).
            let mut interior_line: Option<u32> = None;
            if let Some(sig) = &item.sig {
                for p in &sig.params {
                    if is_interior_type(&p.ty) && interior_line.is_none() {
                        interior_line = Some(p.line);
                    }
                }
            }
            body.walk_exprs(&mut |e| {
                if interior_line.is_some() {
                    return;
                }
                if let Expr::Path { segs, line } = e {
                    if is_interior_type(segs)
                        || (segs.len() == 1 && statics.get(&segs[0]).copied().unwrap_or(false))
                    {
                        interior_line = Some(*line);
                    }
                }
            });
            if let Some(line) = interior_line {
                raw.push(file.diag(
                    line,
                    PHASE_INTERIOR_MUT,
                    format!(
                        "compute-phase function `{fn_name}` reaches interior \
                         mutability; mutation through a shared reference during the \
                         compute phase makes results interleaving-dependent — move \
                         the state into the core or behind the commit phase"
                    ),
                ));
            }

            body.walk_exprs(&mut |e| {
                let called = match e {
                    Expr::MethodCall { method, line, .. } if method == COMMIT_API => Some(*line),
                    Expr::Call { callee, line, .. } => match &**callee {
                        Expr::Path { segs, .. } if segs.last().is_some_and(|s| s == COMMIT_API) => {
                            Some(*line)
                        }
                        _ => None,
                    },
                    _ => None,
                };
                if let Some(line) = called {
                    raw.push(file.diag(
                        line,
                        PHASE_COMMIT_API,
                        format!(
                            "`{COMMIT_API}` called from compute-phase function \
                             `{fn_name}`; commits run serially between phases — \
                             drive them from the engine loop, not the tick path"
                        ),
                    ));
                }
            });
        }

        out.extend(raw.into_iter().filter(|d| !file.allowed(d.lint, d.line)));
    }
    out
}

//! Microbenchmarks (paper §III-D and Fig. 4).
//!
//! * [`lfsr_kernel`] — the integer microbenchmark: unrolled linear
//!   feedback shift register steps, with a configurable number of
//!   enabled lanes per warp. Running it with 31 and 1 enabled lanes and
//!   differencing the energies isolates the per-lane integer-op energy
//!   (the paper measures ≈ 40 pJ).
//! * [`mandelbrot_kernel`] — the floating-point twin: fixed-iteration
//!   Mandelbrot steps (≈ 75 pJ per FP op in the paper's measurements).
//! * [`cluster_step_kernel`] — the Fig. 4 probe: a fixed-work block,
//!   launched with 1..=#cores blocks to expose the per-cluster and
//!   global-scheduler power steps.
//! * [`divergence_kernel`] / [`conflict_kernel`] — ablation probes for
//!   branch divergence and shared-memory bank conflicts.

use gpusimpow_isa::{CmpOp, Kernel, KernelBuilder, LaunchConfig, Operand, Reg, SpecialReg};

/// Threads per block used by the §III-D energy microbenchmarks
/// (the paper uses 512 threads per block).
pub const MICRO_THREADS: u32 = 512;

/// Builds the integer (LFSR) microbenchmark.
///
/// `enabled_lanes` of every warp execute `iterations × 16` unrolled LFSR
/// steps; the others skip the loop but stay resident, so runtime is
/// independent of `enabled_lanes` (the paper's trick for isolating
/// per-lane energy).
///
/// # Panics
///
/// Panics unless `1 <= enabled_lanes <= 32`.
pub fn lfsr_kernel(enabled_lanes: u32, iterations: u32) -> Kernel {
    assert!((1..=32).contains(&enabled_lanes));
    let mut k = KernelBuilder::new("micro_lfsr");
    let tid = Reg(0);
    k.s2r(tid, SpecialReg::TidX);
    let lane = Reg(1);
    k.iand(lane, tid, Operand::imm_u32(31));
    let active = Reg(2);
    k.isetp(CmpOp::Lt, active, lane, Operand::imm_u32(enabled_lanes));
    let state = Reg(3);
    k.iadd(state, tid, Operand::imm_u32(0xACE1));
    k.if_then(active, |k| {
        let i = Reg(4);
        let cond = Reg(5);
        let bit = Reg(6);
        let mask = Reg(7);
        k.for_range(
            i,
            cond,
            Operand::imm_u32(0),
            Operand::imm_u32(iterations),
            1,
            |k| {
                // 16 unrolled Fibonacci LFSR steps:
                // bit = lsb(state); state = (state >> 1) ^ (-bit & 0xB400)
                for _ in 0..16 {
                    k.iand(bit, state, Operand::imm_u32(1));
                    k.isub(mask, Operand::imm_u32(0), bit);
                    k.iand(mask, mask, Operand::imm_u32(0xB400));
                    k.shr(state, state, Operand::imm_u32(1));
                    k.ixor(state, state, mask);
                }
            },
        );
    });
    // Prevent the value from being architecturally dead: fold into a
    // store by thread 0 (one word of traffic).
    let is0 = Reg(8);
    k.isetp(CmpOp::Eq, is0, tid, Operand::imm_u32(0));
    k.if_then(is0, |k| {
        let sink = Reg(9);
        k.movi(sink, 16);
        k.st_global(state, sink, 0);
    });
    k.exit();
    k.build().expect("lfsr kernel is valid")
}

/// Builds the floating-point (Mandelbrot) microbenchmark: fixed-count
/// `z = z² + c` iterations without an escape test, so runtime does not
/// depend on the data.
///
/// # Panics
///
/// Panics unless `1 <= enabled_lanes <= 32`.
pub fn mandelbrot_kernel(enabled_lanes: u32, iterations: u32) -> Kernel {
    assert!((1..=32).contains(&enabled_lanes));
    let mut k = KernelBuilder::new("micro_mandelbrot");
    let tid = Reg(0);
    k.s2r(tid, SpecialReg::TidX);
    let lane = Reg(1);
    k.iand(lane, tid, Operand::imm_u32(31));
    let active = Reg(2);
    k.isetp(CmpOp::Lt, active, lane, Operand::imm_u32(enabled_lanes));
    // c derived from tid; z starts at 0.
    let cr = Reg(3);
    let ci = Reg(4);
    k.i2f(cr, tid);
    k.fmul(cr, cr, Operand::imm_f32(0.0004));
    k.fsub(cr, cr, Operand::imm_f32(0.7));
    k.fmul(ci, cr, Operand::imm_f32(0.5));
    let zr = Reg(5);
    let zi = Reg(6);
    k.movf(zr, 0.0);
    k.movf(zi, 0.0);
    k.if_then(active, |k| {
        let i = Reg(7);
        let cond = Reg(8);
        let zr2 = Reg(9);
        let t = Reg(10);
        k.for_range(
            i,
            cond,
            Operand::imm_u32(0),
            Operand::imm_u32(iterations),
            1,
            |k| {
                // Four unrolled complex-square-add steps (5 FP ops each).
                for _ in 0..4 {
                    // zr' = zr*zr - zi*zi + cr ; zi' = 2*zr*zi + ci
                    k.fmul(zr2, zr, zr);
                    k.ffma(t, zi, zi, Operand::imm_f32(0.0));
                    k.fsub(zr2, zr2, t);
                    k.fadd(zr2, zr2, cr);
                    k.fmul(t, zr, zi);
                    k.ffma(zi, t, Operand::imm_f32(2.0), ci);
                    k.mov(zr, zr2);
                }
            },
        );
    });
    let is0 = Reg(11);
    k.isetp(CmpOp::Eq, is0, tid, Operand::imm_u32(0));
    k.if_then(is0, |k| {
        let sink = Reg(12);
        k.movi(sink, 16);
        k.st_global(zr, sink, 0);
    });
    k.exit();
    k.build().expect("mandelbrot kernel is valid")
}

/// Builds the Fig. 4 cluster-activation probe: each block spins on a
/// fixed amount of mixed INT/FP work, so total power steps with the
/// number of clusters/cores the scheduler activates.
pub fn cluster_step_kernel(iterations: u32) -> Kernel {
    let mut k = KernelBuilder::new("cluster_step");
    let tid = Reg(0);
    k.s2r(tid, SpecialReg::TidX);
    let x = Reg(1);
    k.i2f(x, tid);
    let acc = Reg(2);
    k.movf(acc, 1.0);
    let s = Reg(3);
    k.iadd(s, tid, Operand::imm_u32(1));
    let i = Reg(4);
    let cond = Reg(5);
    k.for_range(
        i,
        cond,
        Operand::imm_u32(0),
        Operand::imm_u32(iterations),
        1,
        |k| {
            for _ in 0..4 {
                k.ffma(acc, acc, Operand::imm_f32(1.0001), x);
                k.imad(
                    s,
                    s,
                    Operand::imm_u32(1664525),
                    Operand::imm_u32(1013904223),
                );
            }
        },
    );
    let is0 = Reg(6);
    k.isetp(CmpOp::Eq, is0, tid, Operand::imm_u32(0));
    k.if_then(is0, |k| {
        let sink = Reg(7);
        k.movi(sink, 16);
        k.st_global(s, sink, 0);
        k.st_global(acc, sink, 4);
    });
    k.exit();
    k.build().expect("cluster step kernel is valid")
}

/// Launch configuration for the §III-D microbenchmarks: one block per
/// core (the paper launches "one thread block for each core" with 512
/// threads).
pub fn micro_launch(cores: u32) -> LaunchConfig {
    LaunchConfig::linear(cores, MICRO_THREADS)
}

/// Ablation probe: every warp diverges `depth` levels deep.
pub fn divergence_kernel(depth: u32) -> Kernel {
    assert!((1..=5).contains(&depth));
    let mut k = KernelBuilder::new("micro_divergence");
    let tid = Reg(0);
    k.s2r(tid, SpecialReg::TidX);
    let acc = Reg(1);
    k.mov(acc, tid);
    fn nest(k: &mut KernelBuilder, level: u32, depth: u32, tid: Reg, acc: Reg) {
        if level == depth {
            for _ in 0..8 {
                k.imad(acc, acc, Operand::imm_u32(7), Operand::imm_u32(3));
            }
            return;
        }
        let p = Reg((10 + level) as u8);
        let bit = Reg(20);
        k.shr(bit, tid, Operand::imm_u32(level));
        k.iand(bit, bit, Operand::imm_u32(1));
        k.isetp(CmpOp::Ne, p, bit, Operand::imm_u32(0));
        k.if_then_else(
            p,
            |k| nest(k, level + 1, depth, tid, acc),
            |k| nest(k, level + 1, depth, tid, acc),
        );
    }
    nest(&mut k, 0, depth, tid, acc);
    let is0 = Reg(2);
    k.isetp(CmpOp::Eq, is0, tid, Operand::imm_u32(0));
    k.if_then(is0, |k| {
        let sink = Reg(3);
        k.movi(sink, 16);
        k.st_global(acc, sink, 0);
    });
    k.exit();
    k.build().expect("divergence kernel is valid")
}

/// Ablation probe: shared-memory accesses with a configurable stride —
/// stride 1 is conflict-free, larger power-of-two strides serialize.
pub fn conflict_kernel(stride: u32, iterations: u32) -> Kernel {
    assert!(stride >= 1);
    let mut k = KernelBuilder::new("micro_conflict");
    let smem = k.alloc_smem(32 * stride.max(1) * 4 + 4);
    let tid = Reg(0);
    k.s2r(tid, SpecialReg::TidX);
    let addr = Reg(1);
    k.imul(addr, tid, Operand::imm_u32(stride * 4));
    k.iadd(addr, addr, Operand::imm_u32(smem));
    let v = Reg(2);
    k.mov(v, tid);
    k.st_shared(v, addr, 0);
    let i = Reg(3);
    let cond = Reg(4);
    k.for_range(
        i,
        cond,
        Operand::imm_u32(0),
        Operand::imm_u32(iterations),
        1,
        |k| {
            k.ld_shared(v, addr, 0);
            k.iadd(v, v, Operand::imm_u32(1));
            k.st_shared(v, addr, 0);
        },
    );
    k.exit();
    k.build().expect("conflict kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusimpow_sim::{config::GpuConfig, gpu::Gpu};

    #[test]
    fn lfsr_runtime_independent_of_enabled_lanes() {
        let mut gpu = Gpu::new(GpuConfig::gt240()).unwrap();
        let k31 = lfsr_kernel(31, 16);
        let k01 = lfsr_kernel(1, 16);
        let r31 = gpu.launch(&k31, micro_launch(12)).unwrap();
        let r01 = gpu.launch(&k01, micro_launch(12)).unwrap();
        // Same dynamic warp-instruction count and (nearly) equal runtime.
        assert_eq!(r31.stats.warp_instructions, r01.stats.warp_instructions);
        let dc = r31.stats.shader_cycles as f64 / r01.stats.shader_cycles as f64;
        assert!((0.95..1.05).contains(&dc), "cycle ratio {dc}");
        // But 31x the lane-level integer work in the loop.
        assert!(r31.stats.int_lane_ops > 20 * r01.stats.int_lane_ops);
    }

    #[test]
    fn mandelbrot_is_fp_dominated() {
        let mut gpu = Gpu::new(GpuConfig::gt240()).unwrap();
        let k = mandelbrot_kernel(31, 16);
        let r = gpu.launch(&k, micro_launch(12)).unwrap();
        assert!(r.stats.fp_lane_ops > r.stats.int_lane_ops);
    }

    #[test]
    fn cluster_step_scales_with_blocks() {
        let mut gpu = Gpu::new(GpuConfig::gt240()).unwrap();
        let k = cluster_step_kernel(64);
        let r1 = gpu.launch(&k, LaunchConfig::linear(1, 256)).unwrap();
        let r4 = gpu.launch(&k, LaunchConfig::linear(4, 256)).unwrap();
        assert_eq!(r1.stats.peak_clusters_busy, 1);
        assert_eq!(r4.stats.peak_clusters_busy, 4);
        // Same wall time: blocks run in parallel on different cores.
        let ratio = r4.stats.shader_cycles as f64 / r1.stats.shader_cycles as f64;
        assert!(ratio < 1.3, "blocks parallelize, ratio {ratio}");
    }

    #[test]
    fn divergence_kernel_diverges() {
        let mut gpu = Gpu::new(GpuConfig::gt240()).unwrap();
        let k = divergence_kernel(3);
        let r = gpu.launch(&k, LaunchConfig::linear(1, 64)).unwrap();
        // Depth 3 yields 1 + 2 + 4 = 7 divergent branches per warp.
        assert!(r.stats.divergent_branches >= 2 * 7);
    }

    #[test]
    fn conflict_stride_costs_cycles() {
        let mut gpu = Gpu::new(GpuConfig::gt240()).unwrap();
        // 16 lanes over the GT240's 16 banks: stride 1 is conflict-free.
        let k1 = conflict_kernel(1, 32);
        let k16 = conflict_kernel(16, 32);
        let r1 = gpu.launch(&k1, LaunchConfig::linear(1, 16)).unwrap();
        let r16 = gpu.launch(&k16, LaunchConfig::linear(1, 16)).unwrap();
        assert_eq!(r1.stats.smem_bank_conflict_cycles, 0);
        assert!(r16.stats.smem_bank_conflict_cycles > 0);
        assert!(r16.stats.shader_cycles > r1.stats.shader_cycles);
    }
}

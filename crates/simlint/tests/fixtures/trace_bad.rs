// Fixture: everything the trace crate must never do — an order-
// randomised stream index, wall-clock capture timing, and raw f64
// math on an unwrapped unit value feeding a trace record.
use std::collections::HashMap;
use std::time::Instant;

use gpusimpow_tech::units::Time;

fn index_streams(streams: &[(u32, u32)]) -> HashMap<(u32, u32), usize> {
    let start = Instant::now();
    let mut index = HashMap::new();
    for (i, key) in streams.iter().enumerate() {
        index.insert(*key, i);
    }
    let _ = start.elapsed();
    index
}

fn window_cost(window: Time) -> f64 {
    window.seconds() * 2.0
}

// Fixture: justified suppressions — above the line with a wrapped
// reason, and trailing on the same line.
fn run() {
    // simlint: allow(nondeterministic_collection): keyed access only;
    // this map is never iterated, so hash ordering cannot reach results.
    let m: HashMap<u32, u32> = HashMap::new();
    let t0 = Instant::now(); // simlint: allow(wall_clock): fixture demo of trailing markers
    let _ = (m, t0);
}

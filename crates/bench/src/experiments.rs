//! The experiment implementations, one per paper table/figure.

use gpusimpow::{validate_suite, Simulator, ValidationSummary};
use gpusimpow_isa::LaunchConfig;
use gpusimpow_kernels::micro;
use gpusimpow_measure::{per_op_energy, static_est, KernelExec, Testbed};
use gpusimpow_power::GpuChip;
use gpusimpow_sim::{Gpu, GpuConfig, SimPool};

/// Default seed fixing the virtual board's systematic errors.
pub const BOARD_SEED: u64 = 0x1597;

/// The GT240 full-occupancy probe — `cluster_step_kernel(1500)` on 12
/// blocks of 256 threads — is launched by Fig. 4 (its last point),
/// Table IV and the §IV-B static estimation. The simulator is
/// deterministic and the probe touches no persistent device state, so
/// the launch is simulated once and the report shared; every consumer
/// sees bit-identical numbers.
fn gt240_probe_report() -> &'static gpusimpow_sim::LaunchReport {
    use std::sync::OnceLock;
    static REPORT: OnceLock<gpusimpow_sim::LaunchReport> = OnceLock::new();
    REPORT.get_or_init(|| {
        let mut gpu = Gpu::new(GpuConfig::gt240()).expect("preset is valid");
        gpu.launch(
            &micro::cluster_step_kernel(1500),
            LaunchConfig::linear(12, 256),
        )
        .expect("probe kernel runs")
    })
}

/// One Fig. 4 data point.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Point {
    /// Thread blocks launched.
    pub blocks: u32,
    /// Measured card power (W).
    pub measured_w: f64,
    /// Increment over the previous point (W).
    pub delta_w: f64,
    /// Clusters the scheduler activated.
    pub clusters_active: usize,
}

/// Fig. 4: power of the GT240 running the same kernel with an
/// increasing number of thread blocks, measured on the testbed.
///
/// The staircase is one kernel under twelve launch geometries, so it
/// runs as a one-pass sweep ([`SimPool::run_sweep`]): the probe kernel
/// is decoded once and every point launches against the shared table on
/// a fresh `Gpu`, fanned out over `pool`. The full-occupancy point
/// reuses the memoized static-power probe shared with Table IV and
/// §IV-B. The stateful testbed measurement replays the reports serially
/// in block order, keeping the measurement-chain noise sequence — and
/// therefore every emitted number — identical for any thread count.
///
/// # Panics
///
/// Panics if the simulator rejects the probe kernel.
pub fn fig4_cluster_power(seed: u64, pool: &SimPool) -> Vec<Fig4Point> {
    let cfg = GpuConfig::gt240();
    let mut testbed = Testbed::new(cfg.clone(), seed);
    let kernel = micro::cluster_step_kernel(1500);
    // Full occupancy (the last point) is the shared static-power probe;
    // the remaining points share one decode through the sweep driver.
    let sweep_configs = vec![GpuConfig::gt240(); cfg.total_cores() - 1];
    let mut reports: Vec<_> = pool
        .run_sweep(&kernel, &sweep_configs, |idx, _gpu| {
            Ok(LaunchConfig::linear(idx as u32 + 1, 256))
        })
        .into_iter()
        .map(|r| r.expect("probe kernel runs"))
        .collect();
    reports.push(gt240_probe_report().clone());
    let mut points = Vec::new();
    let mut prev = 0.0;
    for (i, report) in reports.iter().enumerate() {
        let blocks = i as u32 + 1;
        let m = &testbed.measure(&[KernelExec::from_report(report)])[0];
        let w = m.avg_power.watts();
        points.push(Fig4Point {
            blocks,
            measured_w: w,
            delta_w: if blocks == 1 { 0.0 } else { w - prev },
            clusters_active: report.stats.peak_clusters_busy,
        });
        prev = w;
    }
    points
}

/// One Table IV row.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// GPU name.
    pub gpu: String,
    /// Simulated chip static power (W).
    pub sim_static_w: f64,
    /// Hardware static estimate via the §IV-B methodology (W).
    pub hw_static_w: f64,
    /// Which estimation method produced it.
    pub method: &'static str,
    /// Simulated die area (mm²).
    pub sim_area_mm2: f64,
    /// Paper's values for reference: (sim static, real static, sim area, real area).
    pub paper: (f64, f64, f64, f64),
}

/// Table IV: static power and area for both GPUs, with the hardware side
/// estimated through the paper's §IV-B methods on the virtual testbed.
pub fn table4_static_area(seed: u64) -> Vec<Table4Row> {
    // GT240: clock extrapolation.
    let gt_cfg = GpuConfig::gt240();
    let gt_chip = GpuChip::new(&gt_cfg).expect("chip builds");
    let report = gt240_probe_report();
    let mut gt_tb = Testbed::new(gt_cfg.clone(), seed);
    let exec = KernelExec::from_report(report);
    let extrapolation = static_est::estimate_by_clock_scaling(&mut gt_tb, &exec);
    let gt_between = gt_tb.measure_state(
        gt_tb.hardware().pre_kernel_power(),
        gpusimpow_tech::units::Time::from_millis(60.0),
    );
    let ratio = static_est::static_to_idle_ratio(extrapolation.static_estimate, gt_between);

    // GTX580: idle-ratio method with the GT240-derived ratio (the
    // NVIDIA Linux driver cannot change its clocks, §IV-B).
    let gtx_cfg = GpuConfig::gtx580();
    let gtx_chip = GpuChip::new(&gtx_cfg).expect("chip builds");
    let mut gtx_tb = Testbed::new(gtx_cfg.clone(), seed.wrapping_add(1));
    let gtx_static = static_est::estimate_by_idle_ratio(&mut gtx_tb, ratio);

    vec![
        Table4Row {
            gpu: "GT240".to_string(),
            sim_static_w: gt_chip.static_power().watts(),
            hw_static_w: extrapolation.static_estimate.watts(),
            method: "0 Hz clock extrapolation",
            sim_area_mm2: gt_chip.area().mm2(),
            paper: (17.9, 17.6, 105.0, 133.0),
        },
        Table4Row {
            gpu: "GTX580".to_string(),
            sim_static_w: gtx_chip.static_power().watts(),
            hw_static_w: gtx_static.watts(),
            method: "idle-ratio (GT240-calibrated)",
            sim_area_mm2: gtx_chip.area().mm2(),
            paper: (81.5, 80.0, 306.0, 520.0),
        },
    ]
}

/// Fig. 6: full-suite validation for one GPU. `small` selects reduced
/// workload sizes for quick runs.
///
/// # Panics
///
/// Panics if a benchmark fails CPU verification.
pub fn fig6_validation(cfg: &GpuConfig, seed: u64, small: bool) -> ValidationSummary {
    let suite = if small {
        gpusimpow_kernels::small_benchmarks()
    } else {
        gpusimpow_kernels::all_benchmarks()
    };
    validate_suite(cfg, &suite, seed).expect("suite validates")
}

/// Table V: the blackscholes power breakdown on the GT240.
///
/// # Panics
///
/// Panics if blackscholes fails verification.
pub fn table5_breakdown() -> gpusimpow_power::PowerReport {
    let mut sim = Simulator::gt240().expect("preset builds");
    let reports = sim
        .run_benchmark(&gpusimpow_kernels::blackscholes::BlackScholes::default())
        .expect("blackscholes verifies");
    reports[0].power.clone()
}

/// Per-cluster attribution of the Table V workload: the blackscholes
/// kernel on the GT240, with the core-component energy maps applied to
/// each cluster's scoped registry vector (the `--per-cluster` report).
///
/// # Panics
///
/// Panics if blackscholes fails verification.
pub fn table5_scoped() -> gpusimpow_power::ScopedPowerReport {
    let mut sim = Simulator::gt240().expect("preset builds");
    let reports = sim
        .run_benchmark(&gpusimpow_kernels::blackscholes::BlackScholes::default())
        .expect("blackscholes verifies");
    sim.evaluate_scoped(&reports[0].launch)
}

/// §III-D: measured per-operation energies.
#[derive(Debug, Clone, Copy)]
pub struct MicrobenchEnergies {
    /// Measured integer energy per lane-op (pJ); paper ≈ 40 pJ.
    pub int_pj: f64,
    /// Measured FP energy per lane-op (pJ); paper ≈ 75 pJ.
    pub fp_pj: f64,
}

/// §III-D: runs the LFSR and Mandelbrot microbenchmarks with 31 and 1
/// enabled lanes per warp through the testbed and derives the
/// per-operation energies from the energy difference.
///
/// The four microbenchmark launches simulate in parallel over `pool`
/// (each on a fresh `Gpu`); the testbed then measures the reports
/// serially in the fixed launch order, so its noise sequence does not
/// depend on the thread count.
pub fn microbench_energy(seed: u64, pool: &SimPool) -> MicrobenchEnergies {
    let cfg = GpuConfig::gt240();
    let mut testbed = Testbed::new(cfg.clone(), seed);
    let launch = micro::micro_launch(cfg.total_cores() as u32);

    let kernels = vec![
        micro::lfsr_kernel(31, 64),
        micro::lfsr_kernel(1, 64),
        micro::mandelbrot_kernel(31, 64),
        micro::mandelbrot_kernel(1, 64),
    ];
    let reports = pool.run(kernels, |kernel| {
        let mut gpu = Gpu::new(GpuConfig::gt240()).expect("preset is valid");
        gpu.launch(&kernel, launch).expect("micro runs")
    });
    let measured: Vec<_> = reports
        .iter()
        .map(|r| testbed.measure(&[KernelExec::from_report(r)])[0].clone())
        .collect();

    let int_pj = per_op_energy(
        &measured[0],
        &measured[1],
        reports[0].stats.int_lane_ops,
        reports[1].stats.int_lane_ops,
    )
    .picojoules();
    let fp_pj = per_op_energy(
        &measured[2],
        &measured[3],
        reports[2].stats.fp_lane_ops,
        reports[3].stats.fp_lane_ops,
    )
    .picojoules();

    MicrobenchEnergies { int_pj, fp_pj }
}

/// §IV-B: both static estimation methods, with truth for comparison.
#[derive(Debug, Clone)]
pub struct StaticEstimation {
    /// GT240 measured at full clock (W).
    pub gt240_full_w: f64,
    /// GT240 measured at 80 % clock (W).
    pub gt240_scaled_w: f64,
    /// GT240 extrapolated static (W).
    pub gt240_static_w: f64,
    /// GT240 ground truth (W).
    pub gt240_truth_w: f64,
    /// The static-to-idle ratio carried to the GTX580.
    pub ratio: f64,
    /// GTX580 idle-ratio static estimate (W).
    pub gtx580_static_w: f64,
    /// GTX580 ground truth (W).
    pub gtx580_truth_w: f64,
}

/// §IV-B: runs the clock-extrapolation method on the GT240 and the
/// idle-ratio method on the GTX580.
pub fn static_estimation(seed: u64) -> StaticEstimation {
    let gt_cfg = GpuConfig::gt240();
    let report = gt240_probe_report();
    let mut gt_tb = Testbed::new(gt_cfg, seed);
    let exec = KernelExec::from_report(report);
    let r = static_est::estimate_by_clock_scaling(&mut gt_tb, &exec);
    let between = gt_tb.measure_state(
        gt_tb.hardware().pre_kernel_power(),
        gpusimpow_tech::units::Time::from_millis(60.0),
    );
    let ratio = static_est::static_to_idle_ratio(r.static_estimate, between);
    let gt_truth = gt_tb.hardware().true_static_power().watts();

    let mut gtx_tb = Testbed::new(GpuConfig::gtx580(), seed.wrapping_add(7));
    let gtx_est = static_est::estimate_by_idle_ratio(&mut gtx_tb, ratio);
    let gtx_truth = gtx_tb.hardware().true_static_power().watts();

    StaticEstimation {
        gt240_full_w: r.power_full.watts(),
        gt240_scaled_w: r.power_scaled.watts(),
        gt240_static_w: r.static_estimate.watts(),
        gt240_truth_w: gt_truth,
        ratio,
        gtx580_static_w: gtx_est.watts(),
        gtx580_truth_w: gtx_truth,
    }
}

/// §IV-A: empirical error budget of the measurement chain.
#[derive(Debug, Clone, Copy)]
pub struct ErrorBudget {
    /// Worst observed relative power error over boards and operating
    /// points (paper budget: ±3.2 %).
    pub worst_rel_error: f64,
    /// Mean absolute relative error.
    pub mean_rel_error: f64,
    /// Boards (seeds) exercised.
    pub boards: usize,
}

/// §IV-A: sweeps DC operating points through many boards and compares
/// the reconstructed power against the ground truth.
///
/// Boards are independent testbeds (one seed each), so they fan out
/// over `pool`; the per-board errors are folded in seed order, keeping
/// the floating-point reduction identical for any thread count.
pub fn measurement_error_budget(boards: usize, pool: &SimPool) -> ErrorBudget {
    let per_board = pool.run((0..boards as u64).collect(), |seed| {
        let mut tb = Testbed::new(GpuConfig::gt240(), seed);
        let mut worst = 0.0f64;
        let mut sum = 0.0;
        for watts in [16.0, 25.0, 40.0, 60.0] {
            let truth = gpusimpow_tech::units::Power::new(watts);
            let measured = tb.measure_state(truth, gpusimpow_tech::units::Time::from_millis(30.0));
            let rel = ((measured.watts() - watts) / watts).abs();
            worst = worst.max(rel);
            sum += rel;
        }
        (worst, sum)
    });
    let mut worst = 0.0f64;
    let mut sum = 0.0;
    for (board_worst, board_sum) in &per_board {
        worst = worst.max(*board_worst);
        sum += board_sum;
    }
    ErrorBudget {
        worst_rel_error: worst,
        mean_rel_error: sum / (boards * 4) as f64,
        boards,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shows_the_staircase() {
        // Two threads exercise the parallel fan-out path; results are
        // identical for any thread count (collected in input order).
        let points = fig4_cluster_power(BOARD_SEED, &SimPool::new(2));
        assert_eq!(points.len(), 12);
        // Blocks 2..4 land on fresh clusters.
        assert_eq!(points[1].clusters_active, 2);
        assert_eq!(points[3].clusters_active, 4);
        // Every step carries the block's own compute power; the paper's
        // observation is the *difference*: a fresh-cluster step exceeds a
        // same-cluster step by the cluster overhead (0.692 − 0.199 ≈
        // 0.49 W).
        let cluster_step = points[1].delta_w;
        let core_step = points[5].delta_w;
        let overhead = cluster_step - core_step;
        assert!(
            (0.30..0.70).contains(&overhead),
            "cluster-vs-core step difference {overhead} W (paper ≈ 0.49 W)"
        );
        // Power rises monotonically (within measurement noise).
        for w in points.windows(2) {
            assert!(w[1].measured_w > w[0].measured_w - 0.3);
        }
    }

    #[test]
    fn microbench_methodology_recovers_the_silicon_truth() {
        let e = microbench_energy(BOARD_SEED, &SimPool::new(2));
        // The §III-D method must recover the *synthetic silicon's* true
        // per-op energies (the paper's real card measured ≈40/75 pJ; our
        // emulated card's truth is deliberately different so the Fig. 6
        // error is emergent — see DESIGN.md).
        let truth = gpusimpow_measure::SiliconTruth::for_config(&GpuConfig::gt240());
        let int_truth = truth.int_op_j * 1e12;
        let fp_truth = truth.fp_op_j * 1e12;
        assert!(
            (e.int_pj - int_truth).abs() / int_truth < 0.15,
            "int {} pJ vs truth {int_truth} pJ",
            e.int_pj
        );
        // The FP microbenchmark loop carries one INT op per six FP ops,
        // inflating the estimate slightly — as on real hardware.
        assert!(
            e.fp_pj > fp_truth * 0.9 && e.fp_pj < fp_truth * 1.35,
            "fp {} pJ vs truth {fp_truth} pJ",
            e.fp_pj
        );
        assert!(e.fp_pj > e.int_pj, "fp ops cost more than int ops");
    }

    #[test]
    fn error_budget_within_spec() {
        let b = measurement_error_budget(10, &SimPool::new(2));
        assert!(
            b.worst_rel_error < 0.032,
            "worst error {} exceeds the ±3.2 % budget",
            b.worst_rel_error
        );
        assert!(b.mean_rel_error < b.worst_rel_error);
    }

    #[test]
    fn static_estimation_methods_agree_with_truth() {
        let s = static_estimation(BOARD_SEED);
        assert!((s.gt240_static_w - s.gt240_truth_w).abs() / s.gt240_truth_w < 0.12);
        assert!((s.gtx580_static_w - s.gtx580_truth_w).abs() / s.gtx580_truth_w < 0.15);
        assert!((0.8..1.0).contains(&s.ratio), "ratio {}", s.ratio);
    }
}

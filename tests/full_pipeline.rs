//! Cross-crate integration tests: ISA → simulator → power model →
//! measurement testbed, exercised through the public facade.

use gpusimpow::{validate_suite, Simulator};
use gpusimpow_kernels::{small_benchmarks, Benchmark};
use gpusimpow_sim::GpuConfig;

#[test]
fn every_benchmark_runs_and_verifies_through_the_facade() {
    let mut sim = Simulator::gt240().expect("preset builds");
    for bench in small_benchmarks() {
        let reports = sim
            .run_benchmark(bench.as_ref())
            .unwrap_or_else(|e| panic!("{} failed: {e}", bench.name()));
        assert!(!reports.is_empty(), "{} produced no launches", bench.name());
        for r in &reports {
            assert!(r.launch.stats.shader_cycles > 0);
            let total = r.power.total_power().watts();
            assert!(
                total > 17.0 && total < 80.0,
                "{}-{}: implausible GT240 power {total} W",
                bench.name(),
                r.launch.kernel
            );
        }
    }
}

#[test]
fn compute_bound_kernels_burn_more_core_power_than_memory_bound() {
    let mut sim = Simulator::gt240().expect("preset builds");
    let mat = sim
        .run_benchmark(&gpusimpow_kernels::matmul::MatrixMul { n: 64 })
        .expect("matmul runs");
    let vec = sim
        .run_benchmark(&gpusimpow_kernels::vectoradd::VectorAdd { n: 16384 })
        .expect("vectoradd runs");
    let mat_exec = mat[0].power.core.exec.dynamic_power.watts();
    let vec_exec = vec[0].power.core.exec.dynamic_power.watts();
    assert!(
        mat_exec > 2.0 * vec_exec,
        "matmul exec {mat_exec} W vs vectoradd {vec_exec} W"
    );
    // And the memory-bound kernel keeps the DRAM busier per unit time.
    let mat_dram = mat[0].power.dram.read.watts() + mat[0].power.dram.write.watts();
    let vec_dram = vec[0].power.dram.read.watts() + vec[0].power.dram.write.watts();
    assert!(
        vec_dram > mat_dram,
        "vectoradd dram {vec_dram} W vs matmul {mat_dram} W"
    );
}

#[test]
fn gtx580_outperforms_gt240_but_burns_more_power() {
    let bench = gpusimpow_kernels::blackscholes::BlackScholes { options: 4096 };
    let mut gt = Simulator::gt240().expect("gt240");
    let mut gtx = Simulator::gtx580().expect("gtx580");
    let rg = gt.run_benchmark(&bench).expect("runs on gt240");
    let rx = gtx.run_benchmark(&bench).expect("runs on gtx580");
    assert!(
        rx[0].launch.time_s < rg[0].launch.time_s,
        "the 512-lane Fermi is faster"
    );
    assert!(
        rx[0].power.total_power() > rg[0].power.total_power(),
        "and hungrier"
    );
}

#[test]
fn validation_flow_produces_sane_error_band() {
    // A three-benchmark mini-validation (the full 19-kernel Fig. 6 run
    // lives in the experiment harness).
    let benches: Vec<Box<dyn Benchmark>> = vec![
        Box::new(gpusimpow_kernels::vectoradd::VectorAdd { n: 4096 }),
        Box::new(gpusimpow_kernels::matmul::MatrixMul { n: 48 }),
        Box::new(gpusimpow_kernels::blackscholes::BlackScholes { options: 2048 }),
    ];
    let summary = validate_suite(&GpuConfig::gt240(), &benches, 0xF16).expect("validates");
    assert_eq!(summary.rows.len(), 3);
    let avg = summary.average_relative_error();
    assert!(avg < 0.30, "average relative error {avg} out of band");
    // Static side of Table IV: simulated vs "real" within 10 %.
    let static_err =
        (summary.simulated_static_w - summary.measured_static_w).abs() / summary.measured_static_w;
    assert!(static_err < 0.10, "static error {static_err}");
}

#[test]
fn custom_architecture_from_config_text_runs_the_suite_smoke() {
    let mut sim = Simulator::from_config_text(
        "
        base = gt240
        name = GT240-Wide
        simd_width = 16
        clusters = 2
    ",
    )
    .expect("custom config builds");
    let r = sim
        .run_benchmark(&gpusimpow_kernels::vectoradd::VectorAdd { n: 2048 })
        .expect("runs");
    assert!(r[0].launch.stats.shader_cycles > 0);
}

#[test]
fn power_scales_with_clock_frequency_in_the_model() {
    // Eq. 1's first term: dynamic power ~ f.
    let mut slow_cfg = GpuConfig::gt240();
    slow_cfg.uncore_mhz = 275.0; // half clock
    slow_cfg.name = "GT240-half".to_string();
    let bench = gpusimpow_kernels::blackscholes::BlackScholes { options: 2048 };

    let mut fast = Simulator::gt240().expect("full clock");
    let mut slow = Simulator::new(slow_cfg).expect("half clock");
    let rf = fast.run_benchmark(&bench).expect("runs");
    let rs = slow.run_benchmark(&bench).expect("runs");
    // The activity-driven components scale with f (Eq. 1's first term);
    // the empirically-measured base/PCIe constants do not, so compare
    // the execution units, whose energy is purely per-event.
    let df = rf[0].power.core.exec.dynamic_power.watts();
    let ds = rs[0].power.core.exec.dynamic_power.watts();
    let cycles_ratio =
        rs[0].launch.stats.shader_cycles as f64 / rf[0].launch.stats.shader_cycles as f64;
    // Same event energy both ways; power ratio = time_slow / time_fast
    // = 2 · (cycles_slow / cycles_fast).
    let expect = 2.0 * cycles_ratio;
    assert!(
        (df / ds - expect).abs() < 0.1,
        "exec dynamic ratio {} vs expected {expect}",
        df / ds
    );
    // Static power is clock-independent.
    let sf = rf[0].power.static_power().watts();
    let ss = rs[0].power.static_power().watts();
    assert!((sf - ss).abs() < 1e-9);
}

//! `matrixMul` (CUDA SDK): tiled dense matrix-matrix multiplication.
//!
//! The classic shared-memory tiled kernel: each 16×16 block computes one
//! C tile, staging A and B tiles in shared memory with barriers between
//! load and compute phases. Compute-bound with heavy FMA and shared-
//! memory traffic — the polar opposite of `vectorAdd`.

use gpusimpow_isa::{Dim2, KernelBuilder, LaunchConfig, Operand, Reg, SpecialReg};
use gpusimpow_sim::{Gpu, LaunchReport};

use crate::common::{check_f32, BenchError, Benchmark, Origin, XorShift};

/// Tile edge (threads per block = TILE²).
const TILE: u32 = 16;

/// The matrixMul benchmark: `C = A × B` for square `n × n` matrices.
#[derive(Debug, Clone, Copy)]
pub struct MatrixMul {
    /// Matrix dimension (multiple of 16).
    pub n: u32,
}

impl Default for MatrixMul {
    fn default() -> Self {
        MatrixMul { n: 64 }
    }
}

impl Benchmark for MatrixMul {
    fn name(&self) -> &'static str {
        "matmul"
    }

    fn origin(&self) -> Origin {
        Origin::CudaSdk
    }

    fn description(&self) -> &'static str {
        "Matrix-matrix multiplication"
    }

    fn kernel_names(&self) -> Vec<String> {
        vec!["matrixMul".to_string()]
    }

    fn run(&self, gpu: &mut Gpu) -> Result<Vec<LaunchReport>, BenchError> {
        let n = self.n;
        assert!(
            n.is_multiple_of(TILE),
            "matrix dimension must be a tile multiple"
        );
        let mut rng = XorShift::new(0x3A7);
        let av: Vec<f32> = (0..n * n).map(|_| rng.next_range(-1.0, 1.0)).collect();
        let bv: Vec<f32> = (0..n * n).map(|_| rng.next_range(-1.0, 1.0)).collect();
        let a = gpu.alloc_f32(n * n);
        let b = gpu.alloc_f32(n * n);
        let c = gpu.alloc_f32(n * n);
        gpu.h2d_f32(a, &av);
        gpu.h2d_f32(b, &bv);

        let kernel = build_kernel(a.addr(), b.addr(), c.addr(), n);
        let launch = LaunchConfig::new(Dim2::xy(n / TILE, n / TILE), Dim2::xy(TILE, TILE));
        let report = gpu.launch(&kernel, launch)?;

        let got = gpu.d2h_f32(c, (n * n) as usize);
        let mut want = vec![0f32; (n * n) as usize];
        for row in 0..n as usize {
            for col in 0..n as usize {
                let mut acc = 0f32;
                for k in 0..n as usize {
                    acc = av[row * n as usize + k].mul_add(bv[k * n as usize + col], acc);
                }
                want[row * n as usize + col] = acc;
            }
        }
        check_f32("matmul", &got, &want, 1e-3)?;
        Ok(vec![report])
    }
}

fn build_kernel(a: u32, b: u32, c: u32, n: u32) -> gpusimpow_isa::Kernel {
    let mut k = KernelBuilder::new("matrixMul");
    let smem_a = k.alloc_smem(TILE * TILE * 4);
    let smem_b = k.alloc_smem(TILE * TILE * 4);

    let tx = Reg(0);
    let ty = Reg(1);
    let bx = Reg(2);
    let by = Reg(3);
    k.s2r(tx, SpecialReg::TidX);
    k.s2r(ty, SpecialReg::TidY);
    k.s2r(bx, SpecialReg::CtaIdX);
    k.s2r(by, SpecialReg::CtaIdY);

    // row = by*TILE + ty, col = bx*TILE + tx
    let row = Reg(4);
    let col = Reg(5);
    k.imad(row, by, Operand::imm_u32(TILE), ty);
    k.imad(col, bx, Operand::imm_u32(TILE), tx);

    let acc = Reg(6);
    k.movf(acc, 0.0);

    // Per-thread shared addresses: sa = smem_a + (ty*TILE + tx)*4
    let local = Reg(7);
    k.imad(local, ty, Operand::imm_u32(TILE), tx);
    k.shl(local, local, Operand::imm_u32(2));
    let sa = Reg(8);
    let sb = Reg(9);
    k.iadd(sa, local, Operand::imm_u32(smem_a));
    k.iadd(sb, local, Operand::imm_u32(smem_b));

    // for (t = 0; t < n/TILE; t++)
    let t = Reg(10);
    let cond = Reg(11);
    k.for_range(
        t,
        cond,
        Operand::imm_u32(0),
        Operand::imm_u32(n / TILE),
        1,
        |k| {
            // Load A[row][t*TILE + tx] and B[t*TILE + ty][col] into smem.
            let ga = Reg(12);
            let gb = Reg(13);
            let va = Reg(14);
            let vb = Reg(15);
            let tmp = Reg(16);
            // ga = (row*n + t*TILE + tx) * 4
            k.imul(ga, row, Operand::imm_u32(n));
            k.imad(tmp, t, Operand::imm_u32(TILE), tx);
            k.iadd(ga, ga, tmp);
            k.shl(ga, ga, Operand::imm_u32(2));
            k.ld_global(va, ga, a as i32);
            k.st_shared(va, sa, 0);
            // gb = ((t*TILE + ty)*n + col) * 4
            k.imad(tmp, t, Operand::imm_u32(TILE), ty);
            k.imul(gb, tmp, Operand::imm_u32(n));
            k.iadd(gb, gb, col);
            k.shl(gb, gb, Operand::imm_u32(2));
            k.ld_global(vb, gb, b as i32);
            k.st_shared(vb, sb, 0);
            k.bar();
            // for (kk = 0; kk < TILE; kk++)
            //     acc += As[ty][kk] * Bs[kk][tx]
            // Unrolled: address arithmetic folded into offsets.
            let pa = Reg(17);
            let pb = Reg(18);
            // pa = smem_a + ty*TILE*4, pb = smem_b + tx*4
            k.imul(pa, ty, Operand::imm_u32(TILE * 4));
            k.iadd(pa, pa, Operand::imm_u32(smem_a));
            k.shl(pb, tx, Operand::imm_u32(2));
            k.iadd(pb, pb, Operand::imm_u32(smem_b));
            let ea = Reg(19);
            let eb = Reg(20);
            for kk in 0..TILE {
                k.ld_shared(ea, pa, (kk * 4) as i32);
                k.ld_shared(eb, pb, (kk * TILE * 4) as i32);
                k.ffma(acc, ea, eb, acc);
            }
            k.bar();
        },
    );

    // C[row][col] = acc
    let gc = Reg(21);
    k.imul(gc, row, Operand::imm_u32(n));
    k.iadd(gc, gc, col);
    k.shl(gc, gc, Operand::imm_u32(2));
    k.st_global(acc, gc, c as i32);
    k.exit();
    k.build().expect("matmul kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusimpow_sim::GpuConfig;

    #[test]
    fn runs_and_verifies_on_gt240() {
        let mut gpu = Gpu::new(GpuConfig::gt240()).unwrap();
        let reports = MatrixMul { n: 32 }.run(&mut gpu).unwrap();
        let s = &reports[0].stats;
        // 2 tiles per block loop, 16 FMAs per tile per thread.
        assert!(s.fp_instructions > 0);
        assert!(s.smem_accesses > 0);
        assert!(s.barrier_waits > 0);
        // FMA-dominated: fp lane ops outnumber coalesced requests.
        assert!(s.fp_lane_ops > 10 * s.coalescer_outputs);
    }

    #[test]
    fn runs_on_gtx580() {
        let mut gpu = Gpu::new(GpuConfig::gtx580()).unwrap();
        MatrixMul { n: 32 }.run(&mut gpu).unwrap();
    }
}

//! Fig. 4: GT240 power vs. number of thread blocks (cluster staircase).

use gpusimpow_bench::{experiments, render};

fn main() {
    let points = experiments::fig4_cluster_power(experiments::BOARD_SEED);
    println!("Fig. 4 — GT240 power vs thread blocks (measured on the virtual testbed)\n");
    println!("{}", render::fig4(&points));
    println!("paper: +3.34 W for the first block (global scheduler), +0.692 W per new cluster, smaller per extra core");
}

//! Offline stand-in for the `criterion` crate.
//!
//! The sandboxed build environment cannot reach crates.io, so this crate
//! provides the minimal harness surface the workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Instead of
//! statistical sampling it times a fixed iteration budget and prints one
//! mean-per-iteration line per benchmark — enough to eyeball regressions
//! and to keep `cargo bench` compiling and running offline.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier, same contract as `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
    budget: Option<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly (a short warm-up, then a timed budget) and
    /// records mean wall time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..3 {
            black_box(f());
        }
        // Calibrate an iteration count targeting the measurement budget.
        let budget = self.budget.unwrap_or(Duration::from_millis(50));
        let probe = Instant::now();
        black_box(f());
        let once = probe.elapsed().max(Duration::from_nanos(20));
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    /// Hands the iteration count to `f`, which returns the measured
    /// duration itself — for bodies that must exclude setup work from
    /// the timing, mirroring criterion's `iter_custom`.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        black_box(f(1)); // warm-up
        let budget = self.budget.unwrap_or(Duration::from_millis(50));
        let once = f(1).max(Duration::from_nanos(20));
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        self.elapsed = f(iters);
        self.iters = iters;
    }
}

/// Registry and runner for benchmarks, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    measurement_time: Option<Duration>,
}

impl Criterion {
    /// Sets the per-benchmark measurement budget (the stub's analogue of
    /// criterion's sampling window).
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = Some(time);
        self
    }

    /// Accepted for API compatibility; the stub times a fixed budget
    /// rather than drawing `n` statistical samples.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one named benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            budget: self.measurement_time,
            ..Bencher::default()
        };
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        };
        println!(
            "bench {name:<40} {mean_ns:>12.1} ns/iter ({} iters)",
            b.iters
        );
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

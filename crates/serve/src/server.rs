//! The simulation server: framed-TCP front end, `SimPool` back end,
//! two-tier cache in between.
//!
//! ## Threading model
//!
//! One accept-loop thread plus one thread per connection (std-only; no
//! async runtime exists in this container, and simulation jobs are
//! milliseconds-to-seconds of CPU work, so per-connection threads are
//! the right tool). All connections share one [`Shared`] state:
//!
//! - a single mutex around the cache *and* the in-flight table, so the
//!   hit-or-claim decision for a digest is atomic;
//! - the `SimPool` (a `Copy` handle) for fanning a batch's misses out
//!   across cores;
//! - atomic counters for the stats request.
//!
//! ## In-flight deduplication
//!
//! When a batch finds a digest that is neither cached nor in flight, it
//! *claims* it by installing an [`InflightSlot`] and becomes that
//! digest's owner: it simulates, publishes the result into the slot,
//! inserts it into the store and removes the claim. Any other
//! connection (or later job in the same batch) that meets the claimed
//! digest becomes a waiter: it blocks on the slot's condvar and is
//! served the owner's published bytes. A thousand dashboards asking the
//! same uncached question cost exactly one simulation.
//!
//! Owners publish through `catch_unwind`, so even a panicking job wakes
//! its waiters with an error instead of leaving them blocked forever.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use gpusimpow_sim::SimPool;

use crate::job::{run_job, JobSpec};
use crate::proto::{
    encode_result, read_frame, write_frame, JobOutcome, Request, Response, ResultSource,
    StatsSnapshot,
};
use crate::store::{ResultStore, StoreConfig, StoreTier};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7979` (`:0` picks a free port).
    pub addr: String,
    /// Simulation threads (0 = the machine's available parallelism).
    pub threads: usize,
    /// Result-store configuration.
    pub store: StoreConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
            store: StoreConfig::default(),
        }
    }
}

/// One claimed in-flight job: waiters block on `cv` until the owner
/// publishes into `result`.
struct InflightSlot {
    result: Mutex<Option<Result<Arc<Vec<u8>>, String>>>,
    cv: Condvar,
}

impl InflightSlot {
    fn new() -> Arc<Self> {
        Arc::new(InflightSlot {
            result: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    /// Publishes the owner's result and wakes every waiter.
    fn publish(&self, value: Result<Arc<Vec<u8>>, String>) {
        let mut slot = self.result.lock().expect("inflight slot poisoned");
        *slot = Some(value);
        self.cv.notify_all();
    }

    /// Blocks until the owner publishes.
    fn wait(&self) -> Result<Arc<Vec<u8>>, String> {
        let mut slot = self.result.lock().expect("inflight slot poisoned");
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.cv.wait(slot).expect("inflight slot poisoned");
        }
    }
}

/// Cache state guarded by one mutex: the store and the in-flight table
/// change together, so a digest is always exactly one of cached /
/// in-flight / absent.
struct CacheState {
    store: ResultStore,
    inflight: BTreeMap<crate::digest::JobDigest, Arc<InflightSlot>>,
}

/// Counters, individually atomic (read coherently enough for stats).
#[derive(Default)]
struct Counters {
    jobs_received: AtomicU64,
    batches: AtomicU64,
    hits_mem: AtomicU64,
    hits_disk: AtomicU64,
    misses_simulated: AtomicU64,
    coalesced_waits: AtomicU64,
    errors: AtomicU64,
}

/// State shared by the accept loop and every connection handler.
struct Shared {
    pool: SimPool,
    cache: Mutex<CacheState>,
    counters: Counters,
    shutdown: AtomicBool,
    /// Live connection-handler count, for draining on shutdown.
    conns: Mutex<usize>,
    conns_cv: Condvar,
}

/// A running simulation server.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving on background threads.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if binding or store setup fails.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let store = ResultStore::new(config.store)?;
        let shared = Arc::new(Shared {
            pool: SimPool::new(config.threads),
            cache: Mutex::new(CacheState {
                store,
                inflight: BTreeMap::new(),
            }),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(0),
            conns_cv: Condvar::new(),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("gpusim-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(Server {
            local_addr,
            shared,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (useful with a `:0` config).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Simulation threads in the pool.
    pub fn threads(&self) -> usize {
        self.shared.pool.threads()
    }

    /// Requests shutdown: stop accepting, then drain live connections.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
    }

    /// Blocks until the accept loop has exited (a Shutdown request or
    /// [`Server::shutdown`]) and every connection handler has finished,
    /// then returns the final counters.
    pub fn join(mut self) -> StatsSnapshot {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        let drain = Duration::from_millis(100);
        {
            let mut conns = self.shared.conns.lock().expect("conn count poisoned");
            while *conns > 0 {
                let (guard, _) = self
                    .shared
                    .conns_cv
                    .wait_timeout(conns, drain)
                    .expect("conn count poisoned");
                conns = guard;
            }
        }
        snapshot(&self.shared)
    }

    /// A point-in-time counter snapshot (same data the Stats request
    /// returns).
    pub fn stats(&self) -> StatsSnapshot {
        snapshot(&self.shared)
    }
}

fn snapshot(shared: &Shared) -> StatsSnapshot {
    let c = &shared.counters;
    let (mem_entries, store_counters) = {
        let cache = shared.cache.lock().expect("cache poisoned");
        (cache.store.mem_entries() as u64, cache.store.counters())
    };
    StatsSnapshot {
        jobs_received: c.jobs_received.load(Ordering::Relaxed),
        batches: c.batches.load(Ordering::Relaxed),
        hits_mem: c.hits_mem.load(Ordering::Relaxed),
        hits_disk: c.hits_disk.load(Ordering::Relaxed),
        misses_simulated: c.misses_simulated.load(Ordering::Relaxed),
        coalesced_waits: c.coalesced_waits.load(Ordering::Relaxed),
        errors: c.errors.load(Ordering::Relaxed),
        corrupt_evictions: store_counters.corrupt_evictions,
        mem_entries,
        disk_writes: store_counters.disk_writes,
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Frames are small request/response pairs; Nagle only adds
        // latency here.
        let _ = stream.set_nodelay(true);
        {
            let mut conns = shared.conns.lock().expect("conn count poisoned");
            *conns += 1;
        }
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("gpusim-serve-conn".to_string())
            .spawn(move || {
                handle_connection(stream, &conn_shared);
                let mut conns = conn_shared.conns.lock().expect("conn count poisoned");
                *conns -= 1;
                conn_shared.conns_cv.notify_all();
            });
        if spawned.is_err() {
            let mut conns = shared.conns.lock().expect("conn count poisoned");
            *conns -= 1;
            shared.conns_cv.notify_all();
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean hang-up
            Err(_) => return,   // torn frame: the stream is unusable
        };
        let response = match Request::decode(&payload) {
            Ok(Request::Submit(jobs)) => Response::Results(handle_batch(jobs, shared)),
            // A sweep is just a server-side expansion: the per-preset
            // jobs flow through the same cache/dedup pipeline, so sweep
            // members and individually submitted jobs share slots.
            Ok(Request::SubmitSweep(sweep)) => {
                Response::Results(handle_batch(sweep.expand(), shared))
            }
            Ok(Request::Stats) => Response::Stats(snapshot(shared)),
            Ok(Request::Ping) => Response::Pong,
            Ok(Request::Shutdown) => {
                let _ = write_frame(&mut stream, &Response::ShuttingDown.encode());
                shared.shutdown.store(true, Ordering::SeqCst);
                // Unblock the accept loop.
                if let Ok(addr) = stream.local_addr() {
                    let _ = TcpStream::connect(addr);
                }
                return;
            }
            Err(e) => {
                // A decodable frame with an undecodable request: answer
                // the error, keep the connection (framing is intact).
                let _ = write_frame(&mut stream, &Response::Error(e.to_string()).encode());
                continue;
            }
        };
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

/// How one job in a batch gets its bytes.
enum Plan {
    /// Already served from the cache.
    Done(JobOutcome),
    /// This batch claimed the digest and must simulate it; the index
    /// points into the batch's owned-jobs list.
    Own { job_index: usize },
    /// Another claim exists; wait for its owner to publish.
    Wait(Arc<InflightSlot>),
}

/// Serves one Submit batch: classify every job under the cache lock,
/// simulate the claimed misses on the pool, publish, then collect
/// waiter results. Outcomes come back in submission order.
fn handle_batch(jobs: Vec<JobSpec>, shared: &Arc<Shared>) -> Vec<JobOutcome> {
    let c = &shared.counters;
    c.batches.fetch_add(1, Ordering::Relaxed);
    c.jobs_received
        .fetch_add(jobs.len() as u64, Ordering::Relaxed);

    let digests: Vec<_> = jobs.iter().map(JobSpec::digest).collect();

    // Phase 1: atomically decide hit / claim / wait per job. Duplicate
    // digests within the batch resolve to one claim plus waiters.
    let mut owned_jobs = Vec::new(); // (job, digest, slot) this batch simulates
    let mut plans = Vec::with_capacity(jobs.len());
    {
        let mut cache = shared.cache.lock().expect("cache poisoned");
        for (i, job) in jobs.iter().enumerate() {
            let digest = digests[i];
            if let Some((payload, tier)) = cache.store.get(digest) {
                let source = match tier {
                    StoreTier::Memory => {
                        c.hits_mem.fetch_add(1, Ordering::Relaxed);
                        ResultSource::MemoryHit
                    }
                    StoreTier::Disk => {
                        c.hits_disk.fetch_add(1, Ordering::Relaxed);
                        ResultSource::DiskHit
                    }
                };
                plans.push(Plan::Done(JobOutcome {
                    digest,
                    source,
                    payload: Ok(payload.as_ref().clone()),
                }));
            } else if let Some(slot) = cache.inflight.get(&digest) {
                plans.push(Plan::Wait(Arc::clone(slot)));
            } else {
                let slot = InflightSlot::new();
                cache.inflight.insert(digest, Arc::clone(&slot));
                plans.push(Plan::Own {
                    job_index: owned_jobs.len(),
                });
                owned_jobs.push((job.clone(), digest, slot));
            }
        }
    }

    // Phase 2: simulate the claimed misses across the pool. The closure
    // catches panics so a dying job still publishes to its waiters.
    let specs: Vec<JobSpec> = owned_jobs.iter().map(|(job, _, _)| job.clone()).collect();
    let results: Vec<Result<Vec<u8>, String>> = shared.pool.run(specs, |job| {
        catch_unwind(AssertUnwindSafe(|| {
            run_job(&job)
                .map(|r| encode_result(&r))
                .map_err(|e| e.to_string())
        }))
        .unwrap_or_else(|panic| {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "job panicked".to_string());
            Err(format!("job panicked: {msg}"))
        })
    });

    // Phase 3: publish every owned result — into the store on success,
    // and into the slot either way — and release the claims.
    let mut owned_payloads = Vec::with_capacity(results.len());
    {
        let mut cache = shared.cache.lock().expect("cache poisoned");
        for ((_, digest, slot), result) in owned_jobs.iter().zip(results) {
            let published = match result {
                Ok(bytes) => {
                    c.misses_simulated.fetch_add(1, Ordering::Relaxed);
                    let payload = Arc::new(bytes);
                    cache.store.insert(*digest, Arc::clone(&payload));
                    Ok(payload)
                }
                Err(msg) => {
                    c.errors.fetch_add(1, Ordering::Relaxed);
                    Err(msg)
                }
            };
            slot.publish(published.clone());
            cache.inflight.remove(digest);
            owned_payloads.push(published);
        }
    }

    // Phase 4: assemble outcomes in submission order; waiters block
    // here until their owners (possibly on other connections) publish.
    plans
        .into_iter()
        .enumerate()
        .map(|(i, plan)| match plan {
            Plan::Done(outcome) => outcome,
            Plan::Own { job_index } => JobOutcome {
                digest: digests[i],
                source: ResultSource::Simulated,
                payload: owned_payloads[job_index]
                    .clone()
                    .map(|p| p.as_ref().clone()),
            },
            Plan::Wait(slot) => {
                c.coalesced_waits.fetch_add(1, Ordering::Relaxed);
                JobOutcome {
                    digest: digests[i],
                    source: ResultSource::Coalesced,
                    payload: slot.wait().map(|p| p.as_ref().clone()),
                }
            }
        })
        .collect()
}

//! Microbenchmarks of the SoA warp hot path.
//!
//! Two layers are measured. The row kernels compare the contiguous SoA
//! evaluators (`eval_*_lanes`, which the execute stage feeds whole
//! 32-lane operand rows — and which dispatch to the AVX+FMA kernel on
//! x86-64) against the strided per-lane reference the pre-SoA pipeline
//! performed (one gather, one scalar op and one scatter per lane out of
//! an interleaved `[lane][reg]` register file). The pipeline benchmarks
//! then time full launches on warps with the three occupancy shapes the
//! gather/dense-compute/masked-scatter split has to handle: dense
//! compute, heavy branch divergence, and shared-memory bank conflicts.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use gpusimpow_isa::LaunchConfig;
use gpusimpow_kernels::micro;
use gpusimpow_sim::func::{eval_ffma, eval_ffma_lanes};
use gpusimpow_sim::{Gpu, GpuConfig, MAX_LANES};

/// Registers per lane in the strided reference layout.
const NREGS: usize = 8;

/// Deterministic f32 bit patterns in a sane range (no NaN/Inf).
fn pattern(i: usize) -> u32 {
    (1.0f32 + (i as f32) * 0.37).to_bits()
}

/// SoA row form: three contiguous operand rows in, one row out — the
/// layout the execute stage hands to `eval_ffma_lanes` per instruction.
fn bench_ffma_rows_soa(c: &mut Criterion) {
    let a: Vec<u32> = (0..MAX_LANES).map(pattern).collect();
    let b: Vec<u32> = (0..MAX_LANES).map(|i| pattern(i + 7)).collect();
    let cc: Vec<u32> = (0..MAX_LANES).map(|i| pattern(i + 13)).collect();
    let mut out = vec![0u32; MAX_LANES];
    c.bench_function("warp/ffma-row-soa-32", |bch| {
        bch.iter(|| {
            eval_ffma_lanes(black_box(&a), black_box(&b), black_box(&cc), &mut out);
            black_box(out[MAX_LANES - 1])
        })
    });
}

/// Strided per-lane reference: operands interleaved per lane
/// (`regs[lane * NREGS + r]`), gathered, evaluated and scattered one
/// lane at a time — what every FFma cost before the SoA refactor.
fn bench_ffma_rows_aos_reference(c: &mut Criterion) {
    let mut regs = vec![0u32; MAX_LANES * NREGS];
    for lane in 0..MAX_LANES {
        for r in 0..3 {
            regs[lane * NREGS + r] = pattern(lane + 7 * r);
        }
    }
    c.bench_function("warp/ffma-row-aos-reference-32", |bch| {
        bch.iter(|| {
            for lane in 0..MAX_LANES {
                let base = lane * NREGS;
                let (a, b, cc) = (regs[base], regs[base + 1], regs[base + 2]);
                regs[base + 3] = eval_ffma(black_box(a), black_box(b), black_box(cc));
            }
            black_box(regs[(MAX_LANES - 1) * NREGS + 3])
        })
    });
}

/// One full launch: the per-iteration cost is dominated by the core
/// pipeline (fetch/issue/execute over SoA lane rows), making this the
/// end-to-end guard for the row-kernel wins above.
fn bench_pipeline(
    c: &mut Criterion,
    name: &str,
    kernel: gpusimpow_isa::Kernel,
    blocks: u32,
    threads: u32,
) {
    let launch = LaunchConfig::linear(blocks, threads);
    // Warm-up outside the timer: first launch grows scratch to its
    // high-water mark.
    let mut gpu = Gpu::new(GpuConfig::gt240()).expect("preset is valid");
    gpu.launch(&kernel, launch).expect("kernel runs");
    c.bench_function(name, |bch| {
        bch.iter(|| {
            let r = gpu.launch(&kernel, launch).expect("kernel runs");
            black_box(r.stats.shader_cycles)
        })
    });
}

/// Dense compute: every lane live, FFma/IMad dominated.
fn bench_pipeline_dense(c: &mut Criterion) {
    bench_pipeline(
        c,
        "warp/pipeline-dense-compute",
        micro::cluster_step_kernel(64),
        2,
        64,
    );
}

/// Divergent control flow: the masked-scatter path with fragmented
/// active masks (depth 3 → 7 divergent branches per warp).
fn bench_pipeline_divergent(c: &mut Criterion) {
    bench_pipeline(
        c,
        "warp/pipeline-divergent",
        micro::divergence_kernel(3),
        2,
        64,
    );
}

/// Shared-memory bank conflicts: the LD/ST slice path under serialized
/// smem access (stride 16 → systematic conflicts; the kernel sizes its
/// shared buffer for exactly one 32-thread warp per block).
fn bench_pipeline_bank_conflict(c: &mut Criterion) {
    bench_pipeline(
        c,
        "warp/pipeline-bank-conflict",
        micro::conflict_kernel(16, 32),
        2,
        32,
    );
}

criterion_group!(
    benches,
    bench_ffma_rows_soa,
    bench_ffma_rows_aos_reference,
    bench_pipeline_dense,
    bench_pipeline_divergent,
    bench_pipeline_bank_conflict
);
criterion_main!(benches);

// Fixture: every determinism lint fires. Never compiled — lexed only.
use std::collections::HashMap;
use std::collections::HashSet;
use std::time::Instant;
use std::time::SystemTime;

fn run() {
    let pending: HashMap<u64, u32> = HashMap::new();
    let seen: HashSet<u64> = HashSet::new();
    let t0 = Instant::now();
    let wall = SystemTime::now();
    let who = std::thread::current().id();
    let _ = (pending, seen, t0, wall, who);
}

//! Warp-control-unit power model (paper §III-C1, Fig. 2).
//!
//! Composed from circuit-tier structures: the warp status table (a
//! multi-ported SRAM), the I-cache, the McPAT-style instruction decoder,
//! the warp-ID-tagged instruction buffer and scoreboard (CAM tables),
//! the per-warp reconvergence stacks (an SRAM holding
//! {exec PC, reconv PC, active mask} tokens) and the two
//! rotating-priority schedulers (inverters + wide priority encoder +
//! phase counter, after Kun et al. \[16\]).

use gpusimpow_circuit::{
    Cache, CacheSpec, InstructionDecoder, PriorityEncoder, SramArray, SramSpec, TaggedTable,
};
use gpusimpow_sim::{ActivityStats, GpuConfig};
use gpusimpow_tech::node::{DeviceType, TechNode};
use gpusimpow_tech::units::{Area, Energy, Power};

use crate::empirical;

/// Evaluated WCU (per core).
#[derive(Debug, Clone)]
pub struct WcuPower {
    fetch_energy: Energy,
    decode_energy: Energy,
    ibuffer_write_energy: Energy,
    ibuffer_read_energy: Energy,
    scoreboard_read_energy: Energy,
    scoreboard_write_energy: Energy,
    stack_op_energy: Energy,
    fetch_scheduler_energy: Energy,
    issue_scheduler_energy: Energy,
    wst_energy: Energy,
    leakage: Power,
    area: Area,
}

impl WcuPower {
    /// Builds the WCU model for one core of `cfg` at `tech`.
    ///
    /// # Errors
    ///
    /// Propagates circuit-model construction errors.
    pub fn new(cfg: &GpuConfig, tech: &TechNode) -> Result<Self, &'static str> {
        let warps = cfg.max_warps_per_core();
        let warp_bits = (warps.max(2) as f64).log2().ceil() as usize;

        // Warp status table: one entry per in-flight warp holding master
        // PC, priority, valid/ready/barrier bits (Fig. 2): ~48 bits.
        let wst = SramArray::new(
            tech,
            SramSpec {
                entries: warps,
                bits_per_entry: 48,
                read_ports: 2,
                write_ports: 1,
                rw_ports: 0,
                banks: 1,
                device: DeviceType::HighPerformance,
            },
        )?;

        let icache = Cache::new(
            tech,
            CacheSpec {
                capacity_bytes: cfg.icache_bytes,
                line_bytes: 64,
                ways: 4,
                address_bits: 32,
                banks: 1,
            },
        )?;

        let decoder = InstructionDecoder::new(tech, 8, 64)?;

        // Instruction buffer: associativity > 1, tagged by warp ID,
        // holding 64-bit decoded instructions (paper: "cache-like
        // structure tagged by the warp ID").
        let ibuffer = TaggedTable::new(tech, warps * 2, warp_bits, 64)?;

        // Scoreboard: warp-ID-tagged table of two destination registers
        // (Fig. 2: DstReg1/DstReg2).
        let scoreboard = TaggedTable::new(tech, warps, warp_bits, 16)?;

        // Per-warp reconvergence stacks: 16 tokens x (exec PC 32 +
        // reconv PC 32 + active mask 32) per warp.
        let stacks = SramArray::new(
            tech,
            SramSpec {
                entries: warps * 16,
                bits_per_entry: 96,
                read_ports: 1,
                write_ports: 1,
                rw_ports: 0,
                banks: 2,
                device: DeviceType::HighPerformance,
            },
        )?;

        // Two schedulers (fetch + issue), each an inverter rank + wide
        // priority encoder + phase counter (Kun et al. [16]). Under
        // two-level scheduling the issue encoder only spans the active
        // set.
        let fetch_sched = PriorityEncoder::new(tech, warps)?;
        let issue_sched = PriorityEncoder::new(tech, cfg.issue_scheduler_width())?;

        let leakage = wst.costs().leakage
            + icache.costs().leakage
            + decoder.costs().leakage
            + ibuffer.costs().leakage
            + scoreboard.costs().leakage
            + stacks.costs().leakage
            + fetch_sched.costs().leakage
            + issue_sched.costs().leakage;
        let area = wst.costs().area
            + icache.costs().area
            + decoder.costs().area
            + ibuffer.costs().area
            + scoreboard.costs().area
            + stacks.costs().area
            + fetch_sched.costs().area
            + issue_sched.costs().area;

        let s = empirical::WCU_ENERGY_SCALE;
        Ok(WcuPower {
            fetch_energy: icache.hit_energy() * s,
            decode_energy: decoder.decode_energy() * s,
            ibuffer_write_energy: ibuffer.insert_energy() * s,
            ibuffer_read_energy: ibuffer.lookup_energy() * s,
            scoreboard_read_energy: scoreboard.lookup_energy() * s,
            scoreboard_write_energy: scoreboard.insert_energy() * s,
            stack_op_energy: stacks.costs().read_energy * s,
            fetch_scheduler_energy: fetch_sched.select_energy() * s,
            issue_scheduler_energy: issue_sched.select_energy() * s,
            wst_energy: wst.costs().read_energy * s,
            leakage: leakage * empirical::WCU_LEAKAGE_SCALE,
            area,
        })
    }

    /// Chip-wide dynamic energy of the WCU for one kernel, from the
    /// aggregated activity counters.
    pub fn dynamic_energy(&self, stats: &ActivityStats) -> Energy {
        self.fetch_energy * stats.icache_accesses as f64
            + self.decode_energy * stats.decodes as f64
            + self.ibuffer_write_energy * stats.ibuffer_writes as f64
            + self.ibuffer_read_energy * stats.ibuffer_reads as f64
            + self.scoreboard_read_energy * stats.scoreboard_reads as f64
            + self.scoreboard_write_energy * stats.scoreboard_writes as f64
            + self.stack_op_energy
                * (stats.simt_stack_reads + stats.simt_stack_pushes + stats.simt_stack_pops) as f64
            + self.fetch_scheduler_energy * stats.fetch_scheduler_selects as f64
            + self.issue_scheduler_energy * stats.issue_scheduler_selects as f64
            + self.wst_energy * (stats.wst_reads + stats.wst_writes) as f64
    }

    /// Breaks the WCU's dynamic energy down to its individual memories
    /// and logic blocks — the finer-grained analysis the paper's §V-B
    /// mentions ("investigating the power consumed by the different
    /// memories in the warp control unit").
    pub fn memory_breakdown(&self, stats: &ActivityStats) -> Vec<(&'static str, Energy)> {
        vec![
            ("i-cache", self.fetch_energy * stats.icache_accesses as f64),
            ("decoder", self.decode_energy * stats.decodes as f64),
            (
                "instruction buffer",
                self.ibuffer_write_energy * stats.ibuffer_writes as f64
                    + self.ibuffer_read_energy * stats.ibuffer_reads as f64,
            ),
            (
                "scoreboard",
                self.scoreboard_read_energy * stats.scoreboard_reads as f64
                    + self.scoreboard_write_energy * stats.scoreboard_writes as f64,
            ),
            (
                "reconvergence stacks",
                self.stack_op_energy
                    * (stats.simt_stack_reads + stats.simt_stack_pushes + stats.simt_stack_pops)
                        as f64,
            ),
            (
                "warp schedulers",
                self.fetch_scheduler_energy * stats.fetch_scheduler_selects as f64
                    + self.issue_scheduler_energy * stats.issue_scheduler_selects as f64,
            ),
            (
                "warp status table",
                self.wst_energy * (stats.wst_reads + stats.wst_writes) as f64,
            ),
        ]
    }

    /// Per-core leakage.
    pub fn leakage(&self) -> Power {
        self.leakage
    }

    /// Per-core area.
    pub fn area(&self) -> Area {
        self.area
    }

    /// Peak per-cycle energy (fetch + issue + decode every cycle).
    pub fn peak_cycle_energy(&self) -> Energy {
        self.fetch_energy
            + self.decode_energy
            + self.ibuffer_write_energy
            + self.ibuffer_read_energy
            + self.fetch_scheduler_energy
            + self.issue_scheduler_energy
            + self.wst_energy * 2.0
            + self.scoreboard_read_energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t40() -> TechNode {
        TechNode::planar(40).unwrap()
    }

    #[test]
    fn fermi_wcu_is_bigger_than_tesla_wcu() {
        let gt = WcuPower::new(&GpuConfig::gt240(), &t40()).unwrap();
        let gtx = WcuPower::new(&GpuConfig::gtx580(), &t40()).unwrap();
        assert!(gtx.leakage() > gt.leakage());
        assert!(gtx.area().mm2() > gt.area().mm2());
    }

    #[test]
    fn dynamic_energy_scales_with_activity() {
        let wcu = WcuPower::new(&GpuConfig::gt240(), &t40()).unwrap();
        let mut a = ActivityStats::new();
        a.icache_accesses = 1000;
        a.decodes = 1000;
        let e1 = wcu.dynamic_energy(&a);
        a.icache_accesses = 2000;
        a.decodes = 2000;
        let e2 = wcu.dynamic_energy(&a);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn memory_breakdown_sums_to_total() {
        let wcu = WcuPower::new(&GpuConfig::gt240(), &t40()).unwrap();
        let mut a = ActivityStats::new();
        a.icache_accesses = 500;
        a.decodes = 500;
        a.ibuffer_writes = 500;
        a.ibuffer_reads = 480;
        a.scoreboard_reads = 700;
        a.simt_stack_reads = 480;
        a.simt_stack_pushes = 20;
        a.simt_stack_pops = 21;
        a.fetch_scheduler_selects = 500;
        a.issue_scheduler_selects = 480;
        a.wst_reads = 500;
        a.wst_writes = 480;
        let parts: f64 = wcu
            .memory_breakdown(&a)
            .iter()
            .map(|(_, e)| e.joules())
            .sum();
        let total = wcu.dynamic_energy(&a).joules();
        assert!((parts - total).abs() < 1e-18 * total.max(1.0) + 1e-18);
        assert_eq!(wcu.memory_breakdown(&a).len(), 7);
    }

    #[test]
    fn zero_activity_zero_energy() {
        let wcu = WcuPower::new(&GpuConfig::gt240(), &t40()).unwrap();
        assert_eq!(wcu.dynamic_energy(&ActivityStats::new()).joules(), 0.0);
    }
}

//! Fixture tests: one good/bad pair per lint family, driven through the
//! same entry points the CLI uses. Fixtures live under
//! `tests/fixtures/` (not test targets — they are lexed, never
//! compiled) and are checked under synthetic workspace-relative paths
//! so the path-scoping rules are exercised too.

use simlint::{check_source, phase, registry, unsafety, Diagnostic, SourceFile};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn lint_names(diags: &[Diagnostic]) -> Vec<&'static str> {
    let mut names: Vec<&'static str> = diags.iter().map(|d| d.lint).collect();
    names.sort_unstable();
    names
}

#[test]
fn determinism_bad_fires_both_lints_with_lines() {
    let diags = check_source("crates/sim/src/fixture.rs", &fixture("determinism_bad.rs"));
    let collections = diags
        .iter()
        .filter(|d| d.lint == "nondeterministic_collection")
        .count();
    let clocks = diags.iter().filter(|d| d.lint == "wall_clock").count();
    // HashMap ×3 + HashSet ×3; Instant ×2 + SystemTime ×2 + thread::current ×1.
    assert_eq!(collections, 6, "{diags:#?}");
    assert_eq!(clocks, 5, "{diags:#?}");
    assert!(diags
        .iter()
        .all(|d| d.file == "crates/sim/src/fixture.rs" && d.line > 0));
}

#[test]
fn determinism_good_is_clean() {
    let diags = check_source("crates/sim/src/fixture.rs", &fixture("determinism_good.rs"));
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn determinism_lints_only_apply_to_result_bearing_crates() {
    // The same offending source is fine in crates/bench, which
    // legitimately reads the wall clock for throughput numbers.
    let diags = check_source(
        "crates/bench/src/fixture.rs",
        &fixture("determinism_bad.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn determinism_lints_cover_the_service_crate() {
    // The serve crate's cache treats job digests as content addresses,
    // which only holds if its code stays deterministic — so it is in
    // scope for the same lints as the simulator itself.
    let diags = check_source(
        "crates/serve/src/fixture.rs",
        &fixture("determinism_bad.rs"),
    );
    assert!(
        diags
            .iter()
            .any(|d| d.lint == "nondeterministic_collection"),
        "{diags:#?}"
    );
    assert!(diags.iter().any(|d| d.lint == "wall_clock"), "{diags:#?}");
}

#[test]
fn trace_crate_is_held_to_determinism_and_unit_lints() {
    // Traces are content-addressed archival artifacts, so the trace
    // crate sits in both scopes: the bad fixture fires the ordered-
    // collection, wall-clock and raw-unit-math lints at once...
    let diags = check_source("crates/trace/src/fixture.rs", &fixture("trace_bad.rs"));
    assert!(
        diags
            .iter()
            .any(|d| d.lint == "nondeterministic_collection"),
        "{diags:#?}"
    );
    assert!(diags.iter().any(|d| d.lint == "wall_clock"), "{diags:#?}");
    assert!(
        diags.iter().any(|d| d.lint == "raw_unit_math"),
        "{diags:#?}"
    );
    // ...the ordered/typed twin is clean...
    let diags = check_source("crates/trace/src/fixture.rs", &fixture("trace_good.rs"));
    assert!(diags.is_empty(), "{diags:#?}");
    // ...and the same bad source stays fine outside the scoped crates.
    let diags = check_source("crates/bench/src/fixture.rs", &fixture("trace_bad.rs"));
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn units_bad_flags_each_raw_operation() {
    let diags = check_source("crates/power/src/fixture.rs", &fixture("units_bad.rs"));
    assert!(
        diags.iter().all(|d| d.lint == "raw_unit_math"),
        "{diags:#?}"
    );
    let lines: Vec<u32> = diags.iter().map(|d| d.line).collect();
    // joules()/seconds() on line 5, 2.0*watts() on 6, volts()*volts()
    // on 7, total(p).watts()/3.0 on 8.
    assert_eq!(lines, vec![5, 5, 6, 7, 7, 8], "{diags:#?}");
}

#[test]
fn units_good_typed_math_rendering_and_tests_are_clean() {
    let diags = check_source("crates/power/src/fixture.rs", &fixture("units_good.rs"));
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn units_lint_only_applies_to_the_power_crate() {
    let diags = check_source("crates/measure/src/fixture.rs", &fixture("units_bad.rs"));
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn unsafe_bad_catches_missing_and_stranded_safety_comments() {
    let diags = check_source("crates/sim/src/fixture.rs", &fixture("unsafe_bad.rs"));
    assert_eq!(lint_names(&diags), ["undocumented_unsafe"; 2], "{diags:#?}");
}

#[test]
fn unsafe_good_is_clean_and_inventoried() {
    let src = fixture("unsafe_good.rs");
    let diags = check_source("crates/sim/src/fixture.rs", &src);
    assert!(diags.is_empty(), "{diags:#?}");
    // Keyword occurrences in strings and comments are not sites.
    let sites = unsafety::sites(&SourceFile::parse("crates/sim/src/fixture.rs", &src));
    assert_eq!(sites.len(), 2);
    assert!(sites.iter().all(|s| s.doc.is_some()));
    let manifest = unsafety::manifest(&[("crates/sim/src/fixture.rs".to_string(), sites)]);
    assert!(manifest.contains("Total `unsafe` keywords in first-party code: 2"));
    assert!(manifest.contains("SAFETY: `p` is non-null and aligned by the caller's contract."));
}

#[test]
fn registry_coverage_good_trio_is_clean() {
    let events = SourceFile::parse("crates/sim/src/events.rs", &fixture("registry_events.rs"));
    let allow = SourceFile::parse(
        "crates/power/src/registry.rs",
        &fixture("registry_allowlist_good.rs"),
    );
    let comp = SourceFile::parse(
        "crates/power/src/components/fixture.rs",
        &fixture("registry_component.rs"),
    );
    let diags = registry::check(&events, &allow, &[comp]);
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn registry_coverage_bad_allowlist_fires_all_three_lints() {
    let events = SourceFile::parse("crates/sim/src/events.rs", &fixture("registry_events.rs"));
    let allow = SourceFile::parse(
        "crates/power/src/registry.rs",
        &fixture("registry_allowlist_bad.rs"),
    );
    let comp = SourceFile::parse(
        "crates/power/src/components/fixture.rs",
        &fixture("registry_component.rs"),
    );
    let diags = registry::check(&events, &allow, &[comp]);
    assert_eq!(
        lint_names(&diags),
        ["conflicting_price", "unknown_event", "unpriced_event"],
        "{diags:#?}"
    );
    let ghost = diags.iter().find(|d| d.lint == "unpriced_event").unwrap();
    assert!(ghost.message.contains("GhostEvent"), "{ghost}");
    assert_eq!(ghost.file, "crates/sim/src/events.rs");
    let stale = diags.iter().find(|d| d.lint == "unknown_event").unwrap();
    assert!(stale.message.contains("Vanished"), "{stale}");
    let conflict = diags
        .iter()
        .find(|d| d.lint == "conflicting_price")
        .unwrap();
    assert_eq!(conflict.file, "crates/power/src/components/fixture.rs");
}

#[test]
fn justified_allow_markers_suppress_above_and_trailing() {
    let diags = check_source("crates/sim/src/fixture.rs", &fixture("allow_good.rs"));
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn rotten_allow_markers_are_findings_and_do_not_suppress() {
    let diags = check_source("crates/sim/src/fixture.rs", &fixture("allow_bad.rs"));
    assert_eq!(
        lint_names(&diags),
        [
            "missing_justification",
            "nondeterministic_collection",
            "nondeterministic_collection",
            "unknown_lint",
        ],
        "{diags:#?}"
    );
}

#[test]
fn diagnostics_render_as_file_line_lint_message() {
    let diags = check_source("crates/sim/src/fixture.rs", &fixture("unsafe_bad.rs"));
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("crates/sim/src/fixture.rs:4: undocumented_unsafe: "),
        "{rendered}"
    );
}

#[test]
fn hotpath_bad_fires_once_per_allocation_site() {
    let diags = check_source("crates/sim/src/core.rs", &fixture("hotpath_bad.rs"));
    let allocs: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.lint == "lane_loop_alloc")
        .collect();
    // vec! + Vec::new (for), .to_vec() + format! (while),
    // .collect() + BinaryHeap::with_capacity (loop).
    assert_eq!(allocs.len(), 6, "{diags:#?}");
    for expected in [
        "`vec!`",
        "`Vec::new`",
        "`.to_vec()`",
        "`format!`",
        "`.collect()`",
        "`BinaryHeap::with_capacity`",
    ] {
        assert!(
            allocs.iter().any(|d| d.message.contains(expected)),
            "missing {expected}: {diags:#?}"
        );
    }
}

#[test]
fn hotpath_good_is_clean() {
    let diags = check_source("crates/sim/src/ldst.rs", &fixture("hotpath_good.rs"));
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn hotpath_lint_only_covers_the_hot_files() {
    // The same allocating loops are fine in, say, the bench crate.
    let diags = check_source("crates/bench/src/report.rs", &fixture("hotpath_bad.rs"));
    assert!(
        diags.iter().all(|d| d.lint != "lane_loop_alloc"),
        "{diags:#?}"
    );
}

#[test]
fn queue_bad_fires_once_per_construction_site() {
    let diags = check_source("crates/sim/src/wheel.rs", &fixture("queue_bad.rs"));
    let queues: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.lint == "unbounded_queue_in_core")
        .collect();
    // BinaryHeap::new (for) + VecDeque::with_capacity (while).
    assert_eq!(queues.len(), 2, "{diags:#?}");
    for expected in ["`BinaryHeap::new`", "`VecDeque::with_capacity`"] {
        assert!(
            queues.iter().any(|d| d.message.contains(expected)),
            "missing {expected}: {diags:#?}"
        );
    }
    // The same sites also violate the broader hot-path allocation rule;
    // both names must point at the scheduler rebuild.
    assert!(
        diags.iter().any(|d| d.lint == "lane_loop_alloc"),
        "{diags:#?}"
    );
}

#[test]
fn queue_good_is_clean_with_justified_allow() {
    // Hoisted construction, retained-capacity reuse, a reference heap
    // inside `#[cfg(test)]` and a justified launch-boundary `allow` —
    // none may survive as an unbounded_queue_in_core finding.
    let diags = check_source("crates/sim/src/core.rs", &fixture("queue_good.rs"));
    assert!(
        diags.iter().all(|d| d.lint != "unbounded_queue_in_core"),
        "{diags:#?}"
    );
}

#[test]
fn untrusted_bad_flags_reachable_panics_and_tainted_arithmetic() {
    let diags = check_source("crates/serve/src/wire.rs", &fixture("untrusted_bad.rs"));
    let mut panics: Vec<u32> = diags
        .iter()
        .filter(|d| d.lint == "panic_path")
        .map(|d| d.line)
        .collect();
    panics.sort_unstable();
    // Indexing (19), panic! (23), and the unwrap inside the reachable
    // helper `finish` (30). `orphan`'s unwrap and the #[cfg(test)]
    // unwrap are off the decode path and must not fire.
    assert_eq!(panics, vec![19, 23, 30], "{diags:#?}");
    let mut arith: Vec<u32> = diags
        .iter()
        .filter(|d| d.lint == "decode_arith")
        .map(|d| d.line)
        .collect();
    arith.sort_unstable();
    // `n * 4 + 8` (two operators on 18), the narrowing `as u8` (20),
    // and the compound `self.pos += n as usize` (21).
    assert_eq!(arith, vec![18, 18, 20, 21], "{diags:#?}");
    assert!(
        diags
            .iter()
            .any(|d| d.lint == "decode_arith" && d.message.contains("checked_mul")),
        "{diags:#?}"
    );
}

#[test]
fn untrusted_good_checked_spellings_are_clean() {
    let diags = check_source("crates/serve/src/wire.rs", &fixture("untrusted_good.rs"));
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn untrusted_lints_only_cover_the_decode_files() {
    // The same panicking decode is out of scope in the simulator core —
    // its inputs come from inside the process, not the wire.
    let diags = check_source("crates/sim/src/core.rs", &fixture("untrusted_bad.rs"));
    assert!(
        diags
            .iter()
            .all(|d| d.lint != "panic_path" && d.lint != "decode_arith"),
        "{diags:#?}"
    );
}

#[test]
fn floats_bad_flags_unordered_reductions_and_divergent_kernels() {
    let diags = check_source("crates/power/src/fixture.rs", &fixture("floats_bad.rs"));
    let mut reduce: Vec<u32> = diags
        .iter()
        .filter(|d| d.lint == "float_reduce_order")
        .map(|d| d.line)
        .collect();
    reduce.sort_unstable();
    // `.values().sum::<f64>()` (7) and `.values().fold(0.0, ..)` (11).
    assert_eq!(reduce, vec![7, 11], "{diags:#?}");
    let divergent: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.lint == "float_cfg_divergence")
        .collect();
    assert_eq!(divergent.len(), 1, "{diags:#?}");
    assert!(divergent[0].message.contains("lane_energy"), "{diags:#?}");
}

#[test]
fn floats_good_ordered_reductions_are_clean() {
    let diags = check_source("crates/power/src/fixture.rs", &fixture("floats_good.rs"));
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn float_lints_only_cover_the_float_bearing_crates() {
    // The serve crate moves floats around but computes none of the
    // published results itself.
    let diags = check_source("crates/serve/src/fixture.rs", &fixture("floats_bad.rs"));
    assert!(
        diags
            .iter()
            .all(|d| d.lint != "float_reduce_order" && d.lint != "float_cfg_divergence"),
        "{diags:#?}"
    );
}

#[test]
fn phase_bad_flags_all_three_contract_violations_across_files() {
    let core = SourceFile::parse("crates/sim/src/core.rs", &fixture("phase_bad.rs"));
    let helper = SourceFile::parse("crates/sim/src/func.rs", &fixture("phase_bad_helper.rs"));
    let diags = phase::check(&[&core, &helper]);
    let mut muts: Vec<u32> = diags
        .iter()
        .filter(|d| d.lint == "phase_mut_memory")
        .map(|d| d.line)
        .collect();
    muts.sort_unstable();
    // `tick` (14) and the reachable `execute` (19); `commit_stores` is
    // the commit API and may take `&mut GpuMemory`.
    assert_eq!(muts, vec![14, 19], "{diags:#?}");
    let commits: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.lint == "phase_commit_api")
        .collect();
    assert_eq!(commits.len(), 1, "{diags:#?}");
    assert_eq!(commits[0].line, 16, "{diags:#?}");
    // Interior mutability: the atomic counter in the core file and the
    // Mutex the cross-file kernel reaches; the unreached helper's lock
    // must not fire.
    let interior: Vec<(&str, u32)> = diags
        .iter()
        .filter(|d| d.lint == "phase_interior_mut")
        .map(|d| (d.file.as_str(), d.line))
        .collect();
    assert_eq!(
        interior,
        vec![
            ("crates/sim/src/core.rs", 20),
            ("crates/sim/src/func.rs", 10),
        ],
        "{diags:#?}"
    );
}

#[test]
fn phase_good_buffered_stores_are_clean() {
    let core = SourceFile::parse("crates/sim/src/core.rs", &fixture("phase_good.rs"));
    let diags = phase::check(&[&core]);
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn queue_lint_only_covers_the_scheduler_files() {
    // The LD/ST unit is hot-path scope but not scheduler scope: the
    // broad allocation lint fires there, the queue lint must not.
    let diags = check_source("crates/sim/src/ldst.rs", &fixture("queue_bad.rs"));
    assert!(
        diags.iter().any(|d| d.lint == "lane_loop_alloc"),
        "{diags:#?}"
    );
    assert!(
        diags.iter().all(|d| d.lint != "unbounded_queue_in_core"),
        "{diags:#?}"
    );
}

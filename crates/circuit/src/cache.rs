//! Cache circuit model: a tag array plus a data array.
//!
//! Used for the instruction cache, constant caches, L1 data cache and the
//! L2 slices. A cache access reads the tag array (all ways of one set in
//! parallel) and, on a hit, one way of the data array; a fill writes one
//! line plus its tag.

use gpusimpow_tech::node::{DeviceType, TechNode};
use gpusimpow_tech::units::Energy;

use crate::array::{SramArray, SramSpec};
use crate::costs::CircuitCosts;

/// Geometry of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSpec {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways).
    pub ways: usize,
    /// Physical address width in bits (for tag sizing).
    pub address_bits: usize,
    /// Independent banks.
    pub banks: usize,
}

impl CacheSpec {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity_bytes / (self.line_bytes * self.ways)
    }

    /// Tag width in bits: address minus set-index minus line-offset bits,
    /// plus valid + dirty bits.
    pub fn tag_bits(&self) -> usize {
        let offset_bits = (self.line_bytes as f64).log2() as usize;
        let index_bits = (self.sets().max(1) as f64).log2() as usize;
        self.address_bits.saturating_sub(offset_bits + index_bits) + 2
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first violated constraint (power-of-two
    /// line size, capacity divisible by `line × ways`, non-zero fields).
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.capacity_bytes == 0 || self.line_bytes == 0 || self.ways == 0 {
            return Err("cache dimensions must be non-zero");
        }
        if !self.line_bytes.is_power_of_two() {
            return Err("cache line size must be a power of two");
        }
        if !self
            .capacity_bytes
            .is_multiple_of(self.line_bytes * self.ways)
        {
            return Err("capacity must be divisible by line size times ways");
        }
        if self.banks == 0 {
            return Err("cache must have at least one bank");
        }
        Ok(())
    }
}

/// An evaluated cache (tag + data arrays).
///
/// # Examples
///
/// ```
/// use gpusimpow_circuit::cache::{Cache, CacheSpec};
/// use gpusimpow_tech::node::TechNode;
///
/// // GTX580 L2: 768 KB, 128 B lines, 8-way, 6 banks.
/// let tech = TechNode::planar(40)?;
/// let l2 = Cache::new(&tech, CacheSpec {
///     capacity_bytes: 768 * 1024,
///     line_bytes: 128,
///     ways: 8,
///     address_bits: 32,
///     banks: 6,
/// })?;
/// assert!(l2.costs().area.mm2() > 1.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cache {
    spec: CacheSpec,
    tag: SramArray,
    data: SramArray,
}

impl Cache {
    /// Evaluates the cache model.
    ///
    /// # Errors
    ///
    /// Propagates [`CacheSpec::validate`] or array-model errors.
    pub fn new(tech: &TechNode, spec: CacheSpec) -> Result<Self, &'static str> {
        spec.validate()?;
        let tag = SramArray::new(
            tech,
            SramSpec {
                entries: spec.sets() * spec.ways,
                bits_per_entry: spec.tag_bits(),
                read_ports: 0,
                write_ports: 0,
                rw_ports: 1,
                banks: spec.banks,
                device: DeviceType::HighPerformance,
            },
        )?;
        let data = SramArray::new(
            tech,
            SramSpec {
                entries: spec.sets() * spec.ways,
                bits_per_entry: spec.line_bytes * 8,
                read_ports: 0,
                write_ports: 0,
                rw_ports: 1,
                banks: spec.banks,
                device: DeviceType::LowStandbyPower,
            },
        )?;
        Ok(Cache { spec, tag, data })
    }

    /// Energy of a hit: parallel tag compare over all ways + one data way.
    pub fn hit_energy(&self) -> Energy {
        self.tag.costs().read_energy * self.spec.ways as f64 + self.data.costs().read_energy
    }

    /// Energy of a miss: the tag probe only (the fill is charged
    /// separately via [`Cache::fill_energy`]).
    pub fn miss_energy(&self) -> Energy {
        self.tag.costs().read_energy * self.spec.ways as f64
    }

    /// Energy of filling one line (data write + tag write).
    pub fn fill_energy(&self) -> Energy {
        self.data.costs().write_energy + self.tag.costs().write_energy
    }

    /// Energy of a write hit (write-through of one word is approximated as
    /// one data-array write plus the tag probe).
    pub fn write_energy(&self) -> Energy {
        self.miss_energy() + self.data.costs().write_energy
    }

    /// Aggregate area/leakage bundle (read/write energies are the hit and
    /// fill energies).
    pub fn costs(&self) -> CircuitCosts {
        CircuitCosts::new(
            self.tag.costs().area + self.data.costs().area,
            self.hit_energy(),
            self.fill_energy(),
            self.tag.costs().leakage + self.data.costs().leakage,
        )
    }

    /// The cache geometry.
    pub fn spec(&self) -> &CacheSpec {
        &self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t40() -> TechNode {
        TechNode::planar(40).unwrap()
    }

    fn spec_16k() -> CacheSpec {
        CacheSpec {
            capacity_bytes: 16 * 1024,
            line_bytes: 128,
            ways: 4,
            address_bits: 32,
            banks: 1,
        }
    }

    #[test]
    fn geometry_derivation() {
        let s = spec_16k();
        assert_eq!(s.sets(), 32);
        // 32-bit address, 7 offset bits, 5 index bits => 20 tag bits + v/d.
        assert_eq!(s.tag_bits(), 22);
    }

    #[test]
    fn hit_costs_more_than_miss() {
        let c = Cache::new(&t40(), spec_16k()).unwrap();
        assert!(c.hit_energy() > c.miss_energy());
    }

    #[test]
    fn fill_is_the_most_expensive_operation() {
        let c = Cache::new(&t40(), spec_16k()).unwrap();
        assert!(c.fill_energy() > c.hit_energy());
    }

    #[test]
    fn higher_associativity_raises_tag_energy() {
        let mut s = spec_16k();
        let c4 = Cache::new(&t40(), s).unwrap();
        s.ways = 8;
        let c8 = Cache::new(&t40(), s).unwrap();
        assert!(c8.miss_energy() > c4.miss_energy());
    }

    #[test]
    fn l2_sized_cache_has_substantial_leakage() {
        let l2 = Cache::new(
            &t40(),
            CacheSpec {
                capacity_bytes: 768 * 1024,
                line_bytes: 128,
                ways: 8,
                address_bits: 32,
                banks: 6,
            },
        )
        .unwrap();
        let mw = l2.costs().leakage.milliwatts();
        assert!(mw > 1.0, "768 KB of SRAM must leak > 1 mW, got {mw}");
    }

    #[test]
    fn invalid_geometry_rejected() {
        let t = t40();
        let mut s = spec_16k();
        s.line_bytes = 100; // not a power of two
        assert!(Cache::new(&t, s).is_err());
        let mut s = spec_16k();
        s.ways = 0;
        assert!(Cache::new(&t, s).is_err());
        let mut s = spec_16k();
        s.capacity_bytes = 1000;
        assert!(Cache::new(&t, s).is_err());
    }
}

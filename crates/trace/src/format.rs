//! The `v1` kernel-trace container: header, body, digest footer.
//!
//! Layout (all multi-byte scalars varint unless noted):
//!
//! ```text
//! "GSPT"                magic, 4 raw bytes
//! version               u16 little-endian (= 1)
//! name                  varint length + UTF-8
//! num_regs              u8
//! smem_bytes            varint
//! grid_x grid_y         varint x2
//! block_x block_y       varint x2
//! warp_size             varint
//! h2d_bytes d2h_bytes   varint x2   (PCIe attribution of the launch)
//! const_words           varint count + varint words
//! code                  varint count + instruction records (codec.rs)
//! streams               varint count + per-warp records:
//!     block_x block_y warp      varint x3
//!     pcs                       varint count + varint PCs
//!     branch_taken              varint count + varint 64-bit masks
//!     mem_addrs                 varint count + varint byte addresses
//! digest                16 raw bytes over everything above
//! ```
//!
//! The per-warp records deliberately reference the instruction table by
//! PC instead of repeating opcode metadata per dynamic instruction:
//! the table carries the opcode class and operand/bank information
//! once, and the streams stay compact (a straight-line warp costs ~1–2
//! bytes per issued instruction). `branch_taken` holds one lane mask
//! per executed `Bra`, `mem_addrs` one byte address per active lane of
//! each executed `Ld`/`St` (active lanes ascending, accesses in issue
//! order).
//!
//! Versioning policy: any change to this layout bumps
//! [`TRACE_VERSION`]; readers reject other versions with
//! [`TraceError::UnsupportedVersion`] rather than guessing. The golden
//! digests in `tests/` pin the v1 byte stream against accidental
//! drift.

use gpusimpow_isa::{Dim2, Instr, Kernel, LaunchConfig};

use crate::codec::{get_instr, put_instr};
use crate::digest::TraceDigest;
use crate::wire::{TraceError, TraceReader, TraceWriter};

/// Leading magic of every encoded trace.
pub const TRACE_MAGIC: [u8; 4] = *b"GSPT";
/// Current (and only) format version.
pub const TRACE_VERSION: u16 = 1;

/// Caps the decoder enforces before allocating. Generous for real
/// workloads, small enough that a hostile count cannot balloon memory.
const MAX_NAME_BYTES: usize = 256;
const MAX_CODE: usize = 1 << 20;
const MAX_CONST_WORDS: usize = 16 * 1024;
const MAX_STREAMS: usize = 1 << 20;
const MAX_EVENTS_PER_WARP: usize = 1 << 26;
/// Architectural limits mirrored from the simulator's launch checks.
const MAX_BLOCK_THREADS: u64 = 1024;
const MAX_GRID_BLOCKS: u64 = 1 << 22;
const MAX_WARP_SIZE: u32 = 64;

/// The recorded instruction/memory stream of one warp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpStream {
    /// Block x-coordinate of the owning CTA.
    pub block_x: u32,
    /// Block y-coordinate of the owning CTA.
    pub block_y: u32,
    /// Warp index within the CTA.
    pub warp: u32,
    /// Every issued PC, in issue order (indexes the kernel's code).
    pub pcs: Vec<u32>,
    /// One taken-lane mask per executed `Bra`, in issue order.
    pub branch_taken: Vec<u64>,
    /// One byte address per active lane of each executed `Ld`/`St`
    /// (active lanes ascending, accesses in issue order). Constant
    /// addresses are relative to the constant bank base.
    pub mem_addrs: Vec<u32>,
}

/// A complete captured (or synthesised) kernel launch: the static
/// kernel image plus per-warp dynamic streams.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTrace {
    /// Kernel name (reports, file names).
    pub name: String,
    /// The instruction table the PCs index.
    pub code: Vec<Instr>,
    /// Per-thread register demand.
    pub num_regs: u8,
    /// Per-CTA shared-memory demand in bytes.
    pub smem_bytes: u32,
    /// Constant-bank contents.
    pub const_words: Vec<u32>,
    /// Grid extent in blocks (x, y).
    pub grid_x: u32,
    /// Grid extent in blocks, y component.
    pub grid_y: u32,
    /// Block extent in threads, x component.
    pub block_x: u32,
    /// Block extent in threads, y component.
    pub block_y: u32,
    /// Warp width the streams were recorded under; replay requires the
    /// same width (lane masks are not portable across widths).
    pub warp_size: u32,
    /// Host-to-device bytes attributed to this launch.
    pub h2d_bytes: u64,
    /// Device-to-host bytes attributed to this launch.
    pub d2h_bytes: u64,
    /// Per-warp streams, sorted by (block_y, block_x, warp).
    pub streams: Vec<WarpStream>,
}

impl KernelTrace {
    /// Encodes the trace into the v1 byte format, digest footer
    /// included.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = TraceWriter::new();
        w.put_raw(&TRACE_MAGIC);
        w.put_u16(TRACE_VERSION);
        w.put_str(&self.name);
        w.put_u8(self.num_regs);
        w.put_varint(self.smem_bytes as u64);
        w.put_varint(self.grid_x as u64);
        w.put_varint(self.grid_y as u64);
        w.put_varint(self.block_x as u64);
        w.put_varint(self.block_y as u64);
        w.put_varint(self.warp_size as u64);
        w.put_varint(self.h2d_bytes);
        w.put_varint(self.d2h_bytes);
        w.put_varint(self.const_words.len() as u64);
        for &word in &self.const_words {
            w.put_varint(word as u64);
        }
        w.put_varint(self.code.len() as u64);
        for &instr in &self.code {
            put_instr(&mut w, instr);
        }
        w.put_varint(self.streams.len() as u64);
        for s in &self.streams {
            w.put_varint(s.block_x as u64);
            w.put_varint(s.block_y as u64);
            w.put_varint(s.warp as u64);
            w.put_varint(s.pcs.len() as u64);
            for &pc in &s.pcs {
                w.put_varint(pc as u64);
            }
            w.put_varint(s.branch_taken.len() as u64);
            for &mask in &s.branch_taken {
                w.put_varint(mask);
            }
            w.put_varint(s.mem_addrs.len() as u64);
            for &addr in &s.mem_addrs {
                w.put_varint(addr as u64);
            }
        }
        let mut bytes = w.into_bytes();
        let digest = TraceDigest::compute(&bytes);
        bytes.extend_from_slice(&digest.0);
        bytes
    }

    /// Decodes and validates a v1 trace. Hostile input — truncation,
    /// flipped bits, absurd counts, inconsistent geometry — yields a
    /// typed [`TraceError`]; no partially-decoded value escapes.
    pub fn decode(bytes: &[u8]) -> Result<Self, TraceError> {
        let mut r = TraceReader::new(bytes);
        if r.raw(4, "magic")? != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = r.u16("version")?;
        if version != TRACE_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        // Verify the footer digest before decoding the body: a bit
        // flip then fails here even when it would also parse.
        if bytes.len() < 4 + 2 + 16 {
            return Err(TraceError::Truncated {
                what: "digest footer",
            });
        }
        let body_end = bytes.len() - 16;
        let body = bytes.get(..body_end).ok_or(TraceError::Truncated {
            what: "digest footer",
        })?;
        let footer: [u8; 16] = bytes
            .get(body_end..)
            .and_then(|f| f.try_into().ok())
            .ok_or(TraceError::Truncated {
                what: "digest footer",
            })?;
        if TraceDigest::compute(body).0 != footer {
            return Err(TraceError::DigestMismatch);
        }
        let mut r_body = TraceReader::new(body);
        r_body.raw(4, "magic")?;
        r_body.u16("version")?;
        let mut r = r_body;

        let name = r.str(MAX_NAME_BYTES, "kernel name")?;
        let num_regs = r.u8("register count")?;
        let smem_bytes = r.varint_u32("shared-memory bytes")?;
        let grid_x = r.varint_u32("grid x")?;
        let grid_y = r.varint_u32("grid y")?;
        let block_x = r.varint_u32("block x")?;
        let block_y = r.varint_u32("block y")?;
        let warp_size = r.varint_u32("warp size")?;
        let h2d_bytes = r.varint("h2d bytes")?;
        let d2h_bytes = r.varint("d2h bytes")?;
        let n_const = r.count(MAX_CONST_WORDS, 1, "constant words")?;
        let mut const_words = Vec::with_capacity(n_const);
        for _ in 0..n_const {
            const_words.push(r.varint_u32("constant word")?);
        }
        let n_code = r.count(MAX_CODE, 1, "code")?;
        let mut code = Vec::with_capacity(n_code);
        for _ in 0..n_code {
            code.push(get_instr(&mut r)?);
        }
        let n_streams = r.count(MAX_STREAMS, 1, "streams")?;
        let mut streams = Vec::with_capacity(n_streams);
        for _ in 0..n_streams {
            let s_block_x = r.varint_u32("stream block x")?;
            let s_block_y = r.varint_u32("stream block y")?;
            let warp = r.varint_u32("stream warp index")?;
            let n_pcs = r.count(MAX_EVENTS_PER_WARP, 1, "stream pcs")?;
            let mut pcs = Vec::with_capacity(n_pcs);
            for _ in 0..n_pcs {
                pcs.push(r.varint_u32("pc")?);
            }
            let n_bra = r.count(MAX_EVENTS_PER_WARP, 1, "branch masks")?;
            let mut branch_taken = Vec::with_capacity(n_bra);
            for _ in 0..n_bra {
                branch_taken.push(r.varint("branch mask")?);
            }
            let n_mem = r.count(MAX_EVENTS_PER_WARP, 1, "memory addresses")?;
            let mut mem_addrs = Vec::with_capacity(n_mem);
            for _ in 0..n_mem {
                mem_addrs.push(r.varint_u32("memory address")?);
            }
            streams.push(WarpStream {
                block_x: s_block_x,
                block_y: s_block_y,
                warp,
                pcs,
                branch_taken,
                mem_addrs,
            });
        }
        r.finish("trace body")?;
        let trace = KernelTrace {
            name,
            code,
            num_regs,
            smem_bytes,
            const_words,
            grid_x,
            grid_y,
            block_x,
            block_y,
            warp_size,
            h2d_bytes,
            d2h_bytes,
            streams,
        };
        trace.validate()?;
        Ok(trace)
    }

    /// Structural invariants beyond what parsing enforces: sane
    /// geometry (the simulator's `LaunchConfig` constructor panics on
    /// bad dimensions, so they must be rejected here) and streams that
    /// actually belong to the launch.
    pub fn validate(&self) -> Result<(), TraceError> {
        let block_threads = self.block_x as u64 * self.block_y as u64;
        if block_threads == 0 || block_threads > MAX_BLOCK_THREADS {
            return Err(TraceError::Malformed(format!(
                "block ({}, {}) outside 1..={MAX_BLOCK_THREADS} threads",
                self.block_x, self.block_y
            )));
        }
        let grid_blocks = self.grid_x as u64 * self.grid_y as u64;
        if grid_blocks == 0 || grid_blocks > MAX_GRID_BLOCKS {
            return Err(TraceError::Malformed(format!(
                "grid ({}, {}) outside 1..={MAX_GRID_BLOCKS} blocks",
                self.grid_x, self.grid_y
            )));
        }
        if self.warp_size == 0 || self.warp_size > MAX_WARP_SIZE {
            return Err(TraceError::Malformed(format!(
                "warp size {} outside 1..={MAX_WARP_SIZE}",
                self.warp_size
            )));
        }
        let warps_per_block = (block_threads as u32).div_ceil(self.warp_size);
        let mut seen = std::collections::BTreeSet::new();
        for s in &self.streams {
            if s.block_x >= self.grid_x || s.block_y >= self.grid_y {
                return Err(TraceError::Malformed(format!(
                    "stream block ({}, {}) outside grid ({}, {})",
                    s.block_x, s.block_y, self.grid_x, self.grid_y
                )));
            }
            if s.warp >= warps_per_block {
                return Err(TraceError::Malformed(format!(
                    "stream warp {} outside the block's {} warps",
                    s.warp, warps_per_block
                )));
            }
            if !seen.insert((s.block_y, s.block_x, s.warp)) {
                return Err(TraceError::Malformed(format!(
                    "duplicate stream for block ({}, {}) warp {}",
                    s.block_x, s.block_y, s.warp
                )));
            }
        }
        Ok(())
    }

    /// Reconstructs the kernel image for replay. Runs the ISA crate's
    /// full static validation (register ranges, branch targets, exit
    /// reachability), so a hostile trace cannot smuggle an ill-formed
    /// kernel into the pipeline.
    pub fn to_kernel(&self) -> Result<Kernel, TraceError> {
        Kernel::new(
            self.name.clone(),
            self.code.clone(),
            self.num_regs,
            self.smem_bytes,
            self.const_words.clone(),
        )
        .map_err(|e| TraceError::Malformed(format!("kernel image invalid: {e}")))
    }

    /// The launch geometry. Safe to call only after [`Self::validate`]
    /// (decode always validates); the dimensions are then within the
    /// constructor's asserted limits.
    pub fn launch_config(&self) -> LaunchConfig {
        LaunchConfig::new(
            Dim2::xy(self.grid_x, self.grid_y),
            Dim2::xy(self.block_x, self.block_y),
        )
    }

    /// Total issued warp instructions across all streams.
    pub fn warp_instructions(&self) -> u64 {
        self.streams.iter().map(|s| s.pcs.len() as u64).sum()
    }

    /// Total recorded memory-access lane addresses.
    pub fn mem_accesses(&self) -> u64 {
        self.streams.iter().map(|s| s.mem_addrs.len() as u64).sum()
    }

    /// The footer digest of this trace's encoding (its content
    /// address).
    pub fn content_digest(&self) -> TraceDigest {
        let bytes = self.encode();
        let mut footer = [0u8; 16];
        footer.copy_from_slice(&bytes[bytes.len() - 16..]);
        TraceDigest(footer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn roundtrip_synth_families() {
        for trace in [
            synth::stride_family(2, 2, 4, 3),
            synth::occupancy_family(3, 4, 8),
            synth::conflict_family(1, 2, 8, 2),
            synth::divergence_family(2, 1, 13),
        ] {
            let bytes = trace.encode();
            let back = KernelTrace::decode(&bytes).expect("roundtrip decodes");
            assert_eq!(back, trace);
        }
    }

    #[test]
    fn truncation_at_every_length_is_typed() {
        let bytes = synth::divergence_family(1, 1, 5).encode();
        for len in 0..bytes.len() {
            match KernelTrace::decode(&bytes[..len]) {
                Err(_) => {}
                Ok(_) => panic!("prefix of length {len} decoded as a full trace"),
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = synth::stride_family(1, 1, 1, 1).encode();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    KernelTrace::decode(&bad).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut bytes = synth::occupancy_family(1, 1, 1).encode();
        bytes[4] = 2;
        bytes[5] = 0;
        assert_eq!(
            KernelTrace::decode(&bytes),
            Err(TraceError::UnsupportedVersion(2))
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = synth::occupancy_family(1, 1, 1).encode();
        bytes[0] = b'X';
        assert_eq!(KernelTrace::decode(&bytes), Err(TraceError::BadMagic));
    }

    #[test]
    fn geometry_is_validated() {
        let mut trace = synth::stride_family(1, 1, 1, 1);
        trace.block_x = 2048; // over the 1024-thread architectural limit
        assert!(matches!(trace.validate(), Err(TraceError::Malformed(_))));
        let mut trace = synth::stride_family(1, 1, 1, 1);
        trace.grid_x = 0;
        assert!(matches!(trace.validate(), Err(TraceError::Malformed(_))));
        let mut trace = synth::stride_family(1, 1, 1, 1);
        trace.warp_size = 0;
        assert!(matches!(trace.validate(), Err(TraceError::Malformed(_))));
    }

    #[test]
    fn duplicate_streams_are_rejected() {
        let mut trace = synth::stride_family(1, 2, 1, 1);
        let dup = trace.streams[0].clone();
        trace.streams.push(dup);
        assert!(matches!(trace.validate(), Err(TraceError::Malformed(_))));
    }

    #[test]
    fn kernel_reconstruction_validates_the_image() {
        let mut trace = synth::stride_family(1, 1, 1, 1);
        trace.num_regs = 0; // every register reference is now out of range
        assert!(matches!(trace.to_kernel(), Err(TraceError::Malformed(_))));
    }
}

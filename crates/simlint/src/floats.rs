//! Float-determinism lints: reduction order and build-divergent math.
//!
//! The workspace's bit-identity contract (EXPERIMENTS.md is
//! byte-compared; serial and parallel engines must agree bit for bit)
//! makes floating-point arithmetic order-sensitive in a way integer
//! code is not: `(a + b) + c != a + (b + c)` for floats, so the *order*
//! of a reduction is part of the result. Two ways order sneaks out from
//! under the determinism lints:
//!
//! * [`FLOAT_REDUCE_ORDER`]: a float `sum`/`product`/`fold`/`reduce`
//!   whose iteration source does not guarantee an order — map
//!   `values()`/`keys()` views, parallel iterators, channel drains.
//!   The collection types may themselves be allowed (a `BTreeMap` is
//!   deterministic), but a reduction spelled over an order-ambiguous
//!   view deserves a justified marker saying why the order is fixed.
//! * [`FLOAT_CFG_DIVERGENCE`]: float arithmetic inside an item that
//!   only exists in some builds — `#[cfg(...)]` or
//!   `#[target_feature]` paths. Two hosts taking different branches of
//!   a `cfg` must still produce identical floats; any divergent float
//!   kernel needs a marker pointing at the test that pins both paths
//!   to the same bits (see `eval_ffma_lanes`' hardware-vs-libm
//!   differential test).
//!
//! Scope: the float-bearing result crates, `crates/{sim,power,pm}`
//! (see [`crate::scope`]). Test items are exempt.

use crate::syntax::{exempt_item, visit_exprs, Expr, Item, ItemKind, LitKind, Stmt};
use crate::{Diagnostic, SourceFile};

/// Float reduction over an iteration with no guaranteed order.
pub const FLOAT_REDUCE_ORDER: &str = "float_reduce_order";
/// Float arithmetic in a `#[cfg]`/`#[target_feature]`-divergent item.
pub const FLOAT_CFG_DIVERGENCE: &str = "float_cfg_divergence";

/// Reduction methods whose result depends on iteration order for
/// floats.
const REDUCERS: &[&str] = &["sum", "product", "fold", "reduce"];

/// Iteration sources that do not promise a stable order at the call
/// site.
const UNORDERED_SOURCES: &[&str] = &[
    "values",
    "keys",
    "into_values",
    "into_keys",
    "par_iter",
    "into_par_iter",
    "par_bridge",
    "try_iter",
];

/// Whether `e` mentions float-typed computation: an `f32`/`f64` path
/// segment or a float literal anywhere inside.
fn mentions_float(e: &Expr) -> bool {
    let mut hit = false;
    e.walk(&mut |node| match node {
        Expr::Lit {
            kind: LitKind::Float,
            ..
        } => hit = true,
        Expr::Path { segs, .. } if segs.iter().any(|s| s == "f32" || s == "f64") => hit = true,
        _ => {}
    });
    hit
}

/// Whether a reducer call is a *float* reduction: float turbofish
/// (`sum::<f64>()`) or float-mentioning arguments
/// (`fold(f64::NAN, ...)`, `fold(0.0, ...)`).
fn float_reducer(turbofish: &[String], args: &[Expr]) -> bool {
    turbofish.iter().any(|t| t == "f32" || t == "f64") || args.iter().any(mentions_float)
}

/// Flags order-ambiguous float reductions.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    visit_exprs(
        &file.ast.items,
        &|item| exempt_item(item, false),
        &mut |node| {
            let Expr::MethodCall {
                recv,
                method,
                turbofish,
                args,
                line,
            } = node
            else {
                return;
            };
            if !REDUCERS.contains(&method.as_str()) || !float_reducer(turbofish, args) {
                return;
            }
            let mut unordered: Option<&str> = None;
            recv.walk(&mut |r| {
                if let Expr::MethodCall { method, .. } = r {
                    if UNORDERED_SOURCES.contains(&method.as_str()) {
                        unordered = Some(method.as_str());
                    }
                }
            });
            if let Some(src) = unordered {
                out.push(file.diag(
                    *line,
                    FLOAT_REDUCE_ORDER,
                    format!(
                        "float `.{method}()` reduces over `.{src}()`, whose iteration \
                         order is not guaranteed at this call site; float addition is \
                         not associative, so fix the order (collect + sort, or index \
                         order) or justify why it is already stable"
                    ),
                ));
            }
        },
    );
    out.extend(divergence(file));
    out
}

/// Interned names of float SIMD intrinsics (`_mm*_..._ps/_pd`).
fn float_intrinsic(name: &str) -> bool {
    name.starts_with("_mm") && (name.ends_with("_ps") || name.ends_with("_pd"))
}

/// Whether this fn visibly computes on floats: `f32`/`f64` in the
/// signature, float literals/paths in the body, `mul_add`, or float
/// SIMD intrinsics.
fn fn_does_float_math(item: &Item) -> bool {
    if let Some(sig) = &item.sig {
        let ret_float = sig.ret.iter().any(|t| t == "f32" || t == "f64");
        let param_float = sig
            .params
            .iter()
            .any(|p| p.ty.iter().any(|t| t == "f32" || t == "f64"));
        if ret_float || param_float {
            return true;
        }
    }
    let mut hit = false;
    if let Some(body) = &item.body {
        body.walk_exprs(&mut |e| match e {
            Expr::Lit {
                kind: LitKind::Float,
                ..
            } => hit = true,
            Expr::Path { segs, .. }
                if segs
                    .iter()
                    .any(|s| s == "f32" || s == "f64" || float_intrinsic(s)) =>
            {
                hit = true;
            }
            Expr::MethodCall { method, .. } if method == "mul_add" => hit = true,
            _ => {}
        });
    }
    hit
}

/// Flags float-computing fns that exist only in some builds. One
/// finding per fn, at its declaration line; divergence inherits from
/// enclosing items (a fn inside `#[cfg(target_arch = ...)] mod` is
/// divergent even with clean attributes of its own).
fn divergence(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    fn rec(items: &[Item], in_test: bool, divergent: bool, out: &mut Vec<(u32, String)>) {
        for item in items {
            let in_test = in_test || item.is_test_only();
            let divergent = divergent || item.is_divergent();
            if item.kind == ItemKind::Fn && !in_test && divergent && fn_does_float_math(item) {
                out.push((
                    item.line,
                    item.name.clone().unwrap_or_else(|| "_".to_string()),
                ));
            }
            rec(&item.children, in_test, divergent, out);
            if let Some(body) = &item.body {
                let mut nested = Vec::new();
                body.walk_stmts(&mut |stmt| {
                    if let Stmt::Item(it) = stmt {
                        nested.push(it);
                    }
                });
                for it in nested {
                    rec(std::slice::from_ref(it), in_test, divergent, out);
                }
            }
        }
    }
    let mut hits = Vec::new();
    rec(&file.ast.items, false, false, &mut hits);
    for (line, name) in hits {
        out.push(file.diag(
            line,
            FLOAT_CFG_DIVERGENCE,
            format!(
                "`{name}` computes on floats but only exists under a `#[cfg]`/\
                 `#[target_feature]` gate; builds that take the other path must \
                 produce bit-identical results — add a differential test pinning \
                 both paths and justify with an allow marker"
            ),
        ));
    }
    out
}

//! Byte-level codec primitives shared by the job encoding, the result
//! encoding, the on-disk cache entries and the TCP frames.
//!
//! Everything on the wire and on disk is little-endian, fixed-width,
//! and *exact*: `f64` values travel as their IEEE-754 bit patterns
//! ([`Writer::put_f64`] / [`Reader::f64`]), so a decoded
//! [`gpusimpow_power::ScopedPowerReport`] compares bit-for-bit equal to
//! the one the simulator produced. That exactness is what makes the
//! content-addressed cache sound: a cached result *is* the result.

use std::fmt;

/// Hard ceiling on any length field (frames, strings, blobs). A power
/// trace of a long kernel is the largest payload we ship; 64 MiB is two
/// orders of magnitude above anything the suite produces and cheap
/// insurance against a corrupt length field allocating the moon.
pub const MAX_LEN: usize = 64 << 20;

/// A decode (or transport) failure.
#[derive(Debug)]
pub enum WireError {
    /// The buffer ended before the announced content did.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Bytes needed beyond the buffer end.
        missing: usize,
    },
    /// Structurally valid bytes with an invalid meaning (bad tag, bad
    /// magic, version mismatch, non-UTF-8 string, ...).
    Malformed(String),
    /// A length field exceeded [`MAX_LEN`].
    TooLarge(usize),
    /// The underlying socket failed.
    Io(std::io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what, missing } => {
                write!(f, "truncated {what}: {missing} byte(s) missing")
            }
            WireError::Malformed(msg) => write!(f, "malformed message: {msg}"),
            WireError::TooLarge(n) => {
                write!(f, "length {n} exceeds the {MAX_LEN}-byte wire limit")
            }
            WireError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// An append-only byte buffer with typed put operations.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a `u32`-length-prefixed byte blob.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Appends raw bytes with no length prefix (fixed-width fields).
    pub fn put_raw(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// A cursor over a byte slice with typed, bounds-checked reads.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                what,
                missing: n - self.remaining(),
            });
        }
        let end = self.pos.checked_add(n).ok_or(WireError::TooLarge(n))?;
        let out = self
            .buf
            .get(self.pos..end)
            .ok_or(WireError::Truncated { what, missing: n })?;
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        let b = self.take(1, what)?;
        b.first()
            .copied()
            .ok_or(WireError::Truncated { what, missing: 1 })
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let bytes = self
            .take(2, what)?
            .try_into()
            .map_err(|_| WireError::Truncated { what, missing: 2 })?;
        Ok(u16::from_le_bytes(bytes))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let bytes = self
            .take(4, what)?
            .try_into()
            .map_err(|_| WireError::Truncated { what, missing: 4 })?;
        Ok(u32::from_le_bytes(bytes))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let bytes = self
            .take(8, what)?
            .try_into()
            .map_err(|_| WireError::Truncated { what, missing: 8 })?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// Reads an `f64` from its exact bit pattern.
    pub fn f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<String, WireError> {
        let bytes = self.bytes(what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed(format!("{what}: invalid UTF-8")))
    }

    /// Reads a `u32`-length-prefixed byte blob.
    pub fn bytes(&mut self, what: &'static str) -> Result<&'a [u8], WireError> {
        let len = self.u32(what)? as usize;
        if len > MAX_LEN {
            return Err(WireError::TooLarge(len));
        }
        self.take(len, what)
    }

    /// Reads `n` raw bytes (a fixed-width field).
    pub fn raw(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        self.take(n, what)
    }

    /// Asserts the buffer was consumed exactly; trailing garbage after
    /// a valid prefix is corruption, not padding.
    pub fn finish(&self, what: &'static str) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Malformed(format!(
                "{what}: {} trailing byte(s)",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip_is_exact() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(0.1 + 0.2); // a value with no short decimal form
        w.put_f64(f64::NEG_INFINITY);
        w.put_str("kernel µ");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u16("b").unwrap(), 0xBEEF);
        assert_eq!(r.u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("d").unwrap(), u64::MAX - 1);
        assert_eq!(r.f64("e").unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert!(r.f64("f").unwrap().is_infinite());
        assert_eq!(r.str("g").unwrap(), "kernel µ");
        assert_eq!(r.bytes("h").unwrap(), &[1, 2, 3]);
        r.finish("buffer").unwrap();
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = Writer::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        match r.u64("field") {
            Err(WireError::Truncated { missing: 3, .. }) => {}
            other => panic!("expected 3 missing bytes, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.bytes("blob"), Err(WireError::TooLarge(_))));
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let bytes = [0u8; 3];
        let mut r = Reader::new(&bytes);
        let _ = r.u8("x").unwrap();
        assert!(matches!(r.finish("message"), Err(WireError::Malformed(_))));
    }
}

//! `hotspot` (Rodinia): processor temperature estimation.
//!
//! A 2-D five-point stencil over the die: each block stages its tile in
//! shared memory; threads on tile edges fetch halo cells from global
//! memory (mild, structured divergence), interior threads read
//! neighbours from shared memory. The host ping-pongs two temperature
//! grids over several time steps.

use gpusimpow_isa::{CmpOp, Dim2, KernelBuilder, LaunchConfig, Operand, Reg, SpecialReg};
use gpusimpow_sim::{DevicePtr, Gpu, LaunchReport};

use crate::common::{check_f32, BenchError, Benchmark, Origin, XorShift};

const TILE: u32 = 16;
/// Stencil coefficients (Rodinia's step/Cap, 1/Rx, 1/Ry, 1/Rz flavour).
const C_CENTER: f32 = 0.8;
const C_NEIGHBOR: f32 = 0.04;
const C_POWER: f32 = 0.05;

/// The hotspot benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Hotspot {
    /// Grid edge (multiple of 16).
    pub n: u32,
    /// Time steps.
    pub steps: u32,
}

impl Default for Hotspot {
    fn default() -> Self {
        Hotspot { n: 64, steps: 2 }
    }
}

impl Benchmark for Hotspot {
    fn name(&self) -> &'static str {
        "hotspot"
    }

    fn origin(&self) -> Origin {
        Origin::Rodinia
    }

    fn description(&self) -> &'static str {
        "Processor temperature estimation"
    }

    fn kernel_names(&self) -> Vec<String> {
        vec!["hotspot".to_string()]
    }

    fn run(&self, gpu: &mut Gpu) -> Result<Vec<LaunchReport>, BenchError> {
        let n = self.n;
        assert!(n.is_multiple_of(TILE));
        let cells = n * n;
        let mut rng = XorShift::new(0x407);
        let temp0: Vec<f32> = (0..cells).map(|_| rng.next_range(320.0, 340.0)).collect();
        let power: Vec<f32> = (0..cells).map(|_| rng.next_range(0.0, 2.0)).collect();

        let d_a = gpu.alloc_f32(cells);
        let d_b = gpu.alloc_f32(cells);
        let d_p = gpu.alloc_f32(cells);
        gpu.h2d_f32(d_a, &temp0);
        gpu.h2d_f32(d_p, &power);

        let launch = LaunchConfig::new(Dim2::xy(n / TILE, n / TILE), Dim2::xy(TILE, TILE));
        let mut reports = Vec::new();
        let mut src = d_a;
        let mut dst = d_b;
        for _ in 0..self.steps {
            let kernel = build_kernel(src.addr(), dst.addr(), d_p.addr(), n);
            reports.push(gpu.launch(&kernel, launch)?);
            std::mem::swap(&mut src, &mut dst);
        }

        let got = read_back(gpu, src, cells);
        let want = reference(&temp0, &power, n, self.steps);
        check_f32("hotspot", &got, &want, 1e-3)?;
        Ok(reports)
    }
}

fn read_back(gpu: &mut Gpu, ptr: DevicePtr, cells: u32) -> Vec<f32> {
    gpu.d2h_f32(ptr, cells as usize)
}

/// CPU reference stencil.
pub fn reference(temp0: &[f32], power: &[f32], n: u32, steps: u32) -> Vec<f32> {
    let n = n as usize;
    let mut cur = temp0.to_vec();
    let mut next = vec![0f32; n * n];
    for _ in 0..steps {
        for r in 0..n {
            for c in 0..n {
                let at = |rr: isize, cc: isize| -> f32 {
                    let rr = rr.clamp(0, n as isize - 1) as usize;
                    let cc = cc.clamp(0, n as isize - 1) as usize;
                    cur[rr * n + cc]
                };
                let (r, c) = (r as isize, c as isize);
                let sum = at(r - 1, c) + at(r + 1, c) + at(r, c - 1) + at(r, c + 1);
                next[r as usize * n + c as usize] = C_CENTER * at(r, c)
                    + C_NEIGHBOR * sum
                    + C_POWER * power[r as usize * n + c as usize];
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

fn build_kernel(src: u32, dst: u32, power: u32, n: u32) -> gpusimpow_isa::Kernel {
    let mut k = KernelBuilder::new("hotspot");
    let smem = k.alloc_smem(TILE * TILE * 4);

    let tx = Reg(0);
    let ty = Reg(1);
    k.s2r(tx, SpecialReg::TidX);
    k.s2r(ty, SpecialReg::TidY);
    let bx = Reg(2);
    let by = Reg(3);
    k.s2r(bx, SpecialReg::CtaIdX);
    k.s2r(by, SpecialReg::CtaIdY);

    // Global cell coordinates.
    let col = Reg(4);
    let row = Reg(5);
    k.imad(col, bx, Operand::imm_u32(TILE), tx);
    k.imad(row, by, Operand::imm_u32(TILE), ty);

    // gaddr = (row*n + col) * 4
    let gidx = Reg(6);
    k.imad(gidx, row, Operand::imm_u32(n), col);
    let gaddr = Reg(7);
    k.shl(gaddr, gidx, Operand::imm_u32(2));

    // smem[ty][tx] = src[row][col]
    let center = Reg(8);
    k.ld_global(center, gaddr, src as i32);
    let saddr = Reg(9);
    k.imad(saddr, ty, Operand::imm_u32(TILE), tx);
    k.shl(saddr, saddr, Operand::imm_u32(2));
    k.iadd(saddr, saddr, Operand::imm_u32(smem));
    k.st_shared(center, saddr, 0);
    k.bar();

    // Neighbour fetch: from smem when inside the tile, else a clamped
    // global load. emit_neighbor(dreg, is_edge_pred, smem_off, grow, gcol)
    let nvals = [Reg(10), Reg(11), Reg(12), Reg(13)];
    // (d_ty, d_tx): N, S, W, E
    let dirs: [(i32, i32); 4] = [(-1, 0), (1, 0), (0, -1), (0, 1)];
    let pred = Reg(14);
    let tmp = Reg(15);
    let tmp2 = Reg(16);
    for (i, (dy, dx)) in dirs.iter().enumerate() {
        let dest = nvals[i];
        // Edge test against the tile.
        match (dy, dx) {
            (-1, 0) => k.isetp(CmpOp::Gt, pred, ty, Operand::imm_u32(0)),
            (1, 0) => k.isetp(CmpOp::Lt, pred, ty, Operand::imm_u32(TILE - 1)),
            (0, -1) => k.isetp(CmpOp::Gt, pred, tx, Operand::imm_u32(0)),
            _ => k.isetp(CmpOp::Lt, pred, tx, Operand::imm_u32(TILE - 1)),
        };
        k.if_then_else(
            pred,
            |k| {
                // Inside the tile: shared load at offset (dy*TILE + dx)*4.
                let off = (dy * TILE as i32 + dx) * 4;
                k.ld_shared(dest, saddr, off);
            },
            |k| {
                // Halo: clamped global load.
                // nr = clamp(row+dy, 0, n-1), nc = clamp(col+dx, 0, n-1)
                k.iadd(tmp, row, Operand::imm_i32(*dy));
                k.imax(tmp, tmp, Operand::imm_u32(0));
                k.imin(tmp, tmp, Operand::imm_u32(n - 1));
                k.iadd(tmp2, col, Operand::imm_i32(*dx));
                k.imax(tmp2, tmp2, Operand::imm_u32(0));
                k.imin(tmp2, tmp2, Operand::imm_u32(n - 1));
                k.imad(tmp, tmp, Operand::imm_u32(n), tmp2);
                k.shl(tmp, tmp, Operand::imm_u32(2));
                k.ld_global(dest, tmp, src as i32);
            },
        );
    }

    // out = C_CENTER*center + C_NEIGHBOR*(n+s+w+e) + C_POWER*power
    let acc = Reg(17);
    k.fadd(acc, nvals[0], nvals[1]);
    k.fadd(acc, acc, nvals[2]);
    k.fadd(acc, acc, nvals[3]);
    k.fmul(acc, acc, Operand::imm_f32(C_NEIGHBOR));
    k.ffma(acc, center, Operand::imm_f32(C_CENTER), acc);
    let pw = Reg(18);
    k.ld_global(pw, gaddr, power as i32);
    k.ffma(acc, pw, Operand::imm_f32(C_POWER), acc);
    k.st_global(acc, gaddr, dst as i32);
    k.exit();
    k.build().expect("hotspot kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusimpow_sim::GpuConfig;

    #[test]
    fn runs_and_verifies_on_gt240() {
        let mut gpu = Gpu::new(GpuConfig::gt240()).unwrap();
        let reports = Hotspot { n: 32, steps: 2 }.run(&mut gpu).unwrap();
        assert_eq!(reports.len(), 2, "one report per time step");
        let s = &reports[0].stats;
        assert!(s.divergent_branches > 0, "halo threads diverge");
        assert!(s.smem_accesses > 0);
    }
}

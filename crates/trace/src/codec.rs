//! Instruction (de)serialisation for the trace instruction table.
//!
//! One tag byte per [`Instr`] variant in declaration order, then the
//! fields: registers as raw bytes, operands as a reg/imm tag + payload,
//! enum operands as explicit index bytes (no `transmute`, so a flipped
//! byte decodes to a typed error instead of an invalid discriminant),
//! branch targets as varints and byte offsets zigzag-folded.

use gpusimpow_isa::{CmpOp, FpOp, Instr, IntOp, MemSpace, Operand, Reg, SfuOp, SpecialReg};

use crate::wire::{TraceError, TraceReader, TraceWriter};

const OPERAND_REG: u8 = 0;
const OPERAND_IMM: u8 = 1;

fn put_reg(w: &mut TraceWriter, r: Reg) {
    w.put_u8(r.0);
}

fn get_reg(r: &mut TraceReader<'_>) -> Result<Reg, TraceError> {
    Ok(Reg(r.u8("register")?))
}

fn put_operand(w: &mut TraceWriter, op: Operand) {
    match op {
        Operand::Reg(reg) => {
            w.put_u8(OPERAND_REG);
            put_reg(w, reg);
        }
        Operand::Imm(v) => {
            w.put_u8(OPERAND_IMM);
            w.put_varint(v as u64);
        }
    }
}

fn get_operand(r: &mut TraceReader<'_>) -> Result<Operand, TraceError> {
    match r.u8("operand tag")? {
        OPERAND_REG => Ok(Operand::Reg(get_reg(r)?)),
        OPERAND_IMM => Ok(Operand::Imm(r.varint_u32("immediate")?)),
        t => Err(TraceError::Malformed(format!("unknown operand tag {t}"))),
    }
}

macro_rules! enum_codec {
    ($put:ident, $get:ident, $ty:ident, $what:literal, [$($variant:ident = $idx:literal),+ $(,)?]) => {
        fn $put(w: &mut TraceWriter, v: $ty) {
            let idx: u8 = match v {
                $($ty::$variant => $idx,)+
            };
            w.put_u8(idx);
        }

        fn $get(r: &mut TraceReader<'_>) -> Result<$ty, TraceError> {
            match r.u8($what)? {
                $($idx => Ok($ty::$variant),)+
                t => Err(TraceError::Malformed(format!(
                    concat!("unknown ", $what, " {}"), t
                ))),
            }
        }
    };
}

enum_codec!(
    put_int_op,
    get_int_op,
    IntOp,
    "integer op",
    [
        Add = 0,
        Sub = 1,
        Mul = 2,
        Min = 3,
        Max = 4,
        And = 5,
        Or = 6,
        Xor = 7,
        Shl = 8,
        Shr = 9,
        Sra = 10,
    ]
);
enum_codec!(
    put_fp_op,
    get_fp_op,
    FpOp,
    "float op",
    [Add = 0, Sub = 1, Mul = 2, Min = 3, Max = 4,]
);
enum_codec!(
    put_sfu_op,
    get_sfu_op,
    SfuOp,
    "sfu op",
    [
        Rcp = 0,
        Sqrt = 1,
        Rsqrt = 2,
        Sin = 3,
        Cos = 4,
        Ex2 = 5,
        Lg2 = 6,
    ]
);
enum_codec!(
    put_cmp_op,
    get_cmp_op,
    CmpOp,
    "compare op",
    [Eq = 0, Ne = 1, Lt = 2, Le = 3, Gt = 4, Ge = 5,]
);
enum_codec!(
    put_space,
    get_space,
    MemSpace,
    "memory space",
    [Global = 0, Shared = 1, Const = 2,]
);
enum_codec!(
    put_sreg,
    get_sreg,
    SpecialReg,
    "special register",
    [
        TidX = 0,
        TidY = 1,
        CtaIdX = 2,
        CtaIdY = 3,
        NTidX = 4,
        NTidY = 5,
        NCtaIdX = 6,
        NCtaIdY = 7,
    ]
);

pub(crate) fn put_instr(w: &mut TraceWriter, instr: Instr) {
    match instr {
        Instr::IAlu { op, dst, a, b } => {
            w.put_u8(0);
            put_int_op(w, op);
            put_reg(w, dst);
            put_operand(w, a);
            put_operand(w, b);
        }
        Instr::IMad { dst, a, b, c } => {
            w.put_u8(1);
            put_reg(w, dst);
            put_operand(w, a);
            put_operand(w, b);
            put_operand(w, c);
        }
        Instr::FAlu { op, dst, a, b } => {
            w.put_u8(2);
            put_fp_op(w, op);
            put_reg(w, dst);
            put_operand(w, a);
            put_operand(w, b);
        }
        Instr::FFma { dst, a, b, c } => {
            w.put_u8(3);
            put_reg(w, dst);
            put_operand(w, a);
            put_operand(w, b);
            put_operand(w, c);
        }
        Instr::Sfu { op, dst, a } => {
            w.put_u8(4);
            put_sfu_op(w, op);
            put_reg(w, dst);
            put_operand(w, a);
        }
        Instr::ISetp { op, dst, a, b } => {
            w.put_u8(5);
            put_cmp_op(w, op);
            put_reg(w, dst);
            put_operand(w, a);
            put_operand(w, b);
        }
        Instr::FSetp { op, dst, a, b } => {
            w.put_u8(6);
            put_cmp_op(w, op);
            put_reg(w, dst);
            put_operand(w, a);
            put_operand(w, b);
        }
        Instr::I2F { dst, a } => {
            w.put_u8(7);
            put_reg(w, dst);
            put_operand(w, a);
        }
        Instr::F2I { dst, a } => {
            w.put_u8(8);
            put_reg(w, dst);
            put_operand(w, a);
        }
        Instr::Mov { dst, src } => {
            w.put_u8(9);
            put_reg(w, dst);
            put_operand(w, src);
        }
        Instr::Sel { dst, cond, a, b } => {
            w.put_u8(10);
            put_reg(w, dst);
            put_reg(w, cond);
            put_operand(w, a);
            put_operand(w, b);
        }
        Instr::S2R { dst, sr } => {
            w.put_u8(11);
            put_reg(w, dst);
            put_sreg(w, sr);
        }
        Instr::Ld {
            space,
            dst,
            addr,
            offset,
        } => {
            w.put_u8(12);
            put_space(w, space);
            put_reg(w, dst);
            put_reg(w, addr);
            w.put_varint_i32(offset);
        }
        Instr::St {
            space,
            src,
            addr,
            offset,
        } => {
            w.put_u8(13);
            put_space(w, space);
            put_reg(w, src);
            put_reg(w, addr);
            w.put_varint_i32(offset);
        }
        Instr::Bra {
            cond,
            negate,
            target,
            reconv,
        } => {
            w.put_u8(14);
            put_reg(w, cond);
            w.put_u8(negate as u8);
            w.put_varint(target as u64);
            w.put_varint(reconv as u64);
        }
        Instr::Jmp { target } => {
            w.put_u8(15);
            w.put_varint(target as u64);
        }
        Instr::Bar => w.put_u8(16),
        Instr::Exit => w.put_u8(17),
        Instr::Nop => w.put_u8(18),
    }
}

pub(crate) fn get_instr(r: &mut TraceReader<'_>) -> Result<Instr, TraceError> {
    Ok(match r.u8("instruction tag")? {
        0 => Instr::IAlu {
            op: get_int_op(r)?,
            dst: get_reg(r)?,
            a: get_operand(r)?,
            b: get_operand(r)?,
        },
        1 => Instr::IMad {
            dst: get_reg(r)?,
            a: get_operand(r)?,
            b: get_operand(r)?,
            c: get_operand(r)?,
        },
        2 => Instr::FAlu {
            op: get_fp_op(r)?,
            dst: get_reg(r)?,
            a: get_operand(r)?,
            b: get_operand(r)?,
        },
        3 => Instr::FFma {
            dst: get_reg(r)?,
            a: get_operand(r)?,
            b: get_operand(r)?,
            c: get_operand(r)?,
        },
        4 => Instr::Sfu {
            op: get_sfu_op(r)?,
            dst: get_reg(r)?,
            a: get_operand(r)?,
        },
        5 => Instr::ISetp {
            op: get_cmp_op(r)?,
            dst: get_reg(r)?,
            a: get_operand(r)?,
            b: get_operand(r)?,
        },
        6 => Instr::FSetp {
            op: get_cmp_op(r)?,
            dst: get_reg(r)?,
            a: get_operand(r)?,
            b: get_operand(r)?,
        },
        7 => Instr::I2F {
            dst: get_reg(r)?,
            a: get_operand(r)?,
        },
        8 => Instr::F2I {
            dst: get_reg(r)?,
            a: get_operand(r)?,
        },
        9 => Instr::Mov {
            dst: get_reg(r)?,
            src: get_operand(r)?,
        },
        10 => Instr::Sel {
            dst: get_reg(r)?,
            cond: get_reg(r)?,
            a: get_operand(r)?,
            b: get_operand(r)?,
        },
        11 => Instr::S2R {
            dst: get_reg(r)?,
            sr: get_sreg(r)?,
        },
        12 => Instr::Ld {
            space: get_space(r)?,
            dst: get_reg(r)?,
            addr: get_reg(r)?,
            offset: r.varint_i32("load offset")?,
        },
        13 => Instr::St {
            space: get_space(r)?,
            src: get_reg(r)?,
            addr: get_reg(r)?,
            offset: r.varint_i32("store offset")?,
        },
        14 => Instr::Bra {
            cond: get_reg(r)?,
            negate: match r.u8("branch negate flag")? {
                0 => false,
                1 => true,
                t => {
                    return Err(TraceError::Malformed(format!(
                        "branch negate flag must be 0/1, got {t}"
                    )))
                }
            },
            target: r.varint_u32("branch target")?,
            reconv: r.varint_u32("branch reconvergence pc")?,
        },
        15 => Instr::Jmp {
            target: r.varint_u32("jump target")?,
        },
        16 => Instr::Bar,
        17 => Instr::Exit,
        18 => Instr::Nop,
        t => {
            return Err(TraceError::Malformed(format!(
                "unknown instruction tag {t}"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instrs() -> Vec<Instr> {
        vec![
            Instr::IAlu {
                op: IntOp::Sra,
                dst: Reg(3),
                a: Operand::Reg(Reg(1)),
                b: Operand::Imm(u32::MAX),
            },
            Instr::IMad {
                dst: Reg(0),
                a: Operand::Reg(Reg(1)),
                b: Operand::Imm(7),
                c: Operand::Reg(Reg(2)),
            },
            Instr::FAlu {
                op: FpOp::Max,
                dst: Reg(9),
                a: Operand::Imm(1.5f32.to_bits()),
                b: Operand::Reg(Reg(8)),
            },
            Instr::FFma {
                dst: Reg(4),
                a: Operand::Reg(Reg(5)),
                b: Operand::Reg(Reg(6)),
                c: Operand::Imm(0),
            },
            Instr::Sfu {
                op: SfuOp::Rsqrt,
                dst: Reg(2),
                a: Operand::Reg(Reg(2)),
            },
            Instr::ISetp {
                op: CmpOp::Le,
                dst: Reg(1),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(42),
            },
            Instr::FSetp {
                op: CmpOp::Ne,
                dst: Reg(1),
                a: Operand::Imm(0),
                b: Operand::Reg(Reg(3)),
            },
            Instr::I2F {
                dst: Reg(7),
                a: Operand::Reg(Reg(7)),
            },
            Instr::F2I {
                dst: Reg(7),
                a: Operand::Imm(3.25f32.to_bits()),
            },
            Instr::Mov {
                dst: Reg(0),
                src: Operand::Imm(0xdead_beef),
            },
            Instr::Sel {
                dst: Reg(5),
                cond: Reg(1),
                a: Operand::Reg(Reg(2)),
                b: Operand::Reg(Reg(3)),
            },
            Instr::S2R {
                dst: Reg(0),
                sr: SpecialReg::NCtaIdY,
            },
            Instr::Ld {
                space: MemSpace::Shared,
                dst: Reg(1),
                addr: Reg(0),
                offset: -128,
            },
            Instr::St {
                space: MemSpace::Global,
                src: Reg(2),
                addr: Reg(0),
                offset: 2048,
            },
            Instr::Bra {
                cond: Reg(1),
                negate: true,
                target: 17,
                reconv: 19,
            },
            Instr::Jmp { target: 3 },
            Instr::Bar,
            Instr::Exit,
            Instr::Nop,
        ]
    }

    #[test]
    fn every_variant_roundtrips() {
        let instrs = sample_instrs();
        let mut w = TraceWriter::new();
        for &i in &instrs {
            put_instr(&mut w, i);
        }
        let bytes = w.into_bytes();
        let mut r = TraceReader::new(&bytes);
        for &i in &instrs {
            assert_eq!(get_instr(&mut r).unwrap(), i);
        }
        r.finish("instructions").unwrap();
    }

    #[test]
    fn unknown_tags_are_typed_errors() {
        for bad in [[19u8], [200u8], [255u8]] {
            let mut r = TraceReader::new(&bad);
            assert!(matches!(get_instr(&mut r), Err(TraceError::Malformed(_))));
        }
    }
}

//! Unit-safety lint: keep energy/power/time math inside the newtypes.
//!
//! `crates/tech` provides `Joules`, `Watts`, `Seconds`, `Volts`,
//! `Hertz` and `Cycles` with exactly the physically meaningful
//! operators (`Energy / Time = Power`, `Cycles / Freq = Time`, …).
//! Dimensional bugs enter when code unwraps a quantity with an
//! extractor like `.watts()` and keeps computing on the raw `f64` —
//! the compiler can no longer see that `joules * hertz` was meant.
//!
//! This pass flags an extractor call whose result immediately feeds a
//! `*` or `/`. Two regions are exempt by construction:
//!
//! * `#[cfg(test)]` / `#[test]` code — assertions legitimately compare
//!   raw magnitudes;
//! * `Display`/`Debug` impls — percent columns and unit formatting are
//!   rendering, not physics, and rewriting them through newtype
//!   division would perturb float bit-identity of committed reports.
//!
//! Anything else needs either a typed rewrite (preferred — see
//! `Voltage::squared` replacing `vdd.volts() * vdd.volts()`) or a
//! justified `// simlint: allow(raw_unit_math): …` marker.

use crate::lexer::{TokKind, Token};
use crate::{fmt_impl_regions, in_regions, test_regions, Diagnostic, SourceFile};

/// Raw `f64` multiplication/division on an unwrapped unit value.
pub const RAW_UNIT_MATH: &str = "raw_unit_math";

/// Methods that unwrap a `gpusimpow_tech::units` newtype to `f64`.
const EXTRACTORS: &[&str] = &[
    "joules",
    "picojoules",
    "watts",
    "milliwatts",
    "seconds",
    "nanos",
    "millis",
    "hertz",
    "mhz",
    "volts",
    "amperes",
    "farads",
];

/// Walks left from the `.` of an extractor call across the method-call
/// chain (`s.total().watts()` → past `total()`, past `s`) and returns
/// the first token *before* the chain — the operator, if any, whose
/// right operand the extracted value is.
fn token_before_chain(toks: &[Token], dot: usize) -> Option<&Token> {
    let mut j = dot;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        match t.kind {
            TokKind::Ident | TokKind::Num => continue,
            TokKind::Punct => match t.text.as_str() {
                "." | ":" => continue,
                ")" | "]" => {
                    // Skip back over the balanced group.
                    let close = t.text.as_str();
                    let open = if close == ")" { "(" } else { "[" };
                    let mut depth = 1usize;
                    while j > 0 && depth > 0 {
                        j -= 1;
                        if toks[j].kind == TokKind::Punct {
                            if toks[j].text == close {
                                depth += 1;
                            } else if toks[j].text == open {
                                depth -= 1;
                            }
                        }
                    }
                    continue;
                }
                _ => return Some(t),
            },
            _ => return Some(t),
        }
    }
    None
}

/// Flags extractor calls feeding raw `*`/`/` arithmetic, outside test
/// and `Display`/`Debug` regions.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let toks = &file.lexed.tokens;
    let mut exempt = test_regions(toks);
    exempt.extend(fmt_impl_regions(toks));
    let mut out = Vec::new();
    for i in 0..toks.len().saturating_sub(3) {
        let is_extractor_call = toks[i].kind == TokKind::Punct
            && toks[i].text == "."
            && toks[i + 1].kind == TokKind::Ident
            && EXTRACTORS.contains(&toks[i + 1].text.as_str())
            && toks[i + 2].text == "("
            && toks[i + 3].text == ")";
        if !is_extractor_call || in_regions(&exempt, i) {
            continue;
        }
        let after = toks.get(i + 4).map(|t| t.text.as_str());
        let before = token_before_chain(toks, i).map(|t| t.text.as_str());
        let feeds_math =
            matches!(after, Some("*") | Some("/")) || matches!(before, Some("*") | Some("/"));
        if feeds_math {
            out.push(file.diag(
                toks[i + 1].line,
                RAW_UNIT_MATH,
                format!(
                    "`.{}()` unwraps a typed quantity straight into raw f64 \
                     arithmetic; use the newtype operators in \
                     gpusimpow_tech::units (they encode the only physically \
                     meaningful combinations) or justify with an allow marker",
                    toks[i + 1].text
                ),
            ));
        }
    }
    out
}

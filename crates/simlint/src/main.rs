//! simlint CLI — see the library docs for what is checked.
//!
//! ```text
//! cargo run -p simlint                              # check, exit 1 on findings
//! cargo run -p simlint -- --root path/to/workspace
//! cargo run -p simlint -- --update-unsafe-manifest  # rewrite UNSAFE.md
//! cargo run -p simlint -- --json report.json        # machine-readable report
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut update_manifest = false;
    let mut json_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("simlint: --root needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--update-unsafe-manifest" => update_manifest = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("simlint: --json needs an output path (use - for stdout)");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: simlint [--root PATH] [--update-unsafe-manifest] [--json PATH]\n\
                     \n\
                     Checks the workspace invariants no compiler enforces:\n\
                     determinism (no HashMap iteration / wall clock in\n\
                     result-bearing crates), unit safety (no raw f64 math on\n\
                     unwrapped quantities in the power model), hot-path and\n\
                     decode-path discipline (allocation, panic and arithmetic\n\
                     rules), float determinism, the parallel engine's\n\
                     two-phase contract, unsafe audit (SAFETY comments +\n\
                     UNSAFE.md inventory), and registry coverage (every\n\
                     EventKind priced, base-model, or documented unpriced).\n\
                     Exits 1 when anything fires. `--json` additionally\n\
                     writes a schema-versioned machine-readable report to\n\
                     PATH (`-` for stdout)."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("simlint: unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = match simlint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "simlint: failed to read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };

    let mut diagnostics = report.diagnostics;
    if update_manifest {
        let path = root.join("UNSAFE.md");
        if let Err(e) = std::fs::write(&path, &report.unsafe_manifest) {
            eprintln!("simlint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("simlint: wrote {}", path.display());
        diagnostics.retain(|d| d.lint != simlint::unsafety::UNSAFE_MANIFEST_DRIFT);
    }

    if let Some(path) = &json_path {
        let json = simlint::json_report(&diagnostics, report.files_checked);
        if path.as_os_str() == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(path, &json) {
            eprintln!("simlint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    for d in &diagnostics {
        println!("{d}");
    }
    if diagnostics.is_empty() {
        println!(
            "simlint: {} files checked, no findings",
            report.files_checked
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("simlint: {} finding(s)", diagnostics.len());
        ExitCode::FAILURE
    }
}

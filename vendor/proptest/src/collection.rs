//! Collection strategies (`prop::collection::vec`).

use crate::strategy::{Strategy, TestRng};
use std::ops::Range;

/// Strategy for `Vec<T>` with a length drawn from `len` and elements
/// drawn from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.len.start < self.len.end, "empty length range");
        let n = self.len.start + rng.next_below(self.len.end - self.len.start);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Builds a [`VecStrategy`]: `vec(any::<u32>(), 0..64)`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_in_bounds() {
        let mut rng = TestRng::for_case("vec", 0);
        let s = vec(0u32..10, 2..9);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}

//! The capture/replay seam between functional execution and timing.
//!
//! The core pipeline consumes exactly three dynamic facts per warp:
//! the sequence of issued PCs, the taken-lane mask of every executed
//! `Bra`, and the byte address of every active lane of every `Ld`/`St`.
//! Everything else the timing model touches — scheduling, scoreboards,
//! caches, coalescing, bank conflicts, DRAM — is a pure function of
//! those streams plus the static kernel image. [`Tracer`] exploits
//! that: in **capture** mode it records the three streams as the live
//! frontend produces them (zero effect on stats or timing), and in
//! **replay** mode it feeds them back so the whole functional value
//! layer (register reads/writes, memory contents) can be skipped while
//! every counter and golden bit pattern stays identical to the live
//! run (`tests/trace_replay.rs` pins this).
//!
//! The streams come from / go to [`gpusimpow_trace::KernelTrace`], the
//! versioned on-disk format; [`ReplaySource`] is the launch-scoped
//! index over a decoded trace that cores resolve warps against.

use std::collections::BTreeMap;

use gpusimpow_trace::{KernelTrace, WarpStream};

use crate::simt_stack::LaneMask;

/// A decoded trace indexed for replay: resolves `(block_x, block_y,
/// warp)` to the recorded [`WarpStream`]. Borrowed by every core for
/// the duration of one launch via `LaunchCtx::replay`.
#[derive(Debug)]
pub struct ReplaySource<'t> {
    streams: &'t [WarpStream],
    index: BTreeMap<(u32, u32, u32), usize>,
}

impl<'t> ReplaySource<'t> {
    /// Indexes a trace's streams for per-warp lookup.
    pub fn new(trace: &'t KernelTrace) -> Self {
        let mut index = BTreeMap::new();
        for (i, s) in trace.streams.iter().enumerate() {
            index.insert((s.block_x, s.block_y, s.warp), i);
        }
        ReplaySource {
            streams: &trace.streams,
            index,
        }
    }

    fn lookup(&self, block_x: u32, block_y: u32, warp: u32) -> Option<usize> {
        self.index.get(&(block_x, block_y, warp)).copied()
    }

    fn stream(&self, idx: usize) -> &WarpStream {
        &self.streams[idx]
    }
}

/// One warp's capture buffer: the three dynamic streams plus the
/// coordinates that key them in the trace.
#[derive(Debug, Clone)]
pub(crate) struct WarpCapture {
    pub block_x: u32,
    pub block_y: u32,
    pub warp: u32,
    pub pcs: Vec<u32>,
    pub branch_taken: Vec<u64>,
    pub mem_addrs: Vec<u32>,
}

impl WarpCapture {
    /// Converts into the trace-format stream record.
    pub(crate) fn into_stream(self) -> WarpStream {
        WarpStream {
            block_x: self.block_x,
            block_y: self.block_y,
            warp: self.warp,
            pcs: self.pcs,
            branch_taken: self.branch_taken,
            mem_addrs: self.mem_addrs,
        }
    }
}

/// Per-slot read position into a recorded stream.
#[derive(Debug, Clone, Copy)]
struct Cursor {
    stream: usize,
    pc_pos: usize,
    bra_pos: usize,
    mem_pos: usize,
}

#[derive(Debug, Default)]
pub(crate) struct CaptureState {
    /// In-flight buffers, indexed by warp slot.
    bufs: Vec<Option<WarpCapture>>,
    /// Buffers of retired warps, in retirement order (the GPU sorts by
    /// block coordinates when it assembles the trace).
    finished: Vec<WarpCapture>,
}

#[derive(Debug, Default)]
pub(crate) struct ReplayState {
    /// In-flight cursors, indexed by warp slot. `None` means the slot
    /// is idle or its stream was missing (a recorded desync).
    cursors: Vec<Option<Cursor>>,
    /// First divergence between the trace and the pipeline, if any.
    /// Replay soldiers on with benign substitutes after a desync so the
    /// launch terminates; the GPU surfaces this as an error afterwards.
    desync: Option<String>,
}

/// A core's frontend mode for the current launch. `Off` is the live
/// frontend; `Capture` is live plus stream recording; `Replay` drives
/// the pipeline from a [`ReplaySource`] and skips functional values.
#[derive(Debug, Default)]
pub(crate) enum Tracer {
    #[default]
    Off,
    Capture(CaptureState),
    Replay(ReplayState),
}

impl Tracer {
    /// Resets to live mode, dropping any capture/replay state.
    pub(crate) fn set_off(&mut self) {
        *self = Tracer::Off;
    }

    /// Arms capture for a core with `max_warps` warp slots.
    pub(crate) fn set_capture(&mut self, max_warps: usize) {
        *self = Tracer::Capture(CaptureState {
            bufs: (0..max_warps).map(|_| None).collect(),
            finished: Vec::new(),
        });
    }

    /// Arms replay for a core with `max_warps` warp slots.
    pub(crate) fn set_replay(&mut self, max_warps: usize) {
        *self = Tracer::Replay(ReplayState {
            cursors: (0..max_warps).map(|_| None).collect(),
            desync: None,
        });
    }

    /// Whether the functional value layer should be skipped.
    #[inline]
    pub(crate) fn is_replay(&self) -> bool {
        matches!(self, Tracer::Replay(_))
    }

    /// Called at CTA dispatch for every warp placed at `slot`.
    pub(crate) fn attach_warp(
        &mut self,
        slot: usize,
        block_x: u32,
        block_y: u32,
        warp: u32,
        source: Option<&ReplaySource<'_>>,
    ) {
        match self {
            Tracer::Off => {}
            Tracer::Capture(cap) => {
                cap.bufs[slot] = Some(WarpCapture {
                    block_x,
                    block_y,
                    warp,
                    pcs: Vec::new(),
                    branch_taken: Vec::new(),
                    mem_addrs: Vec::new(),
                });
            }
            Tracer::Replay(rep) => match source.and_then(|s| s.lookup(block_x, block_y, warp)) {
                Some(stream) => {
                    rep.cursors[slot] = Some(Cursor {
                        stream,
                        pc_pos: 0,
                        bra_pos: 0,
                        mem_pos: 0,
                    });
                }
                None => {
                    rep.cursors[slot] = None;
                    if rep.desync.is_none() {
                        rep.desync = Some(format!(
                            "trace has no stream for block ({block_x}, {block_y}) warp {warp}"
                        ));
                    }
                }
            },
        }
    }

    /// Called once per issued warp instruction, with the issuing PC.
    /// Capture records it; replay checks it against the recorded
    /// stream (the load-bearing invariant behind every later lookup).
    #[inline]
    pub(crate) fn on_issue(&mut self, slot: usize, pc: u32, source: Option<&ReplaySource<'_>>) {
        match self {
            Tracer::Off => {}
            Tracer::Capture(cap) => {
                if let Some(buf) = cap.bufs[slot].as_mut() {
                    buf.pcs.push(pc);
                }
            }
            Tracer::Replay(rep) => {
                let Some(cursor) = rep.cursors[slot].as_mut() else {
                    return;
                };
                let Some(source) = source else { return };
                let stream = source.stream(cursor.stream);
                match stream.pcs.get(cursor.pc_pos) {
                    Some(&recorded) if recorded == pc => cursor.pc_pos += 1,
                    Some(&recorded) => {
                        cursor.pc_pos += 1;
                        if rep.desync.is_none() {
                            rep.desync = Some(format!(
                                "block ({}, {}) warp {}: issued pc {pc} but trace \
                                 recorded pc {recorded} at position {}",
                                stream.block_x,
                                stream.block_y,
                                stream.warp,
                                cursor.pc_pos - 1
                            ));
                        }
                    }
                    None => {
                        if rep.desync.is_none() {
                            rep.desync = Some(format!(
                                "block ({}, {}) warp {}: issued pc {pc} past the end of \
                                 the recorded stream ({} instructions)",
                                stream.block_x,
                                stream.block_y,
                                stream.warp,
                                stream.pcs.len()
                            ));
                        }
                    }
                }
            }
        }
    }

    /// Resolves the taken-lane mask of an executed `Bra`. The live
    /// frontend passes the mask it computed from the condition
    /// registers; capture records it, replay substitutes the recorded
    /// mask (confined to the active lanes — the SIMT stack asserts
    /// `taken ⊆ active`, which a corrupt mask must not trip).
    #[inline]
    pub(crate) fn branch_mask(
        &mut self,
        slot: usize,
        computed: LaneMask,
        active: LaneMask,
        source: Option<&ReplaySource<'_>>,
    ) -> LaneMask {
        match self {
            Tracer::Off => computed,
            Tracer::Capture(cap) => {
                if let Some(buf) = cap.bufs[slot].as_mut() {
                    buf.branch_taken.push(computed);
                }
                computed
            }
            Tracer::Replay(rep) => {
                let Some(cursor) = rep.cursors[slot].as_mut() else {
                    return 0;
                };
                let Some(source) = source else { return 0 };
                let stream = source.stream(cursor.stream);
                match stream.branch_taken.get(cursor.bra_pos) {
                    Some(&recorded) => {
                        cursor.bra_pos += 1;
                        recorded & active
                    }
                    None => {
                        if rep.desync.is_none() {
                            rep.desync = Some(format!(
                                "block ({}, {}) warp {}: branch executed past the end of \
                                 the recorded taken-mask stream",
                                stream.block_x, stream.block_y, stream.warp
                            ));
                        }
                        // Fall through: guarantees forward progress.
                        0
                    }
                }
            }
        }
    }

    /// Capture: records the active lanes' addresses (ascending lane
    /// order) of one executed memory instruction. `addrs` is the
    /// dense per-lane scratch row.
    #[inline]
    pub(crate) fn record_addrs(&mut self, slot: usize, mask: LaneMask, addrs: &[u32]) {
        let Tracer::Capture(cap) = self else { return };
        let Some(buf) = cap.bufs[slot].as_mut() else {
            return;
        };
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            buf.mem_addrs.push(addrs[lane]);
        }
    }

    /// Replay: fills the active lanes of the scratch address row from
    /// the recorded stream, in the same ascending lane order capture
    /// used. Exhaustion substitutes address 0 and records the desync.
    pub(crate) fn fill_addrs(
        &mut self,
        slot: usize,
        mask: LaneMask,
        addrs: &mut [u32],
        source: Option<&ReplaySource<'_>>,
    ) {
        let Tracer::Replay(rep) = self else { return };
        let Some(cursor) = rep.cursors[slot].as_mut() else {
            addrs.fill(0);
            return;
        };
        let Some(source) = source else {
            addrs.fill(0);
            return;
        };
        let stream = source.stream(cursor.stream);
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            match stream.mem_addrs.get(cursor.mem_pos) {
                Some(&a) => {
                    cursor.mem_pos += 1;
                    addrs[lane] = a;
                }
                None => {
                    addrs[lane] = 0;
                    if rep.desync.is_none() {
                        rep.desync = Some(format!(
                            "block ({}, {}) warp {}: memory access past the end of the \
                             recorded address stream ({} lane addresses)",
                            stream.block_x,
                            stream.block_y,
                            stream.warp,
                            stream.mem_addrs.len()
                        ));
                    }
                }
            }
        }
    }

    /// Called when a warp retires. Capture moves its buffer to the
    /// finished list; replay verifies the recorded stream was consumed
    /// exactly (a shorter live run is a desync too).
    pub(crate) fn finish_warp(&mut self, slot: usize, source: Option<&ReplaySource<'_>>) {
        match self {
            Tracer::Off => {}
            Tracer::Capture(cap) => {
                if let Some(buf) = cap.bufs[slot].take() {
                    cap.finished.push(buf);
                }
            }
            Tracer::Replay(rep) => {
                let Some(cursor) = rep.cursors[slot].take() else {
                    return;
                };
                let Some(source) = source else { return };
                let stream = source.stream(cursor.stream);
                if rep.desync.is_none()
                    && (cursor.pc_pos != stream.pcs.len()
                        || cursor.bra_pos != stream.branch_taken.len()
                        || cursor.mem_pos != stream.mem_addrs.len())
                {
                    rep.desync = Some(format!(
                        "block ({}, {}) warp {}: retired after {}/{} instructions, \
                         {}/{} branches, {}/{} lane addresses of the recorded stream",
                        stream.block_x,
                        stream.block_y,
                        stream.warp,
                        cursor.pc_pos,
                        stream.pcs.len(),
                        cursor.bra_pos,
                        stream.branch_taken.len(),
                        cursor.mem_pos,
                        stream.mem_addrs.len()
                    ));
                }
            }
        }
    }

    /// Drains the finished capture buffers (capture mode only).
    pub(crate) fn take_captured(&mut self) -> Vec<WarpCapture> {
        match self {
            Tracer::Capture(cap) => std::mem::take(&mut cap.finished),
            _ => Vec::new(),
        }
    }

    /// The first recorded desync, if any (replay mode only).
    pub(crate) fn take_desync(&mut self) -> Option<String> {
        match self {
            Tracer::Replay(rep) => rep.desync.take(),
            _ => None,
        }
    }
}

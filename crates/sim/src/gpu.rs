//! The full-chip simulator: cores, NoC, L2, memory controllers, GDDR5 and
//! the global block scheduler.
//!
//! The block scheduler distributes CTAs breadth-first over clusters
//! before filling cores within a cluster — the behaviour the paper
//! observes on real hardware in Fig. 4 ("blocks are distributed first not
//! only to unoccupied cores, but also to unoccupied clusters").

use std::fmt;

use gpusimpow_isa::{Kernel, LaunchConfig};
use gpusimpow_trace::{KernelTrace, WarpStream};

use crate::config::{ConfigError, GpuConfig};
use crate::core::{Core, DecodedInstr, LaunchCtx, MemRequest};
use crate::events::{ActivityVector, EventKind as Ev};
use crate::mem::{DevicePtr, GpuMemory};
use crate::parallel::{available_threads, CorePool};
use crate::replay::ReplaySource;
use crate::sink::{ActivitySink, ActivityWindow};
use crate::stats::ActivityStats;
use crate::uncore::{RouteToken, Uncore};

/// Errors surfaced by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The GPU configuration is inconsistent.
    Config(ConfigError),
    /// The kernel/launch combination cannot run on this GPU.
    Launch(String),
    /// The watchdog tripped (likely a deadlocked kernel, e.g. a barrier
    /// never reached by all warps).
    Watchdog {
        /// Cycle count at which the simulation was aborted.
        cycles: u64,
    },
    /// A trace could not drive the replay frontend: it was rejected up
    /// front (bad geometry, wrong warp size, invalid kernel image) or
    /// it diverged from the pipeline mid-run (wrong PC, exhausted
    /// stream).
    Replay(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "{e}"),
            SimError::Launch(msg) => write!(f, "launch rejected: {msg}"),
            SimError::Watchdog { cycles } => {
                write!(f, "simulation watchdog tripped after {cycles} cycles")
            }
            SimError::Replay(msg) => write!(f, "trace replay failed: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

/// Result of one kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchReport {
    /// Kernel name.
    pub kernel: String,
    /// Activity counters for this launch (includes any PCIe transfers
    /// performed since the previous launch).
    pub stats: ActivityStats,
    /// Wall-clock kernel time in seconds at the configured clocks.
    pub time_s: f64,
    /// Scope-resolved registry counters: per-core event vectors plus
    /// per-core/per-cluster busy-cycle accounting. Sums exactly to
    /// `stats` (see [`ScopedActivity::total_vector`]).
    pub scoped: ScopedActivity,
}

/// Scope-resolved activity of one launch — the registry's scope
/// dimension materialised.
///
/// [`crate::events::Scope::Core`] events are recorded into each core's
/// private [`ActivityVector`] on the simulator hot paths and collected
/// here unmerged; [`crate::events::Scope::Chip`] events live in the
/// `chip` vector. Aggregation (per cluster, chip-wide) happens on
/// demand, and conservation is exact in `u64`:
/// `chip + Σ per_core == LaunchReport::stats` counters.
///
/// Busy cycles are tracked alongside: `core_busy[k]` / `cluster_busy[c]`
/// use the same span-multiply fast-forward semantics as the chip-wide
/// `core_busy_cycles` / `cluster_busy_cycles` counters, so
/// `Σ core_busy == core_busy_cycles` and
/// `Σ cluster_busy == cluster_busy_cycles` exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopedActivity {
    /// Number of clusters in the simulated chip.
    pub clusters: usize,
    /// Cores per cluster (core `k` belongs to cluster
    /// `k / cores_per_cluster`).
    pub cores_per_cluster: usize,
    /// Per-core event vectors, indexed by chip-wide core id. Only
    /// core-scoped events are non-zero here.
    pub per_core: Vec<ActivityVector>,
    /// Busy cycles per core (cycles with at least one resident CTA).
    pub core_busy: Vec<u64>,
    /// Busy cycles per cluster (cycles with at least one busy core).
    pub cluster_busy: Vec<u64>,
    /// Chip-scoped events (clock domains, NoC/L2/MC/DRAM, PCIe, kernel
    /// launches).
    pub chip: ActivityVector,
}

impl ScopedActivity {
    /// The cluster a chip-wide core id belongs to.
    pub fn cluster_of(&self, core: usize) -> usize {
        core / self.cores_per_cluster
    }

    /// Sum of the event vectors of cluster `c`'s cores.
    pub fn cluster_vector(&self, c: usize) -> ActivityVector {
        let mut sum = ActivityVector::new();
        for (k, vector) in self.per_core.iter().enumerate() {
            if self.cluster_of(k) == c {
                sum += vector;
            }
        }
        sum
    }

    /// Chip-wide total: chip-scoped events plus every core's vector.
    /// Equals the counter fields of the owning
    /// [`LaunchReport::stats`] exactly.
    pub fn total_vector(&self) -> ActivityVector {
        let mut sum = self.chip.clone();
        for vector in &self.per_core {
            sum += vector;
        }
        sum
    }

    /// Busy cycles of cluster `c`'s cores, summed.
    pub fn cluster_core_busy(&self, c: usize) -> u64 {
        self.per_core
            .iter()
            .enumerate()
            .filter(|(k, _)| self.cluster_of(*k) == c)
            .map(|(k, _)| self.core_busy[k])
            .sum()
    }
}

/// The simulated GPU plus its GDDR memory — the "device" a host program
/// allocates on, copies to, and launches kernels on.
///
/// # Examples
///
/// ```
/// use gpusimpow_sim::config::GpuConfig;
/// use gpusimpow_sim::gpu::Gpu;
/// use gpusimpow_isa::{assemble, LaunchConfig};
///
/// let mut gpu = Gpu::new(GpuConfig::gt240())?;
/// let out = gpu.alloc_f32(128);
/// let k = assemble("fill", &format!("
///     s2r r0, tid.x
///     s2r r1, ctaid.x
///     s2r r2, ntid.x
///     imad r3, r1, r2, r0
///     shl r4, r3, #2
///     i2f r5, r3
///     st.global [r4+{}], r5
///     exit
/// ", out.addr())).expect("valid kernel");
/// let report = gpu.launch(&k, LaunchConfig::linear(4, 32))?;
/// assert!(report.stats.shader_cycles > 0);
/// assert_eq!(gpu.d2h_f32(out, 3), vec![0.0, 1.0, 2.0]);
/// # Ok::<(), gpusimpow_sim::gpu::SimError>(())
/// ```
#[derive(Debug)]
pub struct Gpu {
    config: GpuConfig,
    cores: Vec<Core>,
    memory: GpuMemory,
    const_base: u32,
    const_capacity: u32,
    pending_h2d: u64,
    pending_d2h: u64,
    watchdog_cycles: u64,
    total_launches: u64,
    attached: Option<SinkSlot>,
    threads: usize,
    pool: Option<CorePool>,
    fast_forward: bool,
    batch_stepping: bool,
    /// Whether live launches also capture their warp streams.
    tracing: bool,
    /// Traces banked by capture-enabled launches, in launch order.
    captured: Vec<KernelTrace>,
}

/// An attached sampling sink plus its window width.
struct SinkSlot {
    window_cycles: u64,
    sink: Box<dyn ActivitySink>,
}

impl fmt::Debug for SinkSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SinkSlot")
            .field("window_cycles", &self.window_cycles)
            .finish_non_exhaustive()
    }
}

/// Default device-memory size.
const DEFAULT_MEM_BYTES: usize = 256 << 20;

/// Staged constant-bank capacity.
const CONST_CAPACITY: u32 = 64 * 1024;

impl Gpu {
    /// Builds a GPU from a validated configuration with 256 MiB of
    /// device memory.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if the configuration is inconsistent.
    pub fn new(config: GpuConfig) -> Result<Self, SimError> {
        Self::with_memory(config, DEFAULT_MEM_BYTES)
    }

    /// Builds a GPU with an explicit device-memory size.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if the configuration is inconsistent.
    pub fn with_memory(config: GpuConfig, mem_bytes: usize) -> Result<Self, SimError> {
        config.validate()?;
        let mut memory = GpuMemory::new(mem_bytes);
        let const_base = memory.alloc(CONST_CAPACITY).addr();
        let cores = (0..config.total_cores())
            .map(|id| Core::new(id, id / config.cores_per_cluster, &config))
            .collect();
        Ok(Gpu {
            config,
            cores,
            memory,
            const_base,
            const_capacity: CONST_CAPACITY,
            pending_h2d: 0,
            pending_d2h: 0,
            watchdog_cycles: 400_000_000,
            total_launches: 0,
            attached: None,
            threads: 1,
            pool: None,
            fast_forward: true,
            batch_stepping: true,
            tracing: false,
            captured: Vec::new(),
        })
    }

    /// The configuration this GPU was built with.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Borrow the device memory (host-side verification).
    pub fn memory(&self) -> &GpuMemory {
        &self.memory
    }

    /// Overrides the deadlock watchdog (cycles).
    pub fn set_watchdog(&mut self, cycles: u64) {
        self.watchdog_cycles = cycles;
    }

    /// Enables or disables stall-aware fast-forward (enabled by
    /// default). When every core's tick is a provable no-op — all warps
    /// blocked on memory or long-latency pipes — the main loop jumps
    /// straight to the earliest core wake-up, memory response, or
    /// sampling/watchdog boundary instead of stepping cycle by cycle.
    ///
    /// Fast-forward never changes results: skipped cycles are exactly
    /// those in which no core mutates state, and the uncore, sampling
    /// windows, DVFS epochs and watchdog stay cycle-exact across jumps.
    /// Disabling it yields the dense reference loop the fast-forward
    /// edge-case tests compare against.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.fast_forward = enabled;
    }

    /// Whether stall-aware fast-forward is enabled.
    pub fn fast_forward(&self) -> bool {
        self.fast_forward
    }

    /// Enables or disables batched steady-state stepping (enabled by
    /// default) — the complement of fast-forward: where fast-forward
    /// jumps over runs of provably *inert* cycles, batched stepping
    /// accelerates runs of provably *pure-compute* cycles. While the
    /// uncore is idle and every live core keeps progressing without
    /// emitting memory traffic, buffering stores, completing CTAs or
    /// going idle, the main loop runs only the per-core compute phase
    /// cycle after cycle and commits the skipped per-cycle machinery
    /// (empty commit phase, idle uncore advance, busy/cluster
    /// accounting) wholesale for the whole run, with event counts
    /// span-multiplied (`ActivityVector::add_span`).
    ///
    /// Batched stepping never changes results: the batch ends *at* the
    /// first cycle with a side effect — that cycle flows through the
    /// ordinary commit path — and sampling windows, DVFS epochs and the
    /// watchdog bound the batch horizon, so every counter, window delta
    /// and `time_s` is bit-identical with the flag off (enforced by
    /// `tests/batched_stepping.rs` golden pins).
    pub fn set_batch_stepping(&mut self, enabled: bool) {
        self.batch_stepping = enabled;
    }

    /// Whether batched steady-state stepping is enabled.
    pub fn batch_stepping(&self) -> bool {
        self.batch_stepping
    }

    /// Sets how many OS threads step cores during the per-cycle compute
    /// phase. `0` means "use the machine's available parallelism"; `1`
    /// (the default) steps cores inline on the calling thread.
    ///
    /// Thread count never changes results: cores read a frozen memory
    /// snapshot during the compute phase and all shared-state side
    /// effects are committed serially in core-id order, so every
    /// `ActivityStats` counter and `time_s` is bit-identical for any
    /// setting (see `DESIGN.md`, "Parallel execution").
    pub fn set_threads(&mut self, threads: usize) {
        let threads = if threads == 0 {
            available_threads()
        } else {
            threads
        };
        self.threads = threads;
        let usable = threads.min(self.cores.len());
        self.pool = if usable >= 2 {
            Some(CorePool::new(usable))
        } else {
            None
        };
    }

    /// The compute-phase thread count set via [`Gpu::set_threads`].
    pub fn threads(&self) -> usize {
        self.threads
    }

    // --- host API (the cudaMalloc/cudaMemcpy stand-ins) -----------------------

    /// Allocates `bytes` of device memory.
    pub fn alloc(&mut self, bytes: u32) -> DevicePtr {
        self.memory.alloc(bytes)
    }

    /// Allocates `count` 32-bit words.
    pub fn alloc_f32(&mut self, count: u32) -> DevicePtr {
        self.memory.alloc_f32(count)
    }

    /// Copies host data to the device (counted as PCIe traffic).
    pub fn h2d_f32(&mut self, ptr: DevicePtr, data: &[f32]) {
        self.memory.write_f32_slice(ptr, data);
        self.pending_h2d += (data.len() * 4) as u64;
    }

    /// Copies host words to the device (counted as PCIe traffic).
    pub fn h2d_u32(&mut self, ptr: DevicePtr, data: &[u32]) {
        self.memory.write_u32_slice(ptr, data);
        self.pending_h2d += (data.len() * 4) as u64;
    }

    /// Copies device data back to the host (counted as PCIe traffic).
    pub fn d2h_f32(&mut self, ptr: DevicePtr, count: usize) -> Vec<f32> {
        self.pending_d2h += (count * 4) as u64;
        self.memory.read_f32_slice(ptr, count)
    }

    /// Copies device words back to the host (counted as PCIe traffic).
    pub fn d2h_u32(&mut self, ptr: DevicePtr, count: usize) -> Vec<u32> {
        self.pending_d2h += (count * 4) as u64;
        self.memory.read_u32_slice(ptr, count)
    }

    // --- launch -------------------------------------------------------------------

    fn check_launch(&self, kernel: &Kernel, launch: LaunchConfig) -> Result<(), SimError> {
        let cfg = &self.config;
        if kernel.num_regs() as usize > 64 {
            return Err(SimError::Launch(format!(
                "kernel uses {} registers, the simulator models at most 64",
                kernel.num_regs()
            )));
        }
        if launch.threads_per_block() as usize > cfg.max_threads_per_core {
            return Err(SimError::Launch(format!(
                "block of {} threads exceeds the {}-thread core",
                launch.threads_per_block(),
                cfg.max_threads_per_core
            )));
        }
        let smem_avail = cfg.smem_bytes - if cfg.l1_enabled { cfg.l1_bytes } else { 0 };
        if kernel.smem_bytes() as usize > smem_avail {
            return Err(SimError::Launch(format!(
                "kernel needs {} B of shared memory, core provides {smem_avail}",
                kernel.smem_bytes()
            )));
        }
        let warps = launch.warps_per_block(cfg.warp_size as u32) as usize;
        if warps > cfg.max_warps_per_core() {
            return Err(SimError::Launch(format!(
                "block needs {warps} warps, core holds {}",
                cfg.max_warps_per_core()
            )));
        }
        let regs = warps * cfg.warp_size * kernel.num_regs() as usize;
        if regs > cfg.regfile_regs_per_core {
            return Err(SimError::Launch(format!(
                "block needs {regs} registers, core register file holds {}",
                cfg.regfile_regs_per_core
            )));
        }
        if (kernel.const_words().len() * 4) as u32 > self.const_capacity {
            return Err(SimError::Launch(
                "constant bank exceeds the staged segment".to_string(),
            ));
        }
        Ok(())
    }

    /// Runs `kernel` to completion and returns its activity report.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Launch`] when the kernel cannot be placed on
    /// this GPU and [`SimError::Watchdog`] if it fails to terminate.
    pub fn launch(
        &mut self,
        kernel: &Kernel,
        launch: LaunchConfig,
    ) -> Result<LaunchReport, SimError> {
        self.launch_outer(kernel, launch, None, None)
    }

    /// Runs `kernel` like [`Gpu::launch`], reusing a pre-decoded
    /// instruction table instead of decoding the kernel again.
    ///
    /// `decoded` must come from
    /// [`PredecodedKernel::specialize`](crate::core::PredecodedKernel::specialize)
    /// (or [`DecodedInstr::decode_kernel`]) for *this* GPU's
    /// configuration and *this* kernel; a table of the wrong length is
    /// ignored and the kernel is decoded locally. This is the per-config
    /// entry point of [`SimPool::run_sweep`](crate::SimPool::run_sweep),
    /// which pays the decode cost once for N configurations.
    ///
    /// # Errors
    ///
    /// As [`Gpu::launch`].
    pub fn launch_decoded(
        &mut self,
        kernel: &Kernel,
        launch: LaunchConfig,
        decoded: &[DecodedInstr],
    ) -> Result<LaunchReport, SimError> {
        self.launch_outer(kernel, launch, Some(decoded), None)
    }

    fn launch_outer(
        &mut self,
        kernel: &Kernel,
        launch: LaunchConfig,
        decoded: Option<&[DecodedInstr]>,
        replay: Option<&ReplaySource<'_>>,
    ) -> Result<LaunchReport, SimError> {
        // Taking the slot lets `launch_impl` borrow the sink and the GPU
        // simultaneously; it is restored afterwards either way.
        if let Some(mut slot) = self.attached.take() {
            let result = self.launch_impl(
                kernel,
                launch,
                Some((slot.window_cycles, slot.sink.as_mut())),
                decoded,
                replay,
            );
            self.attached = Some(slot);
            result
        } else {
            self.launch_impl(kernel, launch, None, decoded, replay)
        }
    }

    // --- trace capture & replay -----------------------------------------------

    /// Enables or disables warp-stream capture for subsequent live
    /// launches. While enabled, every [`Gpu::launch`] /
    /// [`Gpu::launch_decoded`] additionally records the per-warp
    /// instruction, branch-mask and memory-address streams the pipeline
    /// consumes and banks them as a [`KernelTrace`] (drain with
    /// [`Gpu::take_traces`]). Capture never perturbs results: the
    /// recorded run's report is bit-identical to an untraced one.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.tracing = enabled;
    }

    /// Whether warp-stream capture is enabled.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Drains the traces banked by capture-enabled launches, in launch
    /// order.
    pub fn take_traces(&mut self) -> Vec<KernelTrace> {
        std::mem::take(&mut self.captured)
    }

    /// Runs `kernel` like [`Gpu::launch`] and also returns the captured
    /// trace of the launch. Equivalent to wrapping the launch in
    /// [`Gpu::set_tracing`] and draining [`Gpu::take_traces`].
    ///
    /// # Errors
    ///
    /// As [`Gpu::launch`].
    pub fn launch_traced(
        &mut self,
        kernel: &Kernel,
        launch: LaunchConfig,
    ) -> Result<(LaunchReport, KernelTrace), SimError> {
        let prev = self.tracing;
        self.tracing = true;
        let result = self.launch(kernel, launch);
        self.tracing = prev;
        let report = result?;
        let trace = self
            .captured
            .pop()
            .expect("capture banks one trace per successful launch");
        Ok((report, trace))
    }

    /// Replays a captured (or synthesised) trace through the timing
    /// pipeline. The kernel image, launch geometry and PCIe attribution
    /// all come from the trace; the functional value layer is skipped
    /// and the pipeline consumes the recorded streams instead. For a
    /// trace captured on a GPU with the same warp size, the returned
    /// report is bit-identical to the live run on *this* GPU's
    /// configuration (the streams are configuration-independent, so
    /// capture once / replay under many configs is sound — see
    /// [`SimPool::run_sweep_replay`](crate::SimPool::run_sweep_replay)).
    ///
    /// # Errors
    ///
    /// [`SimError::Replay`] when the trace is rejected up front or
    /// diverges from the pipeline mid-run; otherwise as [`Gpu::launch`].
    pub fn launch_replay(&mut self, trace: &KernelTrace) -> Result<LaunchReport, SimError> {
        self.launch_replay_outer(trace, None)
    }

    /// Replays a trace like [`Gpu::launch_replay`], reusing a
    /// pre-decoded instruction table (the sweep entry point; see
    /// [`Gpu::launch_decoded`] for the table contract).
    ///
    /// # Errors
    ///
    /// As [`Gpu::launch_replay`].
    pub fn launch_replay_decoded(
        &mut self,
        trace: &KernelTrace,
        decoded: &[DecodedInstr],
    ) -> Result<LaunchReport, SimError> {
        self.launch_replay_outer(trace, Some(decoded))
    }

    fn launch_replay_outer(
        &mut self,
        trace: &KernelTrace,
        decoded: Option<&[DecodedInstr]>,
    ) -> Result<LaunchReport, SimError> {
        if trace.warp_size != self.config.warp_size as u32 {
            return Err(SimError::Replay(format!(
                "trace was recorded with warp size {}, this GPU runs {}",
                trace.warp_size, self.config.warp_size
            )));
        }
        // Re-validate even though decode() already did: synthesised or
        // hand-built traces arrive here without passing the decoder.
        trace
            .validate()
            .map_err(|e| SimError::Replay(format!("trace rejected: {e}")))?;
        let kernel = trace
            .to_kernel()
            .map_err(|e| SimError::Replay(format!("trace rejected: {e}")))?;
        let launch = trace.launch_config();
        let source = ReplaySource::new(trace);
        // PCIe attribution comes from the trace, *replacing* any pending
        // host transfers so the replayed report matches the capture run
        // regardless of what the host did to this GPU beforehand.
        self.pending_h2d = trace.h2d_bytes;
        self.pending_d2h = trace.d2h_bytes;
        self.launch_outer(&kernel, launch, decoded, Some(&source))
    }

    /// Attaches a sampling sink that observes *every* subsequent
    /// [`Gpu::launch`] with the given window width, until
    /// [`Gpu::detach_sink`]. This is how whole benchmark suites (whose
    /// host programs call `launch` internally) are traced without
    /// plumbing a sink through every call site.
    ///
    /// Replaces any previously attached sink.
    ///
    /// # Panics
    ///
    /// Panics if `window_cycles` is zero.
    pub fn attach_sink(&mut self, window_cycles: u64, sink: Box<dyn ActivitySink>) {
        assert!(
            window_cycles > 0,
            "sampling window must be at least one cycle"
        );
        self.attached = Some(SinkSlot {
            window_cycles,
            sink,
        });
    }

    /// Detaches the sink attached with [`Gpu::attach_sink`], returning
    /// it (use [`ActivitySink::as_any_mut`] to recover the concrete
    /// type). Returns `None` when no sink is attached.
    pub fn detach_sink(&mut self) -> Option<Box<dyn ActivitySink>> {
        self.attached.take().map(|slot| slot.sink)
    }

    /// Runs `kernel` like [`Gpu::launch`], additionally streaming an
    /// [`ActivityWindow`] delta to `sink` every `window_cycles` shader
    /// cycles (plus one final, possibly shorter, window at completion).
    ///
    /// The window deltas are exact: their `+=`-sum equals the returned
    /// report's aggregate counters. This is the feed for power tracing
    /// and DVFS governors (see the `gpusimpow-pm` crate).
    ///
    /// # Errors
    ///
    /// As [`Gpu::launch`], plus [`SimError::Launch`] when
    /// `window_cycles` is zero.
    pub fn launch_with_sink(
        &mut self,
        kernel: &Kernel,
        launch: LaunchConfig,
        window_cycles: u64,
        sink: &mut dyn ActivitySink,
    ) -> Result<LaunchReport, SimError> {
        if window_cycles == 0 {
            return Err(SimError::Launch(
                "sampling window must be at least one cycle".to_string(),
            ));
        }
        self.launch_impl(kernel, launch, Some((window_cycles, sink)), None, None)
    }

    fn launch_impl(
        &mut self,
        kernel: &Kernel,
        launch: LaunchConfig,
        mut sampling: Option<(u64, &mut dyn ActivitySink)>,
        predecoded: Option<&[DecodedInstr]>,
        replay: Option<&ReplaySource<'_>>,
    ) -> Result<LaunchReport, SimError> {
        self.check_launch(kernel, launch)?;
        // Stage the constant bank into its global-memory segment.
        self.memory
            .write_u32_slice(DevicePtr(self.const_base), kernel.const_words());
        let cfg = self.config.clone();
        // Decode every instruction once per launch — the issue hot path
        // reads metadata from this table instead of re-deriving operand
        // lists and bank conflicts each cycle — unless the caller
        // already shares a table across launches (sweeps).
        let decoded_local;
        let decoded: &[DecodedInstr] = match predecoded {
            Some(d) if d.len() == kernel.code().len() => d,
            _ => {
                decoded_local = DecodedInstr::decode_kernel(kernel, &cfg);
                &decoded_local
            }
        };
        let ctx = LaunchCtx {
            kernel,
            launch,
            const_base: self.const_base,
            const_bytes: (kernel.const_words().len() * 4).max(4) as u32,
            decoded,
            replay,
        };
        // Arm each core's frontend for this launch: replay when a trace
        // drives it, capture when tracing is enabled, live otherwise.
        let capture = self.tracing && replay.is_none();
        for core in &mut self.cores {
            if replay.is_some() {
                core.set_tracer_replay();
            } else if capture {
                core.set_tracer_capture();
            } else {
                core.set_tracer_off();
            }
            core.begin_launch();
        }
        // Chip-scoped registry slots; core-scoped events accumulate in
        // each core's private vector and are merged after the loop.
        let mut stats = ActivityVector::new();
        stats[Ev::KernelLaunches] = 1;
        stats[Ev::PcieH2dBytes] = std::mem::take(&mut self.pending_h2d);
        stats[Ev::PcieD2hBytes] = std::mem::take(&mut self.pending_d2h);

        // The event-driven uncore, rebuilt per launch (it must drain
        // before a launch completes anyway).
        let mut uncore = Uncore::new(&cfg);

        let total_blocks = launch.total_blocks();
        let mut next_block: u32 = 0;
        let mut completed_ctas_seen: u64 = self.cores.iter().map(|c| c.completed_ctas()).sum();

        let mut cycle: u64 = 0;
        let mut dispatch_dirty = true;

        // Windowed sampling state: the previous cumulative snapshot (the
        // first window's baseline is all-zero so it absorbs the pre-loop
        // PCIe/launch counters) and within-window concurrency peaks.
        // `next_window_at` replaces the old per-cycle modulo test and is
        // the boundary that bulk jumps clamp to, keeping window deltas
        // byte-identical across fast-forward.
        if let Some((window_cycles, sink)) = &mut sampling {
            sink.on_launch_begin(kernel.name(), *window_cycles);
        }
        let mut next_window_at: u64 = sampling.as_ref().map_or(u64::MAX, |(w, _)| *w);
        let mut last_snapshot = ActivityVector::new();
        let mut window_index: u64 = 0;
        let mut window_start: u64 = 0;
        let mut win_peak_cores: usize = 0;
        let mut win_peak_clusters: usize = 0;
        // Whole-launch concurrency peaks (window maxima live in
        // `win_peak_*`); these are not registry events.
        let mut peak_cores: usize = 0;
        let mut peak_clusters: usize = 0;

        // Hoisted per-cycle scratch and stall-aware fast-forward state.
        // Cycles in `[cycle, skip_until)` are provably inert for the
        // shader domain — every core's tick is a no-op until its next
        // scheduled wake-up or until a memory response arrives — so the
        // compute/commit phases are skipped wholesale while the uncore
        // advances event-to-event and the sampling windows, watchdog and
        // clock-domain accumulators stay cycle-exact.
        let mut drained: Vec<MemRequest> = Vec::new();
        let mut responses: Vec<RouteToken> = Vec::new();
        let mut cluster_busy = vec![false; cfg.clusters];
        let mut busy_cores = 0usize;
        let mut busy_clusters = 0usize;
        // Scoped busy-cycle accumulators: the same span-multiply
        // semantics as the chip-wide busy counters, resolved per core
        // and per cluster. `last_cluster_busy_acc` is the window
        // sampler's previous per-cluster snapshot.
        let mut core_busy_acc = vec![0u64; self.cores.len()];
        let mut cluster_busy_acc = vec![0u64; cfg.clusters];
        let mut last_cluster_busy_acc = vec![0u64; cfg.clusters];
        let mut skip_until: u64 = 0;
        // Cores with any live state, ascending id. A core outside this
        // list satisfies the tick early-out condition (no CTAs, events
        // or outstanding groups — exactly `!is_busy()`), and nothing but
        // a dispatch can change that, so every per-cycle loop below
        // walks `live` instead of all cores. Rebuilt after each
        // dispatch, pruned during busy accounting; ascending order keeps
        // the serial commit order identical to the all-cores walk.
        let mut live: Vec<usize> = Vec::with_capacity(self.cores.len());
        // Per-core wake-up times for the batched fast path, indexed like
        // `live`; hoisted so short batches don't reallocate.
        let mut batch_wakes: Vec<u64> = Vec::with_capacity(self.cores.len());

        loop {
            let stepped = cycle >= skip_until;
            if stepped {
                // --- global block scheduler -----------------------------
                let mut just_dispatched = false;
                if dispatch_dirty && next_block < total_blocks {
                    next_block = self.dispatch_blocks(&ctx, next_block, total_blocks);
                    dispatch_dirty = false;
                    just_dispatched = true;
                    live.clear();
                    let cores = &self.cores;
                    live.extend((0..cores.len()).filter(|&i| cores[i].is_busy()));
                }

                // --- batched steady-state stepping -----------------------
                // Pure-compute fast path: while the uncore is idle and
                // every live core keeps progressing without side effects
                // (no buffered stores, no memory requests, no CTA
                // completion, nobody going idle), each cycle's commit
                // phase is provably a no-op and no response, dispatch or
                // termination event can occur — so run only the compute
                // phase, cycle after cycle, and commit the whole run of
                // `pre` cycles wholesale afterwards: one idle
                // `Uncore::advance(pre)` keeps the clock-domain and
                // refresh accounting cycle-exact, and the busy counters
                // span-multiply exactly like a fast-forward jump (the
                // live set *is* the busy set and is invariant across the
                // run). The first cycle that breaks the regime becomes
                // the loop's current cycle and flows through the
                // ordinary commit/accounting path below, so results are
                // bit-identical with this path disabled. Not entered on
                // a dispatch cycle (the cached busy counts are stale
                // until the accounting below recomputes them), and the
                // horizon stops short of the next sampling-window
                // boundary and the watchdog trip.
                let mut batched: Option<bool> = None;
                if self.batch_stepping && !just_dispatched && !live.is_empty() && uncore.is_idle() {
                    let horizon = next_window_at.min(self.watchdog_cycles + 1);
                    let pre_max = horizon.saturating_sub(cycle + 1);
                    if pre_max > 0 {
                        let live_completed: u64 =
                            live.iter().map(|&id| self.cores[id].completed_ctas()).sum();
                        // Last cycle the batch may tick; the final ticked
                        // cycle is handed to the ordinary path below.
                        let c_end = cycle + pre_max;
                        let mut c = cycle;
                        // Per-core wake gating: a core whose last tick did
                        // not progress is provably inert until its next
                        // writeback event or pipeline release
                        // (`Core::next_wake`) — compute phases have no
                        // cross-core coupling and the idle uncore delivers
                        // nothing — so its ticks are skipped entirely until
                        // then. Ticks run serially here regardless of the
                        // pool: the gate leaves only a couple of cores per
                        // cycle, and compute phases are order-independent,
                        // so the bits cannot move for any thread count.
                        batch_wakes.clear();
                        batch_wakes.resize(live.len(), cycle);
                        loop {
                            let mut progressed = false;
                            {
                                let Gpu { cores, memory, .. } = &mut *self;
                                let mem: &GpuMemory = memory;
                                for (wake, &id) in batch_wakes.iter_mut().zip(&live) {
                                    if *wake <= c {
                                        let p = cores[id].tick(c, &cfg, &ctx, mem);
                                        progressed |= p;
                                        *wake = if p {
                                            c + 1
                                        } else {
                                            cores[id].next_wake(c).unwrap_or(u64::MAX)
                                        };
                                    }
                                }
                            }
                            if progressed {
                                // Side-effect scan: any buffered store,
                                // drained request, idle transition or CTA
                                // completion ends the batch at this cycle.
                                // Only a ticked core can change these, but
                                // the probes are cheap field reads — scan
                                // every live core for simplicity.
                                let mut effects = false;
                                let mut completed_now = 0u64;
                                for &id in &live {
                                    let core = &self.cores[id];
                                    effects |= core.has_pending_effects() || !core.is_busy();
                                    completed_now += core.completed_ctas();
                                }
                                if effects || completed_now != live_completed {
                                    batched = Some(true);
                                    break;
                                }
                            } else if !self.fast_forward {
                                // Dense mode: hand no-progress cycles to
                                // the ordinary path so the outer loop
                                // marches cycle by cycle as configured.
                                batched = Some(false);
                                break;
                            }
                            if c == c_end {
                                batched = Some(progressed);
                                break;
                            }
                            // Jump to the earliest cycle any core can act
                            // again — the in-batch counterpart of the
                            // stall-aware fast-forward (memory responses
                            // are impossible while the uncore is idle).
                            // Past the horizon, stay on the current cycle
                            // and let the outer fast-forward take over.
                            let next_c = batch_wakes.iter().copied().min().unwrap_or(u64::MAX);
                            debug_assert!(next_c > c, "wake-up in the past");
                            if next_c > c_end {
                                batched = Some(progressed);
                                break;
                            }
                            c = next_c;
                        }
                        let pre = c - cycle;
                        if pre > 0 {
                            // Commit the side-effect-free prefix. The
                            // uncore was idle and stays idle across it:
                            // it consumes the full span and delivers
                            // nothing (`advance` only stops early on a
                            // response or a drain, neither of which an
                            // idle uncore can produce).
                            let consumed = uncore.advance(pre, &mut responses, &mut stats);
                            debug_assert_eq!(consumed, pre, "idle uncore consumes the span");
                            debug_assert!(responses.is_empty(), "idle uncore stays silent");
                            stats.add_span(Ev::CoreBusyCycles, busy_cores as u64, pre);
                            stats.add_span(Ev::ClusterBusyCycles, busy_clusters as u64, pre);
                            for &id in &live {
                                core_busy_acc[id] += pre;
                            }
                            for (c, flag) in cluster_busy.iter().enumerate() {
                                if *flag {
                                    cluster_busy_acc[c] += pre;
                                }
                            }
                            cycle += pre;
                        }
                    }
                }

                // --- shader domain: parallel compute phase ---------------
                // Cores read the frozen memory snapshot (global stores are
                // buffered per core) so chunks can step concurrently
                // without changing any counter. A batched run above has
                // already ticked the current cycle.
                let progressed = match batched {
                    Some(progressed) => progressed,
                    None => {
                        let Gpu {
                            cores,
                            memory,
                            pool,
                            ..
                        } = &mut *self;
                        let mem: &GpuMemory = memory;
                        match pool {
                            Some(pool) => pool.tick_cores(cores, cycle, &cfg, &ctx, mem),
                            None => {
                                // Dead cores tick to a no-op `false`; walk
                                // only the live ones.
                                let mut any = false;
                                for &id in &live {
                                    any |= cores[id].tick(cycle, &cfg, &ctx, mem);
                                }
                                any
                            }
                        }
                    }
                };

                // --- serial commit phase ---------------------------------
                // Buffered stores land in memory and requests enter the
                // NoC in fixed core-id order, independent of thread count
                // (`live` is ascending, and dead cores drained their last
                // stores on the cycle they went idle).
                for &id in &live {
                    self.cores[id].commit_stores(&mut self.memory);
                }
                drained.clear();
                for &id in &live {
                    self.cores[id].drain_requests_into(&mut drained);
                }
                for req in drained.drain(..) {
                    uncore.push_request(req, &mut stats);
                }

                // --- busy accounting -------------------------------------
                // Also prunes cores that went idle this cycle: they
                // cannot wake again without a dispatch (memory responses
                // only ever target cores with outstanding groups, which
                // are busy by definition).
                busy_cores = 0;
                cluster_busy.iter_mut().for_each(|b| *b = false);
                {
                    let cores = &self.cores;
                    live.retain(|&id| {
                        let core = &cores[id];
                        let busy = core.is_busy();
                        if busy {
                            busy_cores += 1;
                            cluster_busy[core.cluster()] = true;
                        }
                        busy
                    });
                }
                busy_clusters = cluster_busy.iter().filter(|b| **b).count();

                // --- stall-aware fast-forward probe ----------------------
                // If no core did work this cycle, none can before its next
                // scheduled wake-up or an incoming memory response —
                // whichever comes first. Jump ahead; `Uncore::advance`
                // hands control back the moment a response is delivered.
                // The terminal state (everything dispatched, cores idle,
                // uncore drained) must fall through to the termination
                // check instead, and `skip_until == u64::MAX` (no wake
                // scheduled) is bounded below by the sampling-window and
                // watchdog clamps.
                if self.fast_forward && !progressed {
                    let terminal =
                        next_block >= total_blocks && busy_cores == 0 && uncore.is_idle();
                    if !terminal {
                        // Dead cores have no scheduled events, so the
                        // live list covers every possible wake-up.
                        skip_until = live
                            .iter()
                            .filter_map(|&id| self.cores[id].next_wake(cycle))
                            .min()
                            .unwrap_or(u64::MAX);
                    }
                }
            }

            // --- uncore domain: bulk event-driven advance -----------------
            // One shader cycle normally; during a skip, everything up to
            // the earliest of core wake-up, window boundary and watchdog
            // trip. The defensive `max(cycle + 1)` only guarantees
            // progress — each bound is strictly ahead by construction.
            let target = skip_until
                .min(next_window_at)
                .min(self.watchdog_cycles + 1)
                .max(cycle + 1);
            let span = if cycle < skip_until {
                target - cycle
            } else {
                1
            };
            let consumed = uncore.advance(span, &mut responses, &mut stats);

            // During a skip the cores are untouched, so the busy counts
            // cached from the last stepped cycle stay exact across the
            // whole span. After the retain above, `live` holds exactly
            // the busy cores (and is frozen across a skip), so the
            // scoped accumulators use the identical span-multiply.
            stats.add_span(Ev::CoreBusyCycles, busy_cores as u64, consumed);
            stats.add_span(Ev::ClusterBusyCycles, busy_clusters as u64, consumed);
            for &id in &live {
                core_busy_acc[id] += consumed;
            }
            for (c, flag) in cluster_busy.iter().enumerate() {
                if *flag {
                    cluster_busy_acc[c] += consumed;
                }
            }
            peak_cores = peak_cores.max(busy_cores);
            peak_clusters = peak_clusters.max(busy_clusters);
            win_peak_cores = win_peak_cores.max(busy_cores);
            win_peak_clusters = win_peak_clusters.max(busy_clusters);

            // Responses belong to the last consumed shader cycle; they
            // wake cores, so the skip (if any) ends here. An early drain
            // (consumed < span without responses) also ends the skip so
            // the termination check can fire on a stepped cycle.
            let delivered = !responses.is_empty();
            let last_cycle = cycle + consumed - 1;
            for token in responses.drain(..) {
                self.cores[token.core].mem_response(token.addr, last_cycle, &ctx);
            }
            if delivered || consumed < span {
                skip_until = 0;
            }

            // --- progress & termination -----------------------------------
            if stepped {
                let completed: u64 = self.cores.iter().map(|c| c.completed_ctas()).sum();
                if completed != completed_ctas_seen {
                    completed_ctas_seen = completed;
                    dispatch_dirty = true;
                }
            }
            cycle += consumed;

            if let Some((window_cycles, sink)) = &mut sampling {
                if cycle == next_window_at {
                    let snapshot = Self::snapshot_running(
                        &stats,
                        &self.cores,
                        cycle,
                        uncore.uncore_cycles(),
                        uncore.dram_cycles(),
                    );
                    let mut delta =
                        ActivityStats::from_vector(&snapshot.delta_from(&last_snapshot));
                    delta.peak_cores_busy = win_peak_cores;
                    delta.peak_clusters_busy = win_peak_clusters;
                    let cluster_delta: Vec<u64> = cluster_busy_acc
                        .iter()
                        .zip(&last_cluster_busy_acc)
                        .map(|(now, then)| now - then)
                        .collect();
                    sink.on_window(&ActivityWindow {
                        index: window_index,
                        start_cycle: window_start,
                        end_cycle: cycle,
                        stats: delta,
                        cluster_busy: cluster_delta,
                    });
                    last_snapshot = snapshot;
                    last_cluster_busy_acc.copy_from_slice(&cluster_busy_acc);
                    window_index += 1;
                    window_start = cycle;
                    win_peak_cores = 0;
                    win_peak_clusters = 0;
                    next_window_at += *window_cycles;
                }
            }

            // The termination condition cannot become true mid-skip (the
            // cores are frozen and `Uncore::advance` returns control on
            // drain), so the cached busy count keeps this check exact on
            // every iteration.
            if next_block >= total_blocks && busy_cores == 0 && uncore.is_idle() {
                break;
            }
            if cycle > self.watchdog_cycles {
                return Err(SimError::Watchdog { cycles: cycle });
            }
        }

        stats[Ev::ShaderCycles] = cycle;
        stats[Ev::UncoreCycles] = uncore.uncore_cycles();
        stats[Ev::DramCycles] = uncore.dram_cycles();
        // `stats` holds exactly the chip-scoped events here; keep that
        // as the scope-resolved chip vector before merging the cores.
        let chip_vector = stats.clone();
        let mut per_core: Vec<ActivityVector> = Vec::with_capacity(self.cores.len());
        for core in &mut self.cores {
            let core_stats = std::mem::take(&mut core.stats);
            stats += &core_stats;
            per_core.push(core_stats);
        }
        if replay.is_some() {
            // A desync means the trace did not describe this kernel; the
            // run completed (replay substitutes benign values) but its
            // numbers are meaningless, so surface the divergence instead.
            for core in &mut self.cores {
                if let Some(msg) = core.take_replay_desync() {
                    return Err(SimError::Replay(msg));
                }
            }
        } else if capture {
            let mut streams: Vec<WarpStream> = Vec::new();
            for core in &mut self.cores {
                streams.extend(
                    core.take_captured_warps()
                        .into_iter()
                        .map(crate::replay::WarpCapture::into_stream),
                );
            }
            // Canonical stream order — capture collects in per-core
            // retirement order, which is not stable across configs.
            streams.sort_by_key(|s| (s.block_y, s.block_x, s.warp));
            self.captured.push(KernelTrace {
                name: kernel.name().to_string(),
                code: kernel.code().to_vec(),
                num_regs: kernel.num_regs(),
                smem_bytes: kernel.smem_bytes(),
                const_words: kernel.const_words().to_vec(),
                grid_x: launch.grid.x,
                grid_y: launch.grid.y,
                block_x: launch.block.x,
                block_y: launch.block.y,
                warp_size: cfg.warp_size as u32,
                h2d_bytes: stats[Ev::PcieH2dBytes],
                d2h_bytes: stats[Ev::PcieD2hBytes],
                streams,
            });
        }
        self.total_launches += 1;
        let time_s = cycle as f64 / (self.config.shader_mhz() * 1e6);
        // Final (possibly partial) window: the finalized aggregate is
        // exactly the snapshot at `cycle`, so delta it directly.
        let final_delta = if sampling.is_some() && cycle > window_start {
            let mut delta = ActivityStats::from_vector(&stats.delta_from(&last_snapshot));
            delta.peak_cores_busy = win_peak_cores;
            delta.peak_clusters_busy = win_peak_clusters;
            let cluster_delta: Vec<u64> = cluster_busy_acc
                .iter()
                .zip(&last_cluster_busy_acc)
                .map(|(now, then)| now - then)
                .collect();
            Some((delta, cluster_delta))
        } else {
            None
        };
        let mut report_stats = ActivityStats::from_vector(&stats);
        report_stats.peak_cores_busy = peak_cores;
        report_stats.peak_clusters_busy = peak_clusters;
        let report = LaunchReport {
            kernel: kernel.name().to_string(),
            stats: report_stats,
            time_s,
            scoped: ScopedActivity {
                clusters: cfg.clusters,
                cores_per_cluster: cfg.cores_per_cluster,
                per_core,
                core_busy: core_busy_acc,
                cluster_busy: cluster_busy_acc,
                chip: chip_vector,
            },
        };
        if let Some((_, sink)) = &mut sampling {
            if let Some((delta, cluster_delta)) = final_delta {
                sink.on_window(&ActivityWindow {
                    index: window_index,
                    start_cycle: window_start,
                    end_cycle: cycle,
                    stats: delta,
                    cluster_busy: cluster_delta,
                });
            }
            sink.on_launch_end(&report);
        }
        Ok(report)
    }

    /// Cumulative counter snapshot mid-launch, assembled the same way the
    /// final report is: running globals + time counters + per-core stats.
    fn snapshot_running(
        stats: &ActivityVector,
        cores: &[Core],
        cycle: u64,
        uncore_cycle: u64,
        dram_cycle: u64,
    ) -> ActivityVector {
        let mut snap = stats.clone();
        snap[Ev::ShaderCycles] = cycle;
        snap[Ev::UncoreCycles] = uncore_cycle;
        snap[Ev::DramCycles] = dram_cycle;
        for core in cores {
            snap += &core.stats;
        }
        snap
    }

    /// Breadth-first CTA placement over clusters, then cores.
    fn dispatch_blocks(&mut self, ctx: &LaunchCtx<'_>, mut next: u32, total: u32) -> u32 {
        let cfg = &self.config;
        while next < total {
            let mut cluster_load = vec![0usize; cfg.clusters];
            for core in &self.cores {
                cluster_load[core.cluster()] += core.resident_ctas();
            }
            let candidate = self
                .cores
                .iter()
                .enumerate()
                .filter(|(_, c)| c.can_accept(cfg, ctx))
                .min_by_key(|(id, c)| (cluster_load[c.cluster()], c.resident_ctas(), *id))
                .map(|(id, _)| id);
            let Some(core_id) = candidate else { break };
            let bx = next % ctx.launch.grid.x;
            let by = next / ctx.launch.grid.x;
            self.cores[core_id].dispatch_cta(cfg, ctx, bx, by);
            next += 1;
        }
        next
    }
}

//! `BlackScholes` (CUDA SDK): European option pricing.
//!
//! One thread per option, evaluating the closed-form Black-Scholes
//! solution with the Abramowitz-Stegun polynomial for the cumulative
//! normal distribution. FP- and SFU-heavy with minimal memory traffic —
//! the kernel the paper uses for its Table V power breakdown.

use gpusimpow_isa::{CmpOp, KernelBuilder, LaunchConfig, Operand, Reg, SpecialReg};
use gpusimpow_sim::{Gpu, LaunchReport};

use crate::common::{check_f32, BenchError, Benchmark, Origin, XorShift};

/// Risk-free rate.
const RISK_FREE: f32 = 0.02;
/// Volatility.
const VOLATILITY: f32 = 0.30;

/// The BlackScholes benchmark.
#[derive(Debug, Clone, Copy)]
pub struct BlackScholes {
    /// Option count (multiple of 256).
    pub options: u32,
}

impl Default for BlackScholes {
    fn default() -> Self {
        BlackScholes { options: 8192 }
    }
}

impl Benchmark for BlackScholes {
    fn name(&self) -> &'static str {
        "blackscholes"
    }

    fn origin(&self) -> Origin {
        Origin::CudaSdk
    }

    fn description(&self) -> &'static str {
        "Black-Scholes PDE solver"
    }

    fn kernel_names(&self) -> Vec<String> {
        vec!["BlackScholes".to_string()]
    }

    fn run(&self, gpu: &mut Gpu) -> Result<Vec<LaunchReport>, BenchError> {
        let n = self.options;
        let mut rng = XorShift::new(0xB5);
        let price: Vec<f32> = (0..n).map(|_| rng.next_range(5.0, 30.0)).collect();
        let strike: Vec<f32> = (0..n).map(|_| rng.next_range(1.0, 100.0)).collect();
        let years: Vec<f32> = (0..n).map(|_| rng.next_range(0.25, 10.0)).collect();

        let d_price = gpu.alloc_f32(n);
        let d_strike = gpu.alloc_f32(n);
        let d_years = gpu.alloc_f32(n);
        let d_call = gpu.alloc_f32(n);
        let d_put = gpu.alloc_f32(n);
        gpu.h2d_f32(d_price, &price);
        gpu.h2d_f32(d_strike, &strike);
        gpu.h2d_f32(d_years, &years);

        let kernel = build_kernel(
            d_price.addr(),
            d_strike.addr(),
            d_years.addr(),
            d_call.addr(),
            d_put.addr(),
        );
        let report = gpu.launch(&kernel, LaunchConfig::linear(n / 256, 256))?;

        let got_call = gpu.d2h_f32(d_call, n as usize);
        let got_put = gpu.d2h_f32(d_put, n as usize);
        let mut want_call = vec![0f32; n as usize];
        let mut want_put = vec![0f32; n as usize];
        for i in 0..n as usize {
            let (c, p) = reference(price[i], strike[i], years[i]);
            want_call[i] = c;
            want_put[i] = p;
        }
        check_f32("blackscholes", &got_call, &want_call, 1e-3)?;
        check_f32("blackscholes", &got_put, &want_put, 1e-3)?;
        Ok(vec![report])
    }
}

/// CPU reference (same polynomial, f32 arithmetic).
pub fn reference(s: f32, x: f32, t: f32) -> (f32, f32) {
    let sqrt_t = t.sqrt();
    let d1 =
        ((s / x).ln() + (RISK_FREE + 0.5 * VOLATILITY * VOLATILITY) * t) / (VOLATILITY * sqrt_t);
    let d2 = d1 - VOLATILITY * sqrt_t;
    let exp_rt = (-RISK_FREE * t).exp();
    let call = s * cnd(d1) - x * exp_rt * cnd(d2);
    let put = x * exp_rt * (1.0 - cnd(d2)) - s * (1.0 - cnd(d1));
    (call, put)
}

fn cnd(d: f32) -> f32 {
    const A1: f32 = 0.319_381_54;
    const A2: f32 = -0.356_563_78;
    const A3: f32 = 1.781_477_9;
    const A4: f32 = -1.821_255_9;
    const A5: f32 = 1.330_274_5;
    let ad = d.abs();
    let k = 1.0 / (1.0 + 0.2316419 * ad);
    let poly = k * (A1 + k * (A2 + k * (A3 + k * (A4 + k * A5))));
    let w = 0.398_942_3 * (-0.5 * ad * ad).exp();
    let c = 1.0 - w * poly;
    if d < 0.0 {
        1.0 - c
    } else {
        c
    }
}

/// Emits the CND polynomial for the value in `d`, writing to `dst`.
/// Uses scratch registers `s0..s3` (distinct from `d` and `dst`).
fn emit_cnd(k: &mut KernelBuilder, dst: Reg, d: Reg, s0: Reg, s1: Reg, s2: Reg, s3: Reg) {
    use gpusimpow_isa::SfuOp;
    // ad = |d|
    k.fsub(s0, Operand::imm_f32(0.0), d);
    k.fmax(s0, s0, d);
    // kk = 1 / (1 + 0.2316419 * ad)
    k.ffma(s1, s0, Operand::imm_f32(0.2316419), Operand::imm_f32(1.0));
    k.sfu(SfuOp::Rcp, s1, s1);
    // poly = kk*(A1 + kk*(A2 + kk*(A3 + kk*(A4 + kk*A5))))
    k.movf(s2, 1.330_274_5);
    k.ffma(s2, s2, s1, Operand::imm_f32(-1.821_255_9));
    k.ffma(s2, s2, s1, Operand::imm_f32(1.781_477_9));
    k.ffma(s2, s2, s1, Operand::imm_f32(-0.356_563_78));
    k.ffma(s2, s2, s1, Operand::imm_f32(0.319_381_54));
    k.fmul(s2, s2, s1);
    // w = invsqrt2pi * exp(-ad^2/2)  via ex2(ad^2 * -0.5*log2(e))
    k.fmul(s1, s0, s0);
    k.fmul(s1, s1, Operand::imm_f32(-0.5 * std::f32::consts::LOG2_E));
    k.sfu(SfuOp::Ex2, s1, s1);
    k.fmul(s1, s1, Operand::imm_f32(0.398_942_3));
    // dst = 1 - w*poly, flipped when d < 0
    k.fmul(s1, s1, s2);
    k.fsub(s2, Operand::imm_f32(1.0), s1);
    k.fsetp(CmpOp::Lt, s3, d, Operand::imm_f32(0.0));
    k.fsub(s1, Operand::imm_f32(1.0), s2);
    k.sel(dst, s3, s1, s2);
}

fn build_kernel(price: u32, strike: u32, years: u32, call: u32, put: u32) -> gpusimpow_isa::Kernel {
    use gpusimpow_isa::SfuOp;
    let mut k = KernelBuilder::new("BlackScholes");
    let tid = Reg(0);
    let bid = Reg(1);
    let ntid = Reg(2);
    let addr = Reg(3);
    k.s2r(tid, SpecialReg::TidX);
    k.s2r(bid, SpecialReg::CtaIdX);
    k.s2r(ntid, SpecialReg::NTidX);
    k.imad(addr, bid, ntid, tid);
    k.shl(addr, addr, Operand::imm_u32(2));

    let s = Reg(4);
    let x = Reg(5);
    let t = Reg(6);
    k.ld_global(s, addr, price as i32);
    k.ld_global(x, addr, strike as i32);
    k.ld_global(t, addr, years as i32);

    // sqrt_t, d1, d2
    let sqrt_t = Reg(7);
    k.sfu(SfuOp::Sqrt, sqrt_t, t);
    let d1 = Reg(8);
    let d2 = Reg(9);
    let tmp = Reg(10);
    let tmp2 = Reg(11);
    // ln(S/X) = (lg2(S) - lg2(X)) * ln(2)
    k.sfu(SfuOp::Lg2, tmp, s);
    k.sfu(SfuOp::Lg2, tmp2, x);
    k.fsub(tmp, tmp, tmp2);
    k.fmul(tmp, tmp, Operand::imm_f32(std::f32::consts::LN_2));
    // + (r + v^2/2) * t
    k.ffma(
        tmp,
        t,
        Operand::imm_f32(RISK_FREE + 0.5 * VOLATILITY * VOLATILITY),
        tmp,
    );
    // / (v * sqrt_t)
    k.fmul(tmp2, sqrt_t, Operand::imm_f32(VOLATILITY));
    k.sfu(SfuOp::Rcp, tmp2, tmp2);
    k.fmul(d1, tmp, tmp2);
    // d2 = d1 - v*sqrt_t
    k.fmul(tmp, sqrt_t, Operand::imm_f32(VOLATILITY));
    k.fsub(d2, d1, tmp);

    let cnd1 = Reg(12);
    let cnd2 = Reg(13);
    emit_cnd(&mut k, cnd1, d1, Reg(14), Reg(15), Reg(16), Reg(17));
    emit_cnd(&mut k, cnd2, d2, Reg(14), Reg(15), Reg(16), Reg(17));

    // exp_rt = exp(-r*t)
    let exp_rt = Reg(18);
    k.fmul(
        exp_rt,
        t,
        Operand::imm_f32(-RISK_FREE * std::f32::consts::LOG2_E),
    );
    k.sfu(SfuOp::Ex2, exp_rt, exp_rt);

    // call = S*cnd1 - X*exp_rt*cnd2
    let vcall = Reg(19);
    let vput = Reg(20);
    let xe = Reg(21);
    k.fmul(xe, x, exp_rt);
    k.fmul(vcall, s, cnd1);
    k.fmul(tmp, xe, cnd2);
    k.fsub(vcall, vcall, tmp);
    // put = X*exp_rt*(1-cnd2) - S*(1-cnd1)
    k.fsub(tmp, Operand::imm_f32(1.0), cnd2);
    k.fmul(vput, xe, tmp);
    k.fsub(tmp, Operand::imm_f32(1.0), cnd1);
    k.fmul(tmp, s, tmp);
    k.fsub(vput, vput, tmp);

    k.st_global(vcall, addr, call as i32);
    k.st_global(vput, addr, put as i32);
    k.exit();
    k.build().expect("blackscholes kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusimpow_sim::GpuConfig;

    #[test]
    fn cpu_reference_sanity() {
        // Deep in-the-money call is worth about S - X·exp(-rT).
        let (c, _p) = reference(100.0, 1.0, 1.0);
        assert!((c - (100.0 - (-0.02f32).exp())).abs() < 0.5);
        // Deep out-of-the-money call is nearly worthless.
        let (c2, _) = reference(1.0, 100.0, 0.25);
        assert!(c2.abs() < 1e-3);
    }

    #[test]
    fn runs_and_verifies_on_gt240() {
        let mut gpu = Gpu::new(GpuConfig::gt240()).unwrap();
        let reports = BlackScholes { options: 1024 }.run(&mut gpu).unwrap();
        let s = &reports[0].stats;
        assert!(s.sfu_instructions > 0, "SFU exercised");
        assert!(
            s.fp_lane_ops > s.int_lane_ops,
            "FP-dominated kernel: {} fp vs {} int",
            s.fp_lane_ops,
            s.int_lane_ops
        );
    }
}

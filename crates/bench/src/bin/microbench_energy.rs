//! §III-D: per-operation energies from the 31-vs-1-lane microbenchmarks.

use gpusimpow_bench::{experiments, render};

fn main() {
    let e = experiments::microbench_energy(experiments::BOARD_SEED);
    println!("§III-D — empirical per-operation energies (virtual GT240 testbed)\n");
    println!("{}", render::microbench(&e));
}

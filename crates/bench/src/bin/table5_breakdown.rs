//! Table V: blackscholes power breakdown on the GT240.

use gpusimpow_bench::experiments;
use gpusimpow_kernels::Benchmark;
use gpusimpow_power::components::wcu::WcuPower;
use gpusimpow_sim::{Gpu, GpuConfig};
use gpusimpow_tech::node::TechNode;

fn main() {
    let report = experiments::table5_breakdown();
    println!("Table V — blackscholes power breakdown (GT240)\n");
    println!("{report}");

    // §V-B's finer drill-down: the memories inside the WCU.
    let cfg = GpuConfig::gt240();
    let tech = TechNode::planar(cfg.process_nm)
        .and_then(|t| t.with_temperature(cfg.junction_temp_k))
        .expect("preset node");
    let wcu = WcuPower::new(&cfg, &tech).expect("wcu builds");
    let mut gpu = Gpu::new(cfg).expect("preset builds");
    let reports = gpusimpow_kernels::blackscholes::BlackScholes::default()
        .run(&mut gpu)
        .expect("verifies");
    let stats = &reports[0].stats;
    let time_s = reports[0].time_s;
    println!("\nWCU-internal breakdown (per core, dynamic):");
    for (name, e) in wcu.memory_breakdown(&stats.to_vector()) {
        println!(
            "  {:<22} {:>8.3} mW",
            name,
            e.joules() / time_s / 12.0 * 1e3
        );
    }
    println!("\npaper (GPU):  overall 17.934/19.207 W, cores 82.2%, NoC 7.3%, MC 6.1%, PCIe 4.1%");
    println!("paper (core): base 0.199, wcu 0.042/0.089, rf 0.112/0.173, exec 0.0096/0.556, ldstu 0.234/0.014, undiff 0.886; DRAM 4.3 W");
}

//! Self-check: the real workspace passes every simlint pass, and the
//! checked-in `UNSAFE.md` matches the regenerated inventory. This is
//! the same run CI performs via `cargo run -p simlint`, kept as a test
//! so `cargo test` alone catches invariant regressions.

use std::path::Path;

#[test]
fn workspace_has_no_findings_and_manifest_is_current() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let report = simlint::run_workspace(&root).unwrap();
    assert!(
        report.diagnostics.is_empty(),
        "simlint findings in the workspace:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The walk sees the whole first-party tree (sanity floor so a
    // broken walker cannot silently pass by checking nothing).
    assert!(report.files_checked > 100, "{}", report.files_checked);
}

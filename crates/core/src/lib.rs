//! # gpusimpow — a GPGPU power simulator
//!
//! A from-scratch Rust reproduction of **GPUSimPow** (Lucas, Lal,
//! Andersch, Álvarez-Mesa, Juurlink — ISPASS 2013): a power simulation
//! framework for GPGPU architectures that couples a cycle-level SIMT
//! performance simulator with a McPAT-style three-tier power model, plus
//! a virtual reproduction of the paper's measurement testbed for
//! validation.
//!
//! The [`Simulator`] is the front door (paper Fig. 1): give it a GPU
//! configuration and a kernel, get performance *and* power:
//!
//! ```
//! use gpusimpow::Simulator;
//! use gpusimpow_isa::{assemble, LaunchConfig};
//!
//! let mut sim = Simulator::gt240()?;
//! let out = sim.gpu_mut().alloc_f32(256);
//! let kernel = assemble("scale", &format!("
//!     s2r r0, tid.x
//!     shl r1, r0, #2
//!     i2f r2, r0
//!     fmul r2, r2, #0.5
//!     st.global [r1+{}], r2
//!     exit
//! ", out.addr())).expect("valid kernel");
//! let report = sim.run(&kernel, LaunchConfig::linear(8, 32))?;
//! assert!(report.power.total_power().watts() > report.power.static_power().watts());
//! println!("{}", report.power);
//! # Ok::<(), gpusimpow::Error>(())
//! ```
//!
//! The workspace crates behind this facade:
//!
//! | crate | paper role |
//! |---|---|
//! | `gpusimpow-tech` | McPAT technology tier (ITRS nodes, wires) |
//! | `gpusimpow-circuit` | CACTI-lite circuit tier |
//! | `gpusimpow-isa` | kernel ISA + assembler (PTX stand-in) |
//! | `gpusimpow-sim` | cycle-level GPGPU simulator (GPGPU-Sim stand-in) |
//! | `gpusimpow-kernels` | Table I / Fig. 6 workloads + microbenchmarks |
//! | `gpusimpow-power` | GPGPU-Pow chip representation |
//! | `gpusimpow-measure` | virtual §IV-A measurement testbed |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config_file;
pub mod error;
pub mod validate;

use gpusimpow_isa::{Kernel, LaunchConfig};
use gpusimpow_kernels::Benchmark;
use gpusimpow_power::{GpuChip, PowerReport, ScopedPowerReport};
use gpusimpow_sim::{Gpu, GpuConfig, LaunchReport};

pub use config_file::{parse_config, write_config};
pub use error::Error;
pub use validate::{validate_suite, KernelComparison, ValidationSummary};

/// One kernel execution's combined performance + power result.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Performance side: cycles, activity counters, wall time.
    pub launch: LaunchReport,
    /// Power side: Table V-style breakdown.
    pub power: PowerReport,
}

/// The GPUSimPow tool: a performance simulator and a chip power model
/// joined at the activity interface (paper Fig. 1).
#[derive(Debug)]
pub struct Simulator {
    gpu: Gpu,
    chip: GpuChip,
}

impl Simulator {
    /// Builds a simulator for an arbitrary configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the configuration fails validation in
    /// either the performance or the power model.
    pub fn new(config: GpuConfig) -> Result<Self, Error> {
        let chip = GpuChip::new(&config)?;
        let gpu = Gpu::new(config)?;
        Ok(Simulator { gpu, chip })
    }

    /// The GeForce GT240 preset (Table II).
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept fallible for API uniformity.
    pub fn gt240() -> Result<Self, Error> {
        Simulator::new(GpuConfig::gt240())
    }

    /// The GeForce GTX580 preset (Table II).
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept fallible for API uniformity.
    pub fn gtx580() -> Result<Self, Error> {
        Simulator::new(GpuConfig::gtx580())
    }

    /// Builds a simulator from a configuration file (see
    /// [`config_file`] for the format).
    ///
    /// # Errors
    ///
    /// Returns parse or validation errors with line numbers.
    pub fn from_config_text(text: &str) -> Result<Self, Error> {
        Simulator::new(parse_config(text)?)
    }

    /// The architecture being simulated.
    pub fn config(&self) -> &GpuConfig {
        self.gpu.config()
    }

    /// The chip representation (area, static power, peak power).
    pub fn chip(&self) -> &GpuChip {
        &self.chip
    }

    /// Host-side device access (allocations, H2D/D2H copies).
    pub fn gpu_mut(&mut self) -> &mut Gpu {
        &mut self.gpu
    }

    /// Runs a kernel and evaluates its power.
    ///
    /// # Errors
    ///
    /// Propagates launch-rejection and watchdog errors.
    pub fn run(&mut self, kernel: &Kernel, launch: LaunchConfig) -> Result<SimReport, Error> {
        let report = self.gpu.launch(kernel, launch)?;
        let power = self.chip.evaluate(&report.kernel, &report.stats);
        Ok(SimReport {
            launch: report,
            power,
        })
    }

    /// Per-cluster power attribution for a finished launch: the same
    /// component energy maps applied to each cluster's scoped registry
    /// vector ([`gpusimpow_sim::ScopedActivity`]) instead of the chip
    /// aggregate.
    pub fn evaluate_scoped(&self, launch: &LaunchReport) -> ScopedPowerReport {
        self.chip
            .evaluate_scoped(&launch.kernel, &launch.stats, &launch.scoped)
    }

    /// Runs a complete self-verifying benchmark, returning one report
    /// per kernel launch.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors and CPU-reference verification
    /// failures.
    pub fn run_benchmark(&mut self, bench: &dyn Benchmark) -> Result<Vec<SimReport>, Error> {
        let reports = bench.run(&mut self.gpu)?;
        Ok(reports
            .into_iter()
            .map(|launch| {
                let power = self.chip.evaluate(&launch.kernel, &launch.stats);
                SimReport { launch, power }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulator_runs_a_benchmark_end_to_end() {
        let mut sim = Simulator::gt240().unwrap();
        let bench = gpusimpow_kernels::vectoradd::VectorAdd { n: 1024 };
        let reports = sim.run_benchmark(&bench).unwrap();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert!(r.launch.stats.shader_cycles > 0);
        assert!(r.power.total_power().watts() > 17.0, "static floor");
        assert_eq!(r.power.kernel, "vectorAdd");
    }

    #[test]
    fn config_text_to_simulator() {
        let sim = Simulator::from_config_text("base = gt240\nclusters = 2").unwrap();
        assert_eq!(sim.config().total_cores(), 6);
    }

    #[test]
    fn bad_config_text_errors() {
        assert!(Simulator::from_config_text("clusters = banana").is_err());
    }
}

//! Content-addressable (tagged-search) structure model.
//!
//! The paper models the instruction buffer and the scoreboard as
//! "cache-like" structures tagged by warp ID: a lookup broadcasts the warp
//! ID to all entries and compares in parallel. This is a small
//! fully-associative CAM; energy is dominated by the match-line and
//! search-line switching.

use gpusimpow_tech::node::{DeviceType, TechNode};
use gpusimpow_tech::units::Energy;
use gpusimpow_tech::wire::{Wire, WireClass};

use crate::array::{SramArray, SramSpec};
use crate::costs::CircuitCosts;

/// A small fully-associative tagged table (CAM tags + SRAM payload).
///
/// # Examples
///
/// ```
/// use gpusimpow_circuit::cam::TaggedTable;
/// use gpusimpow_tech::node::TechNode;
///
/// // A GT240 instruction buffer: 48 slots tagged by a 5-bit warp ID,
/// // holding 64-bit decoded instructions.
/// let tech = TechNode::planar(40)?;
/// let ib = TaggedTable::new(&tech, 48, 5, 64)?;
/// assert!(ib.search_energy().picojoules() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedTable {
    entries: usize,
    tag_bits: usize,
    payload: SramArray,
    search_energy: Energy,
    tag_write_energy: Energy,
    costs: CircuitCosts,
}

impl TaggedTable {
    /// Builds a table with `entries` slots, `tag_bits`-wide CAM tags and
    /// `payload_bits` of SRAM per slot.
    ///
    /// # Errors
    ///
    /// Returns an error if any dimension is zero or the payload array spec
    /// is invalid.
    pub fn new(
        tech: &TechNode,
        entries: usize,
        tag_bits: usize,
        payload_bits: usize,
    ) -> Result<Self, &'static str> {
        if entries == 0 || tag_bits == 0 || payload_bits == 0 {
            return Err("tagged table dimensions must be non-zero");
        }
        let payload = SramArray::new(
            tech,
            SramSpec {
                entries,
                bits_per_entry: payload_bits,
                read_ports: 1,
                write_ports: 1,
                rw_ports: 0,
                banks: 1,
                device: DeviceType::HighPerformance,
            },
        )?;
        let vdd = tech.vdd();
        let min_width_um = tech.feature_um() * 1.5;
        let gate = tech.gate_cap_per_um() * min_width_um;
        let drain = tech.drain_cap_per_um() * min_width_um;

        // Search lines: each tag bit is broadcast down the column of
        // `entries` compare gates.
        let col_height_mm = entries as f64 * tech.sram_cell_area().um2().sqrt() / 1000.0;
        let search_wire = Wire::new(tech, WireClass::Local, col_height_mm);
        let search_line_cap = search_wire.capacitance() + gate * (2.0 * entries as f64);
        // Match lines: one per entry, spanning the tag width; in the worst
        // case all but one discharge.
        let row_width_mm = tag_bits as f64 * tech.sram_cell_area().um2().sqrt() / 1000.0;
        let match_wire = Wire::new(tech, WireClass::Local, row_width_mm);
        let match_line_cap = match_wire.capacitance() + drain * tag_bits as f64;
        let search_energy = (search_line_cap * tag_bits as f64).switching_energy(vdd, vdd)
            + (match_line_cap * entries as f64).switching_energy(vdd, vdd);

        // CAM cells are ~2x 6T cell area (9T-10T cells).
        let tag_area = tech.sram_cell_area() * (2.0 * (entries * tag_bits) as f64);
        let leak_width_um = 2.5 * tech.feature_um();
        let tag_leak = (tech.sub_leak_per_um(DeviceType::HighPerformance) * leak_width_um
            + tech.gate_leak_per_um() * leak_width_um)
            * vdd
            * ((entries * tag_bits) as f64);

        let tag_write_energy = (search_line_cap * tag_bits as f64).switching_energy(vdd, vdd);

        let costs = CircuitCosts::new(
            payload.costs().area + tag_area,
            search_energy + payload.costs().read_energy,
            tag_write_energy + payload.costs().write_energy,
            payload.costs().leakage + tag_leak,
        );
        Ok(TaggedTable {
            entries,
            tag_bits,
            payload,
            search_energy,
            tag_write_energy,
            costs,
        })
    }

    /// Energy of one associative search (tag compare only, no payload read).
    pub fn search_energy(&self) -> Energy {
        self.search_energy
    }

    /// Energy of a full lookup: search plus payload read of the hit entry.
    pub fn lookup_energy(&self) -> Energy {
        self.costs.read_energy
    }

    /// Energy of inserting an entry (tag write + payload write).
    pub fn insert_energy(&self) -> Energy {
        self.costs.write_energy
    }

    /// Aggregate bundle (read = lookup, write = insert).
    pub fn costs(&self) -> CircuitCosts {
        self.costs
    }

    /// Number of slots.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// CAM tag width in bits.
    pub fn tag_bits(&self) -> usize {
        self.tag_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t40() -> TechNode {
        TechNode::planar(40).unwrap()
    }

    #[test]
    fn search_is_cheaper_than_full_lookup() {
        let t = TaggedTable::new(&t40(), 48, 6, 64).unwrap();
        assert!(t.search_energy() < t.lookup_energy());
    }

    #[test]
    fn more_entries_cost_more_search_energy() {
        let small = TaggedTable::new(&t40(), 24, 6, 64).unwrap();
        let big = TaggedTable::new(&t40(), 96, 6, 64).unwrap();
        assert!(big.search_energy() > small.search_energy());
    }

    #[test]
    fn wider_tags_cost_more() {
        let narrow = TaggedTable::new(&t40(), 48, 4, 64).unwrap();
        let wide = TaggedTable::new(&t40(), 48, 12, 64).unwrap();
        assert!(wide.search_energy() > narrow.search_energy());
    }

    #[test]
    fn zero_dimensions_rejected() {
        let t = t40();
        assert!(TaggedTable::new(&t, 0, 6, 64).is_err());
        assert!(TaggedTable::new(&t, 48, 0, 64).is_err());
        assert!(TaggedTable::new(&t, 48, 6, 0).is_err());
    }

    #[test]
    fn scoreboard_scale_energy_is_sub_picojoule_to_few_pj() {
        // 24-warp scoreboard with 2 destination registers (paper Fig. 2).
        let sb = TaggedTable::new(&t40(), 24, 5, 16).unwrap();
        let pj = sb.lookup_energy().picojoules();
        assert!(pj > 0.001 && pj < 10.0, "scoreboard lookup {pj} pJ");
    }
}

//! Criterion benchmarks of the cycle-level simulator's throughput —
//! the "how fast is the simulator itself" numbers a tool paper quotes.

use criterion::{criterion_group, criterion_main, Criterion};

use gpusimpow_kernels::{matmul::MatrixMul, vectoradd::VectorAdd, Benchmark};
use gpusimpow_sim::{Gpu, GpuConfig};

fn bench_vectoradd(c: &mut Criterion) {
    c.bench_function("sim/vectoradd-2048-gt240", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::gt240()).unwrap();
            VectorAdd { n: 2048 }.run(&mut gpu).unwrap()
        })
    });
}

fn bench_matmul(c: &mut Criterion) {
    c.bench_function("sim/matmul-32-gt240", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::gt240()).unwrap();
            MatrixMul { n: 32 }.run(&mut gpu).unwrap()
        })
    });
    c.bench_function("sim/matmul-32-gtx580", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::gtx580()).unwrap();
            MatrixMul { n: 32 }.run(&mut gpu).unwrap()
        })
    });
}

criterion_group!(benches, bench_vectoradd, bench_matmul);
criterion_main!(benches);

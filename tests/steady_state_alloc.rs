//! Steady-state allocation contract of the SoA hot path: once a `Gpu`
//! is warm, the cycle loop must not allocate per executed instruction.
//!
//! The scratch block (`LaneScratch`), the coalescer's segment buffers
//! and the uncore queues are all reused across cycles, so scaling a
//! pure-compute kernel's iteration count — more cycles, more executed
//! instructions, identical launch shape — must not scale the number of
//! heap allocations. Launch setup (warp vectors, register files, SIMT
//! stacks) allocates proportionally to the *grid*, which is held fixed
//! here; a per-cycle `vec!`/`collect` regression in the execute or
//! LD/ST path makes the long run's allocation count grow with the
//! iteration count and trips the ratio assertion.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use gpusimpow_isa::LaunchConfig;
use gpusimpow_kernels::micro;
use gpusimpow_sim::{Gpu, GpuConfig};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` plus a relaxed counter bump;
// every layout/pointer contract is forwarded to the system allocator
// unchanged, so its guarantees carry over verbatim.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to `System.alloc` with the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: delegates to `System.dealloc` with the caller's pointer.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: delegates to `System.realloc` with the caller's pointer.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations during one launch on an already-warm `Gpu`.
fn allocations_during_launch(gpu: &mut Gpu, iterations: u32) -> u64 {
    let kernel = micro::cluster_step_kernel(iterations);
    let launch = LaunchConfig::linear(4, 64);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let report = gpu.launch(&kernel, launch).expect("launch runs");
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(report.stats.shader_cycles > 0);
    after - before
}

#[test]
fn allocations_do_not_scale_with_executed_instructions() {
    let mut gpu = Gpu::new(GpuConfig::gt240()).expect("preset builds");

    // Warm up: first launches grow scratch/queue capacities to their
    // high-water marks (and assemble each kernel once outside the
    // measured region is not possible — kernel construction allocates —
    // so both measured runs pay the same kernel-build cost).
    allocations_during_launch(&mut gpu, 64);
    allocations_during_launch(&mut gpu, 512);

    let short = allocations_during_launch(&mut gpu, 64);
    let long = allocations_during_launch(&mut gpu, 512);

    // The long run executes ~8x the instructions over the same grid. A
    // per-cycle allocation anywhere in the execute/LD-ST path would
    // make `long` several multiples of `short`; reused buffers keep the
    // counts within noise of each other (small slack for amortized
    // queue growth in the uncore).
    assert!(
        long <= short + short / 4 + 64,
        "allocation count scales with cycle count: {short} allocations \
         at 64 iterations vs {long} at 512 — the hot path allocates in \
         steady state"
    );
}

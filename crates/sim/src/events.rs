//! The typed component-event registry — the single declarative table
//! behind every activity counter in the workspace.
//!
//! GPUSimPow's contract (paper §III-B) is "access counts for all parts
//! of the simulated architecture" flowing into a per-component energy
//! model. Before this module that contract lived in four
//! hand-synchronised places: the public fields of
//! [`ActivityStats`](crate::ActivityStats), its hand-written
//! `delta_from`/`AddAssign` field lists, the per-component power
//! modules, and the tracer/report renderers. The registry replaces all
//! of those lists with **one** declarative table, [`for_each_event!`]:
//!
//! * [`EventKind`] — one variant per energy-bearing event, in a fixed
//!   dense order;
//! * [`ComponentId`] — the architectural component each event belongs
//!   to (mirrors the Table V breakdown rows);
//! * [`Scope`] — whether the event is recorded per-core (and therefore
//!   aggregable per cluster `c` or per core `(c,k)` on demand) or only
//!   chip-wide;
//! * [`ActivityVector`] — a dense `[u64; EventKind::COUNT]` indexed by
//!   `EventKind`, the storage every simulator hot path increments.
//!
//! Downstream crates re-invoke the same table (it is `#[macro_export]`,
//! usable as `gpusimpow_sim::for_each_event!`) to generate their own
//! per-event structures — the power model builds its energy maps from
//! it and `ActivityStats` itself is generated from it as a thin
//! compatibility view — so adding an event is a one-line change that
//! the exhaustiveness tests then force every layer to acknowledge.

use std::fmt;
use std::ops::{AddAssign, Index, IndexMut};

/// Invokes the callback macro `$cb` with the complete component-event
/// table, one `(Variant, field_name, ComponentId, Scope, "doc")` tuple
/// per event, in registry (= dense-index) order.
///
/// The callback receives the table as
/// `$cb! { (Variant, field, Component, Scope, "doc"), ... }` and is
/// typically a local `macro_rules!` that pattern-matches
/// `( $( ($variant:ident, $field:ident, $component:ident,
/// $scope:ident, $doc:literal) ),* $(,)? )`.
///
/// This is the **only** place events are listed; everything else —
/// [`EventKind`], [`ActivityVector`], the `ActivityStats` compatibility
/// view and its `delta_from`/`AddAssign`, and the power model's energy
/// maps — is generated from it.
#[macro_export]
macro_rules! for_each_event {
    ($cb:ident) => {
        $cb! {
            // --- time ----------------------------------------------------
            (ShaderCycles, shader_cycles, Timebase, Chip,
             "Shader-clock cycles from launch to completion."),
            (UncoreCycles, uncore_cycles, Timebase, Chip,
             "Uncore-clock cycles elapsed."),
            (DramCycles, dram_cycles, Timebase, Chip,
             "DRAM command-clock cycles elapsed."),
            (CoreBusyCycles, core_busy_cycles, Timebase, Chip,
             "Sum over cores of cycles with at least one resident CTA."),
            (ClusterBusyCycles, cluster_busy_cycles, Timebase, Chip,
             "Sum over clusters of cycles with at least one busy core."),
            // --- warp control unit ---------------------------------------
            (IcacheAccesses, icache_accesses, WarpControlUnit, Core,
             "Instruction-cache accesses (fetches)."),
            (IcacheMisses, icache_misses, WarpControlUnit, Core,
             "Instruction-cache misses."),
            (Decodes, decodes, WarpControlUnit, Core,
             "Instructions decoded."),
            (IbufferWrites, ibuffer_writes, WarpControlUnit, Core,
             "Instruction-buffer fills."),
            (IbufferReads, ibuffer_reads, WarpControlUnit, Core,
             "Instruction-buffer drains (issues)."),
            (WstReads, wst_reads, WarpControlUnit, Core,
             "Warp status table reads (fetch-stage scheduling)."),
            (WstWrites, wst_writes, WarpControlUnit, Core,
             "Warp status table updates."),
            (FetchSchedulerSelects, fetch_scheduler_selects, WarpControlUnit, Core,
             "Fetch-scheduler selections (priority-encoder activations)."),
            (IssueSchedulerSelects, issue_scheduler_selects, WarpControlUnit, Core,
             "Issue-scheduler selections."),
            (ScoreboardReads, scoreboard_reads, WarpControlUnit, Core,
             "Scoreboard lookups (dependency checks)."),
            (ScoreboardWrites, scoreboard_writes, WarpControlUnit, Core,
             "Scoreboard set/clear updates."),
            (SimtStackReads, simt_stack_reads, WarpControlUnit, Core,
             "Reconvergence-stack token reads."),
            (SimtStackPushes, simt_stack_pushes, WarpControlUnit, Core,
             "Reconvergence-stack pushes."),
            (SimtStackPops, simt_stack_pops, WarpControlUnit, Core,
             "Reconvergence-stack pops."),
            (Branches, branches, WarpControlUnit, Core,
             "Branch instructions executed (warp granularity)."),
            (DivergentBranches, divergent_branches, WarpControlUnit, Core,
             "Branches that actually diverged."),
            (BarrierWaits, barrier_waits, WarpControlUnit, Core,
             "Warp-level barrier arrivals."),
            // --- register file -------------------------------------------
            (RfBankReads, rf_bank_reads, RegisterFile, Core,
             "Register-bank read accesses."),
            (RfBankWrites, rf_bank_writes, RegisterFile, Core,
             "Register-bank write accesses."),
            (RfBankConflicts, rf_bank_conflicts, RegisterFile, Core,
             "Reads serialized because two operands hit the same bank."),
            (CollectorAllocations, collector_allocations, RegisterFile, Core,
             "Operand-collector allocations."),
            (CollectorXbarTransfers, collector_xbar_transfers, RegisterFile, Core,
             "Operand crossbar transfers (bank → collector)."),
            // --- execution units -----------------------------------------
            (IntInstructions, int_instructions, ExecUnits, Core,
             "Integer warp instructions issued."),
            (FpInstructions, fp_instructions, ExecUnits, Core,
             "Floating-point warp instructions issued."),
            (SfuInstructions, sfu_instructions, ExecUnits, Core,
             "SFU warp instructions issued."),
            (IntLaneOps, int_lane_ops, ExecUnits, Core,
             "Integer lane-operations (thread granularity, drives the 40 pJ/op empirical model)."),
            (FpLaneOps, fp_lane_ops, ExecUnits, Core,
             "FP lane-operations (75 pJ/op)."),
            (SfuLaneOps, sfu_lane_ops, ExecUnits, Core,
             "SFU lane-operations."),
            (WarpInstructions, warp_instructions, ExecUnits, Core,
             "Total warp instructions of any class issued."),
            (ThreadInstructions, thread_instructions, ExecUnits, Core,
             "Total thread instructions committed."),
            // --- load/store unit -----------------------------------------
            (MemInstructions, mem_instructions, LoadStoreUnit, Core,
             "Memory warp instructions issued."),
            (AguOps, agu_ops, LoadStoreUnit, Core,
             "Sub-AGU activations (each produces up to 8 addresses)."),
            (CoalescerInputs, coalescer_inputs, LoadStoreUnit, Core,
             "Addresses presented to the coalescer."),
            (CoalescerOutputs, coalescer_outputs, LoadStoreUnit, Core,
             "Memory requests leaving the coalescer."),
            (SmemAccesses, smem_accesses, LoadStoreUnit, Core,
             "Shared-memory bank accesses."),
            (SmemBankConflictCycles, smem_bank_conflict_cycles, LoadStoreUnit, Core,
             "Extra serialization passes due to bank conflicts."),
            (ConstAccesses, const_accesses, LoadStoreUnit, Core,
             "Constant-cache accesses (one per distinct address per warp)."),
            (ConstMisses, const_misses, LoadStoreUnit, Core,
             "Constant-cache misses."),
            (L1Accesses, l1_accesses, LoadStoreUnit, Core,
             "L1 data-cache accesses."),
            (L1Misses, l1_misses, LoadStoreUnit, Core,
             "L1 data-cache misses."),
            (L1Fills, l1_fills, LoadStoreUnit, Core,
             "L1 line fills."),
            // --- chip level ----------------------------------------------
            (NocFlits, noc_flits, Noc, Chip,
             "NoC flits transferred (both directions)."),
            (NocTransfers, noc_transfers, Noc, Chip,
             "NoC packet transfers (requests + replies)."),
            (L2Accesses, l2_accesses, L2Cache, Chip,
             "L2 accesses."),
            (L2Misses, l2_misses, L2Cache, Chip,
             "L2 misses."),
            (L2Fills, l2_fills, L2Cache, Chip,
             "L2 line fills."),
            (McQueueOps, mc_queue_ops, MemoryController, Chip,
             "Memory-controller queue operations."),
            (DramActivates, dram_activates, Dram, Chip,
             "DRAM row activations."),
            (DramPrecharges, dram_precharges, Dram, Chip,
             "DRAM precharges."),
            (DramReadBursts, dram_read_bursts, Dram, Chip,
             "DRAM 32-byte read bursts."),
            (DramWriteBursts, dram_write_bursts, Dram, Chip,
             "DRAM 32-byte write bursts."),
            (DramRefreshes, dram_refreshes, Dram, Chip,
             "DRAM refresh commands."),
            (DramDataBusBusyCycles, dram_data_bus_busy_cycles, Dram, Chip,
             "Command cycles the DRAM data bus was driven."),
            (PcieH2dBytes, pcie_h2d_bytes, Pcie, Chip,
             "Bytes moved over PCIe host→device."),
            (PcieD2hBytes, pcie_d2h_bytes, Pcie, Chip,
             "Bytes moved over PCIe device→host."),
            (KernelLaunches, kernel_launches, GlobalScheduler, Chip,
             "Kernel launches seen by the global scheduler."),
            (CtasDispatched, ctas_dispatched, GlobalScheduler, Core,
             "CTAs dispatched by the global scheduler."),
        }
    };
}

/// The architectural component an event belongs to.
///
/// Mirrors the rows of the paper's Table V power breakdown: the first
/// five are per-core (replicated) components, the rest are chip-level
/// shared structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComponentId {
    /// Clock/cycle bookkeeping — not an energy-bearing component.
    Timebase,
    /// Warp control unit (WST, I-cache, decoder, I-buffer, scoreboard,
    /// reconvergence stacks, schedulers).
    WarpControlUnit,
    /// Banked register file with operand collectors and crossbar.
    RegisterFile,
    /// Execution units (INT/FP lanes, SFUs).
    ExecUnits,
    /// Load/store unit (AGUs, coalescer, SMEM, constant cache, L1).
    LoadStoreUnit,
    /// Network-on-chip between clusters and the uncore.
    Noc,
    /// Shared L2 cache slices.
    L2Cache,
    /// Memory-controller front-ends.
    MemoryController,
    /// GDDR5 DRAM devices.
    Dram,
    /// PCIe host interface.
    Pcie,
    /// Global (chip-level) kernel/CTA scheduler.
    GlobalScheduler,
}

impl ComponentId {
    /// Every component, in declaration order.
    pub const ALL: &'static [ComponentId] = &[
        ComponentId::Timebase,
        ComponentId::WarpControlUnit,
        ComponentId::RegisterFile,
        ComponentId::ExecUnits,
        ComponentId::LoadStoreUnit,
        ComponentId::Noc,
        ComponentId::L2Cache,
        ComponentId::MemoryController,
        ComponentId::Dram,
        ComponentId::Pcie,
        ComponentId::GlobalScheduler,
    ];

    /// Human-readable name used by reports.
    pub const fn name(self) -> &'static str {
        match self {
            ComponentId::Timebase => "timebase",
            ComponentId::WarpControlUnit => "warp control unit",
            ComponentId::RegisterFile => "register file",
            ComponentId::ExecUnits => "execution units",
            ComponentId::LoadStoreUnit => "load/store unit",
            ComponentId::Noc => "NoC",
            ComponentId::L2Cache => "L2 cache",
            ComponentId::MemoryController => "memory controller",
            ComponentId::Dram => "DRAM",
            ComponentId::Pcie => "PCIe",
            ComponentId::GlobalScheduler => "global scheduler",
        }
    }
}

/// Where an event is recorded — the registry's scope dimension.
///
/// `Core`-scoped events are incremented into the owning core's private
/// [`ActivityVector`], so they can be aggregated per core `(c,k)`, per
/// cluster `c`, or chip-wide on demand. `Chip`-scoped events exist only
/// in the chip-wide vector (clock domains, shared uncore structures,
/// PCIe and the global scheduler have no per-core identity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scope {
    /// Recorded per-core, aggregated on demand.
    Core,
    /// Recorded chip-wide only.
    Chip,
}

macro_rules! define_registry {
    ( $( ($variant:ident, $field:ident, $component:ident, $scope:ident, $doc:literal) ),* $(,)? ) => {
        /// One energy-bearing event class of the simulated architecture.
        ///
        /// The discriminant is the event's dense index into an
        /// [`ActivityVector`]; [`EventKind::ALL`] lists every event in
        /// that order. Generated from [`for_each_event!`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub enum EventKind {
            $( #[doc = $doc] $variant, )*
        }

        impl EventKind {
            /// Every event, in registry (= dense-index) order.
            pub const ALL: &'static [EventKind] = &[ $( EventKind::$variant, )* ];

            /// Number of events in the registry.
            pub const COUNT: usize = Self::ALL.len();

            /// Dense index of this event — its slot in an [`ActivityVector`].
            #[inline]
            pub const fn index(self) -> usize {
                self as usize
            }

            /// The event's counter name (the `ActivityStats` field name).
            pub const fn name(self) -> &'static str {
                match self {
                    $( EventKind::$variant => stringify!($field), )*
                }
            }

            /// The architectural component the event belongs to.
            pub const fn component(self) -> ComponentId {
                match self {
                    $( EventKind::$variant => ComponentId::$component, )*
                }
            }

            /// Where the event is recorded (per-core or chip-wide).
            pub const fn scope(self) -> Scope {
                match self {
                    $( EventKind::$variant => Scope::$scope, )*
                }
            }
        }
    };
}
for_each_event!(define_registry);

/// Dense per-event counters: one `u64` slot per [`EventKind`], indexed
/// by event id.
///
/// This is the registry's storage type — the simulator's hot paths
/// increment slots with constant indices (`vec[EventKind::Decodes] += 1`
/// compiles to a fixed-offset add), the window sampler differences
/// cumulative snapshots with [`ActivityVector::delta_from`], and scoped
/// accounting sums per-core vectors into cluster and chip aggregates
/// with `+=`.
#[derive(Clone, PartialEq, Eq)]
pub struct ActivityVector([u64; EventKind::COUNT]);

impl ActivityVector {
    /// A zeroed vector.
    #[inline]
    pub const fn new() -> Self {
        ActivityVector([0; EventKind::COUNT])
    }

    /// The raw slots, in [`EventKind::ALL`] order.
    #[inline]
    pub fn values(&self) -> &[u64; EventKind::COUNT] {
        &self.0
    }

    /// Iterates `(event, count)` pairs in registry order.
    pub fn iter(&self) -> impl Iterator<Item = (EventKind, u64)> + '_ {
        EventKind::ALL.iter().map(move |&e| (e, self.0[e.index()]))
    }

    /// True when every slot is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&v| v == 0)
    }

    /// Adds `units * span` to an event slot — the span-multiply
    /// primitive shared by the stall-aware fast-forward and the batched
    /// steady-state stepping in `Gpu::launch_impl`: both commit a run
    /// of cycles wholesale after proving the per-cycle contribution
    /// (`units`) is constant across the whole span.
    #[inline]
    pub fn add_span(&mut self, event: EventKind, units: u64, span: u64) {
        self.0[event.index()] += units * span;
    }

    /// Slot-wise difference `self − earlier` between two cumulative
    /// snapshots of the same launch — the primitive behind windowed
    /// power sampling (see `ActivityStats::delta_from` for the
    /// compatibility-view equivalent).
    ///
    /// # Panics
    ///
    /// Panics if any slot in `earlier` exceeds the corresponding slot
    /// in `self` (the snapshots are out of order).
    pub fn delta_from(&self, earlier: &ActivityVector) -> ActivityVector {
        let mut delta = ActivityVector::new();
        for i in 0..EventKind::COUNT {
            delta.0[i] = self.0[i]
                .checked_sub(earlier.0[i])
                .expect("delta_from: `earlier` is not an earlier snapshot");
        }
        delta
    }
}

impl Default for ActivityVector {
    fn default() -> Self {
        Self::new()
    }
}

impl Index<EventKind> for ActivityVector {
    type Output = u64;

    #[inline]
    fn index(&self, event: EventKind) -> &u64 {
        &self.0[event.index()]
    }
}

impl IndexMut<EventKind> for ActivityVector {
    #[inline]
    fn index_mut(&mut self, event: EventKind) -> &mut u64 {
        &mut self.0[event.index()]
    }
}

impl AddAssign<&ActivityVector> for ActivityVector {
    fn add_assign(&mut self, rhs: &ActivityVector) {
        for i in 0..EventKind::COUNT {
            self.0[i] += rhs.0[i];
        }
    }
}

impl fmt::Debug for ActivityVector {
    /// Lists only non-zero slots — a full 62-slot dump drowns test
    /// failure output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for (event, count) in self.iter() {
            if count != 0 {
                map.entry(&event.name(), &count);
            }
        }
        map.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, &event) in EventKind::ALL.iter().enumerate() {
            assert_eq!(event.index(), i, "{} out of order", event.name());
        }
        assert_eq!(EventKind::ALL.len(), EventKind::COUNT);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = EventKind::ALL.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EventKind::COUNT);
    }

    #[test]
    fn every_component_except_timebase_has_events() {
        for &component in ComponentId::ALL {
            let n = EventKind::ALL
                .iter()
                .filter(|e| e.component() == component)
                .count();
            assert!(n > 0, "component {:?} has no events", component);
        }
    }

    #[test]
    fn scope_partition_matches_recording_sites() {
        // Everything a Core increments is Core-scoped; clock domains,
        // uncore structures, PCIe and kernel launches are chip-scoped.
        assert_eq!(EventKind::Decodes.scope(), Scope::Core);
        assert_eq!(EventKind::L1Accesses.scope(), Scope::Core);
        assert_eq!(EventKind::CtasDispatched.scope(), Scope::Core);
        assert_eq!(EventKind::ShaderCycles.scope(), Scope::Chip);
        assert_eq!(EventKind::NocFlits.scope(), Scope::Chip);
        assert_eq!(EventKind::KernelLaunches.scope(), Scope::Chip);
    }

    #[test]
    fn vector_index_add_delta_roundtrip() {
        let mut a = ActivityVector::new();
        assert!(a.is_zero());
        a[EventKind::Decodes] = 7;
        a[EventKind::L2Misses] += 3;
        let mut b = a.clone();
        b += &a;
        assert_eq!(b[EventKind::Decodes], 14);
        let delta = b.delta_from(&a);
        assert_eq!(delta, a);
    }

    #[test]
    #[should_panic(expected = "earlier snapshot")]
    fn vector_delta_rejects_reordered_snapshots() {
        let mut earlier = ActivityVector::new();
        earlier[EventKind::Decodes] = 1;
        let _ = ActivityVector::new().delta_from(&earlier);
    }

    #[test]
    fn debug_lists_only_nonzero_slots() {
        let mut v = ActivityVector::new();
        v[EventKind::NocFlits] = 9;
        let text = format!("{:?}", v);
        assert!(text.contains("noc_flits"));
        assert!(!text.contains("decodes"));
    }
}

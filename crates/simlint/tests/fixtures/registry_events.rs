// Fixture: a miniature for_each_event! table (five events).
#[macro_export]
macro_rules! for_each_event {
    ($cb:ident) => {
        $cb! {
            (ShaderCycles, shader_cycles, Timebase, Chip,
             "Shader-clock cycles — consumed by the base model."),
            (Decodes, decodes, WarpControlUnit, Core,
             "Instructions decoded — priced by the component."),
            (Branches, branches, WarpControlUnit, Core,
             "Branches — documented diagnostics-only counter."),
            (DramReads, dram_reads, Dram, Chip,
             "DRAM read bursts — priced by the component."),
            (GhostEvent, ghost_event, Dram, Chip,
             "Mentioned only inside a test module downstream."),
        }
    };
}

//! DVFS governors: policies that pick an operating point per window.
//!
//! A governor sees each activity window *with* the estimated chip power
//! that window would draw at every available operating point
//! ([`WindowContext::power_at`]) and returns the index to run it at.
//! Letting the policy act on the window it is deciding for (rather than
//! one window late) is the usual idealization in replay-based DVFS
//! studies; it is what makes a power cap enforceable per-window rather
//! than merely in steady state.

use gpusimpow_sim::ActivityWindow;
use gpusimpow_tech::clockdomain::DvfsTable;
use gpusimpow_tech::units::Power;

/// Everything a governor may consult when picking an operating point.
#[derive(Debug)]
pub struct WindowContext<'a> {
    /// The activity window being decided.
    pub window: &'a ActivityWindow,
    /// Core-busy fraction of the window in `[0, 1]`.
    pub utilization: f64,
    /// Per-cluster busy fraction of the window in `[0, 1]`, from the
    /// registry's scoped accounting (the fraction of the window each
    /// cluster had at least one busy core). Empty for windows recorded
    /// without scoped data (hand-built test windows).
    pub cluster_utilization: &'a [f64],
    /// Operating point used for the previous window (the nominal index
    /// for the first window of a launch).
    pub prev_op: usize,
    /// The DVFS table in effect.
    pub dvfs: &'a DvfsTable,
    /// Estimated chip total power of this window at each operating
    /// point, same indexing as `dvfs` (slowest first; monotonically
    /// non-decreasing in practice).
    pub power_at: &'a [Power],
}

/// A per-window DVFS policy.
pub trait Governor {
    /// Short policy name (used in trace labels and CSV file names).
    fn name(&self) -> &str;

    /// Picks the operating-point index for `ctx.window`.
    fn select(&mut self, ctx: &WindowContext<'_>) -> usize;

    /// Resets per-launch state (called between launches of a suite).
    fn reset(&mut self) {}
}

/// No power management: every window runs at the nominal point.
#[derive(Debug, Clone, Copy, Default)]
pub struct Baseline;

impl Governor for Baseline {
    fn name(&self) -> &str {
        "baseline"
    }

    fn select(&mut self, ctx: &WindowContext<'_>) -> usize {
        ctx.dvfs.nominal_index()
    }
}

/// Linux-`ondemand`-style utilization governor: jump to nominal when
/// utilization exceeds the up-threshold, step one point down when it
/// falls below the down-threshold, otherwise hold.
#[derive(Debug, Clone, Copy)]
pub struct Ondemand {
    /// Utilization above which the governor jumps to nominal.
    pub up_threshold: f64,
    /// Utilization below which the governor steps one point down.
    pub down_threshold: f64,
}

impl Default for Ondemand {
    fn default() -> Self {
        Ondemand {
            up_threshold: 0.6,
            down_threshold: 0.3,
        }
    }
}

impl Governor for Ondemand {
    fn name(&self) -> &str {
        "ondemand"
    }

    fn select(&mut self, ctx: &WindowContext<'_>) -> usize {
        if ctx.utilization >= self.up_threshold {
            // Like Linux ondemand: go straight to the top on load.
            ctx.dvfs.nominal_index()
        } else if ctx.utilization < self.down_threshold {
            ctx.prev_op.saturating_sub(1)
        } else {
            ctx.prev_op
        }
    }
}

/// Ondemand driven by the *busiest cluster* instead of the chip
/// average.
///
/// Chip-average utilization under-serves asymmetric workloads: a kernel
/// whose CTAs are concentrated on one cluster (small grids, the tail of
/// a launch, Fig. 4's staircase) reads as nearly idle chip-wide, so
/// plain [`Ondemand`] clocks down and stretches the critical cluster.
/// This governor consults the per-cluster busy fractions the scoped
/// registry records and keeps the chip fast while *any* cluster is
/// loaded, stepping down only when the busiest cluster goes quiet.
#[derive(Debug, Clone, Copy)]
pub struct ClusterOndemand {
    /// Busiest-cluster utilization above which the governor jumps to
    /// nominal.
    pub up_threshold: f64,
    /// Busiest-cluster utilization below which the governor steps one
    /// point down.
    pub down_threshold: f64,
}

impl Default for ClusterOndemand {
    fn default() -> Self {
        let base = Ondemand::default();
        ClusterOndemand {
            up_threshold: base.up_threshold,
            down_threshold: base.down_threshold,
        }
    }
}

impl Governor for ClusterOndemand {
    fn name(&self) -> &str {
        "cluster-ondemand"
    }

    fn select(&mut self, ctx: &WindowContext<'_>) -> usize {
        // Busiest cluster; fall back to the chip average when the
        // window carries no scoped data.
        let load = ctx
            .cluster_utilization
            .iter()
            .copied()
            .fold(f64::NAN, f64::max);
        let load = if load.is_nan() { ctx.utilization } else { load };
        if load >= self.up_threshold {
            ctx.dvfs.nominal_index()
        } else if load < self.down_threshold {
            ctx.prev_op.saturating_sub(1)
        } else {
            ctx.prev_op
        }
    }
}

/// Power-cap governor: runs each window at the fastest operating point
/// whose estimated window power stays at or below the cap, falling back
/// to the slowest point when even that exceeds it. As long as the
/// slowest point is under the cap, every window of the trace honours it.
#[derive(Debug, Clone, Copy)]
pub struct PowerCap {
    /// The chip power budget.
    pub cap: Power,
}

impl PowerCap {
    /// A governor enforcing `cap`.
    pub fn new(cap: Power) -> Self {
        PowerCap { cap }
    }
}

impl Governor for PowerCap {
    fn name(&self) -> &str {
        "powercap"
    }

    fn select(&mut self, ctx: &WindowContext<'_>) -> usize {
        ctx.power_at
            .iter()
            .rposition(|p| *p <= self.cap)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusimpow_sim::ActivityStats;
    use gpusimpow_tech::clockdomain::OperatingPoint;
    use gpusimpow_tech::units::{Freq, Voltage};

    fn dvfs() -> DvfsTable {
        DvfsTable::linear(
            OperatingPoint::new(Voltage::new(1.0), Freq::from_mhz(1000.0)),
            0.5,
            0.8,
            4,
        )
    }

    fn window() -> ActivityWindow {
        ActivityWindow {
            index: 0,
            start_cycle: 0,
            end_cycle: 1024,
            stats: ActivityStats::new(),
            cluster_busy: Vec::new(),
        }
    }

    fn ctx<'a>(
        window: &'a ActivityWindow,
        dvfs: &'a DvfsTable,
        power_at: &'a [Power],
        utilization: f64,
        prev_op: usize,
    ) -> WindowContext<'a> {
        WindowContext {
            window,
            utilization,
            cluster_utilization: &[],
            prev_op,
            dvfs,
            power_at,
        }
    }

    fn scoped_ctx<'a>(
        window: &'a ActivityWindow,
        dvfs: &'a DvfsTable,
        power_at: &'a [Power],
        utilization: f64,
        cluster_utilization: &'a [f64],
        prev_op: usize,
    ) -> WindowContext<'a> {
        WindowContext {
            cluster_utilization,
            ..ctx(window, dvfs, power_at, utilization, prev_op)
        }
    }

    #[test]
    fn baseline_always_nominal() {
        let d = dvfs();
        let w = window();
        let p = vec![Power::new(10.0); d.len()];
        let mut g = Baseline;
        assert_eq!(g.select(&ctx(&w, &d, &p, 0.0, 0)), d.nominal_index());
        assert_eq!(g.select(&ctx(&w, &d, &p, 1.0, 1)), d.nominal_index());
    }

    #[test]
    fn ondemand_races_to_top_and_steps_down() {
        let d = dvfs();
        let w = window();
        let p = vec![Power::new(10.0); d.len()];
        let mut g = Ondemand::default();
        // Busy window from a low point: jump to nominal.
        assert_eq!(g.select(&ctx(&w, &d, &p, 0.9, 0)), d.nominal_index());
        // Idle window: one step down from wherever we were.
        assert_eq!(g.select(&ctx(&w, &d, &p, 0.1, 3)), 2);
        assert_eq!(g.select(&ctx(&w, &d, &p, 0.1, 0)), 0);
        // Middling utilization: hold.
        assert_eq!(g.select(&ctx(&w, &d, &p, 0.45, 2)), 2);
    }

    #[test]
    fn cluster_ondemand_follows_the_busiest_cluster() {
        let d = dvfs();
        let w = window();
        let p = vec![Power::new(10.0); d.len()];
        let mut chip_avg = Ondemand::default();
        let mut scoped = ClusterOndemand::default();
        // Asymmetric workload: one cluster saturated, three idle. The
        // chip average (3 busy cores of 12 → 0.25) is below the down
        // threshold, so plain ondemand steps down — but the loaded
        // cluster is at 100% and cluster-ondemand must hold nominal.
        let clusters = [1.0, 0.0, 0.0, 0.0];
        let avg = 0.25;
        assert_eq!(
            chip_avg.select(&scoped_ctx(&w, &d, &p, avg, &clusters, 3)),
            2,
            "chip-average baseline steps down on the asymmetric window"
        );
        assert_eq!(
            scoped.select(&scoped_ctx(&w, &d, &p, avg, &clusters, 3)),
            d.nominal_index(),
            "busiest-cluster policy keeps the loaded cluster fast"
        );
        // All clusters quiet: both step down.
        let idle = [0.1, 0.05, 0.0, 0.0];
        assert_eq!(scoped.select(&scoped_ctx(&w, &d, &p, 0.05, &idle, 3)), 2);
        // Without scoped data it degrades to the chip average.
        assert_eq!(
            scoped.select(&scoped_ctx(&w, &d, &p, 0.9, &[], 0)),
            d.nominal_index()
        );
    }

    #[test]
    fn powercap_picks_fastest_point_under_cap() {
        let d = dvfs();
        let w = window();
        let p: Vec<Power> = [8.0, 12.0, 17.0, 23.0]
            .iter()
            .map(|w| Power::new(*w))
            .collect();
        let mut g = PowerCap::new(Power::new(18.0));
        assert_eq!(g.select(&ctx(&w, &d, &p, 0.5, 3)), 2);
        // Cap below everything: slowest point.
        let mut tight = PowerCap::new(Power::new(1.0));
        assert_eq!(tight.select(&ctx(&w, &d, &p, 0.5, 3)), 0);
        // Cap above everything: nominal.
        let mut loose = PowerCap::new(Power::new(100.0));
        assert_eq!(loose.select(&ctx(&w, &d, &p, 0.5, 3)), 3);
    }
}

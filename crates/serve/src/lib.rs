//! Simulation-as-a-service: a batch power-estimation server with a
//! content-addressed result cache.
//!
//! The paper's pitch is that architectural power estimates should be
//! cheap enough to query *constantly* during design-space exploration.
//! One-shot CLI runs re-simulate from scratch on every invocation; this
//! crate turns the simulator into a long-running backend instead:
//!
//! 1. Clients submit batches of [`job::JobSpec`]s — canonical
//!    (kernel + params, grid, GPU config, governor, sampling window)
//!    tuples — over a length-prefixed framed-TCP protocol
//!    ([`proto`]).
//! 2. The server canonicalizes and digests each job ([`digest`]);
//!    because PRs 2–5 made simulation bit-deterministic, the digest is
//!    a true content address for the result.
//! 3. Misses fan out across the persistent `SimPool`; hits are served
//!    from a two-tier store ([`store`]): a bounded in-memory LRU over
//!    an integrity-checked on-disk tier. Concurrent submissions of the
//!    same uncached job coalesce onto a single simulation
//!    ([`server`]).
//!
//! The `gpusimpow-serve` bin runs the server; the `loadgen` bin replays
//! mixed job streams against it and writes
//! `BENCH_service_throughput.json`.

#![warn(missing_docs)]

pub mod client;
pub mod digest;
pub mod job;
pub mod proto;
pub mod server;
pub mod store;
pub mod wire;

pub use client::Client;
pub use digest::JobDigest;
pub use job::{run_job, GovernorSpec, GpuPreset, JobResult, JobSpec, KernelSpec, SweepSpec};
pub use proto::{JobOutcome, Request, Response, ResultSource, StatsSnapshot};
pub use server::{Server, ServerConfig};
pub use store::{ResultStore, StoreConfig};

//! Event-driven uncore: the NoC links, shared L2 bank, memory
//! controllers and GDDR5 channels behind a skip-ahead engine.
//!
//! The per-cycle simulator used to tick every uncore component every
//! shader cycle. This module replaces that with a discrete-event
//! formulation: each component exposes `next_event(cycle)` — the
//! earliest future cycle at which ticking it could have an observable
//! effect — and the engine only runs a component's work when its cached
//! event cycle is due. Cycles in between are *provably* no-ops, so the
//! event engine is bit-identical to the dense loop by construction (the
//! determinism and windowed-sampling test suites enforce this).
//!
//! # Clock domains
//!
//! Three domains are coupled by fractional accumulators, exactly as in
//! the dense loop: every shader cycle adds `1 / shader_ratio` to the
//! uncore accumulator, and every uncore cycle adds
//! `dram_mhz / uncore_mhz` to the DRAM accumulator. The accumulator
//! walk *cannot* be jumped in closed form — `shader_ratio` (2.47 for
//! the GT240) is not exactly representable in binary floating point, so
//! bit-identity requires replaying the exact `f64` addition sequence.
//! [`Uncore::advance`] therefore walks the accumulators one shader
//! cycle at a time (a few flops per cycle) while skipping all component
//! work between events; that walk is the engine's only per-cycle cost.
//!
//! # Ordering rules
//!
//! Within one uncore cycle the phases run in the fixed order of the
//! dense loop: request link delivery → routing (L2 probe / MC enqueue)
//! → L2 hit-pipe drain → DRAM cycles (overflow retry, then per-channel
//! tick + completion pop in channel order) → response link delivery.
//! Event caches are refreshed at the point state changes (pushes reset
//! them, processed events recompute them), so a push and its same-cycle
//! consequences are observed exactly where the dense loop observed
//! them. These rules also preserve the serial-commit ordering of the
//! parallel core step: requests enter [`Uncore::push_request`] in
//! core-id order and the engine never reorders them.

use std::collections::VecDeque;

use crate::cache::{L2Bank, Probe};
use crate::config::GpuConfig;
use crate::core::MemRequest;
use crate::dram::{DramChannel, DramRequest};
use crate::events::{ActivityVector, EventKind as Ev};
use crate::noc::Link;

/// Token routed with each memory request through the uncore and
/// returned to the GPU when a response arrives back at a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteToken {
    /// Issuing core (responses are delivered back to it).
    pub core: usize,
    /// Request segment base address.
    pub addr: u32,
}

/// The memory subsystem of one GPU, advanced event-to-event.
///
/// Built fresh per kernel launch (the uncore must drain before a launch
/// completes, so there is no cross-launch state besides stats, which
/// live in the caller-owned [`ActivityVector`]).
#[derive(Debug)]
pub struct Uncore {
    mem_channels: usize,
    /// NoC flit size in bytes (clamped to at least 1).
    flit: usize,

    req_link: Link<RouteToken>,
    /// Full request metadata, queued in the same order as the link's
    /// tokens (the link carries only routing tokens).
    req_meta: VecDeque<MemRequest>,
    resp_link: Link<RouteToken>,
    l2: Option<L2Bank<RouteToken>>,
    channels: Vec<DramChannel<RouteToken>>,
    /// Requests bounced off a full MC queue, retried every DRAM cycle.
    dram_overflow: VecDeque<(usize, DramRequest<RouteToken>)>,

    // Clock-domain state (see the module docs).
    uncore_cycle: u64,
    dram_cycle: u64,
    uacc: f64,
    dacc: f64,
    upershader: f64,
    dram_per_uncore: f64,

    // Cached event cycles. An out-of-date cache may only ever be *early*
    // (a stale-due block runs as a no-op); it must never be late. Pushes
    // reset the relevant cache to 0 ("due immediately"), processing a
    // due block recomputes it exactly.
    next_req_event: u64,
    next_l2_event: u64,
    /// In DRAM-cycle units, unlike the other three.
    next_dram_event: u64,
    next_resp_event: u64,

    // Reusable scratch, so the steady state allocates nothing.
    scratch_req: Vec<RouteToken>,
    scratch_done: Vec<RouteToken>,
}

impl Uncore {
    /// Builds the uncore for `cfg` with empty queues and clocks at zero.
    pub fn new(cfg: &GpuConfig) -> Self {
        let channels: Vec<DramChannel<RouteToken>> = (0..cfg.mem_channels)
            .map(|_| DramChannel::new(cfg.dram, cfg.mc_queue_depth))
            .collect();
        let next_dram_event = channels
            .iter()
            .map(|c| c.next_event(0))
            .min()
            .unwrap_or(u64::MAX);
        Uncore {
            mem_channels: cfg.mem_channels,
            flit: cfg.noc_flit_bytes.max(1),
            req_link: Link::new(cfg.noc_latency as u64, cfg.noc_bandwidth_flits),
            req_meta: VecDeque::new(),
            resp_link: Link::new(cfg.noc_latency as u64, cfg.noc_bandwidth_flits),
            l2: cfg.l2.map(|l2cfg| {
                L2Bank::new(
                    l2cfg.capacity_bytes,
                    l2cfg.line_bytes as u32,
                    l2cfg.ways,
                    l2cfg.latency as u64,
                )
            }),
            channels,
            dram_overflow: VecDeque::new(),
            uncore_cycle: 0,
            dram_cycle: 0,
            uacc: 0.0,
            dacc: 0.0,
            upershader: 1.0 / cfg.shader_ratio,
            dram_per_uncore: cfg.dram_mhz / cfg.uncore_mhz,
            next_req_event: u64::MAX,
            next_l2_event: u64::MAX,
            next_dram_event,
            next_resp_event: u64::MAX,
            scratch_req: Vec::new(),
            scratch_done: Vec::new(),
        }
    }

    /// Uncore-clock cycles elapsed since construction.
    pub fn uncore_cycles(&self) -> u64 {
        self.uncore_cycle
    }

    /// DRAM-clock cycles elapsed since construction.
    pub fn dram_cycles(&self) -> u64 {
        self.dram_cycle
    }

    /// `true` when nothing is queued, in flight, or completing anywhere
    /// in the memory subsystem. (DRAM refresh still recurs on an idle
    /// uncore; it is pure timing/stats activity with no messages.)
    pub fn is_idle(&self) -> bool {
        self.req_link.is_empty()
            && self.resp_link.is_empty()
            && self.l2.as_ref().is_none_or(L2Bank::is_empty)
            && self.dram_overflow.is_empty()
            && self.channels.iter().all(DramChannel::is_idle)
    }

    /// Injects a core's memory request into the request network,
    /// charging NoC flit/transfer stats exactly as the dense loop did
    /// (writes carry their payload, reads are a single head flit).
    pub fn push_request(&mut self, req: MemRequest, stats: &mut ActivityVector) {
        let flits = if req.write {
            1 + (req.bytes as usize).div_ceil(self.flit)
        } else {
            1
        };
        stats[Ev::NocFlits] += flits as u64;
        stats[Ev::NocTransfers] += 1;
        self.req_link.push(
            RouteToken {
                core: req.core,
                addr: req.addr,
            },
            flits,
        );
        self.req_meta.push_back(req);
        // The link has waiting flits: due from the next uncore cycle.
        self.next_req_event = 0;
    }

    /// Advances the uncore by up to `max_shader_cycles` shader cycles
    /// and returns how many it consumed (always at least 1).
    ///
    /// Stops early after a shader cycle in which either
    ///
    /// * a response reached a core — the tokens are appended to
    ///   `responses` in delivery order and belong to the *last consumed*
    ///   shader cycle (the caller must hand them to
    ///   `Core::mem_response` with exactly that cycle), or
    /// * the uncore drained completely after starting non-idle — so a
    ///   caller fast-forwarding through a store drain regains control
    ///   the moment the termination condition can fire.
    ///
    /// Callers bound `max_shader_cycles` so a jump never crosses a
    /// sampling-window boundary or the watchdog trip cycle.
    pub fn advance(
        &mut self,
        max_shader_cycles: u64,
        responses: &mut Vec<RouteToken>,
        stats: &mut ActivityVector,
    ) -> u64 {
        debug_assert!(max_shader_cycles >= 1, "advance needs a non-empty span");
        let watch_drain = !self.is_idle();
        let mut consumed = 0u64;
        while consumed < max_shader_cycles {
            consumed += 1;
            // The exact f64 accumulator walk (see the module docs) —
            // this runs even when every component is quiescent.
            self.uacc += self.upershader;
            while self.uacc >= 1.0 {
                self.uacc -= 1.0;
                self.uncore_cycle += 1;
                self.step_uncore_cycle(responses, stats);
            }
            if !responses.is_empty() {
                break;
            }
            if watch_drain && self.is_idle() {
                break;
            }
        }
        consumed
    }

    /// One uncore cycle, with each phase guarded by its event cache.
    fn step_uncore_cycle(&mut self, responses: &mut Vec<RouteToken>, stats: &mut ActivityVector) {
        let uc = self.uncore_cycle;
        let mut dram_pushed = false;

        // --- requests arrive at the L2 / memory controllers ------------
        if uc >= self.next_req_event {
            self.req_link.tick(uc);
            let mut tokens = std::mem::take(&mut self.scratch_req);
            self.req_link.pop_ready_into(uc, &mut tokens);
            for token in tokens.drain(..) {
                let req = self
                    .req_meta
                    .pop_front()
                    .expect("request metadata in link order");
                debug_assert_eq!(req.addr, token.addr);
                dram_pushed |= self.route_request(req, token, uc, stats);
            }
            self.scratch_req = tokens;
            self.next_req_event = self.req_link.next_event(uc).unwrap_or(u64::MAX);
        }

        // --- L2 hit pipeline drains into the response network -----------
        if uc >= self.next_l2_event {
            if let Some(l2) = &mut self.l2 {
                let mut tokens = std::mem::take(&mut self.scratch_done);
                l2.pop_ready_into(uc, &mut tokens);
                for token in tokens.drain(..) {
                    let flits = 1 + 128 / self.flit;
                    stats[Ev::NocFlits] += flits as u64;
                    stats[Ev::NocTransfers] += 1;
                    self.resp_link.push(token, flits);
                    self.next_resp_event = 0;
                }
                self.scratch_done = tokens;
            }
            self.next_l2_event = self
                .l2
                .as_ref()
                .and_then(L2Bank::next_ready)
                .unwrap_or(u64::MAX);
        }

        // --- DRAM clock domain ------------------------------------------
        if dram_pushed {
            // Routing may have enqueued onto a channel this very uncore
            // cycle; the DRAM walk below must see the fresh event.
            self.recompute_dram_event();
        }
        self.dacc += self.dram_per_uncore;
        while self.dacc >= 1.0 {
            self.dacc -= 1.0;
            self.dram_cycle += 1;
            if self.dram_cycle >= self.next_dram_event {
                self.step_dram_cycle(stats);
                self.recompute_dram_event();
            }
        }

        // --- responses arrive back at the cores -------------------------
        if uc >= self.next_resp_event {
            self.resp_link.tick(uc);
            self.resp_link.pop_ready_into(uc, responses);
            self.next_resp_event = self.resp_link.next_event(uc).unwrap_or(u64::MAX);
        }
    }

    /// One due DRAM cycle: overflow retries, then every channel ticks
    /// and drains completions, in channel order (the dense-loop order).
    fn step_dram_cycle(&mut self, stats: &mut ActivityVector) {
        let dc = self.dram_cycle;
        for _ in 0..self.dram_overflow.len() {
            let (ch, req) = self.dram_overflow.pop_front().expect("len checked");
            if self.channels[ch].can_accept() {
                self.channels[ch].push(req, stats);
            } else {
                self.dram_overflow.push_back((ch, req));
            }
        }
        for i in 0..self.channels.len() {
            self.channels[i].tick(dc, stats);
            let mut tokens = std::mem::take(&mut self.scratch_done);
            self.channels[i].pop_completed_into(dc, &mut tokens);
            for token in tokens.drain(..) {
                if let Some(l2) = &mut self.l2 {
                    l2.install(token.addr);
                    stats[Ev::L2Fills] += 1;
                }
                let flits = 1 + 128 / self.flit;
                stats[Ev::NocFlits] += flits as u64;
                stats[Ev::NocTransfers] += 1;
                self.resp_link.push(token, flits);
                self.next_resp_event = 0;
            }
            self.scratch_done = tokens;
        }
    }

    /// Refreshes the DRAM event cache from the channels. Overflowed
    /// requests force per-cycle stepping: a retry can succeed the cycle
    /// after any channel pops, and per-cycle retry is what the dense
    /// loop did.
    fn recompute_dram_event(&mut self) {
        if !self.dram_overflow.is_empty() {
            self.next_dram_event = 0;
            return;
        }
        self.next_dram_event = self
            .channels
            .iter()
            .map(|c| c.next_event(self.dram_cycle))
            .min()
            .unwrap_or(u64::MAX);
    }

    /// L2 probe + forwarding for one request, exactly as the dense loop:
    /// write-through writes probe and always forward, read hits enter
    /// the bank's return pipe, read misses (or no L2) go to DRAM.
    /// Returns `true` when a request entered a channel or the overflow
    /// queue (the DRAM event cache must be refreshed).
    fn route_request(
        &mut self,
        req: MemRequest,
        token: RouteToken,
        uncore_cycle: u64,
        stats: &mut ActivityVector,
    ) -> bool {
        let to_dram = |req: &MemRequest, token: RouteToken| DramRequest {
            write: req.write,
            addr: req.addr,
            bytes: req.bytes,
            token,
        };
        if let Some(l2) = &mut self.l2 {
            stats[Ev::L2Accesses] += 1;
            if req.write {
                let _ = l2.write(req.addr);
            } else if l2.read(req.addr) == Probe::Hit {
                let ready = l2.push_hit(uncore_cycle, token);
                self.next_l2_event = self.next_l2_event.min(ready);
                return false;
            } else {
                stats[Ev::L2Misses] += 1;
            }
        }
        // 256-byte channel interleave.
        let ch = ((req.addr >> 8) as usize) % self.mem_channels;
        let dreq = to_dram(&req, token);
        if self.channels[ch].can_accept() {
            self.channels[ch].push(dreq, stats);
        } else {
            self.dram_overflow.push_back((ch, dreq));
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    fn read_req(core: usize, addr: u32) -> MemRequest {
        MemRequest {
            core,
            write: false,
            addr,
            bytes: 128,
        }
    }

    fn write_req(core: usize, addr: u32) -> MemRequest {
        MemRequest {
            core,
            write: true,
            addr,
            bytes: 128,
        }
    }

    /// Dense reference: the old per-cycle uncore loop, reconstructed
    /// verbatim from the pre-event-engine `Gpu::launch_impl`.
    struct DenseUncore {
        flit: usize,
        mem_channels: usize,
        req_link: Link<RouteToken>,
        req_meta: VecDeque<MemRequest>,
        resp_link: Link<RouteToken>,
        l2: Option<(crate::cache::SimCache, u64)>,
        l2_out: VecDeque<(u64, RouteToken)>,
        channels: Vec<DramChannel<RouteToken>>,
        dram_overflow: VecDeque<(usize, DramRequest<RouteToken>)>,
        uncore_cycle: u64,
        dram_cycle: u64,
        uacc: f64,
        dacc: f64,
        upershader: f64,
        dram_per_uncore: f64,
    }

    impl DenseUncore {
        fn new(cfg: &GpuConfig) -> Self {
            DenseUncore {
                flit: cfg.noc_flit_bytes.max(1),
                mem_channels: cfg.mem_channels,
                req_link: Link::new(cfg.noc_latency as u64, cfg.noc_bandwidth_flits),
                req_meta: VecDeque::new(),
                resp_link: Link::new(cfg.noc_latency as u64, cfg.noc_bandwidth_flits),
                l2: cfg.l2.map(|l2cfg| {
                    (
                        crate::cache::SimCache::new(
                            l2cfg.capacity_bytes,
                            l2cfg.line_bytes as u32,
                            l2cfg.ways,
                        ),
                        l2cfg.latency as u64,
                    )
                }),
                l2_out: VecDeque::new(),
                channels: (0..cfg.mem_channels)
                    .map(|_| DramChannel::new(cfg.dram, cfg.mc_queue_depth))
                    .collect(),
                dram_overflow: VecDeque::new(),
                uncore_cycle: 0,
                dram_cycle: 0,
                uacc: 0.0,
                dacc: 0.0,
                upershader: 1.0 / cfg.shader_ratio,
                dram_per_uncore: cfg.dram_mhz / cfg.uncore_mhz,
            }
        }

        fn push_request(&mut self, req: MemRequest, stats: &mut ActivityVector) {
            let flits = if req.write {
                1 + (req.bytes as usize).div_ceil(self.flit)
            } else {
                1
            };
            stats[Ev::NocFlits] += flits as u64;
            stats[Ev::NocTransfers] += 1;
            self.req_link.push(
                RouteToken {
                    core: req.core,
                    addr: req.addr,
                },
                flits,
            );
            self.req_meta.push_back(req);
        }

        fn shader_cycle(&mut self, responses: &mut Vec<RouteToken>, stats: &mut ActivityVector) {
            self.uacc += self.upershader;
            while self.uacc >= 1.0 {
                self.uacc -= 1.0;
                self.uncore_cycle += 1;
                let uc = self.uncore_cycle;
                self.req_link.tick(uc);
                for token in self.req_link.pop_ready(uc) {
                    let req = self.req_meta.pop_front().expect("meta in order");
                    if let Some((cache, latency)) = &mut self.l2 {
                        stats[Ev::L2Accesses] += 1;
                        if req.write {
                            let _ = cache.write(req.addr);
                        } else if cache.read(req.addr) == Probe::Hit {
                            self.l2_out.push_back((uc + *latency, token));
                            continue;
                        } else {
                            stats[Ev::L2Misses] += 1;
                        }
                    }
                    let ch = ((req.addr >> 8) as usize) % self.mem_channels;
                    let dreq = DramRequest {
                        write: req.write,
                        addr: req.addr,
                        bytes: req.bytes,
                        token,
                    };
                    if self.channels[ch].can_accept() {
                        self.channels[ch].push(dreq, stats);
                    } else {
                        self.dram_overflow.push_back((ch, dreq));
                    }
                }
                while let Some((ready, token)) = self.l2_out.front().copied() {
                    if ready <= uc {
                        self.l2_out.pop_front();
                        let flits = 1 + 128 / self.flit;
                        stats[Ev::NocFlits] += flits as u64;
                        stats[Ev::NocTransfers] += 1;
                        self.resp_link.push(token, flits);
                    } else {
                        break;
                    }
                }
                self.dacc += self.dram_per_uncore;
                while self.dacc >= 1.0 {
                    self.dacc -= 1.0;
                    self.dram_cycle += 1;
                    for _ in 0..self.dram_overflow.len() {
                        let (ch, req) = self.dram_overflow.pop_front().expect("len checked");
                        if self.channels[ch].can_accept() {
                            self.channels[ch].push(req, stats);
                        } else {
                            self.dram_overflow.push_back((ch, req));
                        }
                    }
                    for i in 0..self.channels.len() {
                        self.channels[i].tick(self.dram_cycle, stats);
                        for token in self.channels[i].pop_completed(self.dram_cycle) {
                            if let Some((cache, _)) = &mut self.l2 {
                                cache.install(token.addr);
                                stats[Ev::L2Fills] += 1;
                            }
                            let flits = 1 + 128 / self.flit;
                            stats[Ev::NocFlits] += flits as u64;
                            stats[Ev::NocTransfers] += 1;
                            self.resp_link.push(token, flits);
                        }
                    }
                }
                self.resp_link.tick(uc);
                responses.extend(self.resp_link.pop_ready(uc));
            }
        }
    }

    /// Drives the event engine and the dense reference through the same
    /// request schedule and asserts bit-identical responses (token +
    /// shader-cycle of delivery) and stats.
    fn check_equivalence(cfg: GpuConfig, requests: &[(u64, MemRequest)], total_cycles: u64) {
        let mut ev = Uncore::new(&cfg);
        let mut ev_stats = ActivityVector::new();
        let mut ev_resps: Vec<(u64, RouteToken)> = Vec::new();
        let mut dense = DenseUncore::new(&cfg);
        let mut dn_stats = ActivityVector::new();
        let mut dn_resps: Vec<(u64, RouteToken)> = Vec::new();
        let mut scratch = Vec::new();

        let mut cycle = 0u64;
        while cycle < total_cycles {
            for (at, req) in requests {
                if *at == cycle {
                    ev.push_request(*req, &mut ev_stats);
                    dense.push_request(*req, &mut dn_stats);
                }
            }
            // Event engine: jump as far as the next request injection
            // allows; it stops early on every response delivery.
            let next_push = requests
                .iter()
                .map(|(at, _)| *at)
                .filter(|at| *at > cycle)
                .min()
                .unwrap_or(total_cycles)
                .min(total_cycles);
            scratch.clear();
            let consumed = ev.advance(next_push - cycle, &mut scratch, &mut ev_stats);
            let delivered_at = cycle + consumed - 1;
            ev_resps.extend(scratch.iter().map(|t| (delivered_at, *t)));
            // Dense reference: every shader cycle, one at a time.
            for c in cycle..cycle + consumed {
                scratch.clear();
                dense.shader_cycle(&mut scratch, &mut dn_stats);
                dn_resps.extend(scratch.iter().map(|t| (c, *t)));
            }
            cycle += consumed;
        }
        assert_eq!(ev_resps, dn_resps, "response schedule diverged");
        assert_eq!(ev_stats, dn_stats, "activity stats diverged");
        assert_eq!(ev.uncore_cycles(), dense.uncore_cycle);
        assert_eq!(ev.dram_cycles(), dense.dram_cycle);
        assert!(ev.is_idle(), "workload should drain");
    }

    fn workload() -> Vec<(u64, MemRequest)> {
        let mut reqs = Vec::new();
        // A burst up front, a write train, then sparse stragglers —
        // exercises link bandwidth sharing, channel interleave, row
        // conflicts and (for GTX580) the L2 hit pipe via repeats.
        for i in 0..8u32 {
            reqs.push((0, read_req(i as usize % 4, i * 0x100)));
        }
        for i in 0..4u32 {
            reqs.push((3, write_req(0, 0x8000 + i * 0x40)));
        }
        reqs.push((40, read_req(1, 0x100))); // repeat: L2 hit after fill
        reqs.push((41, read_req(2, 0x100)));
        reqs.push((900, read_req(3, 0x20000)));
        reqs
    }

    #[test]
    fn event_engine_matches_dense_loop_gt240() {
        check_equivalence(GpuConfig::gt240(), &workload(), 30_000);
    }

    #[test]
    fn event_engine_matches_dense_loop_gtx580() {
        check_equivalence(GpuConfig::gtx580(), &workload(), 30_000);
    }

    #[test]
    fn long_idle_spans_replay_refresh_exactly() {
        // Nothing in flight for most of the span: refresh bookkeeping
        // must still land on the exact same DRAM cycles.
        let reqs = vec![(0u64, read_req(0, 0)), (120_000u64, read_req(0, 0x40))];
        check_equivalence(GpuConfig::gt240(), &reqs, 200_000);
    }

    #[test]
    fn overflow_pressure_matches_dense_loop() {
        // Flood one channel's 256-byte slice so the MC queue overflows
        // and the retry path engages.
        let mut cfg = GpuConfig::gt240();
        cfg.mc_queue_depth = 2;
        let reqs: Vec<(u64, MemRequest)> = (0..24u32)
            .map(|i| (0u64, read_req(0, (i % 2) * 0x100 + (i / 2) * 0x10000)))
            .collect();
        check_equivalence(cfg, &reqs, 60_000);
    }

    #[test]
    fn advance_reports_early_drain() {
        let cfg = GpuConfig::gt240();
        let mut u = Uncore::new(&cfg);
        let mut stats = ActivityVector::new();
        let mut resps = Vec::new();
        u.push_request(write_req(0, 0), &mut stats);
        assert!(!u.is_idle());
        let consumed = u.advance(1_000_000, &mut resps, &mut stats);
        assert!(resps.is_empty(), "writes complete silently");
        assert!(u.is_idle(), "store drained");
        assert!(consumed < 1_000_000, "advance returned at the drain point");
    }

    #[test]
    fn idle_advance_consumes_full_span() {
        let cfg = GpuConfig::gt240();
        let mut u = Uncore::new(&cfg);
        let mut stats = ActivityVector::new();
        let mut resps = Vec::new();
        let consumed = u.advance(50_000, &mut resps, &mut stats);
        assert_eq!(consumed, 50_000, "idle uncore has nothing to stop for");
        assert!(resps.is_empty());
        assert!(stats[Ev::DramRefreshes] > 0, "refresh recurs while idle");
    }
}

//! Hierarchical power reports (the Table V format).

use std::fmt;

use gpusimpow_tech::units::{Power, Time};

use crate::dram::DramPowerBreakdown;

/// A static/dynamic power pair.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerSplit {
    /// Leakage (static) share.
    pub static_power: Power,
    /// Runtime dynamic share.
    pub dynamic_power: Power,
}

impl PowerSplit {
    /// Creates a split.
    pub fn new(static_power: Power, dynamic_power: Power) -> Self {
        PowerSplit {
            static_power,
            dynamic_power,
        }
    }

    /// Static + dynamic.
    pub fn total(&self) -> Power {
        self.static_power + self.dynamic_power
    }
}

impl std::ops::Add for PowerSplit {
    type Output = PowerSplit;
    fn add(self, rhs: PowerSplit) -> PowerSplit {
        PowerSplit {
            static_power: self.static_power + rhs.static_power,
            dynamic_power: self.dynamic_power + rhs.dynamic_power,
        }
    }
}

/// Top-level (chip) component breakdown, as in Table V (top).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipBreakdown {
    /// All SIMT cores together.
    pub cores: PowerSplit,
    /// Network-on-chip.
    pub noc: PowerSplit,
    /// Memory controllers.
    pub mc: PowerSplit,
    /// PCIe controller.
    pub pcie: PowerSplit,
    /// L2 cache (zero when absent).
    pub l2: PowerSplit,
}

impl ChipBreakdown {
    /// Chip total (static, dynamic).
    pub fn overall(&self) -> PowerSplit {
        self.cores + self.noc + self.mc + self.pcie + self.l2
    }
}

/// Per-core component breakdown, as in Table V (bottom).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreBreakdown {
    /// Empirical base power (scheduling, clocks, fixed-function slices).
    pub base: PowerSplit,
    /// Warp control unit.
    pub wcu: PowerSplit,
    /// Register file.
    pub regfile: PowerSplit,
    /// Execution units (INT/FP/SFU).
    pub exec: PowerSplit,
    /// Load/store unit (SMEM/L1, constant caches, coalescer, AGUs).
    pub ldstu: PowerSplit,
    /// Undifferentiated core (unmodelled transistors; all static).
    pub undiff: PowerSplit,
}

impl CoreBreakdown {
    /// Core total (static, dynamic).
    pub fn overall(&self) -> PowerSplit {
        self.base + self.wcu + self.regfile + self.exec + self.ldstu + self.undiff
    }
}

/// The full power report for one kernel execution.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// Kernel name.
    pub kernel: String,
    /// GPU name.
    pub gpu: String,
    /// Kernel wall-clock duration.
    pub time: Time,
    /// Chip-level breakdown.
    pub chip: ChipBreakdown,
    /// Average per-core breakdown.
    pub core: CoreBreakdown,
    /// Off-chip DRAM decomposition (not part of the chip totals, as in
    /// Table V's footnote).
    pub dram: DramPowerBreakdown,
}

impl PowerReport {
    /// Chip static power (excludes DRAM).
    pub fn static_power(&self) -> Power {
        self.chip.overall().static_power
    }

    /// Chip runtime dynamic power (excludes DRAM).
    pub fn dynamic_power(&self) -> Power {
        self.chip.overall().dynamic_power
    }

    /// Chip total power (excludes DRAM).
    pub fn total_power(&self) -> Power {
        self.chip.overall().total()
    }

    /// Board-level total including DRAM.
    pub fn board_power(&self) -> Power {
        self.total_power() + self.dram.total()
    }

    /// Energy consumed by the chip over the kernel.
    pub fn energy(&self) -> gpusimpow_tech::units::Energy {
        self.total_power() * self.time
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let overall = self.chip.overall();
        writeln!(
            f,
            "power report: kernel `{}` on {} ({:.3} ms)",
            self.kernel,
            self.gpu,
            self.time.millis()
        )?;
        writeln!(
            f,
            "  {:<22} {:>10} {:>10} {:>8}",
            "GPU", "Static[W]", "Dynamic[W]", "Percent"
        )?;
        let total = overall.total().watts();
        let mut row = |name: &str, s: PowerSplit| -> fmt::Result {
            writeln!(
                f,
                "  {:<22} {:>10.3} {:>10.3} {:>7.1}%",
                name,
                s.static_power.watts(),
                s.dynamic_power.watts(),
                100.0 * s.total().watts() / total
            )
        };
        row("overall", overall)?;
        row("cores", self.chip.cores)?;
        row("noc", self.chip.noc)?;
        row("memory controller", self.chip.mc)?;
        row("pcie controller", self.chip.pcie)?;
        if self.chip.l2.total().watts() > 0.0 {
            row("l2 cache", self.chip.l2)?;
        }
        let core_total = self.core.overall().total().watts();
        writeln!(
            f,
            "  {:<22} {:>10} {:>10} {:>8}",
            "Core", "Static[W]", "Dynamic[W]", "Percent"
        )?;
        let mut crow = |name: &str, s: PowerSplit| -> fmt::Result {
            writeln!(
                f,
                "  {:<22} {:>10.4} {:>10.4} {:>7.1}%",
                name,
                s.static_power.watts(),
                s.dynamic_power.watts(),
                100.0 * s.total().watts() / core_total
            )
        };
        crow("overall", self.core.overall())?;
        crow("base power", self.core.base)?;
        crow("wcu", self.core.wcu)?;
        crow("register file", self.core.regfile)?;
        crow("execution units", self.core.exec)?;
        crow("ldstu", self.core.ldstu)?;
        crow("undiff. core", self.core.undiff)?;
        write!(
            f,
            "  external dram: {:.3} W (bg {:.2} act {:.2} rd {:.2} wr {:.2} term {:.2} ref {:.2})",
            self.dram.total().watts(),
            self.dram.background.watts(),
            self.dram.activate.watts(),
            self.dram.read.watts(),
            self.dram.write.watts(),
            self.dram.termination.watts(),
            self.dram.refresh.watts()
        )
    }
}

/// One cluster's share of the core power in a scoped report: the same
/// component energy maps evaluated over that cluster's registry events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterPowerRow {
    /// Cluster index.
    pub cluster: usize,
    /// Static share (the cluster's cores) plus dynamic power attributed
    /// from the cluster-scoped activity.
    pub power: PowerSplit,
    /// Fraction of shader cycles this cluster had at least one busy core.
    pub busy_fraction: f64,
    /// Average number of busy cores in this cluster over the launch.
    pub avg_busy_cores: f64,
}

/// A [`PowerReport`] extended with per-cluster attribution derived from
/// the scoped activity registry.
///
/// Cluster rows carry everything attributable to a cluster (its cores'
/// leakage, component dynamic energy and base power); the global block
/// scheduler and the uncore (NoC, MC, PCIe, L2) are chip-level and kept
/// in their own shared rows. [`ScopedPowerReport::cores_total`] equals
/// the embedded report's `chip.cores` row and [`ScopedPowerReport::total`]
/// its chip overall, both up to floating-point rounding.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopedPowerReport {
    /// The ordinary chip-wide report.
    pub report: PowerReport,
    /// Per-cluster attribution rows, cluster 0 first.
    pub clusters: Vec<ClusterPowerRow>,
    /// Global block scheduler (chip-level, not attributable).
    pub scheduler: PowerSplit,
    /// Shared uncore: NoC + MC + PCIe + L2.
    pub uncore: PowerSplit,
}

impl ScopedPowerReport {
    /// Sum of the cluster rows plus the scheduler — reproduces the
    /// chip-wide `cores` row.
    pub fn cores_total(&self) -> PowerSplit {
        self.clusters
            .iter()
            .fold(self.scheduler, |acc, row| acc + row.power)
    }

    /// Cluster rows + scheduler + uncore — reproduces the chip overall.
    pub fn total(&self) -> PowerSplit {
        self.cores_total() + self.uncore
    }
}

impl fmt::Display for ScopedPowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "per-cluster attribution: kernel `{}` on {} ({:.3} ms)",
            self.report.kernel,
            self.report.gpu,
            self.report.time.millis()
        )?;
        writeln!(
            f,
            "  {:<18} {:>10} {:>10} {:>9} {:>10}",
            "Cluster", "Static[W]", "Dynamic[W]", "Busy", "AvgCores"
        )?;
        for row in &self.clusters {
            writeln!(
                f,
                "  {:<18} {:>10.3} {:>10.3} {:>8.1}% {:>10.2}",
                format!("cluster {}", row.cluster),
                row.power.static_power.watts(),
                row.power.dynamic_power.watts(),
                100.0 * row.busy_fraction,
                row.avg_busy_cores
            )?;
        }
        let shared = |name: &str, s: PowerSplit, f: &mut fmt::Formatter<'_>| -> fmt::Result {
            writeln!(
                f,
                "  {:<18} {:>10.3} {:>10.3} {:>9} {:>10}",
                name,
                s.static_power.watts(),
                s.dynamic_power.watts(),
                "-",
                "-"
            )
        };
        shared("global scheduler", self.scheduler, f)?;
        shared("shared uncore", self.uncore, f)?;
        let total = self.total();
        write!(
            f,
            "  {:<18} {:>10.3} {:>10.3}   (chip overall {:.3} W)",
            "sum",
            total.static_power.watts(),
            total.dynamic_power.watts(),
            self.report.total_power().watts()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split(s: f64, d: f64) -> PowerSplit {
        PowerSplit::new(Power::new(s), Power::new(d))
    }

    #[test]
    fn splits_add() {
        let a = split(1.0, 2.0) + split(0.5, 0.5);
        assert!((a.static_power.watts() - 1.5).abs() < 1e-12);
        assert!((a.total().watts() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn chip_overall_sums_components() {
        let c = ChipBreakdown {
            cores: split(10.0, 12.0),
            noc: split(1.0, 1.0),
            mc: split(0.5, 1.5),
            pcie: split(0.5, 1.0),
            l2: split(0.0, 0.0),
        };
        assert!((c.overall().total().watts() - 27.5).abs() < 1e-12);
    }

    #[test]
    fn display_contains_table_v_rows() {
        let zero = DramPowerBreakdown {
            background: Power::ZERO,
            activate: Power::ZERO,
            read: Power::ZERO,
            write: Power::ZERO,
            termination: Power::ZERO,
            refresh: Power::ZERO,
        };
        let r = PowerReport {
            kernel: "blackscholes".to_string(),
            gpu: "GT240".to_string(),
            time: Time::from_millis(1.0),
            chip: ChipBreakdown {
                cores: split(15.4, 15.1),
                noc: split(1.5, 1.2),
                mc: split(0.5, 1.8),
                pcie: split(0.5, 1.0),
                l2: split(0.0, 0.0),
            },
            core: CoreBreakdown {
                base: split(0.0, 0.2),
                wcu: split(0.04, 0.09),
                regfile: split(0.11, 0.17),
                exec: split(0.01, 0.56),
                ldstu: split(0.23, 0.01),
                undiff: split(0.89, 0.0),
            },
            dram: zero,
        };
        let text = r.to_string();
        assert!(text.contains("register file"));
        assert!(text.contains("undiff. core"));
        assert!(text.contains("pcie"));
    }

    #[test]
    fn scoped_report_sums_rows_and_renders() {
        let zero = DramPowerBreakdown {
            background: Power::ZERO,
            activate: Power::ZERO,
            read: Power::ZERO,
            write: Power::ZERO,
            termination: Power::ZERO,
            refresh: Power::ZERO,
        };
        let report = PowerReport {
            kernel: "k".to_string(),
            gpu: "GT240".to_string(),
            time: Time::from_millis(1.0),
            chip: ChipBreakdown {
                cores: split(8.0, 10.0),
                noc: split(1.0, 1.0),
                mc: split(0.5, 0.5),
                pcie: split(0.5, 1.0),
                l2: split(0.0, 0.0),
            },
            core: CoreBreakdown {
                base: split(0.0, 0.2),
                wcu: split(0.04, 0.09),
                regfile: split(0.11, 0.17),
                exec: split(0.01, 0.56),
                ldstu: split(0.23, 0.01),
                undiff: split(0.89, 0.0),
            },
            dram: zero,
        };
        let scoped = ScopedPowerReport {
            report,
            clusters: (0..4)
                .map(|c| ClusterPowerRow {
                    cluster: c,
                    power: split(2.0, 2.25),
                    busy_fraction: 0.5,
                    avg_busy_cores: 1.5,
                })
                .collect(),
            scheduler: split(0.0, 1.0),
            uncore: split(2.0, 2.5),
        };
        let cores = scoped.cores_total();
        assert!((cores.static_power.watts() - 8.0).abs() < 1e-12);
        assert!((cores.dynamic_power.watts() - 10.0).abs() < 1e-12);
        let total = scoped.total();
        assert!((total.total().watts() - 22.5).abs() < 1e-12);
        let text = scoped.to_string();
        assert!(text.contains("cluster 0"));
        assert!(text.contains("cluster 3"));
        assert!(text.contains("global scheduler"));
        assert!(text.contains("shared uncore"));
        assert!(text.contains("sum"));
    }
}

//! Network-on-chip link model: a latency + bandwidth-limited queue.
//!
//! The paper reuses McPAT's NoC model for power; for performance we model
//! the interconnect between cores and memory partitions as two directed
//! links (request and response), each with a fixed traversal latency and
//! a flit-per-cycle bandwidth cap.
//!
//! Links participate in the event-driven uncore (`crate::uncore`): in
//! addition to the per-cycle [`Link::tick`], they expose
//! [`Link::next_event`] (the earliest future cycle at which ticking
//! could change observable state) and [`Link::tick_to`] (advance across
//! a span of cycles in one call, skipping cycles that are provably
//! no-ops). Both are exact: driving a link event-to-event produces the
//! same arrival cycles and ordering as ticking every cycle.

use std::collections::VecDeque;

/// A directed, bandwidth-limited, fixed-latency link carrying messages of
/// type `T`.
///
/// # Examples
///
/// ```
/// use gpusimpow_sim::noc::Link;
///
/// let mut link: Link<&str> = Link::new(4, 2);
/// link.push("a", 1);
/// link.push("b", 4);
/// let mut arrived = Vec::new();
/// for cycle in 0..12 {
///     link.tick(cycle);
///     arrived.extend(link.pop_ready(cycle));
/// }
/// assert_eq!(arrived, vec!["a", "b"]);
/// ```
#[derive(Debug, Clone)]
pub struct Link<T> {
    latency: u64,
    flits_per_cycle: usize,
    /// Waiting for bandwidth: (message, flits still to transmit).
    waiting: VecDeque<(T, usize)>,
    /// Transmitted, arriving at `ready` cycle.
    in_flight: VecDeque<(u64, T)>,
}

impl<T> Link<T> {
    /// Creates a link with `latency` cycles of traversal delay and
    /// `flits_per_cycle` of injection bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `flits_per_cycle` is zero.
    pub fn new(latency: u64, flits_per_cycle: usize) -> Self {
        assert!(flits_per_cycle > 0, "link needs bandwidth");
        Link {
            latency,
            flits_per_cycle,
            waiting: VecDeque::new(),
            in_flight: VecDeque::new(),
        }
    }

    /// Enqueues a message occupying `flits` flits.
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero.
    pub fn push(&mut self, message: T, flits: usize) {
        assert!(flits > 0, "a message needs at least one flit");
        self.waiting.push_back((message, flits));
    }

    /// Advances the link by one cycle: transmits up to the bandwidth cap.
    pub fn tick(&mut self, cycle: u64) {
        let mut budget = self.flits_per_cycle;
        while budget > 0 {
            let done = match self.waiting.front_mut() {
                Some((_, flits)) => {
                    let step = (*flits).min(budget);
                    *flits -= step;
                    budget -= step;
                    *flits == 0
                }
                None => break,
            };
            if done {
                let (msg, _) = self.waiting.pop_front().expect("front exists");
                self.in_flight.push_back((cycle + self.latency, msg));
            }
        }
    }

    /// Removes and returns every message that has arrived by `cycle`.
    pub fn pop_ready(&mut self, cycle: u64) -> Vec<T> {
        let mut out = Vec::new();
        self.pop_ready_into(cycle, &mut out);
        out
    }

    /// Appends every message that has arrived by `cycle` to `out`
    /// (allocation-free variant of [`Link::pop_ready`]).
    pub fn pop_ready_into(&mut self, cycle: u64, out: &mut Vec<T>) {
        while let Some((ready, _)) = self.in_flight.front() {
            if *ready <= cycle {
                out.push(self.in_flight.pop_front().expect("front exists").1);
            } else {
                break;
            }
        }
    }

    /// The earliest cycle strictly after `cycle` at which this link has
    /// observable work: transmitting queued flits (next cycle while the
    /// waiting queue is non-empty) or delivering an in-flight message.
    /// `None` when the link is completely empty.
    ///
    /// A [`Link::tick`] + [`Link::pop_ready`] at any cycle before the
    /// returned one is provably a no-op, which is what lets the uncore
    /// skip ahead without changing results.
    pub fn next_event(&self, cycle: u64) -> Option<u64> {
        if !self.waiting.is_empty() {
            return Some(cycle + 1);
        }
        self.in_flight
            .front()
            .map(|(ready, _)| (*ready).max(cycle + 1))
    }

    /// Advances the link through every cycle in `from..=to` in one call,
    /// stopping early once the waiting queue drains (all remaining
    /// cycles are then transmission no-ops; in-flight messages are
    /// untouched by ticking and simply wait for [`Link::pop_ready`]).
    ///
    /// Exactly equivalent to calling [`Link::tick`] for each cycle of
    /// the span: completion (and therefore arrival) cycles are
    /// bit-identical.
    pub fn tick_to(&mut self, from: u64, to: u64) {
        let mut cycle = from;
        while cycle <= to && !self.waiting.is_empty() {
            self.tick(cycle);
            cycle += 1;
        }
    }

    /// `true` when messages are queued awaiting bandwidth (a tick would
    /// make transmission progress).
    pub fn has_waiting(&self) -> bool {
        !self.waiting.is_empty()
    }

    /// `true` when nothing is queued or in flight.
    pub fn is_empty(&self) -> bool {
        self.waiting.is_empty() && self.in_flight.is_empty()
    }

    /// Messages currently queued or in flight.
    pub fn len(&self) -> usize {
        self.waiting.len() + self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_respected() {
        let mut link: Link<u32> = Link::new(5, 8);
        link.push(7, 1);
        link.tick(0);
        assert!(link.pop_ready(4).is_empty());
        assert_eq!(link.pop_ready(5), vec![7]);
        assert!(link.is_empty());
    }

    #[test]
    fn bandwidth_serializes_large_messages() {
        let mut link: Link<u32> = Link::new(0, 2);
        link.push(1, 4); // needs 2 cycles
        link.push(2, 2); // 1 more cycle
        link.tick(0);
        assert!(link.pop_ready(0).is_empty(), "4-flit message not done");
        link.tick(1);
        assert_eq!(link.pop_ready(1), vec![1]);
        link.tick(2);
        assert_eq!(link.pop_ready(2), vec![2]);
    }

    #[test]
    fn ordering_is_fifo() {
        let mut link: Link<u32> = Link::new(1, 100);
        for i in 0..10 {
            link.push(i, 1);
        }
        link.tick(0);
        assert_eq!(link.pop_ready(1), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn shared_bandwidth_cycle() {
        // 3 single-flit messages through a 2-flit/cycle link.
        let mut link: Link<u32> = Link::new(0, 2);
        link.push(1, 1);
        link.push(2, 1);
        link.push(3, 1);
        link.tick(0);
        assert_eq!(link.pop_ready(0), vec![1, 2]);
        link.tick(1);
        assert_eq!(link.pop_ready(1), vec![3]);
    }

    #[test]
    fn len_tracks_everything() {
        let mut link: Link<u32> = Link::new(10, 1);
        link.push(1, 3);
        link.push(2, 1);
        assert_eq!(link.len(), 2);
        link.tick(0);
        link.tick(1);
        link.tick(2);
        assert_eq!(link.len(), 2, "one in flight, one waiting");
        link.tick(3);
        assert_eq!(link.len(), 2, "both in flight");
        let _ = link.pop_ready(13);
        assert_eq!(link.len(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_flit_message_panics() {
        let mut link: Link<u32> = Link::new(0, 1);
        link.push(1, 0);
    }

    #[test]
    fn next_event_reports_transmission_then_arrival() {
        let mut link: Link<u32> = Link::new(5, 2);
        assert_eq!(link.next_event(0), None, "empty link has no events");
        link.push(1, 4);
        assert_eq!(
            link.next_event(0),
            Some(1),
            "queued flits transmit next cycle"
        );
        link.tick(1); // 2 of 4 flits
        assert_eq!(link.next_event(1), Some(2));
        link.tick(2); // transmission done, arrives at 2 + 5
        assert_eq!(
            link.next_event(2),
            Some(7),
            "in-flight arrival is the next event"
        );
        assert_eq!(link.pop_ready(6), Vec::<u32>::new());
        assert_eq!(link.pop_ready(7), vec![1]);
        assert_eq!(link.next_event(7), None);
    }

    #[test]
    fn tick_to_matches_per_cycle_ticking() {
        // Drive two identical links over the same span: one per cycle,
        // one with a single tick_to jump. Arrivals must be identical.
        let mut per_cycle: Link<u32> = Link::new(3, 2);
        let mut jumped: Link<u32> = Link::new(3, 2);
        for (i, flits) in [(0u32, 1usize), (1, 4), (2, 2), (3, 5)] {
            per_cycle.push(i, flits);
            jumped.push(i, flits);
        }
        let mut a = Vec::new();
        for c in 0..40 {
            per_cycle.tick(c);
            a.extend(per_cycle.pop_ready(c).into_iter().map(|m| (c, m)));
        }
        jumped.tick_to(0, 39);
        let mut b = Vec::new();
        for c in 0..40 {
            b.extend(jumped.pop_ready(c).into_iter().map(|m| (c, m)));
        }
        assert_eq!(a, b);
        assert!(per_cycle.is_empty() && jumped.is_empty());
    }

    #[test]
    fn skipping_to_next_event_is_invisible() {
        // Ticks strictly before next_event must be no-ops: a link ticked
        // only at event cycles delivers at the same cycles.
        let mut dense: Link<u32> = Link::new(10, 4);
        let mut sparse: Link<u32> = Link::new(10, 4);
        dense.push(7, 3);
        sparse.push(7, 3);
        let mut dense_arrivals = Vec::new();
        for c in 0..30 {
            dense.tick(c);
            dense_arrivals.extend(dense.pop_ready(c).into_iter().map(|m| (c, m)));
        }
        let mut sparse_arrivals = Vec::new();
        let mut c = 0;
        sparse.tick(c);
        sparse_arrivals.extend(sparse.pop_ready(c).into_iter().map(|m| (c, m)));
        while let Some(e) = sparse.next_event(c) {
            sparse.tick(e);
            sparse_arrivals.extend(sparse.pop_ready(e).into_iter().map(|m| (e, m)));
            c = e;
        }
        assert_eq!(dense_arrivals, sparse_arrivals);
    }
}

//! Process-node parameter sets (the "technology tier" of the model).
//!
//! McPAT embeds ITRS roadmap data so that a single architecture description
//! can be evaluated at different manufacturing nodes. We reproduce that idea
//! with a table of planar bulk-CMOS nodes from 90 nm down to 22 nm. Values
//! are representative of ITRS high-performance (HP) and low-standby-power
//! (LSTP) device classes; they are *anchors* for relative scaling, not
//! foundry data.

use std::fmt;

use crate::units::{Area, Capacitance, Current, Voltage};

/// Transistor flavour used for a circuit block.
///
/// High-performance devices switch fast but leak heavily; low-standby-power
/// devices are used for large SRAM arrays where leakage dominates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceType {
    /// ITRS high-performance logic transistor.
    HighPerformance,
    /// ITRS low-standby-power transistor.
    LowStandbyPower,
}

/// Errors produced when constructing technology parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TechError {
    /// The requested feature size has no entry in the built-in ITRS table.
    UnknownNode(u32),
    /// A parameter override was out of its physically meaningful range.
    InvalidParameter(&'static str),
}

impl fmt::Display for TechError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TechError::UnknownNode(nm) => {
                write!(f, "no built-in technology data for {nm} nm node")
            }
            TechError::InvalidParameter(what) => {
                write!(f, "invalid technology parameter: {what}")
            }
        }
    }
}

impl std::error::Error for TechError {}

/// A complete process-node description.
///
/// All downstream circuit models derive their capacitances, leakage currents
/// and cell areas from this structure, so evaluating a chip at a different
/// node is a one-line change (see [`TechNode::planar`]).
///
/// # Examples
///
/// ```
/// use gpusimpow_tech::node::TechNode;
///
/// let t40 = TechNode::planar(40)?;
/// assert_eq!(t40.feature_nm(), 40);
/// assert!(t40.vdd().volts() > 0.8 && t40.vdd().volts() < 1.2);
/// # Ok::<(), gpusimpow_tech::node::TechError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TechNode {
    feature_nm: u32,
    vdd: Voltage,
    /// Gate capacitance per µm of transistor width.
    gate_cap_per_um: Capacitance,
    /// Drain (diffusion) capacitance per µm of transistor width.
    drain_cap_per_um: Capacitance,
    /// Subthreshold leakage per µm of device width, HP device, at 350 K.
    sub_leak_hp_per_um: Current,
    /// Subthreshold leakage per µm of device width, LSTP device, at 350 K.
    sub_leak_lstp_per_um: Current,
    /// Gate-oxide leakage per µm of device width (HP device).
    gate_leak_per_um: Current,
    /// 6T SRAM cell area in units of F² (feature-size squared).
    sram_cell_f2: f64,
    /// Logic-gate (NAND2-equivalent) area in F².
    logic_gate_f2: f64,
    /// Temperature in kelvin used for leakage evaluation.
    temperature_k: f64,
}

/// Built-in ITRS-style node table:
/// `(nm, vdd, cg fF/µm, cd fF/µm, Ioff-HP µA/µm, Ioff-LSTP nA/µm, Igate nA/µm)`.
///
/// The trend data follows the shape of the ITRS 2008/2010 tables used by
/// McPAT 0.8: Vdd falls slowly, per-µm capacitance is roughly flat, HP
/// subthreshold leakage grows as channels shorten.
const NODE_TABLE: &[(u32, f64, f64, f64, f64, f64, f64)] = &[
    (90, 1.20, 1.00, 0.70, 0.060, 25.0, 30.0),
    (65, 1.10, 0.95, 0.65, 0.110, 40.0, 90.0),
    (45, 1.00, 0.90, 0.62, 0.170, 60.0, 140.0),
    (40, 1.00, 0.88, 0.60, 0.190, 70.0, 150.0),
    (32, 0.90, 0.85, 0.58, 0.220, 90.0, 160.0),
    (28, 0.90, 0.82, 0.55, 0.240, 100.0, 170.0),
    (22, 0.80, 0.80, 0.52, 0.280, 120.0, 180.0),
];

impl TechNode {
    /// Looks up a planar bulk-CMOS node from the built-in ITRS-style table.
    ///
    /// Supported nodes: 90, 65, 45, 40, 32, 28 and 22 nm.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::UnknownNode`] for any other feature size.
    pub fn planar(feature_nm: u32) -> Result<Self, TechError> {
        let row = NODE_TABLE
            .iter()
            .find(|row| row.0 == feature_nm)
            .ok_or(TechError::UnknownNode(feature_nm))?;
        let (nm, vdd, cg, cd, ioff_hp, ioff_lstp_na, igate_na) = *row;
        Ok(TechNode {
            feature_nm: nm,
            vdd: Voltage::new(vdd),
            gate_cap_per_um: Capacitance::from_femtofarads(cg),
            drain_cap_per_um: Capacitance::from_femtofarads(cd),
            sub_leak_hp_per_um: Current::new(ioff_hp * 1e-6),
            sub_leak_lstp_per_um: Current::new(ioff_lstp_na * 1e-9),
            gate_leak_per_um: Current::new(igate_na * 1e-9),
            sram_cell_f2: 146.0,
            logic_gate_f2: 240.0,
            temperature_k: 350.0,
        })
    }

    /// The list of feature sizes available through [`TechNode::planar`].
    pub fn supported_nodes() -> impl Iterator<Item = u32> {
        NODE_TABLE.iter().map(|row| row.0)
    }

    /// Feature size in nanometres.
    pub fn feature_nm(&self) -> u32 {
        self.feature_nm
    }

    /// Feature size in micrometres.
    pub fn feature_um(&self) -> f64 {
        self.feature_nm as f64 * 1e-3
    }

    /// Nominal supply voltage.
    pub fn vdd(&self) -> Voltage {
        self.vdd
    }

    /// Returns a copy with a different supply voltage (voltage scaling
    /// studies).
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidParameter`] if `vdd` is not in
    /// `(0.3 V, 1.5 V]`.
    pub fn with_vdd(mut self, vdd: Voltage) -> Result<Self, TechError> {
        if !(vdd.volts() > 0.3 && vdd.volts() <= 1.5) {
            return Err(TechError::InvalidParameter("vdd out of (0.3, 1.5] V"));
        }
        self.vdd = vdd;
        Ok(self)
    }

    /// Returns a copy evaluated at a different junction temperature.
    ///
    /// Subthreshold leakage roughly doubles every 25 K; the circuit tier
    /// applies [`TechNode::leakage_temperature_factor`].
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidParameter`] if `kelvin` is outside
    /// `[233, 423]` (-40 °C to 150 °C).
    pub fn with_temperature(mut self, kelvin: f64) -> Result<Self, TechError> {
        if !(233.0..=423.0).contains(&kelvin) {
            return Err(TechError::InvalidParameter(
                "temperature outside [233, 423] K",
            ));
        }
        self.temperature_k = kelvin;
        Ok(self)
    }

    /// Junction temperature in kelvin.
    pub fn temperature_k(&self) -> f64 {
        self.temperature_k
    }

    /// Gate capacitance per micrometre of transistor width.
    pub fn gate_cap_per_um(&self) -> Capacitance {
        self.gate_cap_per_um
    }

    /// Drain/diffusion capacitance per micrometre of transistor width.
    pub fn drain_cap_per_um(&self) -> Capacitance {
        self.drain_cap_per_um
    }

    /// Subthreshold leakage current per µm of width for the given device
    /// class, already corrected for the node temperature.
    pub fn sub_leak_per_um(&self, device: DeviceType) -> Current {
        let base = match device {
            DeviceType::HighPerformance => self.sub_leak_hp_per_um,
            DeviceType::LowStandbyPower => self.sub_leak_lstp_per_um,
        };
        base * self.leakage_temperature_factor()
    }

    /// Gate-oxide leakage per µm of width (temperature-insensitive).
    pub fn gate_leak_per_um(&self) -> Current {
        self.gate_leak_per_um
    }

    /// Multiplier applied to 350 K subthreshold leakage for the configured
    /// temperature (doubles every 25 K, the usual rule of thumb).
    pub fn leakage_temperature_factor(&self) -> f64 {
        2f64.powf((self.temperature_k - 350.0) / 25.0)
    }

    /// Area of a 6T SRAM cell at this node.
    pub fn sram_cell_area(&self) -> Area {
        let f_um = self.feature_um();
        Area::from_um2(self.sram_cell_f2 * f_um * f_um)
    }

    /// Area of a NAND2-equivalent logic gate at this node.
    pub fn logic_gate_area(&self) -> Area {
        let f_um = self.feature_um();
        Area::from_um2(self.logic_gate_f2 * f_um * f_um)
    }

    /// Capacitance of a minimum-size inverter input (2 µm-equivalent of
    /// gate width: NMOS + 2× PMOS, scaled to the node's feature size).
    pub fn min_inverter_cap(&self) -> Capacitance {
        // Minimum device width tracks the feature size; a min inverter is
        // roughly 3 minimum widths of gate (Wn + 2Wn for the PMOS).
        Capacitance::from_femtofarads(self.gate_cap_per_um.femtofarads() * 3.0 * self.feature_um())
    }

    /// Leakage power of one µm of HP transistor width at Vdd.
    pub fn hp_leak_power_per_um(&self) -> crate::units::Power {
        self.sub_leak_per_um(DeviceType::HighPerformance) * self.vdd
            + self.gate_leak_per_um * self.vdd
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nm planar CMOS, Vdd = {}, T = {} K",
            self.feature_nm, self.vdd, self.temperature_k
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_supported_nodes_construct() {
        for nm in TechNode::supported_nodes() {
            let t = TechNode::planar(nm).expect("table node must construct");
            assert_eq!(t.feature_nm(), nm);
        }
    }

    #[test]
    fn unknown_node_is_an_error() {
        assert_eq!(TechNode::planar(37), Err(TechError::UnknownNode(37)));
    }

    #[test]
    fn vdd_decreases_with_shrinking_node() {
        let t90 = TechNode::planar(90).unwrap();
        let t22 = TechNode::planar(22).unwrap();
        assert!(t90.vdd() > t22.vdd());
    }

    #[test]
    fn hp_leaks_more_than_lstp() {
        let t = TechNode::planar(40).unwrap();
        assert!(
            t.sub_leak_per_um(DeviceType::HighPerformance)
                > t.sub_leak_per_um(DeviceType::LowStandbyPower)
        );
    }

    #[test]
    fn leakage_grows_with_temperature() {
        let cold = TechNode::planar(40)
            .unwrap()
            .with_temperature(300.0)
            .unwrap();
        let hot = TechNode::planar(40)
            .unwrap()
            .with_temperature(400.0)
            .unwrap();
        assert!(
            hot.sub_leak_per_um(DeviceType::HighPerformance)
                > cold.sub_leak_per_um(DeviceType::HighPerformance)
        );
        // Doubling every 25 K: 100 K apart => 16x.
        let ratio = hot.sub_leak_per_um(DeviceType::HighPerformance)
            / cold.sub_leak_per_um(DeviceType::HighPerformance);
        assert!((ratio - 16.0).abs() < 1e-9);
    }

    #[test]
    fn sram_cell_shrinks_quadratically() {
        let t90 = TechNode::planar(90).unwrap();
        let t45 = TechNode::planar(45).unwrap();
        let ratio = t90.sram_cell_area() / t45.sram_cell_area();
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn vdd_override_validates() {
        let t = TechNode::planar(40).unwrap();
        assert!(t.clone().with_vdd(Voltage::new(0.85)).is_ok());
        assert!(t.clone().with_vdd(Voltage::new(0.0)).is_err());
        assert!(t.with_vdd(Voltage::new(2.0)).is_err());
    }

    #[test]
    fn temperature_override_validates() {
        let t = TechNode::planar(40).unwrap();
        assert!(t.clone().with_temperature(300.0).is_ok());
        assert!(t.clone().with_temperature(100.0).is_err());
        assert!(t.with_temperature(500.0).is_err());
    }

    #[test]
    fn error_display_is_lowercase_prose() {
        let msg = TechError::UnknownNode(37).to_string();
        assert!(msg.starts_with("no built-in"));
    }
}

//! Microbenchmarks of the per-core event scheduler: the calendar wheel
//! (`EventWheel`) against the `BinaryHeap<Reverse<(fire, seq)>>` it
//! replaced (DESIGN.md §17).
//!
//! Each round models one steady-state retire/schedule cycle at three
//! pending-queue depths — 1 (a single in-flight warp), 8 (one warp per
//! slot of a GT240 core) and 64 (a saturated scoreboarded core): pop
//! everything due at the current cycle, then schedule a replacement a
//! pipeline latency ahead. The wheel's contract is O(1) per operation
//! with no comparison sifting; the heap pays O(log n) and a `Reverse`
//! comparison per hop. Run via `cargo bench -p gpusimpow-bench --bench
//! event_queue`; CI uploads the output next to the warp hot-path runs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use gpusimpow_sim::wheel::EventWheel;

/// Pending-event depths: single warp, one warp per barrel slot, and a
/// saturated scoreboarded core.
const DEPTHS: &[usize] = &[1, 8, 64];

/// Cycles each benchmark iteration advances through.
const ROUNDS: u64 = 256;

/// Fixed completion latency: far enough to keep `depth` events in
/// flight, near enough to stay inside the wheel window.
const LATENCY: u64 = 24;

fn bench_wheel(c: &mut Criterion) {
    for &depth in DEPTHS {
        // Constructed once and `reset` per iteration, like a core
        // reuses its wheel across launches — the measurement is the
        // steady-state schedule/pop traffic, not slot setup.
        let mut wheel: EventWheel<u32> = EventWheel::new();
        c.bench_function(&format!("event_queue/wheel-{depth}"), |bch| {
            bch.iter(|| {
                wheel.reset();
                for i in 0..depth as u64 {
                    wheel.schedule(1 + i % LATENCY, i as u32);
                }
                let mut acc = 0u32;
                for cycle in 1..=ROUNDS {
                    while let Some(tag) = wheel.pop_due(cycle) {
                        acc = acc.wrapping_add(tag);
                        wheel.schedule(cycle + LATENCY, tag);
                    }
                }
                black_box(acc)
            })
        });
    }
}

fn bench_heap(c: &mut Criterion) {
    for &depth in DEPTHS {
        let mut heap: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        c.bench_function(&format!("event_queue/heap-{depth}"), |bch| {
            bch.iter(|| {
                // The pre-wheel scheduler: (fire, seq) min-heap with an
                // explicit insertion sequence for FIFO ties. Cleared
                // per iteration, retaining capacity like the wheel.
                heap.clear();
                let mut seq = 0u64;
                for i in 0..depth as u64 {
                    seq += 1;
                    heap.push(Reverse((1 + i % LATENCY, seq, i as u32)));
                }
                let mut acc = 0u32;
                for cycle in 1..=ROUNDS {
                    while let Some(Reverse((fire, _, tag))) = heap.peek().copied() {
                        if fire > cycle {
                            break;
                        }
                        heap.pop();
                        acc = acc.wrapping_add(tag);
                        seq += 1;
                        heap.push(Reverse((cycle + LATENCY, seq, tag)));
                    }
                }
                black_box(acc)
            })
        });
    }
}

criterion_group!(benches, bench_wheel, bench_heap);
criterion_main!(benches);

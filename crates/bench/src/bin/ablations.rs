//! Ablation studies over the design choices DESIGN.md §7 calls out:
//! warp-scheduler policy, memory-access coalescing quality, shared-memory
//! bank conflicts, operand-collector count, L2 presence, and process
//! node — each reported as performance *and* power, the two axes the
//! paper argues must be explored together.
//!
//! ```text
//! cargo run --release -p gpusimpow-bench --bin ablations
//! ```

use gpusimpow::Simulator;
use gpusimpow_isa::LaunchConfig;
use gpusimpow_kernels::{matmul::MatrixMul, micro};
use gpusimpow_sim::{GpuConfig, WarpSchedPolicy};

fn run_matmul(cfg: GpuConfig) -> (u64, f64, f64) {
    let mut sim = Simulator::new(cfg).expect("config builds");
    let reports = sim
        .run_benchmark(&MatrixMul { n: 64 })
        .expect("matmul verifies");
    let r = &reports[0];
    (
        r.launch.stats.shader_cycles,
        r.power.total_power().watts(),
        r.power.energy().joules() * 1e6,
    )
}

fn main() {
    // ---- 1. warp scheduler ------------------------------------------------
    println!("== ablation 1: warp scheduler (matmul 64x64 on GT240-class) ==");
    println!(
        "{:<18} {:>8} {:>10} {:>12} {:>14}",
        "policy", "cycles", "total[W]", "energy[µJ]", "wcu dyn[mW/core]"
    );
    let mut policies = vec![("round-robin".to_string(), WarpSchedPolicy::RoundRobin)];
    for n in [2usize, 4, 8, 16] {
        policies.push((
            format!("two-level:{n}"),
            WarpSchedPolicy::TwoLevel { active_warps: n },
        ));
    }
    for (name, policy) in policies {
        let mut cfg = GpuConfig::gt240();
        cfg.warp_scheduler = policy;
        cfg.name = name.clone();
        let mut sim = Simulator::new(cfg).expect("config builds");
        let reports = sim.run_benchmark(&MatrixMul { n: 64 }).expect("verifies");
        let r = &reports[0];
        println!(
            "{:<18} {:>8} {:>10.2} {:>12.3} {:>14.2}",
            name,
            r.launch.stats.shader_cycles,
            r.power.total_power().watts(),
            r.power.energy().joules() * 1e6,
            r.power.core.wcu.dynamic_power.milliwatts(),
        );
    }

    // ---- 2. coalescing quality ------------------------------------------------
    println!("\n== ablation 2: access pattern vs memory power (GT240) ==");
    println!(
        "{:<14} {:>8} {:>10} {:>10} {:>10}",
        "stride", "cycles", "requests", "dram rd", "mc dyn[W]"
    );
    for (label, shift) in [
        ("1 (coalesced)", 2u32),
        ("8 words", 5),
        ("32 words (worst)", 7),
    ] {
        let mut sim = Simulator::gt240().expect("preset builds");
        let buf = sim.gpu_mut().alloc(8 << 20);
        let src = format!(
            "
            s2r r0, tid.x
            s2r r1, ctaid.x
            s2r r2, ntid.x
            imad r3, r1, r2, r0
            shl r4, r3, #{shift}
            ld.global r5, [r4+{base}]
            exit
        ",
            base = buf.addr()
        );
        let k = gpusimpow_isa::assemble("stride", &src).expect("assembles");
        let r = sim.run(&k, LaunchConfig::linear(16, 256)).expect("runs");
        println!(
            "{:<14} {:>8} {:>10} {:>10} {:>10.3}",
            label,
            r.launch.stats.shader_cycles,
            r.launch.stats.coalescer_outputs,
            r.launch.stats.dram_read_bursts,
            r.power.chip.mc.dynamic_power.watts(),
        );
    }

    // ---- 3. bank conflicts ------------------------------------------------------
    println!("\n== ablation 3: shared-memory bank conflicts (GT240) ==");
    println!(
        "{:<10} {:>8} {:>16} {:>14}",
        "stride", "cycles", "conflict cycles", "ldst dyn[mW/core]"
    );
    for stride in [1u32, 2, 4, 8, 16] {
        let mut sim = Simulator::gt240().expect("preset builds");
        let k = micro::conflict_kernel(stride, 256);
        let r = sim.run(&k, LaunchConfig::linear(12, 16)).expect("runs");
        println!(
            "{:<10} {:>8} {:>16} {:>14.3}",
            stride,
            r.launch.stats.shader_cycles,
            r.launch.stats.smem_bank_conflict_cycles,
            r.power.core.ldstu.dynamic_power.milliwatts(),
        );
    }

    // ---- 4. operand collectors -----------------------------------------------------
    println!("\n== ablation 4: operand collectors (area/leakage trade) ==");
    println!(
        "{:<12} {:>12} {:>12}",
        "collectors", "rf leak[mW]", "rf area[mm²]"
    );
    for oc in [2usize, 4, 8] {
        let mut cfg = GpuConfig::gt240();
        cfg.operand_collectors = oc;
        let sim = Simulator::new(cfg).expect("config builds");
        let chip = sim.chip();
        // Leakage scales with collector storage; expose via chip static.
        println!(
            "{:<12} {:>12.2} {:>12.4}",
            oc,
            chip.core_static_power().milliwatts(),
            chip.core_area().mm2(),
        );
    }

    // ---- 5. L2 presence ----------------------------------------------------------------
    println!("\n== ablation 5: adding an L2 to the GT240 (the Fermi delta) ==");
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>10}",
        "l2", "cycles", "dram rd", "static[W]", "total[W]"
    );
    for l2_kb in [0usize, 256, 768] {
        let mut cfg = GpuConfig::gt240();
        cfg.l2 = (l2_kb > 0).then(|| gpusimpow_sim::L2Config {
            capacity_bytes: l2_kb * 1024,
            line_bytes: 128,
            ways: 8,
            latency: 20,
        });
        let (cycles, total, _) = run_matmul(cfg.clone());
        let chip = gpusimpow_power::GpuChip::new(&cfg).expect("chip builds");
        println!(
            "{:<12} {:>8} {:>10} {:>10.2} {:>10.2}",
            if l2_kb == 0 {
                "none".to_string()
            } else {
                format!("{l2_kb} KB")
            },
            cycles,
            "-",
            chip.static_power().watts(),
            total,
        );
    }

    // ---- 6. branch divergence (paper §V-B's closing suggestion) -----------
    println!("\n== ablation 6: branch-divergence depth (GT240) ==");
    println!(
        "{:<8} {:>8} {:>12} {:>16}",
        "depth", "cycles", "div branches", "stack ops"
    );
    for depth in 1..=5u32 {
        let mut sim = Simulator::gt240().expect("preset builds");
        let k = micro::divergence_kernel(depth);
        let r = sim.run(&k, LaunchConfig::linear(12, 256)).expect("runs");
        let s = &r.launch.stats;
        println!(
            "{:<8} {:>8} {:>12} {:>16}",
            depth,
            s.shader_cycles,
            s.divergent_branches,
            s.simt_stack_pushes + s.simt_stack_pops,
        );
    }

    // ---- 7. process node -------------------------------------------------------------------
    println!("\n== ablation 7: ITRS node scaling (GT240 architecture) ==");
    println!(
        "{:<10} {:>10} {:>10} {:>12}",
        "node[nm]", "area[mm²]", "static[W]", "energy[µJ]"
    );
    for nm in [65u32, 45, 40, 32, 28, 22] {
        let mut cfg = GpuConfig::gt240();
        cfg.process_nm = nm;
        let chip = gpusimpow_power::GpuChip::new(&cfg).expect("chip builds");
        let (_, _, energy) = run_matmul(cfg);
        println!(
            "{:<10} {:>10.1} {:>10.2} {:>12.3}",
            nm,
            chip.area().mm2(),
            chip.static_power().watts(),
            energy,
        );
    }
}

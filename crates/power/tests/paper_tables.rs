//! Regression tests pinning the reproduction of the paper's Table IV
//! (static power & area) and Table V (blackscholes power breakdown on
//! the GT240). These are the calibration anchors of the model: if they
//! drift, EXPERIMENTS.md is stale.

use gpusimpow_kernels::blackscholes::BlackScholes;
use gpusimpow_kernels::Benchmark;
use gpusimpow_power::chip::GpuChip;
use gpusimpow_sim::{config::GpuConfig, gpu::Gpu};

fn rel_err(got: f64, want: f64) -> f64 {
    (got - want).abs() / want.abs()
}

#[test]
fn table_iv_static_power_and_area() {
    let gt240 = GpuChip::new(&GpuConfig::gt240()).unwrap();
    // Paper Table IV, "Simulated" rows.
    assert!(
        rel_err(gt240.static_power().watts(), 17.9) < 0.05,
        "GT240 static {} W vs paper 17.9 W",
        gt240.static_power().watts()
    );
    assert!(
        rel_err(gt240.area().mm2(), 105.0) < 0.10,
        "GT240 area {} mm2 vs paper 105 mm2",
        gt240.area().mm2()
    );

    let gtx580 = GpuChip::new(&GpuConfig::gtx580()).unwrap();
    assert!(
        rel_err(gtx580.static_power().watts(), 81.5) < 0.08,
        "GTX580 static {} W vs paper 81.5 W",
        gtx580.static_power().watts()
    );
    assert!(
        rel_err(gtx580.area().mm2(), 306.0) < 0.20,
        "GTX580 area {} mm2 vs paper 306 mm2",
        gtx580.area().mm2()
    );
}

#[test]
fn table_v_blackscholes_breakdown_on_gt240() {
    let cfg = GpuConfig::gt240();
    let chip = GpuChip::new(&cfg).unwrap();
    let mut gpu = Gpu::new(cfg).unwrap();
    let reports = BlackScholes::default().run(&mut gpu).unwrap();
    let r = chip.evaluate("BlackScholes", &reports[0].stats);

    // GPU-level rows (paper: static / dynamic).
    let overall = r.chip.cores + r.chip.noc + r.chip.mc + r.chip.pcie + r.chip.l2;
    assert!(rel_err(overall.static_power.watts(), 17.934) < 0.05);
    assert!(rel_err(overall.dynamic_power.watts(), 19.207) < 0.10);
    assert!(rel_err(r.chip.noc.static_power.watts(), 1.484) < 0.05);
    assert!(rel_err(r.chip.noc.dynamic_power.watts(), 1.229) < 0.15);
    assert!(rel_err(r.chip.mc.static_power.watts(), 0.497) < 0.05);
    assert!(rel_err(r.chip.mc.dynamic_power.watts(), 1.753) < 0.15);
    assert!(rel_err(r.chip.pcie.static_power.watts(), 0.539) < 0.05);
    assert!(rel_err(r.chip.pcie.dynamic_power.watts(), 0.992) < 0.10);

    // Cores consume by far the largest fraction (paper: 82.2 %).
    let share = r.chip.cores.total() / overall.total();
    assert!((0.75..0.90).contains(&share), "cores share {share}");

    // Core-level rows.
    assert!(rel_err(r.core.wcu.static_power.watts(), 0.042) < 0.10);
    assert!(rel_err(r.core.wcu.dynamic_power.watts(), 0.089) < 0.15);
    assert!(rel_err(r.core.regfile.static_power.watts(), 0.112) < 0.10);
    assert!(rel_err(r.core.regfile.dynamic_power.watts(), 0.173) < 0.15);
    assert!(rel_err(r.core.exec.static_power.watts(), 0.0096) < 0.10);
    assert!(rel_err(r.core.exec.dynamic_power.watts(), 0.556) < 0.10);
    assert!(rel_err(r.core.ldstu.static_power.watts(), 0.234) < 0.10);
    assert!(rel_err(r.core.ldstu.dynamic_power.watts(), 0.014) < 0.25);
    assert!(rel_err(r.core.undiff.static_power.watts(), 0.886) < 0.10);
    assert_eq!(
        r.core.undiff.dynamic_power.watts(),
        0.0,
        "undiff is static-only"
    );
    // Base power is activity-weighted; blackscholes keeps most cores busy.
    let base = r.core.base.dynamic_power.watts();
    assert!(
        (0.10..=0.25).contains(&base),
        "core base {base} W vs paper 0.199"
    );

    // External DRAM ~4.3 W (paper footnote).
    assert!(
        rel_err(r.dram.total().watts(), 4.3) < 0.15,
        "dram {}",
        r.dram.total().watts()
    );
}

#[test]
fn two_level_scheduling_never_increases_wcu_power() {
    // The future-work extension: a 6-wide issue encoder leaks and
    // switches (slightly) less than a 24-wide one.
    let rr = GpuChip::new(&GpuConfig::gt240()).unwrap();
    let mut tl_cfg = GpuConfig::gt240();
    tl_cfg.warp_scheduler = gpusimpow_sim::WarpSchedPolicy::TwoLevel { active_warps: 6 };
    let tl = GpuChip::new(&tl_cfg).unwrap();
    assert!(
        tl.static_power().watts() <= rr.static_power().watts(),
        "smaller issue scheduler cannot leak more"
    );
}

#[test]
fn exec_units_dominate_modelled_core_dynamic_power() {
    // Paper §V-B: "the most power is consumed by the execution units
    // (24.43%) … after the execution hardware, the next-most power is
    // used in the register file (about 12.3%)".
    let cfg = GpuConfig::gt240();
    let chip = GpuChip::new(&cfg).unwrap();
    let mut gpu = Gpu::new(cfg).unwrap();
    let reports = BlackScholes::default().run(&mut gpu).unwrap();
    let r = chip.evaluate("BlackScholes", &reports[0].stats);
    let core_total = r.core.overall().total().watts();
    let exec_pct = 100.0 * r.core.exec.total().watts() / core_total;
    let rf_pct = 100.0 * r.core.regfile.total().watts() / core_total;
    let wcu_pct = 100.0 * r.core.wcu.total().watts() / core_total;
    let undiff_pct = 100.0 * r.core.undiff.total().watts() / core_total;
    assert!(
        (20.0..30.0).contains(&exec_pct),
        "exec {exec_pct}% vs paper 24.43%"
    );
    assert!((9.0..16.0).contains(&rf_pct), "rf {rf_pct}% vs paper 12.3%");
    assert!(
        wcu_pct < 9.0,
        "wcu {wcu_pct}% vs paper 5.65% (smallest modelled)"
    );
    assert!(
        (33.0..45.0).contains(&undiff_pct),
        "undiff {undiff_pct}% vs paper 38.3%"
    );
    assert!(
        exec_pct > rf_pct && rf_pct > wcu_pct,
        "paper's ordering holds"
    );
}

//! Shared command-line plumbing for the experiment binaries.

use gpusimpow_sim::SimPool;

/// Parses a `--threads N` (or `--threads=N`) flag from `args` and builds
/// the simulation fan-out pool. Without the flag the pool uses the
/// machine's available parallelism; `--threads 1` forces sequential
/// execution.
///
/// Thread count only changes wall-clock time: every experiment seeds its
/// own `Gpu`/testbed per job and results are collected in input order,
/// so the emitted numbers are identical for any setting.
///
/// # Panics
///
/// Panics with a usage message when the flag's value is missing or not
/// a number.
pub fn pool_from_args(args: &[String]) -> SimPool {
    SimPool::new(threads_from_args(args))
}

/// Extracts the raw `--threads` value (`0` = available parallelism,
/// also the default when the flag is absent).
pub fn threads_from_args(args: &[String]) -> usize {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let value = if arg == "--threads" {
            iter.next()
                .unwrap_or_else(|| panic!("--threads needs a value"))
                .clone()
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            v.to_string()
        } else {
            continue;
        };
        return value
            .parse()
            .unwrap_or_else(|_| panic!("--threads expects a number, got {value:?}"));
    }
    0
}

/// Extracts the value of a `--name=VALUE` flag. Only the `=` form is
/// accepted: several binaries scan for a *positional* output directory
/// as "the first argument not starting with `--`", and a space-
/// separated flag value would be swallowed by that scan.
pub fn eq_flag(args: &[String], name: &str) -> Option<String> {
    let prefix = format!("--{name}=");
    args.iter()
        .find_map(|a| a.strip_prefix(&prefix).map(str::to_string))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_is_available_parallelism() {
        assert_eq!(threads_from_args(&args(&["bin", "--small"])), 0);
        assert!(pool_from_args(&args(&["bin"])).threads() >= 1);
    }

    #[test]
    fn explicit_forms_parse() {
        assert_eq!(threads_from_args(&args(&["bin", "--threads", "4"])), 4);
        assert_eq!(threads_from_args(&args(&["bin", "--threads=2", "x"])), 2);
        assert_eq!(
            pool_from_args(&args(&["bin", "--threads", "1"])).threads(),
            1
        );
    }

    #[test]
    fn eq_flag_parses_only_the_equals_form() {
        let a = args(&["bin", "--trace-out=traces", "--threads", "2"]);
        assert_eq!(eq_flag(&a, "trace-out"), Some("traces".to_string()));
        assert_eq!(eq_flag(&a, "trace-in"), None);
        let spaced = args(&["bin", "--trace-out", "traces"]);
        assert_eq!(eq_flag(&spaced, "trace-out"), None);
    }

    #[test]
    #[should_panic(expected = "--threads needs a value")]
    fn missing_value_panics() {
        threads_from_args(&args(&["bin", "--threads"]));
    }

    #[test]
    #[should_panic(expected = "expects a number")]
    fn non_numeric_value_panics() {
        threads_from_args(&args(&["bin", "--threads", "lots"]));
    }
}

//! Programmatic kernel construction with structured control flow.
//!
//! The builder emits the flat instruction stream the simulator executes,
//! and — crucially for the SIMT divergence model — computes the
//! *reconvergence PC* (immediate post-dominator) of every branch from the
//! structure of the source: [`KernelBuilder::if_then`],
//! [`KernelBuilder::if_then_else`] and [`KernelBuilder::while_loop`]
//! reconverge at their textual end, exactly as a structured-code PTX
//! compiler would annotate them.

use crate::instr::{CmpOp, FpOp, Instr, IntOp, MemSpace, Operand, Pc, Reg, SfuOp, SpecialReg};
use crate::kernel::{Kernel, KernelError};

/// A forward-referencable code position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Which field of a branch a fixup patches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Patch {
    Target,
    Reconv,
    JmpTarget,
}

/// Incremental builder for [`Kernel`]s.
///
/// # Examples
///
/// Build `out[i] = a[i] + b[i]` over a 1-D launch:
///
/// ```
/// use gpusimpow_isa::builder::KernelBuilder;
/// use gpusimpow_isa::instr::{Reg, Operand, SpecialReg, IntOp};
///
/// let mut b = KernelBuilder::new("vectoradd");
/// let (tid, bid, bdim) = (Reg(0), Reg(1), Reg(2));
/// b.s2r(tid, SpecialReg::TidX);
/// b.s2r(bid, SpecialReg::CtaIdX);
/// b.s2r(bdim, SpecialReg::NTidX);
/// let i = Reg(3);
/// b.imad(i, bid, bdim, tid); // i = bid*bdim+tid
/// b.exit();
/// let kernel = b.build()?;
/// assert_eq!(kernel.name(), "vectoradd");
/// # Ok::<(), gpusimpow_isa::kernel::KernelError>(())
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    code: Vec<Instr>,
    max_reg: u8,
    smem_bytes: u32,
    const_words: Vec<u32>,
    labels: Vec<Option<Pc>>,
    fixups: Vec<(usize, Label, Patch)>,
}

impl KernelBuilder {
    /// Starts a new kernel.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            code: Vec::new(),
            max_reg: 0,
            smem_bytes: 0,
            const_words: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Current emission position.
    pub fn here(&self) -> Pc {
        self.code.len() as Pc
    }

    /// Allocates `bytes` of per-CTA shared memory, returning the byte
    /// offset of the allocation (16-byte aligned).
    pub fn alloc_smem(&mut self, bytes: u32) -> u32 {
        let offset = (self.smem_bytes + 15) & !15;
        self.smem_bytes = offset + bytes;
        offset
    }

    /// Appends `words` to the constant bank, returning the *byte* offset
    /// of the first appended word.
    pub fn push_consts(&mut self, words: &[u32]) -> u32 {
        let offset = (self.const_words.len() * 4) as u32;
        self.const_words.extend_from_slice(words);
        offset
    }

    /// Creates an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.here());
    }

    fn track(&mut self, instr: &Instr) {
        for r in instr.srcs().into_iter().chain(instr.dst()) {
            self.max_reg = self.max_reg.max(r.0);
        }
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, instr: Instr) -> &mut Self {
        self.track(&instr);
        self.code.push(instr);
        self
    }

    // --- integer ops ------------------------------------------------------

    /// `dst = a + b` (wrapping).
    pub fn iadd(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.ialu(IntOp::Add, dst, a, b)
    }

    /// `dst = a - b` (wrapping).
    pub fn isub(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.ialu(IntOp::Sub, dst, a, b)
    }

    /// `dst = a * b` (wrapping, low 32 bits).
    pub fn imul(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.ialu(IntOp::Mul, dst, a, b)
    }

    /// `dst = min(a, b)` (signed).
    pub fn imin(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.ialu(IntOp::Min, dst, a, b)
    }

    /// `dst = max(a, b)` (signed).
    pub fn imax(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.ialu(IntOp::Max, dst, a, b)
    }

    /// `dst = a & b`.
    pub fn iand(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.ialu(IntOp::And, dst, a, b)
    }

    /// `dst = a | b`.
    pub fn ior(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.ialu(IntOp::Or, dst, a, b)
    }

    /// `dst = a ^ b`.
    pub fn ixor(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.ialu(IntOp::Xor, dst, a, b)
    }

    /// `dst = a << b` (logical).
    pub fn shl(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.ialu(IntOp::Shl, dst, a, b)
    }

    /// `dst = a >> b` (logical).
    pub fn shr(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.ialu(IntOp::Shr, dst, a, b)
    }

    /// `dst = a >> b` (arithmetic).
    pub fn sra(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.ialu(IntOp::Sra, dst, a, b)
    }

    fn ialu(
        &mut self,
        op: IntOp,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.emit(Instr::IAlu {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        })
    }

    /// `dst = a * b + c` (integer).
    pub fn imad(
        &mut self,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> &mut Self {
        self.emit(Instr::IMad {
            dst,
            a: a.into(),
            b: b.into(),
            c: c.into(),
        })
    }

    // --- floating-point ops -------------------------------------------------

    /// `dst = a + b` (f32).
    pub fn fadd(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.falu(FpOp::Add, dst, a, b)
    }

    /// `dst = a - b` (f32).
    pub fn fsub(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.falu(FpOp::Sub, dst, a, b)
    }

    /// `dst = a * b` (f32).
    pub fn fmul(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.falu(FpOp::Mul, dst, a, b)
    }

    /// `dst = min(a, b)` (f32).
    pub fn fmin(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.falu(FpOp::Min, dst, a, b)
    }

    /// `dst = max(a, b)` (f32).
    pub fn fmax(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.falu(FpOp::Max, dst, a, b)
    }

    fn falu(
        &mut self,
        op: FpOp,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.emit(Instr::FAlu {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        })
    }

    /// `dst = a * b + c` (fused, f32).
    pub fn ffma(
        &mut self,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> &mut Self {
        self.emit(Instr::FFma {
            dst,
            a: a.into(),
            b: b.into(),
            c: c.into(),
        })
    }

    /// `dst = op(a)` on the SFU pipeline.
    pub fn sfu(&mut self, op: SfuOp, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        self.emit(Instr::Sfu {
            op,
            dst,
            a: a.into(),
        })
    }

    // --- compares, converts, moves -----------------------------------------

    /// `dst = (a <op> b) ? 1 : 0` (signed integers).
    pub fn isetp(
        &mut self,
        op: CmpOp,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.emit(Instr::ISetp {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        })
    }

    /// `dst = (a <op> b) ? 1 : 0` (f32).
    pub fn fsetp(
        &mut self,
        op: CmpOp,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.emit(Instr::FSetp {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        })
    }

    /// `dst = (f32) a` (from signed int).
    pub fn i2f(&mut self, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        self.emit(Instr::I2F { dst, a: a.into() })
    }

    /// `dst = (i32) a` (truncating from f32).
    pub fn f2i(&mut self, dst: Reg, a: impl Into<Operand>) -> &mut Self {
        self.emit(Instr::F2I { dst, a: a.into() })
    }

    /// `dst = src`.
    pub fn mov(&mut self, dst: Reg, src: impl Into<Operand>) -> &mut Self {
        self.emit(Instr::Mov {
            dst,
            src: src.into(),
        })
    }

    /// `dst = imm` (integer immediate).
    pub fn movi(&mut self, dst: Reg, imm: u32) -> &mut Self {
        self.mov(dst, Operand::imm_u32(imm))
    }

    /// `dst = imm` (f32 immediate).
    pub fn movf(&mut self, dst: Reg, imm: f32) -> &mut Self {
        self.mov(dst, Operand::imm_f32(imm))
    }

    /// `dst = cond != 0 ? a : b`.
    pub fn sel(
        &mut self,
        dst: Reg,
        cond: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.emit(Instr::Sel {
            dst,
            cond,
            a: a.into(),
            b: b.into(),
        })
    }

    /// Reads a special register.
    pub fn s2r(&mut self, dst: Reg, sr: SpecialReg) -> &mut Self {
        self.emit(Instr::S2R { dst, sr })
    }

    // --- memory ---------------------------------------------------------------

    /// `dst = global[addr + offset]`.
    pub fn ld_global(&mut self, dst: Reg, addr: Reg, offset: i32) -> &mut Self {
        self.emit(Instr::Ld {
            space: MemSpace::Global,
            dst,
            addr,
            offset,
        })
    }

    /// `global[addr + offset] = src`.
    pub fn st_global(&mut self, src: Reg, addr: Reg, offset: i32) -> &mut Self {
        self.emit(Instr::St {
            space: MemSpace::Global,
            src,
            addr,
            offset,
        })
    }

    /// `dst = shared[addr + offset]`.
    pub fn ld_shared(&mut self, dst: Reg, addr: Reg, offset: i32) -> &mut Self {
        self.emit(Instr::Ld {
            space: MemSpace::Shared,
            dst,
            addr,
            offset,
        })
    }

    /// `shared[addr + offset] = src`.
    pub fn st_shared(&mut self, src: Reg, addr: Reg, offset: i32) -> &mut Self {
        self.emit(Instr::St {
            space: MemSpace::Shared,
            src,
            addr,
            offset,
        })
    }

    /// `dst = const[addr + offset]`.
    pub fn ld_const(&mut self, dst: Reg, addr: Reg, offset: i32) -> &mut Self {
        self.emit(Instr::Ld {
            space: MemSpace::Const,
            dst,
            addr,
            offset,
        })
    }

    // --- control flow ------------------------------------------------------

    /// CTA-wide barrier.
    pub fn bar(&mut self) -> &mut Self {
        self.emit(Instr::Bar)
    }

    /// Thread exit.
    pub fn exit(&mut self) -> &mut Self {
        self.emit(Instr::Exit)
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instr::Nop)
    }

    /// Unconditional jump to a label.
    pub fn jmp(&mut self, target: Label) -> &mut Self {
        let at = self.code.len();
        self.fixups.push((at, target, Patch::JmpTarget));
        self.emit(Instr::Jmp { target: u32::MAX })
    }

    /// Branch to `target` if `cond != 0`; diverged threads reconverge at
    /// `reconv`. Prefer the structured helpers, which compute `reconv`.
    pub fn bra_nz(&mut self, cond: Reg, target: Label, reconv: Label) -> &mut Self {
        self.bra(cond, false, target, reconv)
    }

    /// Branch to `target` if `cond == 0`.
    pub fn bra_z(&mut self, cond: Reg, target: Label, reconv: Label) -> &mut Self {
        self.bra(cond, true, target, reconv)
    }

    fn bra(&mut self, cond: Reg, negate: bool, target: Label, reconv: Label) -> &mut Self {
        let at = self.code.len();
        self.fixups.push((at, target, Patch::Target));
        self.fixups.push((at, reconv, Patch::Reconv));
        self.emit(Instr::Bra {
            cond,
            negate,
            target: u32::MAX,
            reconv: u32::MAX,
        })
    }

    /// Structured `if (cond != 0) { body }`. The reconvergence point is
    /// the end of the body.
    pub fn if_then(&mut self, cond: Reg, body: impl FnOnce(&mut Self)) -> &mut Self {
        let end = self.new_label();
        // Threads with cond == 0 skip the body.
        self.bra_z(cond, end, end);
        body(self);
        self.bind(end);
        self
    }

    /// Structured `if (cond != 0) { then } else { otherwise }` with
    /// reconvergence at the end.
    pub fn if_then_else(
        &mut self,
        cond: Reg,
        then_body: impl FnOnce(&mut Self),
        else_body: impl FnOnce(&mut Self),
    ) -> &mut Self {
        let else_l = self.new_label();
        let end = self.new_label();
        self.bra_z(cond, else_l, end);
        then_body(self);
        self.jmp(end);
        self.bind(else_l);
        else_body(self);
        self.bind(end);
        self
    }

    /// Structured `while`: `header` computes and returns the condition
    /// register each iteration; the loop runs while it is non-zero.
    /// Reconvergence is at loop exit.
    pub fn while_loop(
        &mut self,
        header: impl FnOnce(&mut Self) -> Reg,
        body: impl FnOnce(&mut Self),
    ) -> &mut Self {
        let top = self.new_label();
        let end = self.new_label();
        self.bind(top);
        let cond = header(self);
        self.bra_z(cond, end, end);
        body(self);
        self.jmp(top);
        self.bind(end);
        self
    }

    /// Structured counted loop: `for (i = start; i < end_op; i += step)`.
    /// `i` must be initialized by this call; the bound and step are
    /// operands so either may come from a register.
    pub fn for_range(
        &mut self,
        i: Reg,
        cond_scratch: Reg,
        start: impl Into<Operand>,
        end_op: impl Into<Operand> + Copy,
        step: u32,
        body: impl FnOnce(&mut Self),
    ) -> &mut Self {
        self.mov(i, start);
        self.while_loop(
            |b| {
                b.isetp(CmpOp::Lt, cond_scratch, i, end_op);
                cond_scratch
            },
            |b| {
                body(b);
                b.iadd(i, i, Operand::imm_u32(step));
            },
        )
    }

    /// Finalizes the kernel: resolves labels and validates.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] if validation fails.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never bound.
    pub fn build(mut self) -> Result<Kernel, KernelError> {
        for (at, label, patch) in std::mem::take(&mut self.fixups) {
            let pc = self.labels[label.0].expect("label referenced but never bound");
            match (&mut self.code[at], patch) {
                (Instr::Bra { target, .. }, Patch::Target) => *target = pc,
                (Instr::Bra { reconv, .. }, Patch::Reconv) => *reconv = pc,
                (Instr::Jmp { target }, Patch::JmpTarget) => *target = pc,
                _ => unreachable!("fixup does not match instruction"),
            }
        }
        Kernel::new(
            self.name,
            self.code,
            self.max_reg + 1,
            self.smem_bytes,
            self.const_words,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut b = KernelBuilder::new("t");
        let top = b.new_label();
        let end = b.new_label();
        b.bind(top);
        b.movi(Reg(0), 1);
        b.bra_z(Reg(0), end, end);
        b.jmp(top);
        b.bind(end);
        b.exit();
        let k = b.build().unwrap();
        match k.code()[1] {
            Instr::Bra { target, reconv, .. } => {
                assert_eq!(target, 3);
                assert_eq!(reconv, 3);
            }
            ref other => panic!("expected branch, got {other:?}"),
        }
        match k.code()[2] {
            Instr::Jmp { target } => assert_eq!(target, 0),
            ref other => panic!("expected jmp, got {other:?}"),
        }
    }

    #[test]
    fn if_then_reconverges_at_end() {
        let mut b = KernelBuilder::new("t");
        b.movi(Reg(0), 1);
        b.if_then(Reg(0), |b| {
            b.movi(Reg(1), 2);
        });
        b.exit();
        let k = b.build().unwrap();
        match k.code()[1] {
            Instr::Bra {
                negate,
                target,
                reconv,
                ..
            } => {
                assert!(negate, "if_then skips the body when cond == 0");
                assert_eq!(target, 3);
                assert_eq!(reconv, 3);
            }
            ref other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn if_then_else_layout() {
        let mut b = KernelBuilder::new("t");
        b.movi(Reg(0), 0);
        b.if_then_else(
            Reg(0),
            |b| {
                b.movi(Reg(1), 1);
            },
            |b| {
                b.movi(Reg(1), 2);
            },
        );
        b.exit();
        let k = b.build().unwrap();
        // 0: movi, 1: bra -> else(4) reconv end(5), 2: movi(then),
        // 3: jmp end(5), 4: movi(else), 5: exit
        match k.code()[1] {
            Instr::Bra { target, reconv, .. } => {
                assert_eq!(target, 4);
                assert_eq!(reconv, 5);
            }
            ref other => panic!("expected branch, got {other:?}"),
        }
        assert_eq!(k.code().len(), 6);
    }

    #[test]
    fn while_loop_reconverges_at_exit() {
        let mut b = KernelBuilder::new("t");
        b.movi(Reg(0), 4);
        b.while_loop(
            |b| {
                b.isetp(CmpOp::Gt, Reg(1), Reg(0), Operand::imm_u32(0));
                Reg(1)
            },
            |b| {
                b.isub(Reg(0), Reg(0), Operand::imm_u32(1));
            },
        );
        b.exit();
        let k = b.build().unwrap();
        // 0: movi, 1: isetp, 2: bra.z -> end(5) reconv 5, 3: isub,
        // 4: jmp 1, 5: exit
        match k.code()[2] {
            Instr::Bra { target, reconv, .. } => {
                assert_eq!(target, 5);
                assert_eq!(reconv, 5);
            }
            ref other => panic!("expected branch, got {other:?}"),
        }
        match k.code()[4] {
            Instr::Jmp { target } => assert_eq!(target, 1),
            ref other => panic!("expected jmp, got {other:?}"),
        }
    }

    #[test]
    fn register_count_is_tracked() {
        let mut b = KernelBuilder::new("t");
        b.movi(Reg(11), 0);
        b.exit();
        let k = b.build().unwrap();
        assert_eq!(k.num_regs(), 12);
    }

    #[test]
    fn smem_allocations_are_aligned() {
        let mut b = KernelBuilder::new("t");
        let a = b.alloc_smem(20);
        let c = b.alloc_smem(4);
        assert_eq!(a, 0);
        assert_eq!(c, 32);
        b.exit();
        assert_eq!(b.build().unwrap().smem_bytes(), 36);
    }

    #[test]
    fn consts_are_word_addressed() {
        let mut b = KernelBuilder::new("t");
        let off0 = b.push_consts(&[7, 8]);
        let off1 = b.push_consts(&[9]);
        assert_eq!(off0, 0);
        assert_eq!(off1, 8);
        b.exit();
        assert_eq!(b.build().unwrap().const_words(), &[7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics_at_build() {
        let mut b = KernelBuilder::new("t");
        let l = b.new_label();
        b.jmp(l);
        b.exit();
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = KernelBuilder::new("t");
        let l = b.new_label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn for_range_emits_counted_loop() {
        let mut b = KernelBuilder::new("t");
        b.for_range(
            Reg(0),
            Reg(1),
            Operand::imm_u32(0),
            Operand::imm_u32(10),
            2,
            |b| {
                b.nop();
            },
        );
        b.exit();
        let k = b.build().unwrap();
        // mov, isetp, bra, nop, iadd, jmp, exit
        assert_eq!(k.code().len(), 7);
    }
}

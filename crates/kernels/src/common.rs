//! Shared benchmark infrastructure: the [`Benchmark`] trait, verification
//! helpers and error type.

use std::fmt;

use gpusimpow_sim::{Gpu, LaunchReport, SimError};

/// Where a benchmark originates (Table I of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// The Rodinia heterogeneous-computing suite.
    Rodinia,
    /// The NVIDIA CUDA SDK samples.
    CudaSdk,
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Origin::Rodinia => write!(f, "Rodinia"),
            Origin::CudaSdk => write!(f, "CUDA SDK"),
        }
    }
}

/// Errors from running a benchmark.
#[derive(Debug)]
pub enum BenchError {
    /// The simulator rejected or aborted a launch.
    Sim(SimError),
    /// GPU results disagreed with the CPU reference.
    Verification {
        /// Benchmark name.
        benchmark: &'static str,
        /// What differed.
        detail: String,
    },
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Sim(e) => write!(f, "{e}"),
            BenchError::Verification { benchmark, detail } => {
                write!(f, "{benchmark} failed verification: {detail}")
            }
        }
    }
}

impl std::error::Error for BenchError {}

impl From<SimError> for BenchError {
    fn from(e: SimError) -> Self {
        BenchError::Sim(e)
    }
}

/// A runnable, self-verifying GPGPU benchmark.
///
/// `run` performs the complete host program: input generation (seeded,
/// deterministic), device allocation and copies, kernel launches, and
/// verification against a CPU reference. It returns one [`LaunchReport`]
/// per kernel *invocation* (a kernel may run several times, e.g. the BFS
/// frontier loop); reports carry the kernel name for aggregation.
pub trait Benchmark {
    /// Benchmark name as in Table I (e.g. `"backprop"`).
    fn name(&self) -> &'static str;

    /// Origin suite.
    fn origin(&self) -> Origin;

    /// One-line description (Table I).
    fn description(&self) -> &'static str;

    /// Distinct kernel names, in Fig. 6 bar order (e.g.
    /// `["backprop1", "backprop2"]`).
    fn kernel_names(&self) -> Vec<String>;

    /// Runs the benchmark on `gpu`, verifying results.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::Sim`] on simulator failures and
    /// [`BenchError::Verification`] when the GPU output mismatches the
    /// CPU reference.
    fn run(&self, gpu: &mut Gpu) -> Result<Vec<LaunchReport>, BenchError>;
}

/// Verifies two f32 slices agree within a relative-plus-absolute bound.
///
/// # Errors
///
/// Returns a description of the first mismatch.
#[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(err <= bound)` catches NaN
pub fn check_f32(
    benchmark: &'static str,
    got: &[f32],
    want: &[f32],
    tol: f32,
) -> Result<(), BenchError> {
    if got.len() != want.len() {
        return Err(BenchError::Verification {
            benchmark,
            detail: format!("length mismatch: {} vs {}", got.len(), want.len()),
        });
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let err = (g - w).abs();
        let bound = tol * (1.0 + w.abs());
        if !(err <= bound) {
            return Err(BenchError::Verification {
                benchmark,
                detail: format!("element {i}: got {g}, want {w} (|err| {err} > {bound})"),
            });
        }
    }
    Ok(())
}

/// Verifies two u32 slices agree exactly.
///
/// # Errors
///
/// Returns a description of the first mismatch.
pub fn check_u32(benchmark: &'static str, got: &[u32], want: &[u32]) -> Result<(), BenchError> {
    if got.len() != want.len() {
        return Err(BenchError::Verification {
            benchmark,
            detail: format!("length mismatch: {} vs {}", got.len(), want.len()),
        });
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if g != w {
            return Err(BenchError::Verification {
                benchmark,
                detail: format!("element {i}: got {g}, want {w}"),
            });
        }
    }
    Ok(())
}

/// A tiny deterministic xorshift generator for input data, independent of
/// external crates so kernels and tests agree byte-for-byte.
#[derive(Debug, Clone)]
pub struct XorShift(u64);

impl XorShift {
    /// Seeds the generator (zero is mapped to a fixed non-zero seed).
    pub fn new(seed: u64) -> Self {
        XorShift(if seed == 0 { 0x9E3779B97F4A7C15 } else { seed })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Next u32 below `bound`.
    pub fn next_below(&mut self, bound: u32) -> u32 {
        (self.next_u64() % bound as u64) as u32
    }

    /// Next f32 uniform in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Next f32 uniform in `[lo, hi)`.
    pub fn next_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.next_f32() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_f32_accepts_close_and_rejects_far() {
        assert!(check_f32("t", &[1.0, 2.0], &[1.0, 2.0000001], 1e-4).is_ok());
        assert!(check_f32("t", &[1.0], &[2.0], 1e-4).is_err());
        assert!(check_f32("t", &[1.0], &[1.0, 2.0], 1e-4).is_err());
    }

    #[test]
    fn check_f32_rejects_nan() {
        assert!(check_f32("t", &[f32::NAN], &[1.0], 1e-3).is_err());
    }

    #[test]
    fn check_u32_exact() {
        assert!(check_u32("t", &[1, 2, 3], &[1, 2, 3]).is_ok());
        assert!(check_u32("t", &[1, 2, 3], &[1, 2, 4]).is_err());
    }

    #[test]
    fn xorshift_is_deterministic_and_in_range() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..100 {
            let x = a.next_f32();
            assert_eq!(x, b.next_f32());
            assert!((0.0..1.0).contains(&x));
        }
        let mut c = XorShift::new(7);
        for _ in 0..100 {
            assert!(c.next_below(10) < 10);
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut z = XorShift::new(0);
        assert_ne!(z.next_u64(), 0);
    }
}

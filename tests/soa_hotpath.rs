//! Bit-identity proofs for the SoA warp pipeline and the one-pass
//! sweep driver.
//!
//! The hot path executes warps as gather → dense-compute → masked
//! scatter over contiguous lane rows, and sweeps reuse one predecoded
//! instruction table across configs. Neither restructuring is allowed
//! to be visible in results: the full small suite must reproduce the
//! reference behaviour bit for bit on both presets, at any thread
//! count, and through either decode path.

use gpusimpow_isa::{Kernel, LaunchConfig};
use gpusimpow_kernels::{micro, small_benchmarks};
use gpusimpow_sim::{DecodedInstr, Gpu, GpuConfig, LaunchReport, PredecodedKernel, SimPool};

fn run_suite(cfg: &GpuConfig, threads: usize) -> Vec<LaunchReport> {
    let mut gpu = Gpu::new(cfg.clone()).expect("preset builds");
    gpu.set_threads(threads);
    let mut reports = Vec::new();
    for bench in &small_benchmarks() {
        reports.extend(
            bench
                .run(&mut gpu)
                .unwrap_or_else(|e| panic!("{} failed: {e}", bench.name())),
        );
    }
    reports
}

fn assert_reports_bit_identical(a: &[LaunchReport], b: &[LaunchReport], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: launch counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.kernel, y.kernel);
        assert_eq!(
            x.stats, y.stats,
            "`{}`: {what}: ActivityStats diverge",
            x.kernel
        );
        assert_eq!(
            x.time_s.to_bits(),
            y.time_s.to_bits(),
            "`{}`: {what}: simulated time diverges",
            x.kernel
        );
    }
}

/// The SoA pipeline is the only execution path now, so its reference is
/// the determinism contract itself: the full small suite, on both
/// presets, must be bit-identical run-to-run and across thread counts
/// (sequential vs pooled two-phase stepping).
#[test]
fn soa_small_suite_is_bit_identical_across_presets_and_thread_counts() {
    for cfg in [GpuConfig::gt240(), GpuConfig::gtx580()] {
        let reference = run_suite(&cfg, 1);
        let rerun = run_suite(&cfg, 1);
        assert_reports_bit_identical(&reference, &rerun, "run-to-run");
        let pooled = run_suite(&cfg, 4);
        assert_reports_bit_identical(&reference, &pooled, "1 vs 4 threads");
    }
}

fn micro_kernels() -> Vec<(Kernel, LaunchConfig)> {
    vec![
        (micro::cluster_step_kernel(64), LaunchConfig::linear(4, 64)),
        (micro::lfsr_kernel(16, 32), LaunchConfig::linear(2, 64)),
        (
            micro::mandelbrot_kernel(32, 16),
            LaunchConfig::linear(2, 64),
        ),
        (micro::divergence_kernel(3), LaunchConfig::linear(2, 64)),
        (micro::conflict_kernel(8, 16), LaunchConfig::linear(2, 32)),
    ]
}

/// The shared predecode split (config-independent base + per-config
/// bank-conflict specialization) reproduces the one-shot decode
/// exactly, field for field, for every micro kernel and preset.
#[test]
fn specialize_equals_one_shot_decode() {
    for cfg in [GpuConfig::gt240(), GpuConfig::gtx580()] {
        for (kernel, _) in micro_kernels() {
            let shared = PredecodedKernel::new(&kernel);
            assert_eq!(shared.len(), kernel.code().len());
            assert_eq!(
                shared.specialize(&cfg),
                DecodedInstr::decode_kernel(&kernel, &cfg),
                "`{}`",
                kernel.name()
            );
        }
    }
}

/// `PredecodedKernel::specialize` + `launch_decoded` (the sweep fast
/// path) equals plain `launch` (per-launch local decode) bit for bit,
/// on every micro kernel and both presets.
#[test]
fn predecoded_launch_matches_local_decode_bit_for_bit() {
    for cfg in [GpuConfig::gt240(), GpuConfig::gtx580()] {
        for (kernel, launch) in micro_kernels() {
            let reference = Gpu::new(cfg.clone())
                .expect("preset builds")
                .launch(&kernel, launch)
                .expect("local-decode launch runs");

            let table = PredecodedKernel::new(&kernel).specialize(&cfg);
            let decoded = Gpu::new(cfg.clone())
                .expect("preset builds")
                .launch_decoded(&kernel, launch, &table)
                .expect("predecoded launch runs");

            assert_eq!(reference.stats, decoded.stats, "`{}`", reference.kernel);
            assert_eq!(
                reference.time_s.to_bits(),
                decoded.time_s.to_bits(),
                "`{}`",
                reference.kernel
            );
        }
    }
}

/// A one-pass sweep over N configs returns exactly what N independent
/// `Gpu::new` + `launch` runs return, in config order, regardless of
/// pool width — including repeated configs (which must not share
/// mutable state).
#[test]
fn run_sweep_matches_independent_launches_bit_for_bit() {
    let kernel = micro::cluster_step_kernel(64);
    let launch = LaunchConfig::linear(4, 64);
    let configs = [GpuConfig::gt240(), GpuConfig::gtx580(), GpuConfig::gt240()];

    let independent: Vec<LaunchReport> = configs
        .iter()
        .map(|cfg| {
            Gpu::new(cfg.clone())
                .expect("preset builds")
                .launch(&kernel, launch)
                .expect("independent launch runs")
        })
        .collect();

    for threads in [1, 4] {
        let swept: Vec<LaunchReport> = SimPool::new(threads)
            .run_sweep(&kernel, &configs, |_, _| Ok(launch))
            .into_iter()
            .map(|r| r.expect("sweep member runs"))
            .collect();
        assert_reports_bit_identical(
            &independent,
            &swept,
            &format!("sweep vs independent ({threads} pool threads)"),
        );
    }
}

//! Fig. 6: simulated vs measured power for all 19 kernels.
//!
//! Usage: fig6_validation [gt240|gtx580|both] [--small]

use gpusimpow_bench::{experiments, render};
use gpusimpow_sim::GpuConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("both");
    let small = args.iter().any(|a| a == "--small");
    let configs: Vec<GpuConfig> = match which {
        "gt240" => vec![GpuConfig::gt240()],
        "gtx580" => vec![GpuConfig::gtx580()],
        _ => vec![GpuConfig::gt240(), GpuConfig::gtx580()],
    };
    for cfg in configs {
        let summary = experiments::fig6_validation(&cfg, experiments::BOARD_SEED, small);
        println!("{}", render::fig6(&summary));
    }
}

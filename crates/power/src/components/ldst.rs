//! Load/store-unit power model (paper §III-C4, Fig. 3).
//!
//! AGUs (parallel 8-address SAGUs, modelled as arithmetic logic), the
//! coalescer (D-flip-flop buffers plus an FSM, because "CACTI cannot be
//! used to model buffers with few but very large entries"), the unified
//! SMEM/L1 banked storage with its address/data crossbars and
//! bank-conflict check unit, and the constant cache.

use gpusimpow_circuit::{Cache, CacheSpec, Crossbar, DffBuffer, Fsm, SramArray, SramSpec};
use gpusimpow_sim::{ActivityVector, EventKind as Ev, GpuConfig};
use gpusimpow_tech::node::{DeviceType, TechNode};
use gpusimpow_tech::units::{Area, Energy, Power};

use crate::empirical;
use crate::registry::{EnergyMap, EnergyTerm};

/// Evaluated load/store unit (per core).
#[derive(Debug, Clone)]
pub struct LdstPower {
    agu_energy: Energy,
    smem_access_energy: Energy,
    xbar_energy: Energy,
    map: EnergyMap,
    leakage: Power,
    area: Area,
}

/// Energy of generating one address in a SAGU (a few adders at 40 nm).
const AGU_ADDR_PJ: f64 = 2.0;

impl LdstPower {
    /// Builds the LDST model for one core.
    ///
    /// # Errors
    ///
    /// Propagates circuit-model construction errors.
    pub fn new(cfg: &GpuConfig, tech: &TechNode) -> Result<Self, &'static str> {
        // Coalescer storage: input queue + pending request table, held in
        // flip-flops. Total bits: 8 entries x (warp_size x 32-bit
        // addresses + masks).
        let pending_bits = 8 * (cfg.warp_size * 32 + cfg.warp_size + 64);
        let coalescer = DffBuffer::new(tech, pending_bits)?;
        let fsm = Fsm::new(tech, 8, 6)?;

        // Unified SMEM/L1 physical storage, banked.
        let smem = SramArray::new(
            tech,
            SramSpec {
                entries: cfg.smem_bytes / 4,
                bits_per_entry: 32,
                read_ports: 0,
                write_ports: 0,
                rw_ports: 1,
                banks: cfg.smem_banks,
                device: DeviceType::LowStandbyPower,
            },
        )?;
        // Address + data crossbars between lanes and banks.
        let addr_xbar = Crossbar::new(tech, cfg.warp_size, cfg.smem_banks, 32, 0.03)?;
        let data_xbar = Crossbar::new(tech, cfg.smem_banks, cfg.warp_size, 32, 0.03)?;
        // Bank-conflict check unit: comparators over bank indices.
        let conflict_check = Fsm::new(tech, 4, cfg.warp_size)?;

        let const_cache = Cache::new(
            tech,
            CacheSpec {
                capacity_bytes: cfg.const_cache_bytes,
                line_bytes: 64,
                ways: 4,
                address_bits: 32,
                banks: 1,
            },
        )?;

        // L1 tags only matter on Fermi-class configs; the data storage is
        // the unified array above. Model the tag overhead as a small
        // cache when enabled.
        let l1_tags = if cfg.l1_enabled {
            Some(Cache::new(
                tech,
                CacheSpec {
                    capacity_bytes: cfg.l1_bytes,
                    line_bytes: cfg.l1_line_bytes,
                    ways: cfg.l1_ways,
                    address_bits: 32,
                    banks: 2,
                },
            )?)
        } else {
            None
        };

        let mut leakage = coalescer.costs().leakage
            + fsm.costs().leakage
            + smem.costs().leakage
            + addr_xbar.costs().leakage
            + data_xbar.costs().leakage
            + conflict_check.costs().leakage
            + const_cache.costs().leakage;
        let mut area = coalescer.costs().area
            + fsm.costs().area
            + smem.costs().area
            + addr_xbar.costs().area
            + data_xbar.costs().area
            + conflict_check.costs().area
            + const_cache.costs().area;
        let (l1_hit_energy, l1_fill_energy) = match &l1_tags {
            Some(l1) => {
                leakage += l1.costs().leakage * 0.3; // tags + control only
                area += l1.costs().area * 0.15;
                (l1.miss_energy(), l1.fill_energy())
            }
            None => (Energy::ZERO, Energy::ZERO),
        };

        let s = empirical::LDST_ENERGY_SCALE;
        let agu_energy = Energy::from_picojoules(AGU_ADDR_PJ * 8.0) * tech.vdd().squared() * s;
        let smem_access_energy = smem.costs().read_energy * empirical::LDST_SMEM_SCALE;
        let xbar_energy = (addr_xbar.transfer_energy() + data_xbar.transfer_energy())
            * empirical::LDST_SMEM_SCALE;
        // Term order is the former hand-written expression order; SMEM
        // accesses are priced twice on purpose (array + crossbars).
        let map = EnergyMap::new(vec![
            EnergyTerm::new("agu", agu_energy, vec![Ev::AguOps]),
            EnergyTerm::new(
                "coalescer",
                coalescer.write_energy(40) * s,
                vec![Ev::CoalescerInputs],
            ),
            EnergyTerm::new(
                "coalescer",
                (coalescer.write_energy(64) + fsm.transition_energy()) * s,
                vec![Ev::CoalescerOutputs],
            ),
            EnergyTerm::new("smem/l1 array", smem_access_energy, vec![Ev::SmemAccesses]),
            EnergyTerm::new("smem crossbars", xbar_energy, vec![Ev::SmemAccesses]),
            EnergyTerm::new(
                "constant cache",
                const_cache.hit_energy() * s,
                vec![Ev::ConstAccesses],
            ),
            EnergyTerm::new(
                "constant cache",
                const_cache.fill_energy() * s,
                vec![Ev::ConstMisses],
            ),
            EnergyTerm::new("l1 tags", l1_hit_energy * s, vec![Ev::L1Accesses]),
            EnergyTerm::new("l1 tags", l1_fill_energy * s, vec![Ev::L1Fills]),
        ]);
        Ok(LdstPower {
            agu_energy,
            smem_access_energy,
            xbar_energy,
            map,
            leakage: leakage * empirical::LDST_LEAKAGE_SCALE,
            area,
        })
    }

    /// The LDST unit's event-priced energy map.
    pub fn energy_map(&self) -> &EnergyMap {
        &self.map
    }

    /// Chip-wide dynamic energy from the registry counters.
    pub fn dynamic_energy(&self, activity: &ActivityVector) -> Energy {
        self.map.dynamic_energy(activity)
    }

    /// Per-core leakage.
    pub fn leakage(&self) -> Power {
        self.leakage
    }

    /// Per-core area.
    pub fn area(&self) -> Area {
        self.area
    }

    /// Peak per-cycle energy: a full warp access every cycle.
    pub fn peak_cycle_energy(&self, cfg: &GpuConfig) -> Energy {
        self.agu_energy * (cfg.warp_size / 8) as f64
            + self.smem_access_energy * cfg.smem_banks as f64 / 2.0
            + self.xbar_energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t40() -> TechNode {
        TechNode::planar(40).unwrap()
    }

    #[test]
    fn fermi_ldst_is_bigger() {
        let gt = LdstPower::new(&GpuConfig::gt240(), &t40()).unwrap();
        let gtx = LdstPower::new(&GpuConfig::gtx580(), &t40()).unwrap();
        assert!(gtx.leakage() > gt.leakage(), "4x the unified storage");
    }

    #[test]
    fn l1_energies_zero_when_absent() {
        let gt = LdstPower::new(&GpuConfig::gt240(), &t40()).unwrap();
        let mut a = ActivityVector::new();
        a[Ev::L1Accesses] = 100;
        a[Ev::L1Fills] = 10;
        assert_eq!(gt.dynamic_energy(&a).joules(), 0.0);
    }

    #[test]
    fn memory_activity_costs_energy() {
        let ldst = LdstPower::new(&GpuConfig::gt240(), &t40()).unwrap();
        let mut a = ActivityVector::new();
        a[Ev::AguOps] = 4;
        a[Ev::CoalescerInputs] = 32;
        a[Ev::CoalescerOutputs] = 1;
        a[Ev::SmemAccesses] = 16;
        assert!(ldst.dynamic_energy(&a).picojoules() > 1.0);
    }
}

//! Table II: key features of the evaluated GPU architectures.

use gpusimpow_sim::GpuConfig;

fn main() {
    let gt = GpuConfig::gt240();
    let gtx = GpuConfig::gtx580();
    println!("Table II — key architecture features\n");
    println!("| feature | GT240 | GTX580 |");
    println!("|---|---|---|");
    println!("| #Cores | {} | {} |", gt.total_cores(), gtx.total_cores());
    println!(
        "| #Threads per core | {} | {} |",
        gt.max_threads_per_core, gtx.max_threads_per_core
    );
    println!("| #FUs per core | {} | {} |", gt.simd_width, gtx.simd_width);
    println!(
        "| Uncore clock | {} MHz | {} MHz |",
        gt.uncore_mhz, gtx.uncore_mhz
    );
    println!(
        "| Shader-to-uncore | {}x | {}x |",
        gt.shader_ratio, gtx.shader_ratio
    );
    println!(
        "| #Warps in-flight | {} | {} |",
        gt.max_warps_per_core(),
        gtx.max_warps_per_core()
    );
    println!(
        "| Scoreboard | {} | {} |",
        if gt.scoreboard { "yes" } else { "no" },
        if gtx.scoreboard { "yes" } else { "no" }
    );
    println!(
        "| L2 size | {} | {} |",
        gt.l2
            .map(|l| format!("{} KB", l.capacity_bytes / 1024))
            .unwrap_or_else(|| "-".into()),
        gtx.l2
            .map(|l| format!("{} KB", l.capacity_bytes / 1024))
            .unwrap_or_else(|| "-".into())
    );
    println!(
        "| Process node | {} nm | {} nm |",
        gt.process_nm, gtx.process_nm
    );
}

//! Plain-text configuration files.
//!
//! GPUSimPow takes "the key parameters of the simulated architecture …
//! using a simple XML-based interface" (paper §III-A). This reproduction
//! uses an equally simple `key = value` format (XML adds nothing here and
//! would require a dependency):
//!
//! ```text
//! # my-gpu.cfg — start from a preset, override what differs
//! base = gt240
//! name = MyGpu
//! clusters = 8
//! cores_per_cluster = 2
//! process_nm = 28
//! l2 = 512K,128,8,20      # capacity,line,ways,latency — or "none"
//! ```

use std::fmt;

use gpusimpow_sim::{DramConfig, GpuConfig, L2Config, WarpSchedPolicy};

/// A configuration-file parse error with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigFileError {
    /// 1-based line number (0 for whole-file errors).
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ConfigFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigFileError {}

fn err(line: usize, message: impl Into<String>) -> ConfigFileError {
    ConfigFileError {
        line,
        message: message.into(),
    }
}

/// Parses a configuration file into a [`GpuConfig`].
///
/// The optional `base = gt240|gtx580` line (which must come first if
/// present) selects the preset being overridden; without it the GT240
/// preset is the base.
///
/// # Errors
///
/// Returns a [`ConfigFileError`] locating the first unknown key, bad
/// value or failed validation.
pub fn parse_config(text: &str) -> Result<GpuConfig, ConfigFileError> {
    let mut cfg = GpuConfig::gt240();
    for (idx, raw) in text.lines().enumerate() {
        let lno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err(lno, "expected `key = value`"))?;
        let (key, value) = (key.trim(), value.trim());
        apply(&mut cfg, key, value).map_err(|m| err(lno, m))?;
    }
    cfg.validate().map_err(|e| err(0, e.to_string()))?;
    Ok(cfg)
}

fn apply(cfg: &mut GpuConfig, key: &str, value: &str) -> Result<(), String> {
    fn parse<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, String> {
        v.parse()
            .map_err(|_| format!("bad value `{v}` for `{key}`"))
    }
    fn bytes(key: &str, v: &str) -> Result<usize, String> {
        let (num, mult) = match v.to_ascii_uppercase() {
            ref s if s.ends_with('K') => (s[..s.len() - 1].to_string(), 1024),
            ref s if s.ends_with('M') => (s[..s.len() - 1].to_string(), 1024 * 1024),
            ref s => (s.clone(), 1),
        };
        Ok(parse::<usize>(key, &num)? * mult)
    }
    match key {
        "base" => {
            *cfg = match value {
                "gt240" => GpuConfig::gt240(),
                "gtx580" => GpuConfig::gtx580(),
                other => return Err(format!("unknown base preset `{other}`")),
            };
        }
        "name" => cfg.name = value.to_string(),
        "clusters" => cfg.clusters = parse(key, value)?,
        "cores_per_cluster" => cfg.cores_per_cluster = parse(key, value)?,
        "warp_size" => cfg.warp_size = parse(key, value)?,
        "max_threads_per_core" => cfg.max_threads_per_core = parse(key, value)?,
        "max_ctas_per_core" => cfg.max_ctas_per_core = parse(key, value)?,
        "issue_width" => cfg.issue_width = parse(key, value)?,
        "warp_scheduler" => {
            cfg.warp_scheduler = if value == "rr" {
                WarpSchedPolicy::RoundRobin
            } else if let Some(n) = value.strip_prefix("two_level:") {
                WarpSchedPolicy::TwoLevel {
                    active_warps: parse(key, n)?,
                }
            } else {
                return Err(format!(
                    "warp_scheduler expects `rr` or `two_level:N`, got `{value}`"
                ));
            };
        }
        "scoreboard" => cfg.scoreboard = parse(key, value)?,
        "icache" => cfg.icache_bytes = bytes(key, value)?,
        "regfile_regs_per_core" => cfg.regfile_regs_per_core = parse(key, value)?,
        "regfile_banks" => cfg.regfile_banks = parse(key, value)?,
        "operand_collectors" => cfg.operand_collectors = parse(key, value)?,
        "simd_width" => cfg.simd_width = parse(key, value)?,
        "sfu_count" => cfg.sfu_count = parse(key, value)?,
        "int_latency" => cfg.int_latency = parse(key, value)?,
        "fp_latency" => cfg.fp_latency = parse(key, value)?,
        "sfu_latency" => cfg.sfu_latency = parse(key, value)?,
        "smem" => cfg.smem_bytes = bytes(key, value)?,
        "smem_banks" => cfg.smem_banks = parse(key, value)?,
        "smem_latency" => cfg.smem_latency = parse(key, value)?,
        "l1" => match value {
            "none" => {
                cfg.l1_enabled = false;
                cfg.l1_bytes = 0;
            }
            v => {
                cfg.l1_enabled = true;
                cfg.l1_bytes = bytes(key, v)?;
            }
        },
        "l2" => match value {
            "none" => cfg.l2 = None,
            v => {
                let parts: Vec<&str> = v.split(',').map(str::trim).collect();
                if parts.len() != 4 {
                    return Err("l2 expects `capacity,line,ways,latency` or `none`".to_string());
                }
                cfg.l2 = Some(L2Config {
                    capacity_bytes: bytes(key, parts[0])?,
                    line_bytes: parse(key, parts[1])?,
                    ways: parse(key, parts[2])?,
                    latency: parse(key, parts[3])?,
                });
            }
        },
        "const_cache" => cfg.const_cache_bytes = bytes(key, value)?,
        "sagu_count" => cfg.sagu_count = parse(key, value)?,
        "noc_latency" => cfg.noc_latency = parse(key, value)?,
        "noc_flit_bytes" => cfg.noc_flit_bytes = parse(key, value)?,
        "noc_bandwidth_flits" => cfg.noc_bandwidth_flits = parse(key, value)?,
        "mem_channels" => cfg.mem_channels = parse(key, value)?,
        "mc_queue_depth" => cfg.mc_queue_depth = parse(key, value)?,
        "uncore_mhz" => cfg.uncore_mhz = parse(key, value)?,
        "shader_ratio" => cfg.shader_ratio = parse(key, value)?,
        "dram_mhz" => cfg.dram_mhz = parse(key, value)?,
        "dram_banks" => cfg.dram.banks = parse(key, value)?,
        "dram_row_bytes" => cfg.dram.row_bytes = parse(key, value)?,
        "process_nm" => cfg.process_nm = parse(key, value)?,
        "junction_temp_k" => cfg.junction_temp_k = parse(key, value)?,
        other => return Err(format!("unknown configuration key `{other}`")),
    }
    Ok(())
}

/// Serializes a configuration to the file format (round-trips through
/// [`parse_config`]).
pub fn write_config(cfg: &GpuConfig) -> String {
    let DramConfig {
        banks, row_bytes, ..
    } = cfg.dram;
    let l2 = match cfg.l2 {
        None => "none".to_string(),
        Some(l2) => format!(
            "{},{},{},{}",
            l2.capacity_bytes, l2.line_bytes, l2.ways, l2.latency
        ),
    };
    let l1 = if cfg.l1_enabled {
        cfg.l1_bytes.to_string()
    } else {
        "none".to_string()
    };
    let sched = match cfg.warp_scheduler {
        WarpSchedPolicy::RoundRobin => "rr".to_string(),
        WarpSchedPolicy::TwoLevel { active_warps } => format!("two_level:{active_warps}"),
    };
    format!(
        "name = {}\nclusters = {}\ncores_per_cluster = {}\nwarp_size = {}\n\
         max_threads_per_core = {}\nmax_ctas_per_core = {}\nissue_width = {}\n\
         warp_scheduler = {}\n\
         scoreboard = {}\nicache = {}\nregfile_regs_per_core = {}\n\
         regfile_banks = {}\noperand_collectors = {}\nsimd_width = {}\n\
         sfu_count = {}\nint_latency = {}\nfp_latency = {}\nsfu_latency = {}\n\
         smem = {}\nsmem_banks = {}\nsmem_latency = {}\nl1 = {}\nl2 = {}\n\
         const_cache = {}\nsagu_count = {}\nnoc_latency = {}\n\
         noc_flit_bytes = {}\nnoc_bandwidth_flits = {}\nmem_channels = {}\n\
         mc_queue_depth = {}\nuncore_mhz = {}\nshader_ratio = {}\n\
         dram_mhz = {}\ndram_banks = {}\ndram_row_bytes = {}\nprocess_nm = {}\n\
         junction_temp_k = {}\n",
        cfg.name,
        cfg.clusters,
        cfg.cores_per_cluster,
        cfg.warp_size,
        cfg.max_threads_per_core,
        cfg.max_ctas_per_core,
        cfg.issue_width,
        sched,
        cfg.scoreboard,
        cfg.icache_bytes,
        cfg.regfile_regs_per_core,
        cfg.regfile_banks,
        cfg.operand_collectors,
        cfg.simd_width,
        cfg.sfu_count,
        cfg.int_latency,
        cfg.fp_latency,
        cfg.sfu_latency,
        cfg.smem_bytes,
        cfg.smem_banks,
        cfg.smem_latency,
        l1,
        l2,
        cfg.const_cache_bytes,
        cfg.sagu_count,
        cfg.noc_latency,
        cfg.noc_flit_bytes,
        cfg.noc_bandwidth_flits,
        cfg.mem_channels,
        cfg.mc_queue_depth,
        cfg.uncore_mhz,
        cfg.shader_ratio,
        cfg.dram_mhz,
        banks,
        row_bytes,
        cfg.process_nm,
        cfg.junction_temp_k,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_roundtrip() {
        for cfg in [GpuConfig::gt240(), GpuConfig::gtx580()] {
            let text = write_config(&cfg);
            let parsed = parse_config(&text).unwrap();
            assert_eq!(parsed, cfg);
        }
    }

    #[test]
    fn base_preset_with_overrides() {
        let cfg = parse_config(
            "
            base = gtx580
            name = HalfFermi   # a hypothetical 8-core Fermi
            clusters = 2
        ",
        )
        .unwrap();
        assert_eq!(cfg.name, "HalfFermi");
        assert_eq!(cfg.total_cores(), 8);
        assert!(cfg.scoreboard, "inherited from the gtx580 base");
    }

    #[test]
    fn byte_suffixes() {
        let cfg = parse_config("smem = 48K\nl2 = 1M,128,8,20").unwrap();
        assert_eq!(cfg.smem_bytes, 48 * 1024);
        assert_eq!(cfg.l2.unwrap().capacity_bytes, 1024 * 1024);
    }

    #[test]
    fn unknown_key_reports_line() {
        let e = parse_config("clusters = 4\nbogus = 1").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn bad_value_reports_key() {
        let e = parse_config("clusters = banana").unwrap_err();
        assert!(e.message.contains("clusters"));
    }

    #[test]
    fn validation_failures_surface() {
        let e = parse_config("clusters = 0").unwrap_err();
        assert!(e.message.contains("core"));
    }

    #[test]
    fn l2_none_disables() {
        let cfg = parse_config("base = gtx580\nl2 = none").unwrap();
        assert!(cfg.l2.is_none());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let cfg = parse_config("\n# a comment\nclusters = 2 # trailing\n\n").unwrap();
        assert_eq!(cfg.clusters, 2);
    }
}

//! Hot-path allocation lint: no heap allocation inside loop bodies of
//! the SoA warp pipeline.
//!
//! The steady-state contract of the execute/LD-ST hot path is that a
//! warm `Gpu` allocates nothing per executed instruction — lane
//! operands live in [`LaneScratch`]-style reusable buffers, and the
//! coalescer and uncore queues recycle their capacity. The runtime side
//! of that contract is enforced by `tests/steady_state_alloc.rs` (a
//! counting global allocator); this lint is the static side, catching
//! the regression at review time instead of in a ratio assertion:
//! an allocating expression (`vec!`, `Vec::new`, `.collect()`, …)
//! written inside a `for`/`while`/`loop` body of a hot-path file.
//!
//! Scope: `crates/sim/src/{core,func,ldst,wheel}.rs` — the files the
//! per-cycle pipeline lives in. Launch-setup allocations that happen to
//! sit in loops (one register file per dispatched warp, for example)
//! are grid-proportional, not cycle-proportional, and carry a justified
//! `simlint: allow(lane_loop_alloc)` marker.
//!
//! A second, sharper pass guards the core scheduler specifically:
//! [`UNBOUNDED_QUEUE_IN_CORE`] flags `BinaryHeap`/`VecDeque`
//! construction inside loop bodies of `crates/sim/src/{core,wheel}.rs`.
//! The calendar wheel replaced the per-core heap precisely because
//! comparison-queue traffic dominated the Fig. 4 hot path (DESIGN.md
//! §16–§17); a queue built per iteration would reintroduce both the
//! allocation and the O(log n) discipline in one move, so it gets a
//! dedicated name a reviewer can `allow` only with a written reason.
//!
//! Both passes walk the expression IR: loop bodies are [`Expr::Loop`]
//! nodes (so `impl Trait for Type` and `for<'a>` bounds can no longer
//! even look like loops), allocation sites are macro-call, path and
//! method-call nodes, and closures inside a loop body inherit the
//! loop context (the closure runs per iteration). Test items are
//! exempt — a `#[cfg(test)]` helper building a `Vec` per iteration
//! costs nothing at simulation time.

use crate::syntax::{Expr, Item, Stmt};
use crate::{Diagnostic, SourceFile};

/// Heap allocation inside a loop body of a hot-path file.
pub const LANE_LOOP_ALLOC: &str = "lane_loop_alloc";

/// `BinaryHeap`/`VecDeque` construction inside a loop body of the core
/// scheduler files — reintroducing the comparison queue the calendar
/// wheel removed.
pub const UNBOUNDED_QUEUE_IN_CORE: &str = "unbounded_queue_in_core";

/// Queue types the core scheduler must not rebuild per iteration.
const QUEUE_TYPES: &[&str] = &["BinaryHeap", "VecDeque"];

/// Owning container/smart-pointer types whose `::new`-style
/// constructors allocate (or will on first push).
const ALLOC_TYPES: &[&str] = &[
    "Vec",
    "VecDeque",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "Box",
    "String",
    "Rc",
    "Arc",
];

/// Constructor names that pair with [`ALLOC_TYPES`].
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];

/// Method calls that produce a fresh owned allocation.
const ALLOC_METHODS: &[&str] = &["collect", "to_vec", "to_string", "to_owned"];

/// Macros that expand to an allocation.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// The files whose loop bodies are the per-cycle hot path.
pub fn scope(rel_path: &str) -> bool {
    matches!(
        rel_path,
        "crates/sim/src/core.rs"
            | "crates/sim/src/func.rs"
            | "crates/sim/src/ldst.rs"
            | "crates/sim/src/wheel.rs"
    )
}

/// The core scheduler files [`UNBOUNDED_QUEUE_IN_CORE`] guards.
pub fn queue_scope(rel_path: &str) -> bool {
    matches!(
        rel_path,
        "crates/sim/src/core.rs" | "crates/sim/src/wheel.rs"
    )
}

/// A `Type::ctor` path match: the last two segments name an allocating
/// constructor on one of `types` (`std::collections::BinaryHeap::new`
/// matches through its full path).
fn ctor_path<'e>(e: &'e Expr, types: &[&str]) -> Option<(&'e str, &'e str, u32)> {
    if let Expr::Path { segs, line } = e {
        if segs.len() >= 2 {
            let ty = &segs[segs.len() - 2];
            let ctor = &segs[segs.len() - 1];
            if types.contains(&ty.as_str()) && ALLOC_CTORS.contains(&ctor.as_str()) {
                return Some((ty, ctor, *line));
            }
        }
    }
    None
}

/// Walks `e` reporting sites for which `hit` returns a diagnostic,
/// tracking whether the site sits inside a loop body. The traversal
/// mirrors [`Expr::walk`] but threads the loop context: loop bodies set
/// it, loop heads and everything else inherit it (so an allocation in
/// the condition of a `while` nested in a `for` is still a per-
/// iteration allocation of the outer loop).
fn scan_expr(e: &Expr, in_loop: bool, sink: &mut impl FnMut(&Expr)) {
    if in_loop {
        sink(e);
    }
    match e {
        Expr::Loop { head, body, .. } => {
            if let Some(h) = head {
                scan_expr(h, in_loop, sink);
            }
            scan_block(body, true, sink);
        }
        Expr::Path { .. } | Expr::Lit { .. } | Expr::Opaque { .. } => {}
        Expr::MethodCall { recv, args, .. } => {
            scan_expr(recv, in_loop, sink);
            for a in args {
                scan_expr(a, in_loop, sink);
            }
        }
        Expr::Call { callee, args, .. } => {
            scan_expr(callee, in_loop, sink);
            for a in args {
                scan_expr(a, in_loop, sink);
            }
        }
        Expr::Index { recv, index, .. } => {
            scan_expr(recv, in_loop, sink);
            scan_expr(index, in_loop, sink);
        }
        Expr::Field { recv, .. } => scan_expr(recv, in_loop, sink),
        Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs, .. } => {
            scan_expr(lhs, in_loop, sink);
            scan_expr(rhs, in_loop, sink);
        }
        Expr::Unary { expr, .. }
        | Expr::Ref { expr, .. }
        | Expr::Cast { expr, .. }
        | Expr::Try { expr, .. }
        | Expr::Paren { expr, .. } => scan_expr(expr, in_loop, sink),
        Expr::MacroCall { args, .. } => {
            for a in args {
                scan_expr(a, in_loop, sink);
            }
        }
        Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
            for x in items {
                scan_expr(x, in_loop, sink);
            }
        }
        Expr::Range { lo, hi, .. } => {
            if let Some(x) = lo {
                scan_expr(x, in_loop, sink);
            }
            if let Some(x) = hi {
                scan_expr(x, in_loop, sink);
            }
        }
        Expr::StructLit { fields, .. } => {
            for x in fields {
                scan_expr(x, in_loop, sink);
            }
        }
        Expr::Block { block, .. } => scan_block(block, in_loop, sink),
        Expr::If {
            cond, then, els, ..
        } => {
            scan_expr(cond, in_loop, sink);
            scan_block(then, in_loop, sink);
            if let Some(x) = els {
                scan_expr(x, in_loop, sink);
            }
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            scan_expr(scrutinee, in_loop, sink);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    scan_expr(g, in_loop, sink);
                }
                scan_expr(&arm.body, in_loop, sink);
            }
        }
        Expr::Closure { body, .. } => scan_expr(body, in_loop, sink),
        Expr::Jump { expr, .. } => {
            if let Some(x) = expr {
                scan_expr(x, in_loop, sink);
            }
        }
    }
}

fn scan_block(b: &crate::syntax::Block, in_loop: bool, sink: &mut impl FnMut(&Expr)) {
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let { init, els, .. } => {
                if let Some(e) = init {
                    scan_expr(e, in_loop, sink);
                }
                if let Some(eb) = els {
                    scan_block(eb, in_loop, sink);
                }
            }
            Stmt::Expr(e) => scan_expr(e, in_loop, sink),
            Stmt::Item(item) => scan_item(item, sink),
        }
    }
}

/// Items reset the loop context: a `fn` defined inside a loop body does
/// not run per iteration by virtue of its position.
fn scan_item(item: &Item, sink: &mut impl FnMut(&Expr)) {
    if item.is_test_only() {
        return;
    }
    if let Some(init) = &item.init {
        scan_expr(init, false, sink);
    }
    if let Some(body) = &item.body {
        scan_block(body, false, sink);
    }
    for child in &item.children {
        scan_item(child, sink);
    }
}

/// Runs `sink` over every expression that executes inside a loop body
/// of `file`, skipping test items.
fn in_loop_exprs(file: &SourceFile, sink: &mut impl FnMut(&Expr)) {
    for item in &file.ast.items {
        scan_item(item, sink);
    }
}

/// Flags allocating expressions inside loop bodies.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    in_loop_exprs(file, &mut |e| {
        let (what, line) = match e {
            Expr::MacroCall { name, line, .. } if ALLOC_MACROS.contains(&name.as_str()) => {
                (format!("`{name}!`"), *line)
            }
            Expr::MethodCall { method, line, .. } if ALLOC_METHODS.contains(&method.as_str()) => {
                (format!("`.{method}()`"), *line)
            }
            _ => match ctor_path(e, ALLOC_TYPES) {
                Some((ty, ctor, line)) => (format!("`{ty}::{ctor}`"), line),
                None => return,
            },
        };
        out.push(file.diag(
            line,
            LANE_LOOP_ALLOC,
            format!(
                "{what} allocates on every iteration of an enclosing loop in the \
                 warp hot path; hoist the buffer out of the loop or reuse a \
                 scratch field (see `LaneScratch`), so the steady state stays \
                 allocation-free"
            ),
        ));
    });
    out
}

/// Flags `BinaryHeap`/`VecDeque` construction inside loop bodies of the
/// core scheduler files. Test items are exempt (the wheel's own
/// differential test drives a reference `BinaryHeap` on purpose); real
/// scheduler state must justify itself with an
/// `allow(unbounded_queue_in_core)` marker.
pub fn check_queues(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    in_loop_exprs(file, &mut |e| {
        let Some((ty, ctor, line)) = ctor_path(e, QUEUE_TYPES) else {
            return;
        };
        out.push(file.diag(
            line,
            UNBOUNDED_QUEUE_IN_CORE,
            format!(
                "`{ty}::{ctor}` builds a comparison/deque queue inside a loop of the \
                 core scheduler; the calendar wheel (`EventWheel`) replaced exactly \
                 this structure in the per-cycle hot path — reuse it or a hoisted \
                 scratch queue instead"
            ),
        ));
    });
    out
}

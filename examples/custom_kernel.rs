//! Write your own kernel — the GPGPU programmer's use case: "GPGPU
//! programmers gain an effective way to investigate their GPGPU codes …
//! to optimize power consumption from a software perspective".
//!
//! Shows both authoring paths (textual assembly and the structured
//! builder) with the same SAXPY computation, then compares a
//! power-hungry divergent variant.
//!
//! ```text
//! cargo run --example custom_kernel
//! ```

use gpusimpow::Simulator;
use gpusimpow_isa::{assemble, CmpOp, KernelBuilder, LaunchConfig, Operand, Reg, SpecialReg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sim = Simulator::gt240()?;
    let n = 4096u32;

    // Device buffers through the host API.
    let x = sim.gpu_mut().alloc_f32(n);
    let y = sim.gpu_mut().alloc_f32(n);
    let xs: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let ys: Vec<f32> = (0..n).map(|i| (n - i) as f32).collect();
    sim.gpu_mut().h2d_f32(x, &xs);
    sim.gpu_mut().h2d_f32(y, &ys);

    // --- path 1: textual assembly ------------------------------------
    let saxpy_asm = assemble(
        "saxpy_asm",
        &format!(
            "
            s2r r0, tid.x
            s2r r1, ctaid.x
            s2r r2, ntid.x
            imad r3, r1, r2, r0
            shl r4, r3, #2
            ld.global r5, [r4+{x}]
            ld.global r6, [r4+{y}]
            ffma r7, r5, #2.5, r6     ; y = a*x + y
            st.global [r4+{y}], r7
            exit
        ",
            x = x.addr(),
            y = y.addr()
        ),
    )?;
    let launch = LaunchConfig::linear(n / 256, 256);
    let r1 = sim.run(&saxpy_asm, launch)?;
    println!(
        "saxpy (asm):      {:>6} cycles, {:>6.2} W total",
        r1.launch.stats.shader_cycles,
        r1.power.total_power().watts()
    );

    // --- path 2: the structured builder --------------------------------
    let mut b = KernelBuilder::new("saxpy_builder");
    let (tid, bid, ntid, gid, addr) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    b.imad(gid, bid, ntid, tid);
    b.shl(addr, gid, Operand::imm_u32(2));
    let (vx, vy) = (Reg(5), Reg(6));
    b.ld_global(vx, addr, x.addr() as i32);
    b.ld_global(vy, addr, y.addr() as i32);
    b.ffma(vy, vx, Operand::imm_f32(2.5), vy);
    b.st_global(vy, addr, y.addr() as i32);
    b.exit();
    let saxpy_built = b.build()?;
    let r2 = sim.run(&saxpy_built, launch)?;
    println!(
        "saxpy (builder):  {:>6} cycles, {:>6.2} W total",
        r2.launch.stats.shader_cycles,
        r2.power.total_power().watts()
    );

    // --- a divergent variant: what does branchiness cost? ----------------
    let mut b = KernelBuilder::new("saxpy_divergent");
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    b.imad(gid, bid, ntid, tid);
    b.shl(addr, gid, Operand::imm_u32(2));
    b.ld_global(vx, addr, x.addr() as i32);
    b.ld_global(vy, addr, y.addr() as i32);
    let odd = Reg(7);
    b.iand(odd, tid, Operand::imm_u32(1));
    b.isetp(CmpOp::Ne, odd, odd, Operand::imm_u32(0));
    b.if_then_else(
        odd,
        |b| {
            b.ffma(vy, vx, Operand::imm_f32(2.5), vy);
        },
        |b| {
            b.ffma(vy, vx, Operand::imm_f32(-2.5), vy);
        },
    );
    b.st_global(vy, addr, y.addr() as i32);
    b.exit();
    let divergent = b.build()?;
    let r3 = sim.run(&divergent, launch)?;
    println!(
        "saxpy (divergent):{:>6} cycles, {:>6.2} W total, {} divergent branches",
        r3.launch.stats.shader_cycles,
        r3.power.total_power().watts(),
        r3.launch.stats.divergent_branches
    );

    println!(
        "\nenergy: straight {:.1} µJ vs divergent {:.1} µJ",
        r2.power.energy().joules() * 1e6,
        r3.power.energy().joules() * 1e6
    );
    Ok(())
}

//! `bfs` (Rodinia): breadth-first search over a CSR graph.
//!
//! Two kernels per frontier level: `bfs1` expands the frontier (highly
//! divergent — each frontier node walks a different-length edge list),
//! `bfs2` folds the updating mask into the next frontier and raises the
//! continuation flag. The host loops until the frontier is empty, so
//! both kernels run several times (the paper averages power over the
//! invocations of a kernel).

use gpusimpow_isa::{CmpOp, KernelBuilder, LaunchConfig, Operand, Reg, SpecialReg};
use gpusimpow_sim::{Gpu, LaunchReport};

use crate::common::{check_u32, BenchError, Benchmark, Origin, XorShift};

const THREADS: u32 = 256;

/// The bfs benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Bfs {
    /// Node count (multiple of 256).
    pub nodes: u32,
    /// Average out-degree.
    pub degree: u32,
}

impl Default for Bfs {
    fn default() -> Self {
        Bfs {
            nodes: 2048,
            degree: 6,
        }
    }
}

/// A CSR graph.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Per-node first-edge offset (len = nodes + 1).
    pub offsets: Vec<u32>,
    /// Edge targets.
    pub edges: Vec<u32>,
}

/// Builds a connected-ish random graph (seeded, deterministic).
pub fn random_graph(nodes: u32, degree: u32, seed: u64) -> Graph {
    let mut rng = XorShift::new(seed);
    let mut offsets = Vec::with_capacity(nodes as usize + 1);
    let mut edges = Vec::new();
    offsets.push(0);
    for v in 0..nodes {
        let deg = 1 + rng.next_below(degree * 2 - 1);
        for _ in 0..deg {
            edges.push(rng.next_below(nodes));
        }
        // A ring edge keeps the graph connected so BFS reaches everything.
        edges.push((v + 1) % nodes);
        offsets.push(edges.len() as u32);
    }
    Graph { offsets, edges }
}

/// CPU reference BFS returning per-node cost (level), `u32::MAX` if
/// unreachable.
pub fn reference(graph: &Graph, source: u32) -> Vec<u32> {
    let n = graph.offsets.len() - 1;
    let mut cost = vec![u32::MAX; n];
    cost[source as usize] = 0;
    let mut frontier = vec![source];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            let (s, e) = (
                graph.offsets[v as usize] as usize,
                graph.offsets[v as usize + 1] as usize,
            );
            for &to in &graph.edges[s..e] {
                if cost[to as usize] == u32::MAX {
                    cost[to as usize] = cost[v as usize] + 1;
                    next.push(to);
                }
            }
        }
        frontier = next;
    }
    cost
}

impl Benchmark for Bfs {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn origin(&self) -> Origin {
        Origin::Rodinia
    }

    fn description(&self) -> &'static str {
        "Breadth-first search"
    }

    fn kernel_names(&self) -> Vec<String> {
        vec!["bfs1".to_string(), "bfs2".to_string()]
    }

    fn run(&self, gpu: &mut Gpu) -> Result<Vec<LaunchReport>, BenchError> {
        let n = self.nodes;
        assert!(n.is_multiple_of(THREADS));
        let graph = random_graph(n, self.degree, 0xBF5);

        let d_offsets = gpu.alloc_f32(n + 1);
        let d_edges = gpu.alloc_f32(graph.edges.len() as u32);
        let d_mask = gpu.alloc_f32(n);
        let d_updating = gpu.alloc_f32(n);
        let d_visited = gpu.alloc_f32(n);
        let d_cost = gpu.alloc_f32(n);
        let d_stop = gpu.alloc_f32(1);
        gpu.h2d_u32(d_offsets, &graph.offsets);
        gpu.h2d_u32(d_edges, &graph.edges);

        let source = 0u32;
        let mut mask = vec![0u32; n as usize];
        mask[source as usize] = 1;
        let mut visited = vec![0u32; n as usize];
        visited[source as usize] = 1;
        let mut cost = vec![u32::MAX; n as usize];
        cost[source as usize] = 0;
        gpu.h2d_u32(d_mask, &mask);
        gpu.h2d_u32(d_updating, &vec![0u32; n as usize]);
        gpu.h2d_u32(d_visited, &visited);
        gpu.h2d_u32(d_cost, &cost);

        let k1 = build_expand(
            d_offsets.addr(),
            d_edges.addr(),
            d_mask.addr(),
            d_updating.addr(),
            d_visited.addr(),
            d_cost.addr(),
            n,
        );
        let k2 = build_fold(
            d_mask.addr(),
            d_updating.addr(),
            d_visited.addr(),
            d_stop.addr(),
        );
        let launch = LaunchConfig::linear(n / THREADS, THREADS);
        let mut reports = Vec::new();
        // Frontier loop with a safety bound.
        for _level in 0..64 {
            reports.push(gpu.launch(&k1, launch)?);
            gpu.h2d_u32(d_stop, &[0]);
            reports.push(gpu.launch(&k2, launch)?);
            let stop = gpu.d2h_u32(d_stop, 1)[0];
            if stop == 0 {
                break;
            }
        }

        let got = gpu.d2h_u32(d_cost, n as usize);
        let want = reference(&graph, source);
        check_u32("bfs", &got, &want)?;
        Ok(reports)
    }
}

/// bfs1: expand the frontier.
#[allow(clippy::too_many_arguments)]
fn build_expand(
    offsets: u32,
    edges: u32,
    mask: u32,
    updating: u32,
    visited: u32,
    cost: u32,
    n: u32,
) -> gpusimpow_isa::Kernel {
    let mut k = KernelBuilder::new("bfs1");
    let tid = Reg(0);
    let bid = Reg(1);
    k.s2r(tid, SpecialReg::TidX);
    k.s2r(bid, SpecialReg::CtaIdX);
    let v = Reg(2);
    k.imad(v, bid, Operand::imm_u32(THREADS), tid);
    let inrange = Reg(3);
    k.isetp(CmpOp::Lt, inrange, v, Operand::imm_u32(n));
    k.if_then(inrange, |k| {
        let va = Reg(4);
        k.shl(va, v, Operand::imm_u32(2));
        let m = Reg(5);
        k.ld_global(m, va, mask as i32);
        k.if_then(m, |k| {
            // mask[v] = 0
            let zero = Reg(6);
            k.movi(zero, 0);
            k.st_global(zero, va, mask as i32);
            // my cost
            let my_cost = Reg(7);
            k.ld_global(my_cost, va, cost as i32);
            let new_cost = Reg(8);
            k.iadd(new_cost, my_cost, Operand::imm_u32(1));
            // edge range
            let e = Reg(9);
            let e_end = Reg(10);
            k.ld_global(e, va, offsets as i32);
            k.ld_global(e_end, va, offsets as i32 + 4);
            let cond = Reg(11);
            k.while_loop(
                |k| {
                    k.isetp(CmpOp::Lt, cond, e, e_end);
                    cond
                },
                |k| {
                    let ea = Reg(12);
                    k.shl(ea, e, Operand::imm_u32(2));
                    let to = Reg(13);
                    k.ld_global(to, ea, edges as i32);
                    let ta = Reg(14);
                    k.shl(ta, to, Operand::imm_u32(2));
                    let seen = Reg(15);
                    k.ld_global(seen, ta, visited as i32);
                    let unseen = Reg(16);
                    k.isetp(CmpOp::Eq, unseen, seen, Operand::imm_u32(0));
                    k.if_then(unseen, |k| {
                        k.st_global(new_cost, ta, cost as i32);
                        let one = Reg(17);
                        k.movi(one, 1);
                        k.st_global(one, ta, updating as i32);
                    });
                    k.iadd(e, e, Operand::imm_u32(1));
                },
            );
        });
    });
    k.exit();
    k.build().expect("bfs1 kernel is valid")
}

/// bfs2: fold the updating mask into the frontier.
fn build_fold(mask: u32, updating: u32, visited: u32, stop: u32) -> gpusimpow_isa::Kernel {
    let mut k = KernelBuilder::new("bfs2");
    let tid = Reg(0);
    let bid = Reg(1);
    k.s2r(tid, SpecialReg::TidX);
    k.s2r(bid, SpecialReg::CtaIdX);
    let v = Reg(2);
    k.imad(v, bid, Operand::imm_u32(THREADS), tid);
    let va = Reg(3);
    k.shl(va, v, Operand::imm_u32(2));
    let u = Reg(4);
    k.ld_global(u, va, updating as i32);
    k.if_then(u, |k| {
        let one = Reg(5);
        k.movi(one, 1);
        k.st_global(one, va, mask as i32);
        k.st_global(one, va, visited as i32);
        let zero = Reg(6);
        k.movi(zero, 0);
        k.st_global(zero, va, updating as i32);
        // stop flag: benign racy write of 1
        let sa = Reg(7);
        k.movi(sa, stop);
        k.st_global(one, sa, 0);
    });
    k.exit();
    k.build().expect("bfs2 kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusimpow_sim::GpuConfig;

    #[test]
    fn reference_bfs_on_ring() {
        let g = Graph {
            offsets: vec![0, 1, 2, 3, 4],
            edges: vec![1, 2, 3, 0],
        };
        assert_eq!(reference(&g, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn random_graph_is_well_formed() {
        let g = random_graph(256, 4, 1);
        assert_eq!(g.offsets.len(), 257);
        assert!(g.edges.iter().all(|&e| e < 256));
        assert!(
            g.offsets.windows(2).all(|w| w[0] < w[1],),
            "every node has at least one edge"
        );
    }

    #[test]
    fn runs_and_verifies_on_gt240() {
        let mut gpu = Gpu::new(GpuConfig::gt240()).unwrap();
        let reports = Bfs {
            nodes: 512,
            degree: 4,
        }
        .run(&mut gpu)
        .unwrap();
        assert!(reports.len() >= 4, "several frontier levels");
        let expand = &reports[0].stats;
        assert!(expand.divergent_branches > 0, "bfs is divergence-heavy");
    }
}

//! Textual assembler and disassembler for the SIMT ISA.
//!
//! The assembly syntax mirrors the instruction set one-to-one:
//!
//! ```text
//! ; vectoradd: out[i] = a[i] + b[i]
//! .regs 8            ; optional, inferred if omitted
//! .smem 0
//! .const 0 4096 8192 ; constant bank words
//!     s2r   r0, tid.x
//!     s2r   r1, ctaid.x
//!     s2r   r2, ntid.x
//!     imad  r3, r1, r2, r0
//!     shl   r4, r3, #2
//!     ld.global r5, [r4+0]
//!     st.global [r4+4096], r5
//!     bra   r5, @skip, @skip
//! @skip:
//!     exit
//! ```
//!
//! Labels are `@name:` definitions and `@name` references; branches take
//! `cond, @target, @reconv` with a `.z` suffix for branch-if-zero.

use std::collections::BTreeMap;
use std::fmt;

use crate::instr::{CmpOp, FpOp, Instr, IntOp, MemSpace, Operand, Reg, SfuOp, SpecialReg};
use crate::kernel::{Kernel, KernelError};

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

impl From<KernelError> for AsmError {
    fn from(e: KernelError) -> Self {
        AsmError {
            line: 0,
            message: e.to_string(),
        }
    }
}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// Assembles `source` into a [`Kernel`] named `name`.
///
/// # Errors
///
/// Returns an [`AsmError`] locating the first syntax problem, or a wrapped
/// [`KernelError`] if the assembled kernel fails validation.
///
/// # Examples
///
/// ```
/// use gpusimpow_isa::asm::assemble;
///
/// let k = assemble("copy", "
///     s2r r0, tid.x
///     shl r1, r0, #2
///     ld.global r2, [r1+0]
///     st.global [r1+256], r2
///     exit
/// ")?;
/// assert_eq!(k.code().len(), 5);
/// # Ok::<(), gpusimpow_isa::asm::AsmError>(())
/// ```
pub fn assemble(name: &str, source: &str) -> Result<Kernel, AsmError> {
    let mut parser = Parser::new();
    for (idx, raw) in source.lines().enumerate() {
        parser.line(idx + 1, raw)?;
    }
    parser.finish(name)
}

/// A pending label reference in a branch/jump.
#[derive(Debug)]
enum PendingRef {
    BraTarget(String),
    BraReconv(String),
    Jmp(String),
}

#[derive(Debug)]
struct Parser {
    code: Vec<Instr>,
    pending: Vec<(usize, usize, PendingRef)>, // (line, code index, ref)
    labels: BTreeMap<String, u32>,
    regs: Option<u8>,
    smem: u32,
    consts: Vec<u32>,
}

impl Parser {
    fn new() -> Self {
        Parser {
            code: Vec::new(),
            pending: Vec::new(),
            labels: BTreeMap::new(),
            regs: None,
            smem: 0,
            consts: Vec::new(),
        }
    }

    fn line(&mut self, lno: usize, raw: &str) -> Result<(), AsmError> {
        let text = match raw.split(';').next() {
            Some(t) => t.trim(),
            None => return Ok(()),
        };
        if text.is_empty() {
            return Ok(());
        }
        if let Some(label) = text.strip_prefix('@') {
            let label = label
                .strip_suffix(':')
                .ok_or_else(|| err(lno, "label definition must end with ':'"))?;
            if self
                .labels
                .insert(label.to_string(), self.code.len() as u32)
                .is_some()
            {
                return Err(err(lno, format!("label @{label} defined twice")));
            }
            return Ok(());
        }
        if let Some(rest) = text.strip_prefix('.') {
            return self.directive(lno, rest);
        }
        self.instruction(lno, text)
    }

    fn directive(&mut self, lno: usize, text: &str) -> Result<(), AsmError> {
        let mut parts = text.split_whitespace();
        match parts.next() {
            Some("regs") => {
                let n: u8 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err(lno, ".regs needs a count"))?;
                self.regs = Some(n);
            }
            Some("smem") => {
                let n: u32 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err(lno, ".smem needs a byte count"))?;
                self.smem = n;
            }
            Some("const") => {
                for word in parts {
                    let v: u32 = word
                        .parse()
                        .map_err(|_| err(lno, format!("bad constant word `{word}`")))?;
                    self.consts.push(v);
                }
            }
            Some(other) => return Err(err(lno, format!("unknown directive .{other}"))),
            None => return Err(err(lno, "empty directive")),
        }
        Ok(())
    }

    fn instruction(&mut self, lno: usize, text: &str) -> Result<(), AsmError> {
        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(i) => (&text[..i], text[i..].trim()),
            None => (text, ""),
        };
        let ops: Vec<String> = if rest.is_empty() {
            vec![]
        } else {
            split_operands(rest)
        };
        let at = self.code.len();
        let instr = match mnemonic {
            "iadd" => self.int3(lno, &ops, IntOp::Add)?,
            "isub" => self.int3(lno, &ops, IntOp::Sub)?,
            "imul" => self.int3(lno, &ops, IntOp::Mul)?,
            "imin" => self.int3(lno, &ops, IntOp::Min)?,
            "imax" => self.int3(lno, &ops, IntOp::Max)?,
            "and" => self.int3(lno, &ops, IntOp::And)?,
            "or" => self.int3(lno, &ops, IntOp::Or)?,
            "xor" => self.int3(lno, &ops, IntOp::Xor)?,
            "shl" => self.int3(lno, &ops, IntOp::Shl)?,
            "shr" => self.int3(lno, &ops, IntOp::Shr)?,
            "sra" => self.int3(lno, &ops, IntOp::Sra)?,
            "imad" => {
                let (dst, a, b, c) = self.quad(lno, &ops)?;
                Instr::IMad { dst, a, b, c }
            }
            "fadd" => self.fp3(lno, &ops, FpOp::Add)?,
            "fsub" => self.fp3(lno, &ops, FpOp::Sub)?,
            "fmul" => self.fp3(lno, &ops, FpOp::Mul)?,
            "fmin" => self.fp3(lno, &ops, FpOp::Min)?,
            "fmax" => self.fp3(lno, &ops, FpOp::Max)?,
            "ffma" => {
                let (dst, a, b, c) = self.quad(lno, &ops)?;
                Instr::FFma { dst, a, b, c }
            }
            "rcp" | "sqrt" | "rsqrt" | "sin" | "cos" | "ex2" | "lg2" => {
                let op = match mnemonic {
                    "rcp" => SfuOp::Rcp,
                    "sqrt" => SfuOp::Sqrt,
                    "rsqrt" => SfuOp::Rsqrt,
                    "sin" => SfuOp::Sin,
                    "cos" => SfuOp::Cos,
                    "ex2" => SfuOp::Ex2,
                    _ => SfuOp::Lg2,
                };
                let (dst, a) = self.pair(lno, &ops)?;
                Instr::Sfu { op, dst, a }
            }
            m if m.starts_with("isetp.") || m.starts_with("fsetp.") => {
                let cmp = parse_cmp(lno, &m[6..])?;
                let (dst, a, b) = self.triple(lno, &ops)?;
                if m.starts_with('i') {
                    Instr::ISetp { op: cmp, dst, a, b }
                } else {
                    Instr::FSetp { op: cmp, dst, a, b }
                }
            }
            "i2f" => {
                let (dst, a) = self.pair(lno, &ops)?;
                Instr::I2F { dst, a }
            }
            "f2i" => {
                let (dst, a) = self.pair(lno, &ops)?;
                Instr::F2I { dst, a }
            }
            "mov" => {
                let (dst, src) = self.pair(lno, &ops)?;
                Instr::Mov { dst, src }
            }
            "sel" => {
                let (dst, cond, a, b) = self.quad(lno, &ops)?;
                let cond = match cond {
                    Operand::Reg(r) => r,
                    Operand::Imm(_) => return Err(err(lno, "sel condition must be a register")),
                };
                Instr::Sel { dst, cond, a, b }
            }
            "s2r" => {
                let dst = parse_reg(lno, ops.first().map(String::as_str).unwrap_or(""))?;
                let sr = parse_special(lno, ops.get(1).map(String::as_str).unwrap_or(""))?;
                Instr::S2R { dst, sr }
            }
            "ld.global" | "ld.shared" | "ld.const" => {
                let space = parse_space(&mnemonic[3..]);
                let dst = parse_reg(lno, ops.first().map(String::as_str).unwrap_or(""))?;
                let (addr, offset) = parse_mem(lno, ops.get(1).map(String::as_str).unwrap_or(""))?;
                Instr::Ld {
                    space,
                    dst,
                    addr,
                    offset,
                }
            }
            "st.global" | "st.shared" => {
                let space = parse_space(&mnemonic[3..]);
                let (addr, offset) = parse_mem(lno, ops.first().map(String::as_str).unwrap_or(""))?;
                let src = parse_reg(lno, ops.get(1).map(String::as_str).unwrap_or(""))?;
                Instr::St {
                    space,
                    src,
                    addr,
                    offset,
                }
            }
            "bra" | "bra.z" => {
                let cond = parse_reg(lno, ops.first().map(String::as_str).unwrap_or(""))?;
                let target = parse_label(lno, ops.get(1).map(String::as_str).unwrap_or(""))?;
                let reconv = parse_label(lno, ops.get(2).map(String::as_str).unwrap_or(""))?;
                self.pending.push((lno, at, PendingRef::BraTarget(target)));
                self.pending.push((lno, at, PendingRef::BraReconv(reconv)));
                Instr::Bra {
                    cond,
                    negate: mnemonic.ends_with(".z"),
                    target: u32::MAX,
                    reconv: u32::MAX,
                }
            }
            "jmp" => {
                let target = parse_label(lno, ops.first().map(String::as_str).unwrap_or(""))?;
                self.pending.push((lno, at, PendingRef::Jmp(target)));
                Instr::Jmp { target: u32::MAX }
            }
            "bar" => Instr::Bar,
            "exit" => Instr::Exit,
            "nop" => Instr::Nop,
            other => return Err(err(lno, format!("unknown mnemonic `{other}`"))),
        };
        self.code.push(instr);
        Ok(())
    }

    fn pair(&self, lno: usize, ops: &[String]) -> Result<(Reg, Operand), AsmError> {
        if ops.len() != 2 {
            return Err(err(lno, "expected 2 operands"));
        }
        Ok((parse_reg(lno, &ops[0])?, parse_operand(lno, &ops[1])?))
    }

    fn triple(&self, lno: usize, ops: &[String]) -> Result<(Reg, Operand, Operand), AsmError> {
        if ops.len() != 3 {
            return Err(err(lno, "expected 3 operands"));
        }
        Ok((
            parse_reg(lno, &ops[0])?,
            parse_operand(lno, &ops[1])?,
            parse_operand(lno, &ops[2])?,
        ))
    }

    fn quad(
        &self,
        lno: usize,
        ops: &[String],
    ) -> Result<(Reg, Operand, Operand, Operand), AsmError> {
        if ops.len() != 4 {
            return Err(err(lno, "expected 4 operands"));
        }
        Ok((
            parse_reg(lno, &ops[0])?,
            parse_operand(lno, &ops[1])?,
            parse_operand(lno, &ops[2])?,
            parse_operand(lno, &ops[3])?,
        ))
    }

    fn int3(&self, lno: usize, ops: &[String], op: IntOp) -> Result<Instr, AsmError> {
        let (dst, a, b) = self.triple(lno, ops)?;
        Ok(Instr::IAlu { op, dst, a, b })
    }

    fn fp3(&self, lno: usize, ops: &[String], op: FpOp) -> Result<Instr, AsmError> {
        let (dst, a, b) = self.triple(lno, ops)?;
        Ok(Instr::FAlu { op, dst, a, b })
    }

    fn finish(mut self, name: &str) -> Result<Kernel, AsmError> {
        for (lno, at, pend) in std::mem::take(&mut self.pending) {
            let resolve = |label: &str| -> Result<u32, AsmError> {
                self.labels
                    .get(label)
                    .copied()
                    .ok_or_else(|| err(lno, format!("undefined label @{label}")))
            };
            match (&mut self.code[at], pend) {
                (Instr::Bra { target, .. }, PendingRef::BraTarget(l)) => *target = resolve(&l)?,
                (Instr::Bra { reconv, .. }, PendingRef::BraReconv(l)) => *reconv = resolve(&l)?,
                (Instr::Jmp { target }, PendingRef::Jmp(l)) => *target = resolve(&l)?,
                _ => unreachable!("pending ref does not match instruction"),
            }
        }
        let max_reg = self
            .code
            .iter()
            .flat_map(|i| i.srcs().into_iter().chain(i.dst()))
            .map(|r| r.0)
            .max()
            .unwrap_or(0);
        let regs = self.regs.unwrap_or(max_reg + 1).max(max_reg + 1);
        Ok(Kernel::new(name, self.code, regs, self.smem, self.consts)?)
    }
}

fn split_operands(rest: &str) -> Vec<String> {
    // Split on commas that are not inside a [..] memory operand.
    let mut out = Vec::new();
    let mut depth = 0;
    let mut cur = String::new();
    for c in rest.chars() {
        match c {
            '[' => {
                depth += 1;
                cur.push(c);
            }
            ']' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur = String::new();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn parse_reg(lno: usize, s: &str) -> Result<Reg, AsmError> {
    s.strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .map(Reg)
        .ok_or_else(|| err(lno, format!("expected register, found `{s}`")))
}

fn parse_operand(lno: usize, s: &str) -> Result<Operand, AsmError> {
    if let Some(imm) = s.strip_prefix('#') {
        if let Some(hex) = imm.strip_prefix("0x") {
            return u32::from_str_radix(hex, 16)
                .map(Operand::Imm)
                .map_err(|_| err(lno, format!("bad hex immediate `{s}`")));
        }
        if imm.contains('.') || imm.ends_with('f') {
            let f: f32 = imm
                .trim_end_matches('f')
                .parse()
                .map_err(|_| err(lno, format!("bad float immediate `{s}`")))?;
            return Ok(Operand::imm_f32(f));
        }
        if let Ok(v) = imm.parse::<i64>() {
            if (i32::MIN as i64..=u32::MAX as i64).contains(&v) {
                return Ok(Operand::Imm(v as u32));
            }
        }
        return Err(err(lno, format!("bad immediate `{s}`")));
    }
    parse_reg(lno, s).map(Operand::Reg)
}

fn parse_label(lno: usize, s: &str) -> Result<String, AsmError> {
    s.strip_prefix('@')
        .map(str::to_string)
        .ok_or_else(|| err(lno, format!("expected @label, found `{s}`")))
}

fn parse_space(s: &str) -> MemSpace {
    match s {
        "global" => MemSpace::Global,
        "shared" => MemSpace::Shared,
        _ => MemSpace::Const,
    }
}

fn parse_mem(lno: usize, s: &str) -> Result<(Reg, i32), AsmError> {
    let inner = s
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err(lno, format!("expected [reg+offset], found `{s}`")))?;
    if let Some(pos) = inner.rfind(['+', '-']) {
        if pos > 0 {
            let reg = parse_reg(lno, inner[..pos].trim())?;
            let off: i32 = inner[pos..]
                .trim()
                .parse()
                .map_err(|_| err(lno, format!("bad offset in `{s}`")))?;
            return Ok((reg, off));
        }
    }
    Ok((parse_reg(lno, inner.trim())?, 0))
}

fn parse_cmp(lno: usize, s: &str) -> Result<CmpOp, AsmError> {
    Ok(match s {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        other => return Err(err(lno, format!("unknown comparison `{other}`"))),
    })
}

/// Disassembles a kernel back into the assembly syntax accepted by
/// [`assemble`]. Round-tripping is lossless up to label naming.
pub fn disassemble(kernel: &Kernel) -> String {
    use std::collections::BTreeSet;
    let mut targets = BTreeSet::new();
    for instr in kernel.code() {
        match *instr {
            Instr::Bra { target, reconv, .. } => {
                targets.insert(target);
                targets.insert(reconv);
            }
            Instr::Jmp { target } => {
                targets.insert(target);
            }
            _ => {}
        }
    }
    let label = |pc: u32| format!("@L{pc}");
    let mut out = String::new();
    out.push_str(&format!("; kernel {}\n", kernel.name()));
    out.push_str(&format!(".regs {}\n", kernel.num_regs()));
    if kernel.smem_bytes() > 0 {
        out.push_str(&format!(".smem {}\n", kernel.smem_bytes()));
    }
    if !kernel.const_words().is_empty() {
        out.push_str(".const");
        for w in kernel.const_words() {
            out.push_str(&format!(" {w}"));
        }
        out.push('\n');
    }
    for (pc, instr) in kernel.code().iter().enumerate() {
        let pc = pc as u32;
        if targets.contains(&pc) {
            out.push_str(&format!("{}:\n", label(pc)));
        }
        out.push_str("    ");
        out.push_str(&format_instr(instr, &label));
        out.push('\n');
    }
    if targets.contains(&(kernel.code().len() as u32)) {
        out.push_str(&format!("{}:\n", label(kernel.code().len() as u32)));
        out.push_str("    nop\n");
    }
    out
}

fn format_instr(instr: &Instr, label: &dyn Fn(u32) -> String) -> String {
    fn cmp(op: CmpOp) -> &'static str {
        match op {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }
    match *instr {
        Instr::IAlu { op, dst, a, b } => {
            let m = match op {
                IntOp::Add => "iadd",
                IntOp::Sub => "isub",
                IntOp::Mul => "imul",
                IntOp::Min => "imin",
                IntOp::Max => "imax",
                IntOp::And => "and",
                IntOp::Or => "or",
                IntOp::Xor => "xor",
                IntOp::Shl => "shl",
                IntOp::Shr => "shr",
                IntOp::Sra => "sra",
            };
            format!("{m} {dst}, {a}, {b}")
        }
        Instr::IMad { dst, a, b, c } => format!("imad {dst}, {a}, {b}, {c}"),
        Instr::FAlu { op, dst, a, b } => {
            let m = match op {
                FpOp::Add => "fadd",
                FpOp::Sub => "fsub",
                FpOp::Mul => "fmul",
                FpOp::Min => "fmin",
                FpOp::Max => "fmax",
            };
            format!("{m} {dst}, {a}, {b}")
        }
        Instr::FFma { dst, a, b, c } => format!("ffma {dst}, {a}, {b}, {c}"),
        Instr::Sfu { op, dst, a } => {
            let m = match op {
                SfuOp::Rcp => "rcp",
                SfuOp::Sqrt => "sqrt",
                SfuOp::Rsqrt => "rsqrt",
                SfuOp::Sin => "sin",
                SfuOp::Cos => "cos",
                SfuOp::Ex2 => "ex2",
                SfuOp::Lg2 => "lg2",
            };
            format!("{m} {dst}, {a}")
        }
        Instr::ISetp { op, dst, a, b } => format!("isetp.{} {dst}, {a}, {b}", cmp(op)),
        Instr::FSetp { op, dst, a, b } => format!("fsetp.{} {dst}, {a}, {b}", cmp(op)),
        Instr::I2F { dst, a } => format!("i2f {dst}, {a}"),
        Instr::F2I { dst, a } => format!("f2i {dst}, {a}"),
        Instr::Mov { dst, src } => format!("mov {dst}, {src}"),
        Instr::Sel { dst, cond, a, b } => format!("sel {dst}, {cond}, {a}, {b}"),
        Instr::S2R { dst, sr } => {
            let name = match sr {
                SpecialReg::TidX => "tid.x",
                SpecialReg::TidY => "tid.y",
                SpecialReg::CtaIdX => "ctaid.x",
                SpecialReg::CtaIdY => "ctaid.y",
                SpecialReg::NTidX => "ntid.x",
                SpecialReg::NTidY => "ntid.y",
                SpecialReg::NCtaIdX => "nctaid.x",
                SpecialReg::NCtaIdY => "nctaid.y",
            };
            format!("s2r {dst}, {name}")
        }
        Instr::Ld {
            space,
            dst,
            addr,
            offset,
        } => {
            let s = match space {
                MemSpace::Global => "global",
                MemSpace::Shared => "shared",
                MemSpace::Const => "const",
            };
            format!("ld.{s} {dst}, [{addr}{offset:+}]")
        }
        Instr::St {
            space,
            src,
            addr,
            offset,
        } => {
            let s = match space {
                MemSpace::Global => "global",
                MemSpace::Shared => "shared",
                MemSpace::Const => "const",
            };
            format!("st.{s} [{addr}{offset:+}], {src}")
        }
        Instr::Bra {
            cond,
            negate,
            target,
            reconv,
        } => {
            let m = if negate { "bra.z" } else { "bra" };
            format!("{m} {cond}, {}, {}", label(target), label(reconv))
        }
        Instr::Jmp { target } => format!("jmp {}", label(target)),
        Instr::Bar => "bar".to_string(),
        Instr::Exit => "exit".to_string(),
        Instr::Nop => "nop".to_string(),
    }
}

fn parse_special(lno: usize, s: &str) -> Result<SpecialReg, AsmError> {
    Ok(match s {
        "tid.x" => SpecialReg::TidX,
        "tid.y" => SpecialReg::TidY,
        "ctaid.x" => SpecialReg::CtaIdX,
        "ctaid.y" => SpecialReg::CtaIdY,
        "ntid.x" => SpecialReg::NTidX,
        "ntid.y" => SpecialReg::NTidY,
        "nctaid.x" => SpecialReg::NCtaIdX,
        "nctaid.y" => SpecialReg::NCtaIdY,
        other => return Err(err(lno, format!("unknown special register `{other}`"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_arithmetic_and_memory() {
        let k = assemble(
            "t",
            "
            s2r r0, tid.x
            shl r1, r0, #2
            ld.global r2, [r1+0]
            fadd r3, r2, #1.5
            st.global [r1+1024], r3
            exit
        ",
        )
        .unwrap();
        assert_eq!(k.code().len(), 6);
        match k.code()[3] {
            Instr::FAlu {
                op: FpOp::Add,
                b: Operand::Imm(bits),
                ..
            } => assert_eq!(f32::from_bits(bits), 1.5),
            ref other => panic!("expected fadd, got {other:?}"),
        }
    }

    #[test]
    fn labels_and_branches_resolve() {
        let k = assemble(
            "t",
            "
            mov r0, #3
        @top:
            isub r0, r0, #1
            isetp.gt r1, r0, #0
            bra r1, @top, @done
        @done:
            exit
        ",
        )
        .unwrap();
        match k.code()[3] {
            Instr::Bra { target, reconv, .. } => {
                assert_eq!(target, 1, "@top is after the mov");
                assert_eq!(reconv, 4, "@done is the exit");
            }
            ref other => panic!("expected bra, got {other:?}"),
        }
    }

    #[test]
    fn directives_are_applied() {
        let k = assemble(
            "t",
            "
            .regs 16
            .smem 512
            .const 10 20 30
            exit
        ",
        )
        .unwrap();
        assert_eq!(k.num_regs(), 16);
        assert_eq!(k.smem_bytes(), 512);
        assert_eq!(k.const_words(), &[10, 20, 30]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("t", "nop\nbogus r1, r2\nexit").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let e = assemble("t", "jmp @nowhere\nexit").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let e = assemble("t", "@a:\nnop\n@a:\nexit").unwrap_err();
        assert!(e.message.contains("twice"));
    }

    #[test]
    fn negative_offsets_parse() {
        let k = assemble("t", "ld.shared r1, [r0-8]\nexit").unwrap();
        match k.code()[0] {
            Instr::Ld { offset, .. } => assert_eq!(offset, -8),
            ref other => panic!("expected load, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip_through_disassembler() {
        let source = "
            s2r r0, tid.x
            isetp.lt r1, r0, #16
            bra.z r1, @end, @end
            ffma r2, r0, r0, #2.0
            sin r3, r2
            st.shared [r0+0], r3
            bar
        @end:
            exit
        ";
        let k1 = assemble("t", source).unwrap();
        let text = disassemble(&k1);
        let k2 = assemble("t", &text).unwrap();
        assert_eq!(k1.code(), k2.code());
        assert_eq!(k1.num_regs(), k2.num_regs());
    }

    #[test]
    fn hex_immediates() {
        let k = assemble("t", "mov r0, #0xff\nexit").unwrap();
        match k.code()[0] {
            Instr::Mov {
                src: Operand::Imm(v),
                ..
            } => assert_eq!(v, 255),
            ref other => panic!("expected mov, got {other:?}"),
        }
    }

    #[test]
    fn validation_errors_propagate() {
        // Kernel without exit fails kernel validation, not parsing.
        let e = assemble("t", "nop").unwrap_err();
        assert!(e.message.contains("exit"));
    }
}

//! Data-acquisition model: an NI USB-6210 sampling the conditioned
//! signals at 31.2 kHz (paper §IV-A).
//!
//! 16-bit successive-approximation converter over a ±5 V range, with the
//! datasheet-grade errors the paper quotes: 0.0085 % gain accuracy and
//! 0.1 mV offset in the relevant −5 to 5 V range, plus one LSB of
//! sampling noise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gpusimpow_tech::units::Voltage;

/// Sampling rate used by the testbed.
pub const SAMPLE_RATE_HZ: f64 = 31_200.0;

/// Full-scale range of the configured input (±5 V).
const FULL_SCALE_V: f64 = 5.0;

/// One DAQ analog-input channel.
#[derive(Debug, Clone)]
pub struct DaqChannel {
    true_gain: f64,
    offset_v: f64,
    noise_v: f64,
    rng: StdRng,
}

impl DaqChannel {
    /// Builds a channel; part-to-part errors are drawn from `seed_rng`,
    /// per-sample noise from an internal stream.
    pub fn new(seed_rng: &mut StdRng) -> Self {
        DaqChannel {
            true_gain: 1.0 + seed_rng.gen_range(-0.000085..0.000085),
            offset_v: seed_rng.gen_range(-0.0001..0.0001),
            noise_v: FULL_SCALE_V / 32768.0, // ~1 LSB rms
            rng: StdRng::seed_from_u64(seed_rng.gen()),
        }
    }

    /// Samples an analog value: applies gain/offset error, adds noise,
    /// clips to the input range and quantizes to 16 bits.
    pub fn sample(&mut self, analog: Voltage) -> Voltage {
        let noisy = analog.volts() * self.true_gain
            + self.offset_v
            + self.rng.gen_range(-1.0f64..1.0) * self.noise_v;
        let clipped = noisy.clamp(-FULL_SCALE_V, FULL_SCALE_V);
        let lsb = 2.0 * FULL_SCALE_V / 65536.0;
        Voltage::new((clipped / lsb).round() * lsb)
    }
}

/// Samples a time-varying signal `f(t)` over `[t0, t1)` at the testbed
/// rate, returning `(timestamps, samples)`.
pub fn sample_window(
    channel: &mut DaqChannel,
    t0: f64,
    t1: f64,
    mut f: impl FnMut(f64) -> Voltage,
) -> (Vec<f64>, Vec<Voltage>) {
    let dt = 1.0 / SAMPLE_RATE_HZ;
    let mut ts = Vec::new();
    let mut vs = Vec::new();
    let mut t = (t0 / dt).ceil() * dt;
    while t < t1 {
        ts.push(t);
        vs.push(channel.sample(f(t)));
        t += dt;
    }
    (ts, vs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> DaqChannel {
        let mut rng = StdRng::seed_from_u64(99);
        DaqChannel::new(&mut rng)
    }

    #[test]
    fn dc_value_recovered_within_spec() {
        let mut ch = channel();
        let n = 1000;
        let mean: f64 = (0..n)
            .map(|_| ch.sample(Voltage::new(3.3)).volts())
            .sum::<f64>()
            / n as f64;
        // Gain 0.0085% of 3.3 V = 0.28 mV; offset 0.1 mV; noise averages out.
        assert!((mean - 3.3).abs() < 0.001, "mean {mean}");
    }

    #[test]
    fn quantization_is_16_bit() {
        let mut ch = channel();
        let v = ch.sample(Voltage::new(1.0)).volts();
        let lsb = 10.0 / 65536.0;
        let steps = v / lsb;
        assert!((steps - steps.round()).abs() < 1e-9, "not on the grid");
    }

    #[test]
    fn clipping_at_full_scale() {
        let mut ch = channel();
        let v = ch.sample(Voltage::new(9.0)).volts();
        assert!(v <= 5.0 + 1e-9);
    }

    #[test]
    fn window_sampling_at_configured_rate() {
        let mut ch = channel();
        let (ts, vs) = sample_window(&mut ch, 0.0, 0.1, |_| Voltage::new(1.0));
        assert_eq!(ts.len(), vs.len());
        let expected = (0.1 * SAMPLE_RATE_HZ) as usize;
        assert!((ts.len() as i64 - expected as i64).abs() <= 1);
        // Uniform spacing.
        let dt = ts[1] - ts[0];
        assert!((dt - 1.0 / SAMPLE_RATE_HZ).abs() < 1e-12);
    }

    #[test]
    fn short_transients_are_visible_at_31khz() {
        // The paper criticizes low-rate setups; at 31.2 kHz a 1 ms power
        // step yields ~31 samples.
        let mut ch = channel();
        let (ts, _) = sample_window(&mut ch, 0.0, 0.001, |_| Voltage::new(1.0));
        assert!(ts.len() >= 30, "{} samples in 1 ms", ts.len());
    }
}

//! Off-chip GDDR5 device power (paper §III-C5).
//!
//! "The power consumed by typical DDR or GDDR chips can be divided into
//! background, activate, read/write, termination, and refresh power" —
//! the Micron power-calculation methodology (paper refs. \[26\], \[27\])
//! applied to the command counts the simulator reports.

use gpusimpow_sim::{ActivityVector, EventKind, EventKind as Ev, GpuConfig};
use gpusimpow_tech::units::{Energy, Power, Time};

use crate::empirical;

/// Decomposed DRAM power for one kernel window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramPowerBreakdown {
    /// Standby power of all devices.
    pub background: Power,
    /// Row activate/precharge power.
    pub activate: Power,
    /// Read burst power.
    pub read: Power,
    /// Write burst power.
    pub write: Power,
    /// On-die termination power while the bus is driven.
    pub termination: Power,
    /// Refresh power.
    pub refresh: Power,
}

impl DramPowerBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> Power {
        self.background + self.activate + self.read + self.write + self.termination + self.refresh
    }
}

/// The GDDR5 memory-system power model.
#[derive(Debug, Clone)]
pub struct DramPower {
    channels: f64,
    background_per_channel: Power,
    activate_energy: Energy,
    read_energy: Energy,
    write_energy: Energy,
    refresh_energy: Energy,
    termination_active: Power,
}

impl DramPower {
    /// Builds the model for the configured channel count.
    pub fn new(cfg: &GpuConfig) -> Self {
        DramPower {
            channels: cfg.mem_channels as f64,
            background_per_channel: empirical::DRAM_BACKGROUND_PER_CHANNEL,
            activate_energy: empirical::DRAM_ACTIVATE_ENERGY,
            read_energy: empirical::DRAM_READ_BURST_ENERGY,
            write_energy: empirical::DRAM_WRITE_BURST_ENERGY,
            refresh_energy: empirical::DRAM_REFRESH_ENERGY,
            termination_active: empirical::DRAM_TERMINATION_ACTIVE,
        }
    }

    /// Registry events this model consumes (command counts priced per
    /// event plus the two cycle counters behind the bus-busy fraction).
    /// Feeds the registry-coverage test alongside the [`crate::registry::EnergyMap`]s.
    pub const EVENTS: &'static [EventKind] = &[
        Ev::DramActivates,
        Ev::DramReadBursts,
        Ev::DramWriteBursts,
        Ev::DramRefreshes,
        Ev::DramDataBusBusyCycles,
        Ev::DramCycles,
    ];

    /// Evaluates the Micron-style decomposition over a kernel of length
    /// `time` with the given command counts.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not positive.
    pub fn evaluate(&self, activity: &ActivityVector, time: Time) -> DramPowerBreakdown {
        assert!(time.seconds() > 0.0, "kernel window must have a duration");
        let per = |e: Energy, n: u64| -> Power { e * n as f64 / time };
        // Fraction of wall time any channel drives its data bus.
        let bus_busy = if activity[Ev::DramCycles] == 0 {
            0.0
        } else {
            (activity[Ev::DramDataBusBusyCycles] as f64
                / (activity[Ev::DramCycles] as f64 * self.channels))
                .min(1.0)
        };
        DramPowerBreakdown {
            background: self.background_per_channel * self.channels,
            activate: per(self.activate_energy, activity[Ev::DramActivates]),
            read: per(self.read_energy, activity[Ev::DramReadBursts]),
            write: per(self.write_energy, activity[Ev::DramWriteBursts]),
            termination: self.termination_active * (bus_busy * self.channels),
            refresh: per(self.refresh_energy, activity[Ev::DramRefreshes]),
        }
    }

    /// Background power alone (the static share of the DRAM).
    pub fn background(&self) -> Power {
        self.background_per_channel * self.channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusimpow_sim::GpuConfig;

    fn model() -> DramPower {
        DramPower::new(&GpuConfig::gt240())
    }

    #[test]
    fn idle_dram_burns_background_only() {
        let d = model();
        let b = d.evaluate(&ActivityVector::new(), Time::from_millis(1.0));
        assert_eq!(b.activate.watts(), 0.0);
        assert_eq!(b.read.watts(), 0.0);
        assert!((b.total() / d.background() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn heavier_traffic_more_power() {
        let d = model();
        let mut light = ActivityVector::new();
        light[Ev::DramActivates] = 100;
        light[Ev::DramReadBursts] = 1000;
        light[Ev::DramCycles] = 1_000_000;
        light[Ev::DramDataBusBusyCycles] = 2000;
        let mut heavy = light.clone();
        heavy[Ev::DramActivates] = 1000;
        heavy[Ev::DramReadBursts] = 10000;
        heavy[Ev::DramDataBusBusyCycles] = 20000;
        let t = Time::from_millis(1.0);
        assert!(d.evaluate(&heavy, t).total() > d.evaluate(&light, t).total());
    }

    #[test]
    fn streaming_workload_lands_in_watt_range() {
        // A fully-streaming GT240 kernel: 2 channels at ~full bus
        // utilization. Paper quotes 4.3 W for blackscholes-class traffic,
        // streaming kernels go higher.
        let d = model();
        let mut s = ActivityVector::new();
        s[Ev::DramCycles] = 850_000; // 1 ms at 850 MHz
        s[Ev::DramDataBusBusyCycles] = 2 * 700_000;
        s[Ev::DramReadBursts] = 350_000;
        s[Ev::DramActivates] = 22_000;
        s[Ev::DramRefreshes] = 400;
        let total = d.evaluate(&s, Time::from_millis(1.0)).total().watts();
        assert!(total > 2.0 && total < 15.0, "streaming DRAM {total} W");
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn zero_window_panics() {
        let _ = model().evaluate(&ActivityVector::new(), Time::ZERO);
    }
}

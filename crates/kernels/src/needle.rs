//! `needle` (Rodinia): Needleman-Wunsch sequence alignment.
//!
//! The DP matrix is processed in 16×16 tiles along anti-diagonals:
//! `needle1` covers the upper-left triangle of tiles, `needle2` the
//! lower-right. Each block stages its tile plus borders in shared memory
//! and sweeps an in-tile wavefront with a barrier per step — the most
//! synchronization-intensive kernel of the suite.

use gpusimpow_isa::{CmpOp, KernelBuilder, LaunchConfig, Operand, Reg, SpecialReg};
use gpusimpow_sim::{Gpu, LaunchReport};

use crate::common::{check_u32, BenchError, Benchmark, Origin, XorShift};

const B: u32 = 16;
const PENALTY: i32 = 10;

/// The needle benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Needle {
    /// Sequence length (multiple of 16).
    pub n: u32,
}

impl Default for Needle {
    fn default() -> Self {
        Needle { n: 64 }
    }
}

impl Benchmark for Needle {
    fn name(&self) -> &'static str {
        "needle"
    }

    fn origin(&self) -> Origin {
        Origin::Rodinia
    }

    fn description(&self) -> &'static str {
        "Needleman-Wunsch sequence alignment"
    }

    fn kernel_names(&self) -> Vec<String> {
        vec!["needle1".to_string(), "needle2".to_string()]
    }

    fn run(&self, gpu: &mut Gpu) -> Result<Vec<LaunchReport>, BenchError> {
        let n = self.n;
        assert!(n.is_multiple_of(B));
        let nb = n / B;
        let dim = n + 1;
        let mut rng = XorShift::new(0x4E);
        // Substitution scores in [-4, 4].
        let reference_scores: Vec<i32> = (0..n * n).map(|_| rng.next_below(9) as i32 - 4).collect();
        // DP matrix with the classic gap-penalty borders.
        let mut matrix = vec![0i32; (dim * dim) as usize];
        for i in 0..dim as usize {
            matrix[i * dim as usize] = -(i as i32) * PENALTY;
            matrix[i] = -(i as i32) * PENALTY;
        }

        let d_ref = gpu.alloc_f32(n * n);
        let d_m = gpu.alloc_f32(dim * dim);
        gpu.h2d_u32(
            d_ref,
            &reference_scores
                .iter()
                .map(|&v| v as u32)
                .collect::<Vec<_>>(),
        );
        gpu.h2d_u32(d_m, &matrix.iter().map(|&v| v as u32).collect::<Vec<_>>());

        let mut k1 = build_kernel("needle1", d_ref.addr(), d_m.addr(), n, nb, false);
        let mut k2 = build_kernel("needle2", d_ref.addr(), d_m.addr(), n, nb, true);
        let mut reports = Vec::new();
        // Upper-left diagonals: s = 0 .. nb-1 with s+1 tiles each.
        for s in 0..nb {
            k1.set_const_words(vec![s]);
            reports.push(gpu.launch(&k1, LaunchConfig::linear(s + 1, B))?);
        }
        // Lower-right diagonals: s = nb .. 2nb-2 with 2nb-1-s tiles each.
        for s in nb..(2 * nb - 1) {
            k2.set_const_words(vec![s]);
            reports.push(gpu.launch(&k2, LaunchConfig::linear(2 * nb - 1 - s, B))?);
        }

        let got: Vec<u32> = gpu.d2h_u32(d_m, (dim * dim) as usize);
        let want = reference_dp(&reference_scores, n);
        check_u32(
            "needle",
            &got,
            &want.iter().map(|&v| v as u32).collect::<Vec<_>>(),
        )?;
        Ok(reports)
    }
}

/// CPU reference DP.
pub fn reference_dp(scores: &[i32], n: u32) -> Vec<i32> {
    let dim = (n + 1) as usize;
    let mut m = vec![0i32; dim * dim];
    for i in 0..dim {
        m[i * dim] = -(i as i32) * PENALTY;
        m[i] = -(i as i32) * PENALTY;
    }
    for i in 1..dim {
        for j in 1..dim {
            let diag = m[(i - 1) * dim + j - 1] + scores[(i - 1) * n as usize + j - 1];
            let left = m[i * dim + j - 1] - PENALTY;
            let up = m[(i - 1) * dim + j] - PENALTY;
            m[i * dim + j] = diag.max(left).max(up);
        }
    }
    m
}

/// Builds the tile kernel. `lower` selects the lower-right tile mapping.
fn build_kernel(
    name: &str,
    score_base: u32,
    matrix_base: u32,
    n: u32,
    nb: u32,
    lower: bool,
) -> gpusimpow_isa::Kernel {
    let dim = n + 1;
    let mut k = KernelBuilder::new(name);
    // temp: (B+1)x(B+1) DP cells, sref: BxB scores.
    let temp = k.alloc_smem((B + 1) * (B + 1) * 4);
    let sref = k.alloc_smem(B * B * 4);
    k.push_consts(&[0]); // the anti-diagonal index s

    let tid = Reg(0);
    let bx = Reg(1);
    k.s2r(tid, SpecialReg::TidX);
    k.s2r(bx, SpecialReg::CtaIdX);
    let zero = Reg(2);
    k.movi(zero, 0);
    let s = Reg(3);
    k.ld_const(s, zero, 0);

    // Tile coordinates on the anti-diagonal.
    let tilex = Reg(4);
    let tiley = Reg(5);
    if lower {
        // tilex = s - (nb-1) + bx, tiley = nb-1 - bx
        k.isub(tilex, s, Operand::imm_u32(nb - 1));
        k.iadd(tilex, tilex, bx);
        k.isub(tiley, Operand::imm_u32(nb - 1), bx);
    } else {
        // tilex = bx, tiley = s - bx
        k.mov(tilex, bx);
        k.isub(tiley, s, bx);
    }
    // Top-left border cell of this tile in the global matrix.
    let tx0 = Reg(6);
    let ty0 = Reg(7);
    k.imul(tx0, tilex, Operand::imm_u32(B));
    k.imul(ty0, tiley, Operand::imm_u32(B));

    let tmp = Reg(8);
    let val = Reg(9);
    // Load the score tile: sref[r][tid] for r in 0..B.
    for r in 0..B {
        // g = ((ty0 + r) * n + tx0 + tid) * 4
        k.iadd(tmp, ty0, Operand::imm_u32(r));
        k.imul(tmp, tmp, Operand::imm_u32(n));
        k.iadd(tmp, tmp, tx0);
        k.iadd(tmp, tmp, tid);
        k.shl(tmp, tmp, Operand::imm_u32(2));
        k.ld_global(val, tmp, score_base as i32);
        let sa = Reg(10);
        k.movi(sa, sref + (r * B) * 4);
        k.shl(tmp, tid, Operand::imm_u32(2));
        k.iadd(sa, sa, tmp);
        k.st_shared(val, sa, 0);
    }
    // Borders: temp[0][tid] and temp[tid+1][0]; thread 0 adds temp[0][B].
    let ga = Reg(11);
    // temp[0][tid] = gm[ty0][tx0+tid]
    k.imul(ga, ty0, Operand::imm_u32(dim));
    k.iadd(ga, ga, tx0);
    k.iadd(ga, ga, tid);
    k.shl(ga, ga, Operand::imm_u32(2));
    k.ld_global(val, ga, matrix_base as i32);
    let sa = Reg(12);
    k.shl(sa, tid, Operand::imm_u32(2));
    k.iadd(sa, sa, Operand::imm_u32(temp));
    k.st_shared(val, sa, 0);
    // temp[tid+1][0] = gm[ty0+tid+1][tx0]
    k.iadd(ga, ty0, tid);
    k.iadd(ga, ga, Operand::imm_u32(1));
    k.imul(ga, ga, Operand::imm_u32(dim));
    k.iadd(ga, ga, tx0);
    k.shl(ga, ga, Operand::imm_u32(2));
    k.ld_global(val, ga, matrix_base as i32);
    k.iadd(tmp, tid, Operand::imm_u32(1));
    k.imul(tmp, tmp, Operand::imm_u32((B + 1) * 4));
    k.iadd(sa, tmp, Operand::imm_u32(temp));
    k.st_shared(val, sa, 0);
    // thread 0: temp[0][B] = gm[ty0][tx0+B]
    let is0 = Reg(13);
    k.isetp(CmpOp::Eq, is0, tid, Operand::imm_u32(0));
    k.if_then(is0, |k| {
        k.imul(ga, ty0, Operand::imm_u32(dim));
        k.iadd(ga, ga, tx0);
        k.iadd(ga, ga, Operand::imm_u32(B));
        k.shl(ga, ga, Operand::imm_u32(2));
        k.ld_global(val, ga, matrix_base as i32);
        k.movi(sa, temp + B * 4);
        k.st_shared(val, sa, 0);
    });
    k.bar();

    // Wavefront: for d in 0..2B-1, cell (x0, y0) = (tid, d - tid).
    let d = Reg(14);
    let dcond = Reg(15);
    k.for_range(
        d,
        dcond,
        Operand::imm_u32(0),
        Operand::imm_u32(2 * B - 1),
        1,
        |k| {
            let y0 = Reg(16);
            k.isub(y0, d, tid);
            let active = Reg(17);
            let in_hi = Reg(18);
            k.isetp(CmpOp::Ge, active, y0, Operand::imm_u32(0));
            k.isetp(CmpOp::Lt, in_hi, y0, Operand::imm_u32(B));
            k.iand(active, active, in_hi);
            k.if_then(active, |k| {
                // Addresses within temp: cell = temp[(y0+1)*(B+1) + tid+1].
                let cell = Reg(19);
                k.iadd(cell, y0, Operand::imm_u32(1));
                k.imul(cell, cell, Operand::imm_u32((B + 1) * 4));
                k.shl(tmp, tid, Operand::imm_u32(2));
                k.iadd(cell, cell, tmp);
                k.iadd(cell, cell, Operand::imm_u32(temp + 4));
                // diag = temp[y0][tid] + sref[y0][tid]
                let diag = Reg(20);
                let up_off = -((B as i32 + 1) * 4);
                k.ld_shared(diag, cell, up_off - 4);
                let sc = Reg(21);
                let scaddr = Reg(22);
                k.imul(scaddr, y0, Operand::imm_u32(B * 4));
                k.iadd(scaddr, scaddr, tmp);
                k.iadd(scaddr, scaddr, Operand::imm_u32(sref));
                k.ld_shared(sc, scaddr, 0);
                k.iadd(diag, diag, sc);
                // left = temp[y0+1][tid] - P, up = temp[y0][tid+1] - P
                let left = Reg(23);
                k.ld_shared(left, cell, -4);
                k.isub(left, left, Operand::imm_u32(PENALTY as u32));
                let up = Reg(24);
                k.ld_shared(up, cell, up_off);
                k.isub(up, up, Operand::imm_u32(PENALTY as u32));
                // cell = max3
                k.imax(diag, diag, left);
                k.imax(diag, diag, up);
                k.st_shared(diag, cell, 0);
            });
            k.bar();
        },
    );

    // Write the tile interior back: gm[ty0+1+r][tx0+1+tid].
    for r in 0..B {
        let sa2 = Reg(25);
        k.movi(sa2, temp + ((r + 1) * (B + 1) + 1) * 4);
        k.shl(tmp, tid, Operand::imm_u32(2));
        k.iadd(sa2, sa2, tmp);
        k.ld_shared(val, sa2, 0);
        k.iadd(ga, ty0, Operand::imm_u32(r + 1));
        k.imul(ga, ga, Operand::imm_u32(dim));
        k.iadd(ga, ga, tx0);
        k.iadd(ga, ga, tid);
        k.iadd(ga, ga, Operand::imm_u32(1));
        k.shl(ga, ga, Operand::imm_u32(2));
        k.st_global(val, ga, matrix_base as i32);
    }
    k.exit();
    k.build().expect("needle kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusimpow_sim::GpuConfig;

    #[test]
    fn reference_dp_on_identity_scores() {
        // With score +4 on the diagonal path and penalty 10, matching is
        // always preferred.
        let scores = vec![4i32; 4];
        let m = reference_dp(&scores, 2);
        // m[2][2] follows the diagonal twice: 8.
        assert_eq!(m[2 * 3 + 2], 8);
    }

    #[test]
    fn runs_and_verifies_on_gt240() {
        let mut gpu = Gpu::new(GpuConfig::gt240()).unwrap();
        let reports = Needle { n: 32 }.run(&mut gpu).unwrap();
        // nb = 2: diagonals s=0,1 (k1) and s=2 (k2): 3 launches.
        assert_eq!(reports.len(), 3);
        let s = &reports[0].stats;
        assert!(s.barrier_waits > 0, "wavefront barriers");
        assert!(s.smem_accesses > 0);
        assert!(s.divergent_branches > 0, "wavefront predicates diverge");
    }
}

//! `heartwall` (Rodinia): ultrasound image tracking.
//!
//! The full Rodinia application tracks dozens of heart-wall points
//! through an ultrasound sequence; its hot loop is template matching
//! around each tracking point. This reproduction implements that hot
//! loop: one block per tracking point, the point's template staged in
//! shared memory, each thread computing the sum of squared differences
//! (SSD) of the template at one displacement of the search window.
//! FP-heavy with nested loops and shared-memory reuse.

use gpusimpow_isa::{Dim2, KernelBuilder, LaunchConfig, Operand, Reg, SpecialReg};
use gpusimpow_sim::{Gpu, LaunchReport};

use crate::common::{check_f32, BenchError, Benchmark, Origin, XorShift};

/// Template edge length.
const TPL: u32 = 8;
/// Search-window edge (threads per block = SEARCH²).
const SEARCH: u32 = 16;

/// The heartwall benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Heartwall {
    /// Number of tracking points (= blocks).
    pub points: u32,
    /// Frame edge length.
    pub frame: u32,
}

impl Default for Heartwall {
    fn default() -> Self {
        Heartwall {
            points: 16,
            frame: 64,
        }
    }
}

impl Benchmark for Heartwall {
    fn name(&self) -> &'static str {
        "heartwall"
    }

    fn origin(&self) -> Origin {
        Origin::Rodinia
    }

    fn description(&self) -> &'static str {
        "Ultrasound image tracking"
    }

    fn kernel_names(&self) -> Vec<String> {
        vec!["heartwall".to_string()]
    }

    fn run(&self, gpu: &mut Gpu) -> Result<Vec<LaunchReport>, BenchError> {
        let (pts, frame) = (self.points, self.frame);
        assert!(frame >= SEARCH + TPL);
        let mut rng = XorShift::new(0x4EA);
        let image: Vec<f32> = (0..frame * frame)
            .map(|_| rng.next_range(0.0, 255.0))
            .collect();
        let templates: Vec<f32> = (0..pts * TPL * TPL)
            .map(|_| rng.next_range(0.0, 255.0))
            .collect();
        // Search-window origins, clamped inside the frame.
        let origins: Vec<(u32, u32)> = (0..pts)
            .map(|_| {
                (
                    rng.next_below(frame - SEARCH - TPL),
                    rng.next_below(frame - SEARCH - TPL),
                )
            })
            .collect();
        let origin_words: Vec<u32> = origins.iter().flat_map(|&(x, y)| [x, y]).collect();

        let d_image = gpu.alloc_f32(frame * frame);
        let d_tpl = gpu.alloc_f32(pts * TPL * TPL);
        let d_org = gpu.alloc_f32(pts * 2);
        let d_out = gpu.alloc_f32(pts * SEARCH * SEARCH);
        gpu.h2d_f32(d_image, &image);
        gpu.h2d_f32(d_tpl, &templates);
        gpu.h2d_u32(d_org, &origin_words);

        let kernel = build_kernel(
            d_image.addr(),
            d_tpl.addr(),
            d_org.addr(),
            d_out.addr(),
            frame,
        );
        let launch = LaunchConfig::new(Dim2::linear(pts), Dim2::xy(SEARCH, SEARCH));
        let report = gpu.launch(&kernel, launch)?;

        let got = gpu.d2h_f32(d_out, (pts * SEARCH * SEARCH) as usize);
        let want = reference(&image, &templates, &origins, frame);
        check_f32("heartwall", &got, &want, 1e-2)?;
        Ok(vec![report])
    }
}

/// CPU reference: SSD of each template at each displacement.
pub fn reference(image: &[f32], templates: &[f32], origins: &[(u32, u32)], frame: u32) -> Vec<f32> {
    let mut out = Vec::with_capacity(origins.len() * (SEARCH * SEARCH) as usize);
    for (p, &(ox, oy)) in origins.iter().enumerate() {
        for dy in 0..SEARCH {
            for dx in 0..SEARCH {
                let mut ssd = 0f32;
                for ty in 0..TPL {
                    for tx in 0..TPL {
                        let iv = image[((oy + dy + ty) * frame + ox + dx + tx) as usize];
                        let tv = templates[p * (TPL * TPL) as usize + (ty * TPL + tx) as usize];
                        let d = iv - tv;
                        ssd = d.mul_add(d, ssd);
                    }
                }
                out.push(ssd);
            }
        }
    }
    out
}

fn build_kernel(image: u32, tpl: u32, org: u32, out: u32, frame: u32) -> gpusimpow_isa::Kernel {
    let mut k = KernelBuilder::new("heartwall");
    let smem_tpl = k.alloc_smem(TPL * TPL * 4);

    let tx = Reg(0);
    let ty = Reg(1);
    let bid = Reg(2);
    k.s2r(tx, SpecialReg::TidX);
    k.s2r(ty, SpecialReg::TidY);
    k.s2r(bid, SpecialReg::CtaIdX);

    // Linear thread index; the first TPL*TPL threads stage the template.
    let lin = Reg(3);
    k.imad(lin, ty, Operand::imm_u32(SEARCH), tx);
    let stager = Reg(4);
    k.isetp(
        gpusimpow_isa::CmpOp::Lt,
        stager,
        lin,
        Operand::imm_u32(TPL * TPL),
    );
    let tmp = Reg(5);
    let val = Reg(6);
    k.if_then(stager, |k| {
        // tpl[bid*64 + lin]
        k.imad(tmp, bid, Operand::imm_u32(TPL * TPL), lin);
        k.shl(tmp, tmp, Operand::imm_u32(2));
        k.ld_global(val, tmp, tpl as i32);
        let sa = Reg(7);
        k.shl(sa, lin, Operand::imm_u32(2));
        k.iadd(sa, sa, Operand::imm_u32(smem_tpl));
        k.st_shared(val, sa, 0);
    });
    k.bar();

    // Window origin for this point.
    let ox = Reg(8);
    let oy = Reg(9);
    k.shl(tmp, bid, Operand::imm_u32(3)); // bid * 8 bytes
    k.ld_global(ox, tmp, org as i32);
    k.ld_global(oy, tmp, org as i32 + 4);

    // Base pixel of this thread's displacement.
    let px = Reg(10);
    let py = Reg(11);
    k.iadd(px, ox, tx);
    k.iadd(py, oy, ty);

    let ssd = Reg(12);
    k.movf(ssd, 0.0);
    let iv = Reg(13);
    let tv = Reg(14);
    let diff = Reg(15);
    let ia = Reg(16);
    let sa = Reg(17);
    for tyy in 0..TPL {
        for txx in 0..TPL {
            // iv = image[(py+tyy)*frame + px+txx]
            k.iadd(ia, py, Operand::imm_u32(tyy));
            k.imul(ia, ia, Operand::imm_u32(frame));
            k.iadd(ia, ia, px);
            k.iadd(ia, ia, Operand::imm_u32(txx));
            k.shl(ia, ia, Operand::imm_u32(2));
            k.ld_global(iv, ia, image as i32);
            // tv = smem_tpl[tyy*TPL + txx] (same address for the whole
            // warp: a broadcast)
            k.movi(sa, smem_tpl + (tyy * TPL + txx) * 4);
            k.ld_shared(tv, sa, 0);
            k.fsub(diff, iv, tv);
            k.ffma(ssd, diff, diff, ssd);
        }
    }
    // out[bid*256 + lin] = ssd
    k.imad(tmp, bid, Operand::imm_u32(SEARCH * SEARCH), lin);
    k.shl(tmp, tmp, Operand::imm_u32(2));
    k.st_global(ssd, tmp, out as i32);
    k.exit();
    k.build().expect("heartwall kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusimpow_sim::GpuConfig;

    #[test]
    fn reference_ssd_zero_at_perfect_match() {
        // Template cut from the image itself: SSD 0 at displacement (0,0).
        let frame = 32u32;
        let image: Vec<f32> = (0..frame * frame).map(|i| i as f32).collect();
        let mut tplv = Vec::new();
        for ty in 0..TPL {
            for tx in 0..TPL {
                tplv.push(image[(ty * frame + tx) as usize]);
            }
        }
        let out = reference(&image, &tplv, &[(0, 0)], frame);
        assert_eq!(out[0], 0.0);
        assert!(out[1] > 0.0);
    }

    #[test]
    fn runs_and_verifies_on_gt240() {
        let mut gpu = Gpu::new(GpuConfig::gt240()).unwrap();
        let reports = Heartwall {
            points: 4,
            frame: 48,
        }
        .run(&mut gpu)
        .unwrap();
        let s = &reports[0].stats;
        assert!(s.fp_lane_ops > 0);
        assert!(s.smem_accesses > 0, "template reads broadcast from smem");
    }
}

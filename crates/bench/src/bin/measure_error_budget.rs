//! §IV-A: error budget of the measurement chain.
//!
//! Usage: measure_error_budget [--threads N]

use gpusimpow_bench::{cli, experiments, render};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let pool = cli::pool_from_args(&args);
    let b = experiments::measurement_error_budget(25, &pool);
    println!("§IV-A — measurement chain error budget\n");
    println!("{}", render::error_budget(&b));
}

//! Instruction set of the modelled SIMT machine.
//!
//! The real GPUSimPow consumes CUDA/OpenCL kernels through GPGPU-Sim's PTX
//! frontend. This reproduction defines a compact SIMT ISA with the same
//! *architecturally relevant* instruction classes — integer ALU, floating
//! point ALU, special-function (SFU), memory in three spaces, barriers and
//! divergent branches with explicit reconvergence PCs — because the power
//! model only distinguishes instructions at that granularity.

use std::fmt;

/// A 32-bit general-purpose register index (`r0`–`r254`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// The register index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A source operand: a register or a 32-bit immediate.
///
/// Floating-point immediates are stored as their IEEE-754 bit pattern;
/// use [`Operand::imm_f32`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read from a register.
    Reg(Reg),
    /// A 32-bit immediate (integer value or f32 bits).
    Imm(u32),
}

impl Operand {
    /// An integer immediate.
    pub fn imm_u32(v: u32) -> Self {
        Operand::Imm(v)
    }

    /// A signed integer immediate (stored two's-complement).
    pub fn imm_i32(v: i32) -> Self {
        Operand::Imm(v as u32)
    }

    /// A floating-point immediate (stored as IEEE-754 bits).
    pub fn imm_f32(v: f32) -> Self {
        Operand::Imm(v.to_bits())
    }

    /// The register read by this operand, if any.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// Two-source integer ALU operations. All arithmetic wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low 32 bits).
    Mul,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (modulo 32).
    Shl,
    /// Logical shift right (modulo 32).
    Shr,
    /// Arithmetic shift right (modulo 32).
    Sra,
}

/// Two-source floating-point ALU operations (f32).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// IEEE minimum.
    Min,
    /// IEEE maximum.
    Max,
}

/// Single-source operations executed on the special function units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SfuOp {
    /// Reciprocal `1/x`.
    Rcp,
    /// Square root.
    Sqrt,
    /// Reciprocal square root.
    Rsqrt,
    /// Sine (radians).
    Sin,
    /// Cosine (radians).
    Cos,
    /// Base-2 exponential.
    Ex2,
    /// Base-2 logarithm.
    Lg2,
}

/// Comparison predicates; the result is written as 0 or 1 to a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// Memory spaces of the modelled GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Off-chip global memory (coalesced, via L1/L2/DRAM).
    Global,
    /// Per-CTA on-chip shared memory (banked).
    Shared,
    /// Read-only constant memory (broadcast-optimized, cached).
    Const,
}

/// Special (read-only) registers exposing the thread's coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialReg {
    /// Thread index within the block, x component.
    TidX,
    /// Thread index within the block, y component.
    TidY,
    /// Block index within the grid, x component.
    CtaIdX,
    /// Block index within the grid, y component.
    CtaIdY,
    /// Block dimension, x component.
    NTidX,
    /// Block dimension, y component.
    NTidY,
    /// Grid dimension, x component.
    NCtaIdX,
    /// Grid dimension, y component.
    NCtaIdY,
}

/// A program counter: an index into a kernel's instruction vector.
pub type Pc = u32;

/// One machine instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// `dst = a <op> b` on the integer units.
    IAlu {
        /// Operation.
        op: IntOp,
        /// Destination register.
        dst: Reg,
        /// First source.
        a: Operand,
        /// Second source.
        b: Operand,
    },
    /// Integer multiply-add `dst = a * b + c`.
    IMad {
        /// Destination register.
        dst: Reg,
        /// Multiplicand.
        a: Operand,
        /// Multiplier.
        b: Operand,
        /// Addend.
        c: Operand,
    },
    /// `dst = a <op> b` on the floating-point units.
    FAlu {
        /// Operation.
        op: FpOp,
        /// Destination register.
        dst: Reg,
        /// First source.
        a: Operand,
        /// Second source.
        b: Operand,
    },
    /// Fused multiply-add `dst = a * b + c` (f32).
    FFma {
        /// Destination register.
        dst: Reg,
        /// Multiplicand.
        a: Operand,
        /// Multiplier.
        b: Operand,
        /// Addend.
        c: Operand,
    },
    /// `dst = <op>(a)` on the special-function units.
    Sfu {
        /// Operation.
        op: SfuOp,
        /// Destination register.
        dst: Reg,
        /// Source.
        a: Operand,
    },
    /// Integer comparison: `dst = (a <op> b) ? 1 : 0` (signed).
    ISetp {
        /// Predicate.
        op: CmpOp,
        /// Destination register (0/1).
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Float comparison: `dst = (a <op> b) ? 1 : 0`.
    FSetp {
        /// Predicate.
        op: CmpOp,
        /// Destination register (0/1).
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Convert signed integer to f32.
    I2F {
        /// Destination register.
        dst: Reg,
        /// Source (interpreted as i32).
        a: Operand,
    },
    /// Convert f32 to signed integer (truncating).
    F2I {
        /// Destination register.
        dst: Reg,
        /// Source (interpreted as f32).
        a: Operand,
    },
    /// Copy `src` to `dst`.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// Select: `dst = cond != 0 ? a : b`.
    Sel {
        /// Destination register.
        dst: Reg,
        /// Condition register.
        cond: Reg,
        /// Value if the condition is non-zero.
        a: Operand,
        /// Value if the condition is zero.
        b: Operand,
    },
    /// Read a special register.
    S2R {
        /// Destination register.
        dst: Reg,
        /// Which special register.
        sr: SpecialReg,
    },
    /// Load: `dst = space[addr + offset]` (32-bit word).
    Ld {
        /// Memory space.
        space: MemSpace,
        /// Destination register.
        dst: Reg,
        /// Base-address register (byte address).
        addr: Reg,
        /// Byte offset added to the base.
        offset: i32,
    },
    /// Store: `space[addr + offset] = src` (32-bit word).
    St {
        /// Memory space (never [`MemSpace::Const`]).
        space: MemSpace,
        /// Source register.
        src: Reg,
        /// Base-address register (byte address).
        addr: Reg,
        /// Byte offset added to the base.
        offset: i32,
    },
    /// Conditional branch: threads with `cond != 0` (or `== 0` when
    /// `negate`) jump to `target`; `reconv` is the immediate
    /// post-dominator where diverged threads reconverge.
    Bra {
        /// Condition register.
        cond: Reg,
        /// Branch if the condition is zero instead of non-zero.
        negate: bool,
        /// Taken-path target.
        target: Pc,
        /// Reconvergence point (immediate post-dominator).
        reconv: Pc,
    },
    /// Unconditional jump.
    Jmp {
        /// Target.
        target: Pc,
    },
    /// CTA-wide barrier (`__syncthreads`).
    Bar,
    /// Terminate the thread.
    Exit,
    /// No operation.
    Nop,
}

/// Broad classes the performance and power models distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Integer pipeline.
    Int,
    /// Floating-point pipeline.
    Fp,
    /// Special-function pipeline.
    Sfu,
    /// Load/store pipeline.
    Mem,
    /// Branches, jumps, barriers, exit, nop.
    Control,
}

impl Instr {
    /// The execution class of this instruction.
    pub fn class(&self) -> InstrClass {
        match self {
            Instr::IAlu { .. }
            | Instr::IMad { .. }
            | Instr::ISetp { .. }
            | Instr::Mov { .. }
            | Instr::Sel { .. }
            | Instr::S2R { .. } => InstrClass::Int,
            Instr::FAlu { .. }
            | Instr::FFma { .. }
            | Instr::FSetp { .. }
            | Instr::I2F { .. }
            | Instr::F2I { .. } => InstrClass::Fp,
            Instr::Sfu { .. } => InstrClass::Sfu,
            Instr::Ld { .. } | Instr::St { .. } => InstrClass::Mem,
            Instr::Bra { .. } | Instr::Jmp { .. } | Instr::Bar | Instr::Exit | Instr::Nop => {
                InstrClass::Control
            }
        }
    }

    /// The destination register written by this instruction, if any.
    pub fn dst(&self) -> Option<Reg> {
        match *self {
            Instr::IAlu { dst, .. }
            | Instr::IMad { dst, .. }
            | Instr::FAlu { dst, .. }
            | Instr::FFma { dst, .. }
            | Instr::Sfu { dst, .. }
            | Instr::ISetp { dst, .. }
            | Instr::FSetp { dst, .. }
            | Instr::I2F { dst, .. }
            | Instr::F2I { dst, .. }
            | Instr::Mov { dst, .. }
            | Instr::Sel { dst, .. }
            | Instr::S2R { dst, .. }
            | Instr::Ld { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// The registers read by this instruction (up to four).
    pub fn srcs(&self) -> Vec<Reg> {
        let mut buf = [Reg(0); 4];
        let n = self.srcs_into(&mut buf);
        buf[..n].to_vec()
    }

    /// Writes the registers read by this instruction into `out` and
    /// returns how many there are (at most four). Allocation-free
    /// variant of [`Instr::srcs`] for decode-once hot paths.
    pub fn srcs_into(&self, out: &mut [Reg; 4]) -> usize {
        fn push(out: &mut [Reg; 4], n: &mut usize, r: Reg) {
            out[*n] = r;
            *n += 1;
        }
        fn push_op(out: &mut [Reg; 4], n: &mut usize, o: &Operand) {
            if let Operand::Reg(r) = o {
                push(out, n, *r);
            }
        }
        let mut n = 0;
        match self {
            Instr::IAlu { a, b, .. }
            | Instr::FAlu { a, b, .. }
            | Instr::ISetp { a, b, .. }
            | Instr::FSetp { a, b, .. } => {
                push_op(out, &mut n, a);
                push_op(out, &mut n, b);
            }
            Instr::IMad { a, b, c, .. } | Instr::FFma { a, b, c, .. } => {
                push_op(out, &mut n, a);
                push_op(out, &mut n, b);
                push_op(out, &mut n, c);
            }
            Instr::Sfu { a, .. } | Instr::I2F { a, .. } | Instr::F2I { a, .. } => {
                push_op(out, &mut n, a)
            }
            Instr::Mov { src, .. } => push_op(out, &mut n, src),
            Instr::Sel { cond, a, b, .. } => {
                push(out, &mut n, *cond);
                push_op(out, &mut n, a);
                push_op(out, &mut n, b);
            }
            Instr::Ld { addr, .. } => push(out, &mut n, *addr),
            Instr::St { src, addr, .. } => {
                push(out, &mut n, *src);
                push(out, &mut n, *addr);
            }
            Instr::Bra { cond, .. } => push(out, &mut n, *cond),
            Instr::S2R { .. } | Instr::Jmp { .. } | Instr::Bar | Instr::Exit | Instr::Nop => {}
        }
        n
    }

    /// Returns `true` for instructions that may change control flow.
    pub fn is_control_flow(&self) -> bool {
        matches!(self, Instr::Bra { .. } | Instr::Jmp { .. } | Instr::Exit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_cover_the_isa() {
        let r = Reg(0);
        let o = Operand::Reg(Reg(1));
        assert_eq!(
            Instr::IAlu {
                op: IntOp::Add,
                dst: r,
                a: o,
                b: o
            }
            .class(),
            InstrClass::Int
        );
        assert_eq!(
            Instr::FFma {
                dst: r,
                a: o,
                b: o,
                c: o
            }
            .class(),
            InstrClass::Fp
        );
        assert_eq!(
            Instr::Sfu {
                op: SfuOp::Sin,
                dst: r,
                a: o
            }
            .class(),
            InstrClass::Sfu
        );
        assert_eq!(
            Instr::Ld {
                space: MemSpace::Global,
                dst: r,
                addr: Reg(1),
                offset: 0
            }
            .class(),
            InstrClass::Mem
        );
        assert_eq!(Instr::Bar.class(), InstrClass::Control);
    }

    #[test]
    fn dst_and_srcs_are_consistent() {
        let i = Instr::IMad {
            dst: Reg(3),
            a: Operand::Reg(Reg(1)),
            b: Operand::Reg(Reg(2)),
            c: Operand::Imm(5),
        };
        assert_eq!(i.dst(), Some(Reg(3)));
        assert_eq!(i.srcs(), vec![Reg(1), Reg(2)]);
    }

    #[test]
    fn stores_read_both_registers() {
        let st = Instr::St {
            space: MemSpace::Shared,
            src: Reg(4),
            addr: Reg(5),
            offset: 8,
        };
        assert_eq!(st.dst(), None);
        assert_eq!(st.srcs(), vec![Reg(4), Reg(5)]);
    }

    #[test]
    fn float_immediates_roundtrip() {
        let o = Operand::imm_f32(1.5);
        match o {
            Operand::Imm(bits) => assert_eq!(f32::from_bits(bits), 1.5),
            _ => panic!("expected an immediate"),
        }
    }

    #[test]
    fn control_flow_detection() {
        assert!(Instr::Exit.is_control_flow());
        assert!(Instr::Jmp { target: 0 }.is_control_flow());
        assert!(!Instr::Bar.is_control_flow());
        assert!(!Instr::Nop.is_control_flow());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Reg(7).to_string(), "r7");
        assert_eq!(Operand::Imm(42).to_string(), "#42");
        assert_eq!(Operand::Reg(Reg(2)).to_string(), "r2");
    }
}

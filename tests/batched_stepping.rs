//! Batched steady-state stepping is an accelerator, not a semantic: the
//! pure-compute fast path in `Gpu::launch_impl` (plus its in-batch
//! per-core wake gating) must reproduce, bit for bit, what the ordinary
//! cycle-by-cycle path produces. These tests pin one representative
//! kernel on both presets — barrel-scheduled GT240 and scoreboarded
//! GTX580 — against the same golden counts, time bits and power bits as
//! `tests/determinism.rs`, with the fast path forced on and off. If a
//! batch ever swallows a side-effect cycle (a buffered store, a CTA
//! completion, a window boundary), the "on" pins fire; if a change to
//! the ordinary path drifts, both fire.

use gpusimpow::Simulator;
use gpusimpow_kernels::blackscholes::BlackScholes;
use gpusimpow_sim::ActivityStats;

fn run(
    preset: fn() -> Result<Simulator, gpusimpow::Error>,
    batch: bool,
) -> (ActivityStats, u64, u64) {
    let mut sim = preset().expect("preset builds");
    sim.gpu_mut().set_batch_stepping(batch);
    let reports = sim
        .run_benchmark(&BlackScholes { options: 2048 })
        .expect("verifies");
    let r = &reports[0];
    (
        r.launch.stats.clone(),
        r.launch.time_s.to_bits(),
        r.power.total_power().watts().to_bits(),
    )
}

fn assert_gt240_pins((s, time_bits, power_bits): (ActivityStats, u64, u64)) {
    assert_eq!(s.shader_cycles, 2977);
    assert_eq!(s.warp_instructions, 4544);
    assert_eq!(s.thread_instructions, 145_408);
    assert_eq!(s.dram_read_bursts, 768);
    assert_eq!(time_bits, 0x3ec261f80d2e3a2e);
    assert_eq!(power_bits, 0x40424222c3bfa612);
}

fn assert_gtx580_pins((s, time_bits, power_bits): (ActivityStats, u64, u64)) {
    assert_eq!(s.shader_cycles, 1378);
    assert_eq!(s.warp_instructions, 4544);
    assert_eq!(s.thread_instructions, 145_408);
    assert_eq!(s.dram_read_bursts, 768);
    assert_eq!(time_bits, 0x3eaa36471788359c);
    assert_eq!(power_bits, 0x405f3dc2db7dd43e);
}

#[test]
fn gt240_pins_hold_with_batching_on_and_off() {
    assert_gt240_pins(run(Simulator::gt240, true));
    assert_gt240_pins(run(Simulator::gt240, false));
}

#[test]
fn gtx580_pins_hold_with_batching_on_and_off() {
    assert_gtx580_pins(run(Simulator::gtx580, true));
    assert_gtx580_pins(run(Simulator::gtx580, false));
}

#[test]
fn batching_defaults_on_and_stats_match_exactly_either_way() {
    let mut sim = Simulator::gt240().expect("preset builds");
    assert!(sim.gpu_mut().batch_stepping(), "fast path is the default");
    // Beyond the pinned fields: the *entire* counter vector must match.
    let (on, _, _) = run(Simulator::gt240, true);
    let (off, _, _) = run(Simulator::gt240, false);
    assert_eq!(on, off, "batching must not move any activity counter");
}
